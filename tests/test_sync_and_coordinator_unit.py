"""Focused unit tests for sync-engine internals and coordinator behaviour."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import EQ, GTravel
from repro.net.message import SyncBatch, SyncStartStep
from tests.conftest import build_cluster


def test_sync_barrier_rounds_equal_levels(metadata_graph):
    graph, ids = metadata_graph
    for steps, expected in ((0, 1), (1, 2), (3, 4)):
        q = GTravel.v(ids["users"][0])
        for _ in range(steps):
            q = q.e("run")
        cluster = build_cluster(graph, EngineKind.SYNC)
        out = cluster.traverse(q.compile())
        assert out.stats.barrier_rounds == expected, steps


def test_sync_every_server_participates_each_step(metadata_graph):
    """Barrier semantics: even servers with no frontier work report done."""
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC, nservers=6)
    plan = GTravel.v(ids["users"][0]).e("run").compile()
    out = cluster.traverse(plan)
    # 2 levels x 6 servers = 12 step-done control messages minimum
    assert out.stats.executions == 12


def test_sync_engine_ignores_stale_attempt_messages(metadata_graph):
    graph, _ = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    engine = cluster.servers[0].engine
    # no travel registered: both messages must be dropped silently
    engine.on_message(SyncBatch(999, level=0, entries={}, from_server=1, attempt=0))
    engine.on_message(SyncStartStep(999, level=0, expect_batches=0, attempt=0))
    cluster.runtime.sim.run()
    assert cluster.runtime.sim.orphan_failures == []
    assert len(engine._buffers) == 0


def test_sync_forget_travel_clears_state(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    cluster.traverse(plan)
    for server in cluster.servers:
        assert server.engine._buffers == {}
        assert server.engine._expected == {}


def test_async_forget_travel_clears_state(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    cluster.traverse(plan)
    for server in cluster.servers:
        engine = server.engine
        assert engine._pending == {}
        assert engine._sent == {}
        assert len(engine.seen) == 0


def test_travel_ids_monotonic(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    plan = GTravel.v(ids["users"][0]).e("run").compile()
    t1, e1 = cluster.submit(plan)
    cluster.runtime.run_until_complete(e1)
    t2, e2 = cluster.submit(plan)
    cluster.runtime.run_until_complete(e2)
    assert t2 == t1 + 1


def test_concurrent_travels_have_independent_stats(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    small = GTravel.v(ids["users"][0]).e("run").compile()
    large = GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()
    out_small, out_large = cluster.traverse_many([small, large])
    assert out_large.stats.real_io_visits > out_small.stats.real_io_visits
    assert out_small.result.vertices != out_large.result.vertices


def test_sync_progress_reports_barrier_level(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    travel_id, event = cluster.submit(plan)
    sim = cluster.runtime.sim
    saw_progress = False
    for _ in range(10_000):
        if event.triggered:
            break
        sim.run(until=sim.peek())
        progress = cluster.progress(travel_id)
        if progress:
            level, outstanding = next(iter(progress.items()))
            assert 0 <= level <= plan.final_level
            assert 0 <= outstanding <= cluster.config.nservers
            saw_progress = True
    cluster.runtime.run_until_complete(event)
    assert saw_progress


def test_outcome_carries_plan(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    plan = GTravel.v(ids["users"][0]).e("run").compile()
    out = cluster.traverse(plan)
    assert out.plan is plan


def test_coordinator_on_unknown_travel_is_noop(metadata_graph):
    graph, _ = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    from repro.net.message import ResultReport

    cluster.coordinator.on_message(ResultReport(4242, level=1, vertices=frozenset({1})))
    cluster.runtime.sim.run()  # must not schedule anything harmful


def test_engine_options_respected_by_cluster(metadata_graph):
    from repro.engine import sync_options

    graph, ids = metadata_graph
    opts = sync_options(workers=1, batch_seek_factor=1.0)
    cluster = Cluster.build(graph, ClusterConfig(nservers=2, engine=opts))
    out = cluster.traverse(GTravel.v(ids["users"][0]).e("run"))
    expected = ReferenceEngine(graph).run(GTravel.v(ids["users"][0]).e("run").compile())
    assert out.result.same_vertices(expected)
    assert out.stats.engine is EngineKind.SYNC


def test_cold_vs_warm_second_traversal_cheaper(metadata_graph):
    """cold=False keeps the block cache warm across traversals."""
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    first = cluster.traverse(plan, cold=True)
    warm = cluster.traverse(plan, cold=False)
    cold_again = cluster.traverse(plan, cold=True)
    assert warm.stats.elapsed < first.stats.elapsed
    assert cold_again.stats.elapsed > warm.stats.elapsed
