"""Coordinator crash-recovery differential suite (the PR's acceptance
criterion).

The coordinator-hosting server crashes mid-traversal and recovers inside the
fault window, with the durable traversal journal enabled. The contract is
*element-identical* results — not merely a clean failure: recovery replays
the journal, starts a new epoch, fences every stale pre-crash report, and
restarts in-doubt travels through the fine-grained replay path, so the
client's result set must equal the fault-free run's. Covered here: ten
seeded plans on GraphTrek, the engine × planner-mode matrix, concurrent
workloads under both scheduler policies (with composite repeat/union legs
and a deadline-cancel leg), zero leaked state, journal replay determinism
(byte-identical recovered metrics snapshots), epoch fencing, and the client
idempotent-resubmission contract.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.client import GraphTrekClient
from repro.engine import (
    EngineKind,
    graphtrek_options,
    plain_async_options,
    sync_options,
)
from repro.errors import AdmissionRejected, TraversalFailed
from repro.faults.chaos import (
    chaos_check,
    chaos_check_many,
    chaos_coordinator_config,
    run_fault_free,
    run_under_faults,
)
from repro.faults.plan import sample_fault_plan
from repro.lang import GTravel
from repro.net.message import ExecStatus


RECOVERY_SEEDS = list(range(10))
MODES = ("off", "rules", "cost")
PRESETS = {
    "sync": sync_options,
    "async": plain_async_options,
    "graphtrek": graphtrek_options,
}


def recovery_query(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()


def mixed_queries(ids):
    """Linear chains plus composite repeat/union legs, all restartable."""
    u = ids["users"]
    return [
        GTravel.v(*u).e("run").e("hasExecutions").compile(),
        GTravel.v(*u).repeat(GTravel.s().e("run").e("hasExecutions")).times(1).compile(),
        GTravel.v(u[0]).union(
            GTravel.s().e("run"), GTravel.s().e("run").e("hasExecutions")
        ).compile(),
        GTravel.v(*u).e("run").e("hasExecutions").e("read").compile(),
    ]


# -- single-travel differential: crash + recover the coordinator host ----------


@pytest.mark.parametrize("seed", RECOVERY_SEEDS)
def test_coordinator_crash_differential_graphtrek(metadata_graph, seed):
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph, recovery_query(ids), seed=seed, crash_coordinator=True
    )
    # recovery must reproduce the fault-free result set — a clean failure is
    # NOT acceptable here, the whole point is that the travel survives
    assert outcome.matched, (
        f"seed {seed}: recovered run diverged (error={outcome.error})\n"
        f"plan={outcome.plan}\ncounters={outcome.net_counters}"
    )
    # and the coordinator host really did crash
    assert outcome.net_counters.get("faults.crashes{server=0}") == 1, (
        outcome.net_counters
    )


@pytest.mark.parametrize("preset", sorted(PRESETS), ids=str)
@pytest.mark.parametrize("mode", MODES)
def test_coordinator_crash_engines_and_planner_modes(metadata_graph, preset, mode):
    """The engine × planner-mode matrix: recovery is element-identical no
    matter which engine runs the travel or how the planner rewrote it."""
    graph, ids = metadata_graph
    opts = PRESETS[preset](planner=mode)
    for seed in (1, 4):
        outcome = chaos_check(
            graph,
            recovery_query(ids),
            seed=seed,
            engine=opts,
            crash_coordinator=True,
            max_drop=0.06,
        )
        assert outcome.matched, (
            f"{preset}/planner={mode} seed {seed}: {outcome.error}\n"
            f"counters={outcome.net_counters}"
        )


# -- concurrent: scheduler policies, composites, deadline cancel, zero leak ----


@pytest.mark.parametrize("policy", ("fifo", "wfq"))
@pytest.mark.parametrize("seed", (0, 1, 4, 7))
def test_coordinator_crash_concurrent_mixed(metadata_graph, policy, seed):
    """Queued, running, composite, and deadline-armed travels all cross a
    coordinator epoch together; each must match its serial oracle (or, for
    the deadline leg, cancel cleanly) and nothing may leak."""
    graph, ids = metadata_graph
    queries = mixed_queries(ids)
    outcome = chaos_check_many(
        graph,
        queries,
        seed=seed,
        scheduler=policy,
        crash_coordinator=True,
        deadlines=[None, None, None, 5e-4],
        tenants=["default", "batch", "default", "batch"],
    )
    assert not outcome.leaked, outcome.leaked
    assert outcome.ok, [
        (v.index, v.matched, v.cancelled, v.error) for v in outcome.verdicts
    ]
    # the non-deadline legs must have *matched*, not merely failed cleanly
    for v in outcome.verdicts[:3]:
        assert v.matched, (v.index, v.error)


# -- journal replay determinism ------------------------------------------------


@pytest.mark.parametrize("seed", (1, 4))
def test_recovered_metrics_snapshots_are_deterministic(metadata_graph, seed):
    """Same crash plan + seed → byte-identical full metrics snapshot, result
    payload, and journal contents after recovery: journal replay is a pure
    function of the durable bytes."""
    graph, ids = metadata_graph
    query = recovery_query(ids)
    baseline, duration = run_fault_free(graph, query)
    plan = sample_fault_plan(
        seed,
        nservers=3,
        crash_window=(0.2 * duration, 3.0 * duration),
        crash_servers=(),
        crash_coordinator=True,
    )
    cc = chaos_coordinator_config(duration)

    def one_run():
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=3,
                engine=EngineKind.GRAPHTREK,
                fault_plan=plan,
                reliable=True,
                coordinator_config=cc,
                journal=True,
            ),
        )
        outcome = cluster.traverse(query)
        snap = cluster.metrics_snapshot()
        journal_bytes = cluster.journal.storage.read()
        cluster.shutdown()
        return outcome.result.returned, snap, journal_bytes

    res_a, snap_a, bytes_a = one_run()
    res_b, snap_b, bytes_b = one_run()
    assert res_a == {k: v for k, v in baseline.items() if isinstance(k, int)}
    assert res_a == res_b
    assert snap_a == snap_b
    assert bytes_a == bytes_b
    assert snap_a["counters"].get("coord.crash") == 1


def test_recovery_restarts_under_new_epoch(metadata_graph):
    """After recovery the coordinator runs in epoch ≥ 1, the journal carries
    the epoch record, and stale pre-crash traffic was fenced."""
    graph, ids = metadata_graph
    query = recovery_query(ids)
    baseline, duration = run_fault_free(graph, query)
    plan = sample_fault_plan(
        1,
        nservers=3,
        crash_window=(0.2 * duration, 3.0 * duration),
        crash_servers=(),
        crash_coordinator=True,
    )
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            fault_plan=plan,
            reliable=True,
            coordinator_config=chaos_coordinator_config(duration),
            journal=True,
        ),
    )
    outcome = cluster.traverse(query)
    assert outcome.result.returned == {
        k: v for k, v in baseline.items() if isinstance(k, int)
    }
    assert cluster.coordinator.epoch >= 1
    assert cluster.journal.state.epoch == cluster.coordinator.epoch
    counters = cluster.metrics_snapshot()["counters"]
    fenced = [k for k in counters if k.startswith("coord.fenced")]
    assert fenced, counters
    assert cluster.supervisor is not None
    assert cluster.supervisor.live_bindings == 0
    cluster.shutdown()


# -- epoch fencing unit --------------------------------------------------------


def test_stale_epoch_message_is_fenced(metadata_graph):
    """A report stamped with a previous epoch is dropped and counted, never
    folded into tracker state."""
    graph, _ = metadata_graph
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, journal=True)
    )
    coordinator = cluster.coordinator
    coordinator.begin_epoch(3)
    stale = ExecStatus(1, exec_id=7, server=0, created=(), results_sent=0)
    stale.epoch = 2
    coordinator.on_message(stale)
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("coord.fenced") == 1
    current = ExecStatus(1, exec_id=7, server=0, created=(), results_sent=0)
    current.epoch = 3
    coordinator.on_message(current)  # no active travel → ignored, not fenced
    assert cluster.metrics_snapshot()["counters"].get("coord.fenced") == 1


def test_outbound_coordinator_messages_carry_epoch(metadata_graph):
    """Every dispatch the coordinator sends is stamped with its epoch, so
    replies echo it back through the fence."""
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, journal=True)
    )
    seen = []

    def spy(src, dst, msg):
        seen.append(getattr(msg, "epoch", None))
        return False

    cluster.runtime.drop_filter = spy
    cluster.traverse(GTravel.v(ids["users"][0]).e("run").compile())
    assert seen and all(e == 0 for e in seen)


# -- admission while the coordinator host is down ------------------------------


def test_submit_rejected_while_coordinator_host_down(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, journal=True)
    )
    cluster.runtime.crash_server(cluster.runtime.coordinator_server)
    with pytest.raises(AdmissionRejected, match="coordinator host is down"):
        cluster.submit(GTravel.v(ids["users"][0]).e("run").compile())
    counters = cluster.metrics_snapshot()["counters"]
    assert any(k.startswith("sched.rejected") for k in counters)


# -- idempotent resubmission ---------------------------------------------------


def test_client_idempotent_key_returns_original_submission(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, journal=True)
    )
    client = GraphTrekClient(cluster)
    query = GTravel.v(ids["users"][0]).e("run").compile()
    tid_a, ev_a = client.submit_idempotent(query, key="req-1")
    tid_b, ev_b = client.submit_idempotent(query, key="req-1")
    assert (tid_a, ev_a) == (tid_b, ev_b)
    cluster.runtime.run_until_complete(ev_a)
    # finished travels still own their key: no double run after completion
    tid_c, _ = client.submit_idempotent(query, key="req-1")
    assert tid_c == tid_a
    # a different key is a different submission
    tid_d, ev_d = client.submit_idempotent(query, key="req-2")
    assert tid_d != tid_a
    cluster.runtime.run_until_complete(ev_d)


def test_client_resubmits_only_after_predurability_loss(metadata_graph):
    """The one retryable outcome is the pre-durability loss: the submission
    died before its admit record, so the journal holds no trace of it."""
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, journal=True)
    )
    client = GraphTrekClient(cluster)
    query = GTravel.v(ids["users"][0]).e("run").compile()

    class _Ev:
        def __init__(self, exc):
            self.triggered = True
            self._exc = exc

    # a travel lost before durability → same key yields a fresh submission
    client.sessions["req-lost"] = (99, _Ev(TraversalFailed(99, "lost in coordinator crash")))
    tid, ev = client.submit_idempotent(query, key="req-lost")
    assert tid != 99
    cluster.runtime.run_until_complete(ev)
    # any other failure is NOT retryable through the same key
    client.sessions["req-failed"] = (
        98,
        _Ev(TraversalFailed(98, "restart budget exhausted")),
    )
    tid2, _ = client.submit_idempotent(query, key="req-failed")
    assert tid2 == 98


def test_query_idempotent_across_coordinator_crash(metadata_graph):
    """End to end: an acknowledged submission keyed by the client survives a
    coordinator crash — resubmitting the key joins the recovered travel
    instead of double-running it."""
    graph, ids = metadata_graph
    query = recovery_query(ids)
    baseline, duration = run_fault_free(graph, query)
    plan = sample_fault_plan(
        4,
        nservers=3,
        crash_window=(0.2 * duration, 3.0 * duration),
        crash_servers=(),
        crash_coordinator=True,
    )
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            fault_plan=plan,
            reliable=True,
            coordinator_config=chaos_coordinator_config(duration),
            journal=True,
        ),
    )
    cluster.cold_start()
    client = GraphTrekClient(cluster)
    first_tid, first_ev = client.submit_idempotent(query, key="ticket-7")
    # a retry while the original is still live joins it
    retry_tid, retry_ev = client.submit_idempotent(query, key="ticket-7")
    assert (retry_tid, retry_ev) == (first_tid, first_ev)
    outcome = cluster.runtime.run_until_complete(first_ev)
    assert outcome.result.returned == {
        k: v for k, v in baseline.items() if isinstance(k, int)
    }
    # after completion the key still owns the finished travel
    tid_after, _ = client.submit_idempotent(query, key="ticket-7")
    assert tid_after == first_tid
    assert cluster.supervisor.live_bindings == 0
    cluster.shutdown()
