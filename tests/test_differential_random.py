"""Randomized differential testing: Sync-GT ≡ Async-GT ≡ GraphTrek ≡ oracle.

Hypothesis generates small random property graphs and random GTravel plans
(steps, filters, rtn markers); every distributed engine must return exactly
the oracle's per-level vertex sets, on varying server counts and with a tiny
traversal-affiliate cache (to exercise eviction/replay paths).
"""

import random

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine, graphtrek_options, plain_async_options
from repro.graph import PropertyGraph
from repro.lang import EQ, RANGE, GTravel
from repro.lang.filters import FilterSet, PropertyFilter
from repro.lang.plan import Step, TraversalPlan

LABELS = ("a", "b")
COLORS = (0, 1, 2)


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": draw(st.sampled_from(COLORS))})
    n_edges = draw(st.integers(min_value=1, max_value=3 * n))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        label = draw(st.sampled_from(LABELS))
        g.add_edge(src, dst, label, {"w": draw(st.integers(0, 3))})
    return g


@st.composite
def plans(draw, graph: PropertyGraph):
    n = graph.num_vertices
    if draw(st.booleans()):
        source_ids = tuple(
            sorted(draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3)))
        )
    else:
        source_ids = None
    source_filters = FilterSet()
    if draw(st.booleans()):
        source_filters = source_filters.add(
            PropertyFilter("color", EQ, draw(st.sampled_from(COLORS)))
        )
    n_steps = draw(st.integers(min_value=0, max_value=4))
    steps = []
    for _ in range(n_steps):
        edge_filters = FilterSet()
        if draw(st.booleans()):
            edge_filters = edge_filters.add(PropertyFilter("w", RANGE, (0, draw(st.integers(0, 3)))))
        vertex_filters = FilterSet()
        if draw(st.booleans()):
            vertex_filters = vertex_filters.add(
                PropertyFilter("color", EQ, draw(st.sampled_from(COLORS)))
            )
        labels = tuple(
            sorted(draw(st.sets(st.sampled_from(LABELS), min_size=1, max_size=2)))
        )
        steps.append(Step(labels, edge_filters, vertex_filters))
    rtn_levels = draw(st.sets(st.integers(0, n_steps), max_size=2))
    return TraversalPlan(
        source_ids=source_ids,
        source_filters=source_filters,
        steps=tuple(steps),
        rtn_levels=frozenset(rtn_levels),
    )


@st.composite
def cases(draw):
    graph = draw(graphs())
    plan = draw(plans(graph))
    nservers = draw(st.integers(min_value=1, max_value=4))
    return graph, plan, nservers


@given(cases())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_all_engines_match_oracle_on_random_cases(case):
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    for kind in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
        cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=kind))
        outcome = cluster.traverse(plan)
        assert outcome.result.same_vertices(ref), (
            f"{kind.value}: {outcome.result.returned} != {ref.returned} "
            f"for plan {plan.describe()} on {nservers} servers"
        )


@given(cases())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_graphtrek_tiny_cache_matches_oracle(case):
    """Cache eviction forces re-dispatch; results must stay exact."""
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    opts = graphtrek_options(cache_capacity=2)
    cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=opts))
    outcome = cluster.traverse(plan)
    assert outcome.result.same_vertices(ref)


@given(cases())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_greedy_partition_matches_oracle(case):
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=nservers, engine=EngineKind.GRAPHTREK, partitioner="greedy"),
    )
    assert cluster.traverse(plan).result.same_vertices(ref)


# -- metric invariants on seeded random graphs --------------------------------
#
# Plain seeded RNG (not hypothesis) so each case is exactly reproducible by
# seed alone; the invariants come from the paper's visit accounting (Fig. 7):
# the barrier engine's per-level dedup is a lower bound on total visits, and
# the traversal-affiliate cache can only remove disk visits, never add them.


def seeded_case(seed: int):
    rng = random.Random(seed)
    n = rng.randint(12, 30)
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": rng.randrange(3)})
    for _ in range(rng.randint(n, 3 * n)):
        g.add_edge(
            rng.randrange(n), rng.randrange(n), rng.choice(LABELS),
            {"w": rng.randrange(4)},
        )
    steps = [Step((rng.choice(LABELS),), FilterSet(), FilterSet())
             for _ in range(rng.randint(2, 4))]
    plan = TraversalPlan(
        source_ids=(rng.randrange(n),),
        source_filters=FilterSet(),
        steps=tuple(steps),
        rtn_levels=frozenset({len(steps)}),
    )
    return g, plan, rng.randint(2, 4)


def run_with(graph, plan, engine, nservers):
    cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=engine))
    return cluster.traverse(plan)


def test_async_visits_at_least_sync_and_results_identical():
    """Async engines may revisit (no global barrier dedup); the synchronous
    baseline's per-level dedup makes its visit count a lower bound."""
    checked = 0
    for seed in range(10):
        graph, plan, nservers = seeded_case(seed)
        ref = ReferenceEngine(graph).run(plan)
        sync_out = run_with(graph, plan, EngineKind.SYNC, nservers)
        async_out = run_with(graph, plan, EngineKind.ASYNC, nservers)
        assert sync_out.result.same_vertices(ref), f"seed {seed}"
        assert async_out.result.same_vertices(ref), f"seed {seed}"
        assert async_out.stats.total_visits >= sync_out.stats.total_visits, (
            f"seed {seed}: async visited less than the barrier baseline"
        )
        checked += sync_out.stats.total_visits > 0
    assert checked, "every seeded case degenerated to an empty traversal"


def test_affiliate_cache_never_adds_disk_visits():
    """GraphTrek with the traversal-affiliate cache must do no more real
    (disk) visits than the identically configured cache-less engine."""
    for seed in range(10):
        graph, plan, nservers = seeded_case(seed + 100)
        ref = ReferenceEngine(graph).run(plan)
        cached = run_with(graph, plan, graphtrek_options(), nservers)
        uncached = run_with(
            graph, plan, graphtrek_options(cache_enabled=False), nservers
        )
        assert cached.result.same_vertices(ref), f"seed {seed}"
        assert uncached.result.same_vertices(ref), f"seed {seed}"
        assert cached.stats.real_io_visits <= uncached.stats.real_io_visits, (
            f"seed {seed}: the cache increased disk visits"
        )


def test_metric_counters_match_stats_board():
    """The new registry and the legacy stats board watch the same events:
    real-visit counters must agree exactly."""
    for seed in (3, 7):
        graph, plan, nservers = seeded_case(seed)
        for engine in (EngineKind.SYNC, plain_async_options()):
            cluster = Cluster.build(
                graph, ClusterConfig(nservers=nservers, engine=engine)
            )
            out = cluster.traverse(plan)
            metrics = cluster.obs.metrics
            assert metrics.counter_total("engine.real_visits") == (
                out.stats.real_io_visits
            ), f"seed {seed}"


# -- composite operators (repeat / union / back / aggregate) -------------------
#
# Hypothesis-generated composite chains; every engine must match the oracle's
# vertex sets AND aggregates (same_result). Depth-capped `until` chains are
# excluded here — the typed-error path is covered by test_lang_operators.py.


@st.composite
def sub_chains(draw, max_steps=2):
    from repro.lang import GTravel

    sub = GTravel.s()
    for _ in range(draw(st.integers(1, max_steps))):
        sub = sub.e(draw(st.sampled_from(LABELS)))
        if draw(st.booleans()):
            sub = sub.va("color", EQ, draw(st.sampled_from(COLORS)))
    return sub


@st.composite
def composite_cases(draw):
    from repro.lang import GTravel

    graph = draw(graphs())
    n = graph.num_vertices
    sources = sorted(draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3)))
    q = GTravel.v(*sources)
    if draw(st.booleans()):
        q = q.e(draw(st.sampled_from(LABELS)))
    for op_index in range(draw(st.integers(1, 2))):
        kind = draw(st.sampled_from(("repeat", "union", "back")))
        if kind == "repeat":
            q = q.repeat(draw(sub_chains())).times(draw(st.integers(0, 3)))
        elif kind == "union":
            branches = draw(st.lists(sub_chains(), min_size=1, max_size=3))
            q = q.union(*branches)
        else:
            # labels must be unique per binding: as_() rejects rebinding
            name = f"b{op_index}"
            q = q.as_(name).e(draw(st.sampled_from(LABELS))).back(name)
    agg = draw(st.sampled_from((None, "count", "label", "color")))
    if agg == "count":
        q = q.count()
    elif agg is not None:
        q = q.group_count(by=None if agg == "label" else agg)
    nservers = draw(st.integers(min_value=1, max_value=4))
    return graph, q.compile(), nservers


@given(composite_cases())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_composite_operators_match_oracle_on_random_cases(case):
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    for kind in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
        cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=kind))
        outcome = cluster.traverse(plan)
        assert outcome.result.same_result(ref), (
            f"{kind.value}: {outcome.result.returned} "
            f"agg={outcome.result.aggregate} != {ref.returned} "
            f"agg={ref.aggregate} for {plan.describe()} on {nservers} servers"
        )
        assert not cluster.coordinator._composites
