"""Randomized differential testing: Sync-GT ≡ Async-GT ≡ GraphTrek ≡ oracle.

Hypothesis generates small random property graphs and random GTravel plans
(steps, filters, rtn markers); every distributed engine must return exactly
the oracle's per-level vertex sets, on varying server counts and with a tiny
traversal-affiliate cache (to exercise eviction/replay paths).
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine, graphtrek_options
from repro.graph import PropertyGraph
from repro.lang import EQ, RANGE, GTravel
from repro.lang.filters import FilterSet, PropertyFilter
from repro.lang.plan import Step, TraversalPlan

LABELS = ("a", "b")
COLORS = (0, 1, 2)


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=2, max_value=14))
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": draw(st.sampled_from(COLORS))})
    n_edges = draw(st.integers(min_value=1, max_value=3 * n))
    for _ in range(n_edges):
        src = draw(st.integers(0, n - 1))
        dst = draw(st.integers(0, n - 1))
        label = draw(st.sampled_from(LABELS))
        g.add_edge(src, dst, label, {"w": draw(st.integers(0, 3))})
    return g


@st.composite
def plans(draw, graph: PropertyGraph):
    n = graph.num_vertices
    if draw(st.booleans()):
        source_ids = tuple(
            sorted(draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=3)))
        )
    else:
        source_ids = None
    source_filters = FilterSet()
    if draw(st.booleans()):
        source_filters = source_filters.add(
            PropertyFilter("color", EQ, draw(st.sampled_from(COLORS)))
        )
    n_steps = draw(st.integers(min_value=0, max_value=4))
    steps = []
    for _ in range(n_steps):
        edge_filters = FilterSet()
        if draw(st.booleans()):
            edge_filters = edge_filters.add(PropertyFilter("w", RANGE, (0, draw(st.integers(0, 3)))))
        vertex_filters = FilterSet()
        if draw(st.booleans()):
            vertex_filters = vertex_filters.add(
                PropertyFilter("color", EQ, draw(st.sampled_from(COLORS)))
            )
        labels = tuple(
            sorted(draw(st.sets(st.sampled_from(LABELS), min_size=1, max_size=2)))
        )
        steps.append(Step(labels, edge_filters, vertex_filters))
    rtn_levels = draw(st.sets(st.integers(0, n_steps), max_size=2))
    return TraversalPlan(
        source_ids=source_ids,
        source_filters=source_filters,
        steps=tuple(steps),
        rtn_levels=frozenset(rtn_levels),
    )


@st.composite
def cases(draw):
    graph = draw(graphs())
    plan = draw(plans(graph))
    nservers = draw(st.integers(min_value=1, max_value=4))
    return graph, plan, nservers


@given(cases())
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_all_engines_match_oracle_on_random_cases(case):
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    for kind in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
        cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=kind))
        outcome = cluster.traverse(plan)
        assert outcome.result.same_vertices(ref), (
            f"{kind.value}: {outcome.result.returned} != {ref.returned} "
            f"for plan {plan.describe()} on {nservers} servers"
        )


@given(cases())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_graphtrek_tiny_cache_matches_oracle(case):
    """Cache eviction forces re-dispatch; results must stay exact."""
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    opts = graphtrek_options(cache_capacity=2)
    cluster = Cluster.build(graph, ClusterConfig(nservers=nservers, engine=opts))
    outcome = cluster.traverse(plan)
    assert outcome.result.same_vertices(ref)


@given(cases())
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_greedy_partition_matches_oracle(case):
    graph, plan, nservers = case
    ref = ReferenceEngine(graph).run(plan)
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=nservers, engine=EngineKind.GRAPHTREK, partitioner="greedy"),
    )
    assert cluster.traverse(plan).result.same_vertices(ref)
