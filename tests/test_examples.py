"""Smoke tests: every example script runs to completion.

Each example's ``main()`` is imported and executed in-process (stdout
captured by pytest), so API drift in examples breaks the suite immediately.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    assert {
        "quickstart",
        "data_auditing",
        "provenance_mining",
        "straggler_analysis",
        "fault_tolerance",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"
