"""Tests for the interleaved edge layout and its cost asymmetry."""

import pytest

from repro.errors import StorageError
from repro.graph import GraphBuilder, hpc_metadata_schema
from repro.lang import GTravel
from repro.storage import GraphStore, LSMConfig
from repro.storage.persist import checkpoint_graph_store, restore_graph_store
from tests.conftest import assert_engines_match_oracle


@pytest.fixture()
def multi_label_vertex():
    b = GraphBuilder()
    v = b.vertex("T")
    targets = [b.vertex("T") for _ in range(12)]
    for i, t in enumerate(targets):
        b.edge(v, t, ("read", "write", "exe")[i % 3], n=i)
    return b.build(), v, targets


def load(graph, vids, layout):
    store = GraphStore(LSMConfig(), edge_layout=layout)
    store.load_partition(graph, vids)
    return store


def test_layouts_return_identical_edges(multi_label_vertex):
    graph, v, targets = multi_label_vertex
    grouped = load(graph, [v], "grouped")
    interleaved = load(graph, [v], "interleaved")
    for label in ("read", "write", "exe"):
        ga, _ = grouped.edges(v, label)
        ia, _ = interleaved.edges(v, label)
        assert sorted(ga) == sorted(ia)
    g_all, _ = grouped.all_edges(v)
    i_all, _ = interleaved.all_edges(v)
    assert sorted(g_all) == sorted(i_all)


def test_interleaved_label_scan_costs_more(multi_label_vertex):
    """The §IV-B claim: label-selective scans are cheaper when same-label
    edges are contiguous."""
    graph, v, _ = multi_label_vertex
    grouped = load(graph, [v], "grouped")
    interleaved = load(graph, [v], "interleaved")
    _, g_cost = grouped.edges(v, "read")
    _, i_cost = interleaved.edges(v, "read")
    assert i_cost.bytes > g_cost.bytes  # whole block vs one label's run


def test_interleaved_label_prop_not_exposed(multi_label_vertex):
    graph, v, _ = multi_label_vertex
    interleaved = load(graph, [v], "interleaved")
    edges, _ = interleaved.edges(v, "read")
    for _, props in edges:
        assert "__label" not in props


def test_interleaved_live_insert(multi_label_vertex):
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "interleaved")
    store.insert_edge(v, 999, "read", {"n": 99})
    edges, _ = store.edges(v, "read")
    assert (999, {"n": 99}) in edges


def test_unknown_layout_rejected():
    with pytest.raises(StorageError):
        GraphStore(LSMConfig(), edge_layout="diagonal")


def test_interleaved_checkpoint_roundtrip(multi_label_vertex, tmp_path):
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "interleaved")
    checkpoint_graph_store(store, tmp_path)
    restored = restore_graph_store(tmp_path)
    assert restored.edge_layout == "interleaved"
    original, _ = store.edges(v, "write")
    back, _ = restored.edges(v, "write")
    assert sorted(original) == sorted(back)


def test_engines_correct_on_interleaved_layout(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read", "write")
    assert_engines_match_oracle(graph, q, edge_layout="interleaved")
