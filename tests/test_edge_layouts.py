"""Tests for the interleaved/columnar edge layouts and their cost asymmetry."""

import json

import pytest

from repro.errors import StorageError, UnknownEdgeLayout
from repro.graph import GraphBuilder, hpc_metadata_schema
from repro.lang import GTravel
from repro.storage import GraphStore, LSMConfig
from repro.storage.persist import checkpoint_graph_store, restore_graph_store
from tests.conftest import assert_engines_match_oracle


@pytest.fixture()
def multi_label_vertex():
    b = GraphBuilder()
    v = b.vertex("T")
    targets = [b.vertex("T") for _ in range(12)]
    for i, t in enumerate(targets):
        b.edge(v, t, ("read", "write", "exe")[i % 3], n=i)
    return b.build(), v, targets


def load(graph, vids, layout):
    store = GraphStore(LSMConfig(), edge_layout=layout)
    store.load_partition(graph, vids)
    return store


def test_layouts_return_identical_edges(multi_label_vertex):
    graph, v, targets = multi_label_vertex
    grouped = load(graph, [v], "grouped")
    interleaved = load(graph, [v], "interleaved")
    columnar = load(graph, [v], "columnar")
    for label in ("read", "write", "exe"):
        ga, _ = grouped.edges(v, label)
        ia, _ = interleaved.edges(v, label)
        ca, _ = columnar.edges(v, label)
        assert sorted(ga) == sorted(ia) == sorted(ca)
    g_all, _ = grouped.all_edges(v)
    i_all, _ = interleaved.all_edges(v)
    c_all, _ = columnar.all_edges(v)
    assert sorted(g_all) == sorted(i_all) == sorted(c_all)


def test_interleaved_label_scan_costs_more(multi_label_vertex):
    """The §IV-B claim: label-selective scans are cheaper when same-label
    edges are contiguous."""
    graph, v, _ = multi_label_vertex
    grouped = load(graph, [v], "grouped")
    interleaved = load(graph, [v], "interleaved")
    _, g_cost = grouped.edges(v, "read")
    _, i_cost = interleaved.edges(v, "read")
    assert i_cost.bytes > g_cost.bytes  # whole block vs one label's run


def test_interleaved_label_prop_not_exposed(multi_label_vertex):
    graph, v, _ = multi_label_vertex
    interleaved = load(graph, [v], "interleaved")
    edges, _ = interleaved.edges(v, "read")
    for _, props in edges:
        assert "__label" not in props


def test_interleaved_live_insert(multi_label_vertex):
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "interleaved")
    store.insert_edge(v, 999, "read", {"n": 99})
    edges, _ = store.edges(v, "read")
    assert (999, {"n": 99}) in edges


def test_unknown_layout_rejected():
    with pytest.raises(StorageError):
        GraphStore(LSMConfig(), edge_layout="diagonal")


def test_interleaved_checkpoint_roundtrip(multi_label_vertex, tmp_path):
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "interleaved")
    checkpoint_graph_store(store, tmp_path)
    restored = restore_graph_store(tmp_path)
    assert restored.edge_layout == "interleaved"
    original, _ = store.edges(v, "write")
    back, _ = restored.edges(v, "write")
    assert sorted(original) == sorted(back)


def test_engines_correct_on_interleaved_layout(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read", "write")
    assert_engines_match_oracle(graph, q, edge_layout="interleaved")


# -- columnar layout ----------------------------------------------------------


def test_columnar_label_read_cheaper_than_interleaved(multi_label_vertex):
    """One delta-packed block per (vertex, label) beats scanning the whole
    interleaved run for a label-selective read."""
    graph, v, _ = multi_label_vertex
    columnar = load(graph, [v], "columnar")
    interleaved = load(graph, [v], "interleaved")
    _, c_cost = columnar.edges(v, "read")
    _, i_cost = interleaved.edges(v, "read")
    assert c_cost.bytes < i_cost.bytes


def test_columnar_live_insert(multi_label_vertex):
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "columnar")
    store.insert_edge(v, 999, "read", {"n": 99})
    edges, _ = store.edges(v, "read")
    assert (999, {"n": 99}) in edges


def test_columnar_bytes_per_edge_beats_entry_per_edge():
    """The compression claim behind ``storage.bytes_per_edge``: a columnar
    store's forward footprint is smaller than grouped entry-per-edge."""
    b = GraphBuilder()
    v = b.vertex("T")
    for t in [b.vertex("T") for _ in range(64)]:
        b.edge(v, t, "link")
    graph = b.build()
    grouped = load(graph, [v], "grouped")
    columnar = load(graph, [v], "columnar")
    g_snap = grouped.metrics_snapshot()
    c_snap = columnar.metrics_snapshot()
    assert g_snap["edge_count"] == c_snap["edge_count"] == 64
    assert c_snap["bytes_per_edge"] < g_snap["bytes_per_edge"]


def test_columnar_checkpoint_roundtrip(multi_label_vertex, tmp_path):
    """Persist v2 round-trip: the layout survives, every edge comes back,
    and the bytes/edge accounting is rebuilt from the restored runs."""
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "columnar")
    checkpoint_graph_store(store, tmp_path)
    restored = restore_graph_store(tmp_path)
    assert restored.edge_layout == "columnar"
    for label in ("read", "write", "exe"):
        original, _ = store.edges(v, label)
        back, _ = restored.edges(v, label)
        assert sorted(original) == sorted(back)
    assert restored.metrics_snapshot()["bytes_per_edge"] == pytest.approx(
        store.metrics_snapshot()["bytes_per_edge"]
    )


def test_restore_rejects_unknown_layout(multi_label_vertex, tmp_path):
    """Regression for the silent-fallback bug: a manifest naming a layout
    this build does not know must raise the typed error, not quietly come
    back as ``grouped``."""
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "columnar")
    checkpoint_graph_store(store, tmp_path)
    index = tmp_path / "vertex_index.json"
    payload = json.loads(index.read_text())
    payload["layout"] = "diagonal"
    index.write_text(json.dumps(payload))
    with pytest.raises(UnknownEdgeLayout) as err:
        restore_graph_store(tmp_path)
    assert err.value.name == "diagonal"
    assert "columnar" in err.value.choices


def test_restore_missing_layout_field_defaults_grouped(
    multi_label_vertex, tmp_path
):
    """Pre-layout checkpoints carry no ``layout`` field; they keep restoring
    as grouped (backward compatibility), distinct from unknown names."""
    graph, v, _ = multi_label_vertex
    store = load(graph, [v], "grouped")
    checkpoint_graph_store(store, tmp_path)
    index = tmp_path / "vertex_index.json"
    payload = json.loads(index.read_text())
    payload.pop("layout", None)
    index.write_text(json.dumps(payload))
    restored = restore_graph_store(tmp_path)
    assert restored.edge_layout == "grouped"
    back, _ = restored.edges(v, "read")
    original, _ = store.edges(v, "read")
    assert sorted(back) == sorted(original)


def test_unknown_layout_typed_error_at_construction():
    with pytest.raises(UnknownEdgeLayout) as err:
        GraphStore(LSMConfig(), edge_layout="diagonal")
    assert err.value.name == "diagonal"
    assert isinstance(err.value, StorageError)


def test_mixed_legacy_entries_readable_on_columnar_store(multi_label_vertex):
    """A columnar store holding legacy entry-per-edge records (absorbed from
    a grouped-era chunk) merges them into every read, alongside fresh
    columnar-era inserts."""
    graph, v, _ = multi_label_vertex
    grouped = load(graph, [v], "grouped")
    columnar = GraphStore(LSMConfig(), edge_layout="columnar")
    pairs, meta = grouped.export_vertices([v])
    columnar.import_vertices(pairs, meta)
    columnar.insert_edge(v, 7777, "read", {"n": 1})
    want, _ = grouped.edges(v, "read")
    got, _ = columnar.edges(v, "read")
    assert sorted(got) == sorted(want + [(7777, {"n": 1})])
    want_all, _ = grouped.all_edges(v)
    got_all, _ = columnar.all_edges(v)
    assert len(got_all) == len(want_all) + 1


def test_engines_correct_on_columnar_layout(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read", "write")
    assert_engines_match_oracle(graph, q, edge_layout="columnar")
