"""Tests for seeded RNG streams and the trace collector."""

from repro.sim import MetricSet, RngRegistry, Tracer, derive_seed
from repro.sim.rng import RngRegistry as _RR


def test_derive_seed_deterministic():
    assert derive_seed(42, "disk") == derive_seed(42, "disk")
    assert derive_seed(42, "disk") != derive_seed(42, "net")
    assert derive_seed(42, "disk") != derive_seed(43, "disk")


def test_streams_are_independent():
    reg = RngRegistry(7)
    a = reg.stream("a").random(8).tolist()
    reg2 = RngRegistry(7)
    _ = reg2.stream("b").random(100)  # consuming b must not affect a
    a2 = reg2.stream("a").random(8).tolist()
    assert a == a2


def test_stream_is_cached():
    reg = RngRegistry(1)
    assert reg.stream("x") is reg.stream("x")


def test_fork_changes_streams():
    reg = RngRegistry(1)
    child = reg.fork("run2")
    assert reg.stream("a").random() != child.stream("a").random()


def test_tracer_records_with_time():
    tracer = Tracer()
    clock = [0.0]
    tracer.bind_clock(lambda: clock[0])
    tracer.emit("visit", server=1)
    clock[0] = 2.5
    tracer.emit("visit", server=2)
    records = tracer.of("visit")
    assert [(r.time, r.fields["server"]) for r in records] == [(0.0, 1), (2.5, 2)]


def test_tracer_category_filtering():
    tracer = Tracer(enabled_categories={"keep"})
    tracer.emit("keep", x=1)
    tracer.emit("drop", x=2)
    assert len(tracer.records) == 1
    assert not tracer.wants("drop")


def test_tracer_disabled_records_nothing():
    tracer = Tracer(enabled_categories=set())
    tracer.emit("anything")
    assert tracer.records == []


def test_tracer_count_by_and_series():
    tracer = Tracer()
    for server in (1, 1, 2):
        tracer.emit("visit", server=server)
    assert tracer.count_by("visit", "server") == {1: 2, 2: 1}
    assert [v for _, v in tracer.series("visit", "server")] == [1, 1, 2]


def test_tracer_clear():
    tracer = Tracer()
    tracer.emit("a")
    tracer.clear()
    assert tracer.records == []


def test_metricset_add_get_total():
    m = MetricSet()
    m.add("io", label=0, n=3)
    m.add("io", label=1)
    assert m.get("io", 0) == 3
    assert m.total("io") == 4
    assert set(m.labels("io")) == {0, 1}


def test_metricset_merge():
    a, b = MetricSet(), MetricSet()
    a.add("x", "s1", 2)
    b.add("x", "s1", 3)
    b.add("y", "s2")
    a.merge(b)
    assert a.get("x", "s1") == 5
    assert a.get("y", "s2") == 1
    assert a.as_dict()["x"] == {"s1": 5}
