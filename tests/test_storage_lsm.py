"""Unit tests for the LSM store, memtable, SSTables, bloom filter, cache."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    BlockCache,
    BloomFilter,
    GPFS,
    IOCost,
    LSMConfig,
    LSMStore,
    Memtable,
    SSTable,
    TOMBSTONE,
    merge_runs,
)


# -- bloom -------------------------------------------------------------------

def test_bloom_no_false_negatives():
    bloom = BloomFilter(1000, 0.01)
    keys = [f"key-{i}".encode() for i in range(1000)]
    bloom.update(keys)
    assert all(k in bloom for k in keys)


def test_bloom_false_positive_rate_reasonable():
    bloom = BloomFilter(1000, 0.01)
    bloom.update(f"key-{i}".encode() for i in range(1000))
    fps = sum(f"other-{i}".encode() in bloom for i in range(10_000))
    assert fps / 10_000 < 0.05  # generous bound over the 1% target


def test_bloom_rejects_bad_fp_rate():
    with pytest.raises(ValueError):
        BloomFilter(10, 1.5)


def test_bloom_sizes_scale_with_items():
    small = BloomFilter(10)
    large = BloomFilter(10_000)
    assert large.size_bytes > small.size_bytes


# -- memtable -----------------------------------------------------------------

def test_memtable_put_get():
    mt = Memtable()
    mt.put(b"a", b"1")
    assert mt.get(b"a") == b"1"
    assert mt.get(b"b") is None


def test_memtable_delete_is_tombstone():
    mt = Memtable()
    mt.put(b"a", b"1")
    mt.delete(b"a")
    assert mt.get(b"a") is TOMBSTONE


def test_memtable_scan_sorted_range():
    mt = Memtable()
    for k in (b"c", b"a", b"b", b"e"):
        mt.put(k, k.upper())
    assert [k for k, _ in mt.scan(b"a", b"c")] == [b"a", b"b"]


def test_memtable_scan_cache_invalidated_on_write():
    mt = Memtable()
    mt.put(b"a", b"1")
    list(mt.scan(b"", b"z"))
    mt.put(b"b", b"2")
    assert [k for k, _ in mt.scan(b"", b"z")] == [b"a", b"b"]


def test_memtable_size_tracks_updates():
    mt = Memtable()
    mt.put(b"k", b"12345")
    size1 = mt.size_bytes
    mt.put(b"k", b"1")
    assert mt.size_bytes == size1 - 4


def test_memtable_clear():
    mt = Memtable()
    mt.put(b"a", b"1")
    mt.clear()
    assert len(mt) == 0 and mt.size_bytes == 0


# -- sstable ---------------------------------------------------------------------

def test_sstable_find_and_extent():
    table = SSTable([(b"a", b"1"), (b"b", b"22"), (b"c", b"333")])
    assert table.find(b"b") == 1
    assert table.find(b"zz") is None
    start, end = table.entry_extent(1)
    assert end - start == 1 + 2 + 16


def test_sstable_requires_strict_sorting():
    with pytest.raises(StorageError):
        SSTable([(b"b", b"1"), (b"a", b"2")])
    with pytest.raises(StorageError):
        SSTable([(b"a", b"1"), (b"a", b"2")])


def test_sstable_scan_range():
    table = SSTable([(bytes([i]), b"v") for i in range(10)])
    assert [k for k, _ in table.scan(bytes([3]), bytes([6]))] == [bytes([3]), bytes([4]), bytes([5])]


def test_sstable_may_contain_uses_key_range():
    table = SSTable([(b"m", b"1")])
    assert not table.may_contain(b"a")
    assert not table.may_contain(b"z")
    assert table.may_contain(b"m")


def test_sstable_overlaps():
    table = SSTable([(b"c", b"1"), (b"f", b"2")])
    assert table.overlaps(b"a", b"d")
    assert table.overlaps(b"f", b"g")
    assert not table.overlaps(b"g", b"z")
    assert not table.overlaps(b"a", b"c")  # end exclusive


def test_merge_runs_newest_wins():
    newest = [(b"a", b"new")]
    oldest = [(b"a", b"old"), (b"b", b"keep")]
    merged = merge_runs([newest, oldest], drop_tombstones=False)
    assert merged == [(b"a", b"new"), (b"b", b"keep")]


def test_merge_runs_drops_tombstones():
    runs = [[(b"a", TOMBSTONE)], [(b"a", b"old"), (b"b", b"v")]]
    merged = merge_runs(runs, drop_tombstones=True)
    assert merged == [(b"b", b"v")]


# -- LSM store ---------------------------------------------------------------------

def make_store(**kwargs) -> LSMStore:
    return LSMStore(LSMConfig(**kwargs))


def test_lsm_put_get_roundtrip():
    store = make_store()
    store.put(b"k", b"v")
    value, cost = store.get(b"k")
    assert value == b"v"
    assert cost.is_zero  # memtable hit is free


def test_lsm_get_after_flush_charges_io():
    store = make_store()
    store.put(b"k", b"v" * 100)
    store.flush()
    value, cost = store.get(b"k")
    assert value == b"v" * 100
    assert cost.seeks >= 1 and cost.blocks >= 1


def test_lsm_missing_key():
    store = make_store()
    assert store.get(b"nope")[0] is None


def test_lsm_delete_masks_flushed_value():
    store = make_store()
    store.put(b"k", b"v")
    store.flush()
    store.delete(b"k")
    assert store.get(b"k")[0] is None
    store.flush()
    assert store.get(b"k")[0] is None


def test_lsm_newest_table_wins():
    store = make_store()
    store.put(b"k", b"old")
    store.flush()
    store.put(b"k", b"new")
    store.flush()
    assert store.get(b"k")[0] == b"new"


def test_lsm_scan_merges_memtable_and_tables():
    store = make_store()
    store.put(b"a", b"1")
    store.flush()
    store.put(b"b", b"2")
    items, _ = store.scan(b"a", b"c")
    assert items == [(b"a", b"1"), (b"b", b"2")]


def test_lsm_scan_respects_tombstones():
    store = make_store()
    store.put(b"a", b"1")
    store.put(b"b", b"2")
    store.flush()
    store.delete(b"a")
    items, _ = store.scan(b"", b"z")
    assert items == [(b"b", b"2")]


def test_lsm_scan_prefix():
    store = make_store()
    store.put(b"x|1", b"a")
    store.put(b"x|2", b"b")
    store.put(b"y|1", b"c")
    items, _ = store.scan_prefix(b"x|")
    assert [k for k, _ in items] == [b"x|1", b"x|2"]


def test_lsm_auto_flush_on_threshold():
    store = make_store(memtable_flush_bytes=64)
    for i in range(20):
        store.put(f"key-{i}".encode(), b"x" * 16)
    assert store.stats.flushes >= 1
    assert store.table_count >= 1


def test_lsm_compaction_bounds_table_count():
    store = make_store(max_sstables=2)
    for i in range(6):
        store.put(f"k{i}".encode(), b"v")
        store.flush()
    assert store.table_count <= 2
    assert store.stats.compactions >= 1
    for i in range(6):
        assert store.get(f"k{i}".encode())[0] == b"v"


def test_lsm_compaction_drops_tombstones():
    store = make_store()
    store.put(b"a", b"1")
    store.flush()
    store.delete(b"a")
    store.flush()
    store.compact()
    assert len(store) == 0


def test_lsm_bulk_load_and_len():
    store = make_store()
    store.bulk_load([(f"k{i:03d}".encode(), b"v") for i in range(50)])
    assert len(store) == 50
    assert store.get(b"k025")[0] == b"v"


def test_lsm_bulk_load_type_check():
    store = make_store()
    with pytest.raises(StorageError):
        store.bulk_load([("str-key", b"v")])


def test_lsm_put_type_check():
    store = make_store()
    with pytest.raises(StorageError):
        store.put("k", b"v")


def test_lsm_scan_cost_counts_overlapping_tables():
    store = make_store()
    store.bulk_load([(b"a", b"1"), (b"c", b"3")])
    store.bulk_load([(b"b", b"2")])
    items, cost = store.scan(b"a", b"d")
    assert [k for k, _ in items] == [b"a", b"b", b"c"]
    assert cost.seeks >= 2  # both tables touched


def test_lsm_block_cache_reduces_cost():
    store = make_store(block_cache_blocks=64)
    store.put(b"k", b"v" * 50)
    store.flush()
    _, cold = store.get(b"k")
    _, warm = store.get(b"k")
    assert cold.blocks >= 1
    assert warm.blocks == 0 and warm.cache_hits >= 1
    assert GPFS.time(warm) < GPFS.time(cold)


def test_lsm_overwrite_visible_through_scan():
    store = make_store()
    store.put(b"k", b"old")
    store.flush()
    store.put(b"k", b"new")
    items, _ = store.scan(b"", b"z")
    assert items == [(b"k", b"new")]


# -- cost model / block cache ---------------------------------------------------------

def test_iocost_addition():
    total = IOCost(seeks=1, blocks=2) + IOCost(blocks=3, cache_hits=1)
    assert (total.seeks, total.blocks, total.cache_hits) == (1, 5, 1)


def test_iocost_time_monotonic_in_blocks():
    assert GPFS.time(IOCost(seeks=1, blocks=10)) > GPFS.time(IOCost(seeks=1, blocks=1))


def test_blocks_for_ceiling():
    assert GPFS.blocks_for(0) == 0
    assert GPFS.blocks_for(1) == 1
    assert GPFS.blocks_for(4096) == 1
    assert GPFS.blocks_for(4097) == 2


def test_block_cache_lru_eviction():
    cache = BlockCache(2)
    assert not cache.access(1, 0)
    assert not cache.access(1, 1)
    assert cache.access(1, 0)  # hit, refresh
    assert not cache.access(1, 2)  # evicts (1,1)
    assert not cache.access(1, 1)  # miss again
    assert cache.hits == 1


def test_block_cache_disabled():
    cache = BlockCache(0)
    assert not cache.access(1, 0)
    assert not cache.access(1, 0)
    assert cache.misses == 2


def test_block_cache_invalidate_table():
    cache = BlockCache(10)
    cache.access(1, 0)
    cache.access(2, 0)
    cache.invalidate_table(1)
    assert not cache.access(1, 0)
    assert cache.access(2, 0)


def test_block_cache_clear_keeps_stats():
    cache = BlockCache(10)
    cache.access(1, 0)
    cache.clear()
    assert cache.misses == 1
    assert not cache.access(1, 0)


# -- columnar blocks through the LSM lifecycle --------------------------------


def _columnar_store_with_edges(nedges=40):
    from repro.graph import GraphBuilder
    from repro.storage import GraphStore

    b = GraphBuilder()
    v = b.vertex("T")
    for t in [b.vertex("T") for _ in range(nedges)]:
        b.edge(v, t, "link")
    gstore = GraphStore(LSMConfig(memtable_flush_bytes=256), edge_layout="columnar")
    gstore.load_partition(b.build(), [v])
    return gstore, v


def test_columnar_blocks_survive_flush_and_compaction():
    """Delta-packed adjacency blocks are ordinary LSM values: flushing them
    to SSTables and compacting the runs must not disturb a single edge."""
    gstore, v = _columnar_store_with_edges()
    before, _ = gstore.edges(v, "link")
    gstore.kv.flush()
    gstore.kv.compact()
    after, _ = gstore.edges(v, "link")
    assert sorted(after) == sorted(before)
    assert len(gstore.kv.sstables) >= 1


def test_columnar_accounting_rebuild_after_flush():
    """rebuild_edge_accounting sees blocks in SSTables (not just the
    memtable) and reproduces the same bytes/edge gauge."""
    gstore, v = _columnar_store_with_edges()
    snap_live = gstore.metrics_snapshot()
    gstore.kv.flush()
    gstore.rebuild_edge_accounting()
    snap_rebuilt = gstore.metrics_snapshot()
    assert snap_rebuilt["edge_count"] == snap_live["edge_count"]
    assert snap_rebuilt["edge_bytes"] == snap_live["edge_bytes"]
    assert snap_rebuilt["bytes_per_edge"] == snap_live["bytes_per_edge"]


def test_corrupt_block_value_raises_typed_error():
    """A bit-flipped block value read back through the graph store raises
    the codec's typed error — never silently wrong adjacency."""
    from repro.errors import CorruptAdjacencyBlock
    from repro.storage import encoding as enc

    gstore, v = _columnar_store_with_edges(nedges=8)
    ns = gstore.namespace_of(v)
    key = enc.edge_block_key(ns, v, "link")
    value = bytearray(gstore.kv.get(key)[0])
    value[len(value) // 2] ^= 0x10
    gstore.kv.put(key, bytes(value))
    with pytest.raises(CorruptAdjacencyBlock):
        gstore.edges(v, "link")
