"""Tests for fine-grained failure recovery (the paper's future-work feature).

With ``fine_grained_recovery=True``, the coordinator replays lost executions
from their creators' replay buffers instead of restarting the whole
traversal; receiver-side deduplication makes replays idempotent. When replay
cannot help (orphan terminations), the watchdog falls back to a full restart.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, CoordinatorConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import GTravel
from repro.net.message import ExecStatus, ReplayExec, SuccessReport, TraverseRequest


def recovery_config(**kwargs):
    defaults = dict(
        exec_timeout=0.5,
        watch_interval=0.1,
        fine_grained_recovery=True,
        max_replay_rounds=2,
    )
    defaults.update(kwargs)
    return CoordinatorConfig(**defaults)


def build(graph, **cfg):
    return Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            coordinator_config=recovery_config(**cfg.pop("coordinator", {})),
            **cfg,
        ),
    )


def test_lost_forward_request_replayed_without_restart(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph)
    dropped = []

    def drop_first_forward(src, dst, msg):
        if (
            isinstance(msg, TraverseRequest)
            and msg.level > 0
            and not dropped
            and src != dst
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_first_forward
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped
    assert out.stats.restarts == 0, "fine-grained recovery must avoid a restart"
    assert out.stats.replays >= 1
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_lost_initial_dispatch_replayed_by_coordinator(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph)
    dropped = []

    def drop_first_initial(src, dst, msg):
        if isinstance(msg, TraverseRequest) and msg.level == 0 and not dropped:
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_first_initial
    plan = GTravel.v(*ids["users"]).e("run").compile()
    out = cluster.traverse(plan)
    assert dropped
    assert out.stats.restarts == 0
    assert out.stats.replays >= 1
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_lost_success_report_replayed(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph)
    dropped = []

    def drop_first_success(src, dst, msg):
        if isinstance(msg, SuccessReport) and not dropped:
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_first_success
    plan = GTravel.v(*ids["jobs"]).rtn().e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped
    assert out.stats.restarts == 0
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_lost_status_falls_back_to_restart(metadata_graph):
    """When a status report (with its creation registrations) is lost,
    replay cannot reconstruct the bookkeeping — full restart kicks in."""
    graph, ids = metadata_graph
    cluster = build(graph)
    dropped = []

    def drop_status_with_children(src, dst, msg):
        if (
            isinstance(msg, ExecStatus)
            and msg.attempt == 0
            and msg.created
            and not dropped
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_status_with_children
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped
    assert out.stats.restarts >= 1  # replay was not sufficient
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_persistent_loss_exhausts_replays_then_restarts(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph, coordinator={"max_restarts": 2})
    # every forward dispatch to server 1 is lost in attempt 0, including
    # replays; attempt 1 is clean
    def drop_attempt0_to_1(src, dst, msg):
        return (
            isinstance(msg, TraverseRequest)
            and dst == 1
            and msg.level > 0
            and msg.attempt == 0
        )

    cluster.runtime.drop_filter = drop_attempt0_to_1
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert out.stats.restarts >= 1
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_replay_unknown_exec_is_ignored(metadata_graph):
    """A bogus ReplayExec must not crash or corrupt an idle engine."""
    graph, _ = metadata_graph
    cluster = build(graph)
    engine = cluster.servers[0].engine
    engine.on_message(ReplayExec(999, exec_id=12345, attempt=0))
    cluster.runtime.sim.run()  # nothing to do; must stay quiet
    assert cluster.runtime.sim.orphan_failures == []


def test_recovery_disabled_by_default(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            coordinator_config=CoordinatorConfig(exec_timeout=0.5, watch_interval=0.1),
        ),
    )
    dropped = []

    def drop_one(src, dst, msg):
        if isinstance(msg, TraverseRequest) and msg.level > 0 and not dropped and msg.attempt == 0:
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_one
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert out.stats.restarts == 1  # paper-default behaviour: full restart
    assert out.stats.replays == 0
