"""Threaded-runtime fault parity (satellite: the ThreadRuntime previously had
no injection hook at all).

Same engines, same fault machinery, real OS threads. Timings — and therefore
the exact retry/drop counters — are wall-clock nondeterministic, so these
tests assert *result-set parity* with the fault-free simulated run, not
counter equality.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, CoordinatorConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.faults import FaultPlan, FaultSpec
from repro.ids import COORDINATOR
from repro.lang import GTravel
from repro.net.message import SyncBatch, TraverseRequest

#: generous virtual-time watchdog so slow CI machines never trigger restarts
RELAXED = CoordinatorConfig(exec_timeout=1e6, watch_interval=50.0)
#: watchdog tight enough (in scaled virtual seconds) to restart within a test
FAST = CoordinatorConfig(exec_timeout=3.0, watch_interval=0.5, max_restarts=3)


def build(graph, kind, runtime, **cfg):
    return Cluster.build(
        graph, ClusterConfig(nservers=3, engine=kind, runtime=runtime, **cfg)
    )


def run_and_shutdown(cluster, plan):
    try:
        return cluster.traverse(plan).result
    finally:
        cluster.shutdown()


def test_threaded_drop_filter_recovers_via_restart(metadata_graph):
    """Port of test_failure_and_restart's lost-dispatch scenario: the
    threaded runtime now honours drop_filter, and the watchdog restart
    converges to the oracle result."""
    graph, ids = metadata_graph
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    cluster = build(graph, EngineKind.GRAPHTREK, "threaded", coordinator_config=FAST)
    dropped = []

    def drop_first_forward(src, dst, msg):
        if (
            isinstance(msg, TraverseRequest)
            and msg.level > 0
            and msg.attempt == 0
            and not dropped
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_first_forward
    result = run_and_shutdown(cluster, plan)
    assert dropped, "test premise: a dispatch must have been dropped"
    assert result.same_vertices(ReferenceEngine(graph).run(plan))
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("net.dropped{reason=filter,type=TraverseRequest}") == 1


def test_threaded_sync_drop_recovers(metadata_graph):
    """Port of the sync lost-batch scenario to the threaded runtime."""
    graph, ids = metadata_graph
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    cluster = build(graph, EngineKind.SYNC, "threaded", coordinator_config=FAST)
    dropped = []

    def drop_one(src, dst, msg):
        if (
            isinstance(msg, SyncBatch)
            and msg.attempt == 0
            and not dropped
            and src != COORDINATOR
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_one
    result = run_and_shutdown(cluster, plan)
    assert dropped
    assert result.same_vertices(ReferenceEngine(graph).run(plan))


@pytest.mark.parametrize("kind", [EngineKind.GRAPHTREK, EngineKind.SYNC])
def test_runtime_fault_parity_per_seed(metadata_graph, kind):
    """Both runtimes under the same seeded fault plan converge to the same
    final result set (the plan's *decisions* differ per runtime because the
    message streams differ, but the delivered semantics must not)."""
    graph, ids = metadata_graph
    plan_q = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    fault_plan = FaultPlan(
        seed=13, default=FaultSpec(drop=0.03, duplicate=0.05, delay=0.1, reorder=0.1)
    )
    sim = build(
        graph, kind, "simulated",
        fault_plan=fault_plan, reliable=True,
        coordinator_config=CoordinatorConfig(
            exec_timeout=1.0, watch_interval=0.2, max_restarts=3,
            fine_grained_recovery=kind is not EngineKind.SYNC,
        ),
    )
    sim_result = run_and_shutdown(sim, plan_q)
    thr = build(
        graph, kind, "threaded",
        fault_plan=fault_plan, reliable=True, coordinator_config=FAST,
    )
    thr_result = run_and_shutdown(thr, plan_q)
    expected = ReferenceEngine(graph).run(plan_q)
    assert sim_result.same_vertices(expected)
    assert thr_result.same_vertices(expected)
    assert thr_result.same_vertices(sim_result)


def test_threaded_reliable_channel_metrics_flow(metadata_graph):
    """The channel's counters are wired on the threaded runtime too."""
    graph, ids = metadata_graph
    cluster = build(
        graph, EngineKind.GRAPHTREK, "threaded",
        reliable=True, coordinator_config=RELAXED,
    )
    plan = GTravel.v(ids["users"][0]).e("run").compile()
    result = run_and_shutdown(cluster, plan)
    assert result.same_vertices(ReferenceEngine(graph).run(plan))
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("net.acks", 0) > 0
    assert any(k.startswith("net.sends") for k in counters)
