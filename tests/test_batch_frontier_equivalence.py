"""Generative differential suite for columnar storage + batch execution.

This PR's proof obligation: the compressed columnar adjacency layout and the
batch-vectorized frontier are *representation* changes — they may change how
bytes are laid out and how frontiers move, never what a traversal returns.

Legs:

* the 10-seed × 3-engine × 3-planner × columnar-on/off × batch-on/off
  matrix on random graphs/queries, element-identical to the per-vertex
  reference oracle (itself cross-checked against its batched variant);
* determinism: re-running an identical (seed, config) pair reproduces the
  result AND a byte-identical metrics snapshot — the simulated runtime is a
  pure function of its inputs, columnar or not;
* a chaos leg: mid-traversal server crash with columnar storage on, results
  still identical to the fault-free baseline;
* a rebalance leg: migration chunks export/import columnar blocks
  losslessly (same edges, same bytes/edge accounting), and a live migration
  under the columnar layout changes no traversal's result.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.engine.options import options_for
from repro.engine.reference import ReferenceEngine
from repro.faults.chaos import chaos_check
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.rebalance import MigrationConfig
from repro.storage import GraphStore, LSMConfig

from tests.conftest import ALL_ENGINES

SEEDS = range(10)
PLANNERS = ("off", "rules", "cost")
LAYOUTS = ("grouped", "columnar")


def random_graph(rng: random.Random, nvertices: int = 24, nedges: int = 72):
    g = PropertyGraph()
    for vid in range(nvertices):
        g.add_vertex(vid, "node", {"x": vid % 5})
    for _ in range(nedges):
        src = rng.randrange(nvertices)
        dst = rng.randrange(nvertices)
        g.add_edge(src, dst, rng.choice(("link", "ref")), {"w": rng.randint(0, 3)})
    return g


def random_queries(rng: random.Random, nvertices: int, n: int = 3):
    queries = []
    for _ in range(n):
        q = GTravel.v(rng.randrange(nvertices))
        for _ in range(rng.randint(1, 3)):
            q = q.e(rng.choice(("link", "ref")))
        queries.append(q.compile())
    return queries


def normalize(returned: dict) -> dict:
    return {lv: frozenset(vids) for lv, vids in returned.items() if vids}


def build(graph, engine, planner, layout, batch):
    return Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            edge_layout=layout,
            engine=options_for(engine, planner=planner, batch_frontier=batch),
        ),
    )


# -- the differential matrix --------------------------------------------------


@pytest.mark.parametrize("planner", PLANNERS)
@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_matrix_element_identical(engine, planner):
    """10 seeds × columnar-on/off × batch-on/off, every result element-
    identical to the per-vertex oracle (and the oracle to its batched
    self)."""
    for seed in SEEDS:
        rng = random.Random(seed)
        graph = random_graph(rng)
        queries = random_queries(rng, 24)
        oracle = ReferenceEngine(graph)
        oracle_batched = ReferenceEngine(graph, batch_frontier=True)
        for qi, plan in enumerate(queries):
            expect = normalize(oracle.run(plan).returned)
            assert expect == normalize(oracle_batched.run(plan).returned), (
                f"seed {seed} q{qi}: batched oracle diverged"
            )
            for layout in LAYOUTS:
                for batch in (False, True):
                    cluster = build(graph, engine, planner, layout, batch)
                    got = normalize(cluster.traverse(plan).result.returned)
                    assert got == expect, (
                        f"seed {seed} q{qi} layout={layout} batch={batch}: "
                        f"{got} != {expect}"
                    )


def test_aggregates_and_short_circuit_batched():
    """Batch expansion must honor aggregate group keys and the planner's
    final-step short-circuit, across layouts."""
    rng = random.Random(99)
    graph = random_graph(rng)
    plans = [
        GTravel.v(1).e("link").count().compile(),
        GTravel.v(1).e("link").e("ref").group_count("type").compile(),
        GTravel.v(2).e("ref").group_count("x").compile(),
    ]
    for plan in plans:
        expect = ReferenceEngine(graph).run(plan).aggregate
        for layout in LAYOUTS:
            for planner in PLANNERS:
                cluster = build(
                    graph, EngineKind.GRAPHTREK, planner, layout, True
                )
                got = cluster.traverse(plan).result.aggregate
                assert got == expect, (layout, planner, got, expect)


def test_intermediate_rtn_keeps_per_vertex_path():
    """Plans with intermediate rtn() are batch-ineligible; turning the flag
    on must not disturb their anchor semantics."""
    for seed in (0, 3, 7):
        rng = random.Random(seed)
        graph = random_graph(rng)
        plan = GTravel.v(rng.randrange(24)).e("link").rtn().e("ref").compile()
        expect = normalize(ReferenceEngine(graph).run(plan).returned)
        for engine in ALL_ENGINES:
            for layout in LAYOUTS:
                cluster = build(graph, engine, "off", layout, True)
                got = normalize(cluster.traverse(plan).result.returned)
                assert got == expect, (seed, engine, layout)


# -- determinism: byte-identical snapshots across reruns ----------------------


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("batch", (False, True), ids=("pervertex", "batched"))
def test_rerun_metrics_byte_identical(layout, batch):
    """Same (seed, config) twice → same results and a byte-identical
    metrics snapshot; columnar decode counters included."""
    rng = random.Random(5)
    graph = random_graph(rng)
    plan = random_queries(rng, 24, n=1)[0]

    def one_run():
        cluster = build(graph, EngineKind.GRAPHTREK, "cost", layout, batch)
        result = normalize(cluster.traverse(plan).result.returned)
        snapshot = repr(sorted(cluster.metrics_snapshot()["counters"].items()))
        storage = repr([s.store.metrics_snapshot() for s in cluster.servers])
        return result, snapshot, storage

    first, second = one_run(), one_run()
    assert first[0] == second[0]
    assert first[1] == second[1], "metric counters differ across reruns"
    assert first[2] == second[2], "storage snapshots differ across reruns"


def test_columnar_decode_counters_move():
    """Sanity: the columnar path actually decodes blocks (the counters the
    explain/profile layer attributes per step)."""
    rng = random.Random(11)
    graph = random_graph(rng)
    plan = random_queries(rng, 24, n=1)[0]
    cluster = build(graph, EngineKind.GRAPHTREK, "off", "columnar", True)
    cluster.traverse(plan)
    decoded = sum(s.store.decoded_blocks for s in cluster.servers)
    assert decoded > 0
    snap = cluster.servers[0].store.metrics_snapshot()
    assert "bytes_per_edge" in snap


# -- chaos leg: crash mid-traversal with columnar on ---------------------------


@pytest.mark.parametrize("batch", (False, True), ids=("pervertex", "batched"))
def test_chaos_crash_columnar(batch):
    """A server crash mid-traversal under the columnar layout: the restart
    must reproduce the fault-free result (or fail cleanly), exactly as the
    grouped layout's chaos suite guarantees."""
    rng = random.Random(21)
    graph = random_graph(rng)
    plan = GTravel.v(3).e("link").e("ref").e("link").compile()
    engine = options_for(EngineKind.GRAPHTREK, batch_frontier=batch)
    ok = 0
    for seed in range(4):
        outcome = chaos_check(
            graph,
            plan,
            seed=seed,
            engine=engine,
            crash=True,
            edge_layout="columnar",
        )
        assert outcome.matched or outcome.failed_cleanly, (
            f"seed {seed}: diverged under faults: {outcome.error}"
        )
        ok += outcome.matched
    assert ok >= 2, "crash chaos never completed successfully"


# -- rebalance leg: columnar blocks migrate losslessly -------------------------


def test_migration_chunks_roundtrip_columnar_blocks():
    """export_vertices → import_vertices between columnar stores moves the
    raw blocks losslessly: same adjacency, same bytes/edge accounting."""
    rng = random.Random(31)
    graph = random_graph(rng)
    src = GraphStore(LSMConfig(), edge_layout="columnar")
    src.load_partition(graph, list(range(24)))
    dst = GraphStore(LSMConfig(), edge_layout="columnar")
    vids = list(range(12))
    pairs, meta = src.export_vertices(vids)
    assert dst.import_vertices(pairs, meta) == len(vids)
    for vid in vids:
        for label in ("link", "ref"):
            want, _ = src.edges(vid, label)
            got, _ = dst.edges(vid, label)
            assert sorted(got, key=repr) == sorted(want, key=repr), (vid, label)
    src_snap = src.metrics_snapshot()
    dst_snap = dst.metrics_snapshot()
    moved_edges = sum(
        len(src.edges(v, l)[0]) for v in vids for l in ("link", "ref")
    )
    assert dst_snap["edge_count"] == moved_edges
    # the imported representation is the same bytes, so the gauge agrees
    # with re-encoding from scratch
    fresh = GraphStore(LSMConfig(), edge_layout="columnar")
    fresh.load_partition(graph, vids)
    assert dst_snap["edge_bytes"] == fresh.metrics_snapshot()["edge_bytes"]
    assert src_snap["edge_count"] >= moved_edges


def test_cross_layout_import_reads_merge():
    """A columnar store absorbing a grouped store's chunk keeps every edge
    readable (legacy merge path), and a grouped store absorbs columnar-era
    blocks' vertices' legacy records symmetrically."""
    rng = random.Random(41)
    graph = random_graph(rng)
    grouped = GraphStore(LSMConfig(), edge_layout="grouped")
    grouped.load_partition(graph, list(range(24)))
    columnar = GraphStore(LSMConfig(), edge_layout="columnar")
    pairs, meta = grouped.export_vertices(list(range(24)))
    columnar.import_vertices(pairs, meta)
    for vid in range(24):
        for label in ("link", "ref"):
            want, _ = grouped.edges(vid, label)
            got, _ = columnar.edges(vid, label)
            assert sorted(got, key=repr) == sorted(want, key=repr), (vid, label)
        want_all, _ = grouped.all_edges(vid)
        got_all, _ = columnar.all_edges(vid)
        assert sorted(got_all, key=repr) == sorted(want_all, key=repr), vid


@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_live_migration_columnar_identical(engine):
    """A migration racing a traversal under the columnar layout moves data,
    never answers (the PR-9 guarantee, extended to the new layout)."""
    rng = random.Random(51)
    graph = random_graph(rng)
    plan = GTravel.v(1).e("link").e("ref").compile()
    expect = normalize(ReferenceEngine(graph).run(plan).returned)
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            edge_layout="columnar",
            engine=options_for(engine, batch_frontier=True),
            migration=MigrationConfig(chunk_vertices=4, dual_window=0.02),
            journal=True,
        ),
    )
    _, travel_event = cluster.submit(plan)
    vids = tuple(sorted(cluster.servers[1].store.local_vertices())[:8])
    _, mig_event = cluster.rebalance(1, 2, vids=vids, wait=False)
    outcome = cluster.runtime.run_until_complete(travel_event)
    state = cluster.runtime.run_until_complete(mig_event)
    assert normalize(outcome.result.returned) == expect
    assert state.phase in ("done", "aborted")
    if state.phase == "done":
        for vid in vids:
            assert cluster.servers[2].store.has_vertex(vid)
    # post-migration reads on the target still serve every migrated block
    again = cluster.traverse(plan)
    assert normalize(again.result.returned) == expect
