"""Differential planner-equivalence suite.

The planner is only allowed to make traversals cheaper, never different:
for every (graph, chain) pair the returned per-level vertex sets must be
element-identical under ``planner=off``, ``rules``, and ``cost``, on all
three distributed engines, and must match the single-node oracle run on
the *original* (unrewritten) plan. Chains cover rtn() placement (none /
final / intermediate), multi-label steps, EQ/IN/RANGE filters on both
vertices and edges, seeded sources and full scans (the scans are what the
cost mode may reverse). A final leg re-checks the cost planner under a
sampled fault plan and a mid-traversal crash.
"""

import random

from repro.cluster import Cluster, ClusterConfig
from repro.engine import (
    ReferenceEngine,
    graphtrek_options,
    plain_async_options,
    sync_options,
)
from repro.faults.chaos import chaos_check
from repro.graph import PropertyGraph
from repro.lang import EQ, IN, RANGE, GTravel
from repro.lang.filters import FilterSet, PropertyFilter
from repro.lang.plan import Step, TraversalPlan

MODES = ("off", "rules", "cost")
ENGINES = (sync_options, plain_async_options, graphtrek_options)
LABELS = ("a", "b")
TYPES = ("U", "F")
SEEDS = range(12)


def seeded_graph(rng: random.Random) -> PropertyGraph:
    """Small typed graph: U and F vertices, 'a'/'b' edges with a weight."""
    n = rng.randint(10, 26)
    g = PropertyGraph()
    for vid in range(n):
        vtype = TYPES[vid % 2]
        g.add_vertex(vid, vtype, {"color": rng.randrange(3), "size": rng.randrange(8)})
    for _ in range(rng.randint(n, 3 * n)):
        g.add_edge(
            rng.randrange(n),
            rng.randrange(n),
            rng.choice(LABELS),
            {"w": rng.randrange(4), "ts": rng.random()},
        )
    return g


def _random_filterset(rng: random.Random, keys: tuple[str, ...]) -> FilterSet:
    filters = []
    for key in keys:
        roll = rng.random()
        if roll < 0.55:
            continue
        if roll < 0.75:
            filters.append(PropertyFilter(key, EQ, rng.randrange(3)))
        elif roll < 0.9:
            filters.append(PropertyFilter(key, IN, (0, rng.randrange(1, 4))))
        else:
            lo = rng.randrange(3)
            filters.append(PropertyFilter(key, RANGE, (lo, lo + rng.randrange(1, 5))))
    return FilterSet.of(filters)


def seeded_plan(rng: random.Random, graph: PropertyGraph) -> TraversalPlan:
    n = graph.num_vertices
    if rng.random() < 0.5:
        source_ids = tuple(sorted(rng.sample(range(n), rng.randint(1, 3))))
        source_filters = _random_filterset(rng, ("color",))
    else:
        # scan source pinned to one type: the shape the cost mode may reverse
        source_ids = None
        source_filters = FilterSet.of(
            [PropertyFilter("type", EQ, rng.choice(TYPES))]
        )
        if rng.random() < 0.5:
            source_filters = source_filters.add(
                PropertyFilter("color", IN, (0, 1))
            )
    n_steps = rng.randint(0, 4)
    steps = []
    for _ in range(n_steps):
        n_labels = 1 if rng.random() < 0.7 else 2
        labels = tuple(sorted(rng.sample(LABELS, n_labels)))
        steps.append(
            Step(
                labels,
                _random_filterset(rng, ("w",)),
                _random_filterset(rng, ("color", "size")),
            )
        )
    # rtn placement: none extra (final only), intermediate, or several
    rtn_levels = {n_steps}
    if n_steps and rng.random() < 0.4:
        rtn_levels.add(rng.randrange(n_steps + 1))
    return TraversalPlan(
        source_ids=source_ids,
        source_filters=source_filters,
        steps=tuple(steps),
        rtn_levels=frozenset(rtn_levels),
    )


def test_planner_modes_and_engines_are_element_identical():
    rewrites_seen: set[str] = set()
    for seed in SEEDS:
        rng = random.Random(seed)
        graph = seeded_graph(rng)
        plan = seeded_plan(rng, graph)
        ref = ReferenceEngine(graph).run(plan)
        for mode in MODES:
            for preset in ENGINES:
                opts = preset(planner=mode)
                cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=opts))
                if cluster.coordinator.planner is not None:
                    rewrites_seen.update(
                        r.name for r in cluster.coordinator.planner.plan(plan).rewrites
                    )
                outcome = cluster.traverse(plan)
                assert outcome.result.same_vertices(ref), (
                    f"seed {seed} planner={mode} engine={opts.kind.value}: "
                    f"{outcome.result.returned} != {ref.returned} "
                    f"for {plan.describe()}"
                )
    # the sweep must actually exercise the rewrite rules, not just identity plans
    assert "short_circuit_final" in rewrites_seen
    assert "fuse_filters" in rewrites_seen or "pushdown_filters" in rewrites_seen


def bipartite_scan_case():
    """A graph + scan chain the cost planner provably reverses: a few E
    vertices fan out over 'r' edges into a large F set, and the chain's
    selective filters all sit at the far (F) end."""
    g = PropertyGraph()
    rng = random.Random(7)
    for vid in range(180):
        g.add_vertex(vid, "E", {"ts": vid / 180.0})
    for vid in range(180, 216):
        g.add_vertex(vid, "F", {"kind": rng.choice(("text", "bin")), "tag": vid % 5})
    for src in range(180):
        g.add_edge(src, rng.randrange(180, 216), "r", {"sz": rng.randrange(10)})
    q = (
        GTravel.v()
        .va("type", EQ, "E")
        .va("ts", RANGE, (0.0, 0.5))
        .e("r")
        .va("kind", EQ, "text")
        .va("tag", IN, (0, 1))
        .rtn()
    )
    return g, q


def test_cost_mode_reversal_preserves_results():
    g, q = bipartite_scan_case()
    plan = q.compile()
    ref = ReferenceEngine(g).run(plan)
    opts = graphtrek_options(planner="cost")
    cluster = Cluster.build(g, ClusterConfig(nservers=3, engine=opts))
    planned = cluster.coordinator.planner.plan(plan)
    assert any(r.name == "reverse_chain" for r in planned.rewrites), (
        "the motivating scan must actually be reversed"
    )
    outcome = cluster.traverse(plan)
    assert outcome.result.same_vertices(ref)
    # the outcome reports levels of the ORIGINAL plan, executed plan attached
    assert outcome.plan == plan
    assert outcome.executed_plan is not None
    assert outcome.executed_plan != plan


def test_cost_mode_survives_fault_injection():
    g, q = bipartite_scan_case()
    for seed, crash in ((3, False), (5, True)):
        outcome = chaos_check(
            g, q, seed=seed, engine=graphtrek_options(planner="cost"), crash=crash
        )
        assert outcome.ok, (
            f"seed {seed} crash={crash}: {outcome.error or outcome.faulty}"
        )
        assert outcome.matched or crash, (
            f"seed {seed}: drop/duplicate faults alone must not lose results"
        )


def test_rules_mode_survives_fault_injection_on_random_chain():
    rng = random.Random(41)
    graph = seeded_graph(rng)
    plan = seeded_plan(rng, graph)
    outcome = chaos_check(
        graph, plan, seed=11, engine=graphtrek_options(planner="rules")
    )
    assert outcome.ok, outcome.error
