"""Tests for checkpoint/restore of the LSM store and graph store."""

import pytest

from repro.errors import StorageError
from repro.graph import GraphBuilder, hpc_metadata_schema
from repro.storage import GraphStore, LSMConfig, LSMStore
from repro.storage.memtable import TOMBSTONE
from repro.storage.persist import (
    checkpoint_graph_store,
    checkpoint_store,
    restore_graph_store,
    restore_store,
)


def test_lsm_checkpoint_roundtrip(tmp_path):
    store = LSMStore(LSMConfig())
    for i in range(100):
        store.put(f"key-{i:03d}".encode(), f"value-{i}".encode())
    store.flush()
    store.put(b"in-memtable", b"flushed-by-checkpoint")
    checkpoint_store(store, tmp_path / "ckpt")
    restored = restore_store(tmp_path / "ckpt")
    assert restored.get(b"key-042")[0] == b"value-42"
    assert restored.get(b"in-memtable")[0] == b"flushed-by-checkpoint"
    assert len(restored) == len(store)


def test_checkpoint_preserves_tombstones(tmp_path):
    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    store.flush()
    store.delete(b"a")
    checkpoint_store(store, tmp_path)
    restored = restore_store(tmp_path)
    assert restored.get(b"a")[0] is None
    # the tombstone itself is in the newest restored table
    assert any(TOMBSTONE in t.values for t in restored.sstables)


def test_checkpoint_preserves_table_order(tmp_path):
    """Newest-first ordering decides which version of a key wins."""
    store = LSMStore(LSMConfig())
    store.put(b"k", b"old")
    store.flush()
    store.put(b"k", b"new")
    store.flush()
    checkpoint_store(store, tmp_path)
    restored = restore_store(tmp_path)
    assert restored.get(b"k")[0] == b"new"


def test_checkpoint_binary_safe(tmp_path):
    store = LSMStore(LSMConfig())
    weird = bytes(range(256))
    store.put(b"\x00\xff\x01", weird)
    checkpoint_store(store, tmp_path)
    assert restore_store(tmp_path).get(b"\x00\xff\x01")[0] == weird


def test_restore_missing_manifest(tmp_path):
    with pytest.raises(StorageError, match="manifest"):
        restore_store(tmp_path)


def test_restore_rejects_bad_version(tmp_path):
    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    checkpoint_store(store, tmp_path)
    manifest = tmp_path / "MANIFEST"
    manifest.write_text(manifest.read_text().replace('"version": 2', '"version": 99'))
    with pytest.raises(StorageError, match="version"):
        restore_store(tmp_path)


def test_restore_detects_sstable_bit_flip(tmp_path):
    """A single flipped bit in a table body trips the CRC32 footer."""
    from repro.errors import CorruptCheckpoint

    store = LSMStore(LSMConfig())
    store.put(b"key-one", b"a-reasonably-long-payload")
    checkpoint_store(store, tmp_path)
    sst = tmp_path / "000000.sst"
    raw = bytearray(sst.read_bytes())
    raw[12] ^= 0x01  # flip one bit inside the body
    sst.write_bytes(bytes(raw))
    with pytest.raises(CorruptCheckpoint, match="crc mismatch"):
        restore_store(tmp_path)


def test_restore_detects_manifest_tampering(tmp_path):
    """Editing any integrity-bearing manifest field without re-deriving the
    manifest checksum is detected before any table is read."""
    import json

    from repro.errors import CorruptCheckpoint

    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    checkpoint_store(store, tmp_path)
    manifest_path = tmp_path / "MANIFEST"
    manifest = json.loads(manifest_path.read_text())
    manifest["entries"] = [999]
    manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(CorruptCheckpoint, match="checksum"):
        restore_store(tmp_path)


def test_restore_rejects_unparseable_manifest(tmp_path):
    from repro.errors import CorruptCheckpoint

    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    checkpoint_store(store, tmp_path)
    (tmp_path / "MANIFEST").write_text("{not json")
    with pytest.raises(CorruptCheckpoint, match="unreadable"):
        restore_store(tmp_path)


def test_restore_detects_missing_table_file(tmp_path):
    from repro.errors import CorruptCheckpoint

    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    checkpoint_store(store, tmp_path)
    (tmp_path / "000000.sst").unlink()
    with pytest.raises(CorruptCheckpoint, match="missing"):
        restore_store(tmp_path)


def test_framed_record_primitives_roundtrip():
    """The [len][crc][payload] framing shared with the traversal journal."""
    from repro.errors import CorruptCheckpoint
    from repro.storage.persist import iter_records, pack_record

    payloads = [b"", b"x", bytes(range(256)) * 3]
    data = b"".join(pack_record(p) for p in payloads)
    assert list(iter_records(data)) == payloads
    with pytest.raises(CorruptCheckpoint, match="torn"):
        list(iter_records(data[:-1]))
    corrupt = bytearray(data)
    corrupt[-1] ^= 0xFF
    with pytest.raises(CorruptCheckpoint, match="crc"):
        list(iter_records(bytes(corrupt)))


def test_restore_detects_truncated_table(tmp_path):
    store = LSMStore(LSMConfig())
    store.put(b"abcdef", b"payload-payload")
    checkpoint_store(store, tmp_path)
    sst = tmp_path / "000000.sst"
    sst.write_bytes(sst.read_bytes()[:-4])
    with pytest.raises(StorageError, match="truncated"):
        restore_store(tmp_path)


def test_checkpoint_overwrites_previous(tmp_path):
    store = LSMStore(LSMConfig())
    store.put(b"v", b"1")
    checkpoint_store(store, tmp_path)
    store.put(b"v", b"2")
    checkpoint_store(store, tmp_path)
    assert restore_store(tmp_path).get(b"v")[0] == b"2"


def test_graph_store_checkpoint_roundtrip(tmp_path):
    b = GraphBuilder(schema=hpc_metadata_schema())
    u = b.vertex("User", name="sam")
    j = b.vertex("Job", jobid=1, ts=5.0)
    b.edge(u, j, "run", ts=5.0)
    graph = b.build()
    gstore = GraphStore(LSMConfig())
    gstore.load_partition(graph, [u, j])
    gstore.insert_vertex(99, "File", {"name": "/x"})

    checkpoint_graph_store(gstore, tmp_path)
    restored = restore_graph_store(tmp_path)

    assert restored.vertex_count() == 3
    assert restored.namespace_of(u) == "User"
    props, _ = restored.vertex_props(u)
    assert props["name"] == "sam"
    edges, _ = restored.edges(u, "run")
    assert edges == [(j, {"ts": 5.0})]
    assert restored.local_vertices_of_type("File") == [99]


def test_graph_store_restore_requires_index(tmp_path):
    store = LSMStore(LSMConfig())
    store.put(b"a", b"1")
    checkpoint_store(store, tmp_path)  # KV only, no vertex index
    with pytest.raises(StorageError, match="vertex index"):
        restore_graph_store(tmp_path)


def test_restored_server_serves_traversals(tmp_path):
    """End to end: kill a server's store, restore from checkpoint, traverse."""
    from repro.cluster import Cluster, ClusterConfig
    from repro.engine import EngineKind, ReferenceEngine
    from repro.lang import GTravel

    b = GraphBuilder(schema=hpc_metadata_schema())
    u = b.vertex("User", name="sam")
    jobs = [b.vertex("Job", jobid=i, ts=float(i)) for i in range(6)]
    for j in jobs:
        b.edge(u, j, "run", ts=1.0)
    graph = b.build()
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))

    victim = cluster.servers[1]
    checkpoint_graph_store(victim.store, tmp_path)
    victim.store = None  # "server failure"
    restored = restore_graph_store(tmp_path)
    victim.store = restored
    victim.engine.store = restored

    plan = GTravel.v(u).e("run").compile()
    out = cluster.traverse(plan)
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))
