"""Consistency of traversals running concurrently with live ingest.

The paper's system "must support live updates (to ingest production
information in real time)" alongside traversals. With additive updates
(vertices/edges only appear), a traversal racing with ingest must return a
result bounded by the two snapshots:

    oracle(pre-state)  ⊆  result  ⊆  oracle(post-state)
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.graph import GraphBuilder, hpc_metadata_schema
from repro.lang import GTravel


def build_base():
    b = GraphBuilder(schema=hpc_metadata_schema())
    user = b.vertex("User", name="u0")
    jobs = [b.vertex("Job", jobid=i, ts=float(i)) for i in range(4)]
    execs = []
    for j in jobs:
        b.edge(user, j, "run", ts=1.0)
        for r in range(3):
            e = b.vertex("Execution", model="A", ts=2.0)
            execs.append(e)
            b.edge(j, e, "hasExecutions")
    return b.build(), user, jobs, execs


@pytest.mark.parametrize("kind", [EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK])
def test_traversal_racing_live_ingest_is_snapshot_bounded(kind):
    graph, user, jobs, execs = build_base()
    plan = GTravel.v(user).e("run").e("hasExecutions").compile()
    pre = ReferenceEngine(graph).run(plan).vertices

    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=kind))
    sim = cluster.runtime.sim

    # post-state: extra jobs and executions ingested while the traversal runs
    new_jobs = [10_000 + i for i in range(3)]
    new_execs = [20_000 + i for i in range(3)]

    def ingest(i):
        cluster.ingest_vertex(new_jobs[i], "Job", {"jobid": 900 + i, "ts": 1.0})
        cluster.ingest_edge(user, new_jobs[i], "run", {"ts": 1.0})
        cluster.ingest_vertex(new_execs[i], "Execution", {"model": "A", "ts": 2.0})
        cluster.ingest_edge(new_jobs[i], new_execs[i], "hasExecutions", {})

    travel_id, event = cluster.submit(plan)
    # spread the ingests across the traversal's execution window
    for i, delay in enumerate((0.0005, 0.002, 0.008)):
        sim.schedule(delay, lambda i=i: ingest(i))
    cluster.runtime.run_until_complete(event)
    result = event.value.result.vertices

    # post-state oracle: rebuild the full graph including the ingested parts
    post_graph, *_ = build_base()
    for i in range(3):
        post_graph.add_vertex(new_jobs[i], "Job", {"jobid": 900 + i, "ts": 1.0})
        post_graph.add_edge(user, new_jobs[i], "run", {"ts": 1.0})
        post_graph.add_vertex(new_execs[i], "Execution", {"model": "A", "ts": 2.0})
        post_graph.add_edge(new_jobs[i], new_execs[i], "hasExecutions", {})
    post = ReferenceEngine(post_graph).run(plan).vertices

    assert pre <= result, "additive updates must never hide pre-existing results"
    assert result <= post, "nothing outside the post-state may appear"


def test_ingested_subgraph_fully_visible_to_later_traversal():
    graph, user, jobs, execs = build_base()
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    cluster.ingest_vertex(555, "Job", {"jobid": 555, "ts": 3.0})
    cluster.ingest_edge(user, 555, "run", {"ts": 3.0})
    cluster.ingest_vertex(556, "Execution", {"model": "B", "ts": 4.0})
    cluster.ingest_edge(555, 556, "hasExecutions", {})
    plan = GTravel.v(user).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert 556 in out.result.vertices
    assert set(execs) <= set(out.result.vertices)
