"""Gremlin-class traversal operators: repeat / union / back / aggregate.

The correctness contract is differential, like everything else in this repo:
every composite query must return exactly what the single-node oracle
returns — vertex sets *and* aggregates — on all three distributed engines
under every planner mode, including a seeded random sweep. On top: builder
validation, the edge cases (``times(0)`` identity, ``until`` depth cap,
degenerate unions, unbound ``back``, absent ``group_count`` properties),
chaos legs (crash mid-repeat, cancellation of a unioned traversal), and
EXPLAIN determinism with per-operator cost estimates.
"""

import json
import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import (
    EngineKind,
    ReferenceEngine,
    graphtrek_options,
    plain_async_options,
    sync_options,
)
from repro.errors import QueryError, RepeatDepthExceeded, TraversalCancelled
from repro.faults.chaos import chaos_check, chaos_check_many
from repro.graph import PropertyGraph
from repro.lang import EQ, RANGE, GTravel
from repro.lang.composite import CompositePlan
from repro.lang.plan import AggregateResult, TraversalPlan

from .conftest import ALL_ENGINES, build_cluster

MODES = ("off", "rules", "cost")
PRESETS = (sync_options, plain_async_options, graphtrek_options)
LABELS = ("a", "b")


def assert_all_match_oracle(graph, query, nservers=3):
    """Oracle equality (vertex sets + aggregate) on every engine × mode."""
    plan = query.compile() if isinstance(query, GTravel) else query
    ref = ReferenceEngine(graph).run(plan)
    for mode in MODES:
        for preset in PRESETS:
            opts = preset(planner=mode)
            cluster = Cluster.build(
                graph, ClusterConfig(nservers=nservers, engine=opts)
            )
            outcome = cluster.traverse(plan)
            assert outcome.result.same_result(ref), (
                f"{opts.kind.value} planner={mode}: "
                f"{outcome.result.returned} agg={outcome.result.aggregate} != "
                f"{ref.returned} agg={ref.aggregate} for {plan.describe()}"
            )
            assert not cluster.coordinator._composites, "leaked composite state"
    return ref


# -- builder validation -------------------------------------------------------


def test_sub_chains_cannot_compile_or_run():
    with pytest.raises(QueryError):
        GTravel.s().e("a").compile()


def test_repeat_requires_times_or_until():
    q = GTravel.v(1).repeat(GTravel.s().e("a"))
    with pytest.raises(QueryError):
        q.compile()


def test_times_requires_preceding_repeat():
    with pytest.raises(QueryError):
        GTravel.v(1).times(2)


def test_union_requires_at_least_one_branch():
    with pytest.raises(QueryError):
        GTravel.v(1).union()


def test_back_on_never_bound_label_is_an_error():
    with pytest.raises(QueryError, match="never bound"):
        GTravel.v(1).e("a").back("nope").compile()


def test_as_and_aggregates_rejected_inside_sub_chains():
    with pytest.raises(QueryError):
        GTravel.s().as_("x")
    with pytest.raises(QueryError):
        GTravel.s().e("a").count()


def test_linear_chains_still_compile_to_traversal_plans():
    assert isinstance(GTravel.v(1).e("a").compile(), TraversalPlan)
    assert isinstance(GTravel.v(1).e("a").count().compile(), TraversalPlan)
    assert isinstance(
        GTravel.v(1).repeat(GTravel.s().e("a")).times(2).compile(), CompositePlan
    )


# -- a small deterministic graph ----------------------------------------------


def ring_graph(n=6, colors=(0, 1, 2)) -> PropertyGraph:
    """A ring of 'a' edges with chords of 'b' edges; colors cycle."""
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": colors[vid % len(colors)]})
    for vid in range(n):
        g.add_edge(vid, (vid + 1) % n, "a", {"w": vid % 4})
        g.add_edge(vid, (vid + 2) % n, "b", {"w": (vid + 1) % 4})
    return g


# -- edge cases ---------------------------------------------------------------


def test_times_zero_is_identity():
    g = ring_graph()
    ref = assert_all_match_oracle(
        g, GTravel.v(0, 3).repeat(GTravel.s().e("a")).times(0)
    )
    (level,) = ref.returned.values()
    assert level == {0, 3}


def test_until_satisfied_stops_early():
    g = ring_graph()
    # from 0, 'a' ring: stops as soon as a color-0 vertex is in the frontier
    ref = assert_all_match_oracle(
        g, GTravel.v(1).repeat(GTravel.s().e("a")).until("color", EQ, 0)
    )
    (level,) = ref.returned.values()
    assert level == {3}


def test_until_never_satisfied_raises_typed_error_everywhere():
    g = ring_graph()
    q = GTravel.v(0).repeat(GTravel.s().e("a")).until(
        "color", EQ, 99, max_depth=3
    )
    plan = q.compile()
    with pytest.raises(RepeatDepthExceeded):
        ReferenceEngine(g).run(plan)
    for mode in MODES:
        for preset in PRESETS:
            cluster = Cluster.build(
                g, ClusterConfig(nservers=3, engine=preset(planner=mode))
            )
            with pytest.raises(RepeatDepthExceeded) as err:
                cluster.traverse(plan)
            assert err.value.max_depth == 3
            # a declared failure must not hang or leak coordinator state
            assert not cluster.coordinator._composites
            assert not cluster.coordinator._active


def test_union_of_one_branch_equals_that_branch():
    g = ring_graph()
    ref = assert_all_match_oracle(g, GTravel.v(0).union(GTravel.s().e("a")))
    plain = ReferenceEngine(g).run(GTravel.v(0).e("a").compile())
    assert ref.returned[1] == plain.returned[1]


def test_union_deduplicates_overlapping_branches():
    g = ring_graph()
    ref = assert_all_match_oracle(
        g,
        GTravel.v(0).union(
            GTravel.s().e("a"), GTravel.s().e("a"), GTravel.s().e("b")
        ),
    )
    assert ref.returned[1] == {1, 2}


def test_back_keeps_only_bound_vertices_with_a_path():
    g = ring_graph()
    ref = assert_all_match_oracle(
        g,
        GTravel.v(0, 1, 2).e("a").as_("mid").e("b").va("color", EQ, 0).back("mid"),
    )
    # survivors are the bound vertices whose 'b' successor has color 0
    assert set(ref.returned) == {3}  # single rtn at the back level


def test_group_count_on_absent_property_buckets_to_none():
    g = ring_graph()
    ref = assert_all_match_oracle(
        g, GTravel.v(0).e("a").e("a").group_count(by="no_such_prop")
    )
    assert ref.aggregate.groups == ((None, 1),)


def test_count_and_group_count_by_property():
    g = ring_graph()
    ref = assert_all_match_oracle(g, GTravel.v(0, 1).e("a").count())
    assert ref.aggregate.kind == "count" and ref.aggregate.total == 2
    ref = assert_all_match_oracle(
        g, GTravel.v(0, 1, 2).e("a").group_count(by="color")
    )
    assert ref.aggregate.total == 3
    assert sum(n for _, n in ref.aggregate.groups) == 3


def test_aggregate_equality_is_part_of_same_result():
    a = AggregateResult(kind="count", total=3, groups=())
    b = AggregateResult(kind="count", total=4, groups=())
    assert a != b


# -- seeded random differential sweep (10 seeds × 3 engines × 3 modes) --------


def random_sub(rng: random.Random, max_steps=2) -> GTravel:
    sub = GTravel.s()
    for _ in range(rng.randint(1, max_steps)):
        sub = sub.e(rng.choice(LABELS))
        if rng.random() < 0.3:
            sub = sub.va("color", EQ, rng.randrange(3))
    return sub


def random_composite_query(rng: random.Random, n: int) -> GTravel:
    """Seeded generator composing the new operator families."""
    q = GTravel.v(*sorted(rng.sample(range(n), rng.randint(1, 3))))
    if rng.random() < 0.5:
        q = q.e(rng.choice(LABELS))
    for _ in range(rng.randint(1, 2)):
        roll = rng.random()
        if roll < 0.3:
            q = q.repeat(random_sub(rng)).times(rng.randint(0, 3))
        elif roll < 0.45:
            q = q.repeat(random_sub(rng, max_steps=1)).until(
                "color", EQ, rng.randrange(3), max_depth=4
            )
        elif roll < 0.75:
            branches = [random_sub(rng) for _ in range(rng.randint(1, 3))]
            q = q.union(*branches)
        else:
            name = f"b{rng.randrange(10)}"
            q = q.as_(name)
            for _ in range(rng.randint(1, 2)):
                q = q.e(rng.choice(LABELS))
            if rng.random() < 0.4:
                q = q.va("color", EQ, rng.randrange(3))
            q = q.back(name)
    roll = rng.random()
    if roll < 0.25:
        q = q.count()
    elif roll < 0.5:
        q = q.group_count(by=rng.choice((None, "color", "no_such_prop")))
    return q


def seeded_random_graph(rng: random.Random) -> PropertyGraph:
    n = rng.randint(8, 16)
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": rng.randrange(3)})
    for _ in range(rng.randint(n, 3 * n)):
        g.add_edge(
            rng.randrange(n), rng.randrange(n), rng.choice(LABELS),
            {"w": rng.randrange(4)},
        )
    return g


@pytest.mark.parametrize("seed", range(10))
def test_random_composites_differentially_equal_oracle(seed):
    rng = random.Random(seed)
    graph = seeded_random_graph(rng)
    query = random_composite_query(rng, graph.num_vertices)
    plan = query.compile()
    try:
        ref = ReferenceEngine(graph).run(plan)
        expected_error = None
    except RepeatDepthExceeded as exc:
        ref, expected_error = None, exc
    for mode in MODES:
        for preset in PRESETS:
            opts = preset(planner=mode)
            cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=opts))
            if expected_error is None:
                outcome = cluster.traverse(plan)
                assert outcome.result.same_result(ref), (
                    f"seed {seed} {opts.kind.value} planner={mode}: "
                    f"{plan.describe()}"
                )
            else:
                with pytest.raises(RepeatDepthExceeded):
                    cluster.traverse(plan)
            assert not cluster.coordinator._composites, f"seed {seed} leaked"


# -- canonical ordering / byte-identical reruns -------------------------------


def test_composite_reruns_are_byte_identical():
    g = ring_graph(8)
    q = GTravel.v(0, 4).union(
        GTravel.s().e("a"), GTravel.s().e("b")
    ).group_count(by="color")
    plan = q.compile()
    payloads = []
    for _ in range(2):
        cluster = build_cluster(g, EngineKind.GRAPHTREK)
        outcome = cluster.traverse(plan)
        payloads.append(
            json.dumps(
                {
                    "returned": {
                        str(k): sorted(v)
                        for k, v in outcome.result.returned.items()
                    },
                    "aggregate": outcome.result.aggregate.as_dict(),
                    "groups": list(outcome.result.aggregate.groups),
                },
                sort_keys=True,
            )
        )
    assert payloads[0] == payloads[1]


# -- chaos / QoS --------------------------------------------------------------


def test_chaos_crash_mid_repeat_keeps_the_contract():
    g = ring_graph(10)
    q = GTravel.v(0).repeat(GTravel.s().e("a").e("b")).times(3)
    for seed, crash in ((1, True), (4, True), (7, False)):
        outcome = chaos_check(g, q, seed=seed, crash=crash, trace=crash)
        assert outcome.ok, (seed, outcome.error, outcome.net_counters)
        if crash and outcome.traces is not None:
            # every reconstructed DAG assembled cleanly (assemble_all raises
            # on orphans/cycles); composite parents contribute vacuous DAGs
            for dag in outcome.traces.values():
                assert dag.travel_id > 0


def test_chaos_union_aggregate_payload_is_fault_checked():
    g = ring_graph(10)
    q = GTravel.v(0, 5).union(
        GTravel.s().e("a"), GTravel.s().e("b")
    ).group_count(by="color")
    for seed in (0, 2):
        outcome = chaos_check(g, q, seed=seed, crash=seed == 2)
        assert outcome.ok, (seed, outcome.error)
        assert "aggregate" in outcome.baseline  # the payload carries it
        if outcome.matched:
            assert outcome.faulty["aggregate"] == outcome.baseline["aggregate"]


def test_chaos_many_cancels_unioned_traversal_cleanly():
    g = ring_graph(12)
    union_q = GTravel.v(0).union(
        GTravel.s().e("a").e("a"), GTravel.s().e("b").e("b")
    )
    plain_q = GTravel.v(3).e("a")
    outcome = chaos_check_many(
        g,
        [union_q, plain_q],
        seed=5,
        deadlines=[1e-6, None],  # the union is cancelled almost immediately
        crash=False,
    )
    assert outcome.ok, (outcome.leaked, [v.__dict__ for v in outcome.verdicts])
    assert outcome.verdicts[0].cancelled
    assert outcome.verdicts[1].ok


def test_direct_cancellation_of_composite_releases_all_state():
    g = ring_graph(12)
    q = GTravel.v(0).repeat(GTravel.s().e("a")).times(6)
    cluster = build_cluster(g, EngineKind.GRAPHTREK)
    travel_id, event = cluster.submit(q, deadline=1e-6)
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    assert not cluster.coordinator._composites
    assert not cluster.coordinator._active
    assert cluster.registry.get(travel_id) is None
    assert cluster.scheduler.inflight_count == 0


def test_composite_trace_dags_are_valid():
    g = ring_graph(8)
    q = GTravel.v(0).e("a").union(GTravel.s().e("a"), GTravel.s().e("b"))
    cluster = Cluster.build(
        g,
        ClusterConfig(
            nservers=3, engine=EngineKind.GRAPHTREK, trace_enabled=True
        ),
    )
    outcome = cluster.traverse(q)
    from repro.obs.trace import assemble_all

    dags = assemble_all(cluster.board.obs.trace)
    assert len(dags) >= 2  # the composite parent plus its children
    parent_id = outcome.result.travel_id
    assert any(d.travel_id == parent_id for d in dags)


# -- EXPLAIN ------------------------------------------------------------------


def explore_query():
    return (
        GTravel.v(0)
        .e("a")
        .as_("mid")
        .e("b")
        .back("mid")
        .repeat(GTravel.s().e("a"))
        .times(2)
        .union(GTravel.s().e("a"), GTravel.s().e("b"))
        .group_count(by="color")
    )


def test_explain_renders_composite_operators_and_costs():
    g = ring_graph(10)
    cluster = Cluster.build(
        g, ClusterConfig(nservers=3, engine=graphtrek_options(planner="cost"))
    )
    doc = cluster.explain(explore_query())
    assert doc["type"] == "composite"
    kinds = [op["op"] for op in doc["ops"]]
    assert "repeat" in kinds and "union" in kinds and "back" in kinds
    assert doc["aggregate"] == {"kind": "group_count", "by": "color"}
    assert doc["planner"] == "cost"
    est = doc["estimate"]
    assert est is not None and est["total"] > 0
    assert all("cost" in op for op in est["ops"])


def test_explain_is_deterministic_and_runs_no_traversal():
    g = ring_graph(10)
    docs = []
    for _ in range(2):
        cluster = Cluster.build(
            g,
            ClusterConfig(nservers=3, engine=graphtrek_options(planner="cost")),
        )
        docs.append(json.dumps(cluster.explain(explore_query()), sort_keys=True))
        assert cluster.metrics_snapshot().get("counters", {}).get(
            "coord.submitted"
        ) in (None, 0)
    assert docs[0] == docs[1]


def test_explain_off_mode_has_no_estimate():
    g = ring_graph(6)
    cluster = Cluster.build(
        g, ClusterConfig(nservers=2, engine=graphtrek_options(planner="off"))
    )
    doc = cluster.explain(GTravel.v(0).union(GTravel.s().e("a")))
    assert doc["type"] == "composite"
    assert doc.get("estimate") is None


def test_profile_rejects_composites_with_a_clear_error():
    from repro.errors import UnsupportedProfileTarget

    g = ring_graph(6)
    cluster = build_cluster(g, EngineKind.GRAPHTREK)
    with pytest.raises(UnsupportedProfileTarget, match="composite") as exc:
        cluster.profile(GTravel.v(0).union(GTravel.s().e("a")))
    assert exc.value.kind == "composite"
    assert "explain()" in exc.value.hint


# -- threaded runtime parity --------------------------------------------------


def test_threaded_runtime_runs_composites():
    g = ring_graph(6)
    q = GTravel.v(0).union(
        GTravel.s().e("a"), GTravel.s().e("b")
    ).group_count()
    plan = q.compile()
    ref = ReferenceEngine(g).run(plan)
    cluster = Cluster.build(
        g,
        ClusterConfig(
            nservers=2, engine=EngineKind.GRAPHTREK, runtime="threaded"
        ),
    )
    try:
        outcome = cluster.traverse(plan)
        assert outcome.result.same_result(ref)
    finally:
        cluster.shutdown()
