"""Cancellation correctness: deadline-cancelled traversals terminate cleanly
(no live executions, no leaked coordinator/registry state) and never corrupt
co-running traversals — including under mixed cancel + crash chaos."""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.engine.options import options_for
from repro.errors import TraversalCancelled
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.sched import SchedulerConfig

from tests.conftest import ALL_ENGINES


def chain_graph(n: int = 60) -> PropertyGraph:
    g = PropertyGraph()
    for i in range(n):
        g.add_vertex(i, "node", {})
    for i in range(n - 1):
        g.add_edge(i, i + 1, "link", {})
    return g


def kstep(src: int, steps: int) -> GTravel:
    q = GTravel.v(src)
    for _ in range(steps):
        q = q.e("link")
    return q


def assert_no_leaks(cluster, travel_id):
    assert cluster.registry.get(travel_id) is None
    assert travel_id not in cluster.coordinator._active
    assert cluster.scheduler.inflight_count == 0
    assert cluster.scheduler.queue_depth == 0
    assert not cluster.coordinator.inflight_by_server()


@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_deadline_cancels_running_traversal(engine: EngineKind):
    cluster = Cluster.build(
        chain_graph(), ClusterConfig(nservers=3, engine=engine)
    )
    travel_id, event = cluster.submit(kstep(0, 12), deadline=1e-6)
    with pytest.raises(TraversalCancelled) as err:
        cluster.runtime.run_until_complete(event)
    assert err.value.travel_id == travel_id
    assert err.value.reason == "deadline exceeded"
    assert_no_leaks(cluster, travel_id)
    # the cluster is still fully functional afterwards
    outcome = cluster.traverse(kstep(0, 2), cold=False)
    assert sorted(outcome.result.vertices) == [2]


def test_deadline_cancels_queued_traversal():
    cluster = Cluster.build(
        chain_graph(),
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            scheduler_config=SchedulerConfig(max_inflight=1),
        ),
    )
    _, scan_ev = cluster.submit(kstep(0, 12))
    queued_id, queued_ev = cluster.submit(kstep(1, 2), deadline=1e-6)
    assert cluster.scheduler.queue_depth == 1
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(queued_ev)
    cluster.runtime.run_until_complete(scan_ev)  # the scan is unaffected
    assert_no_leaks(cluster, queued_id)


def test_explicit_cancel_api():
    cluster = Cluster.build(
        chain_graph(), ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK)
    )
    travel_id, event = cluster.submit(kstep(0, 12))
    assert cluster.cancel(travel_id, reason="operator abort")
    with pytest.raises(TraversalCancelled) as err:
        cluster.runtime.run_until_complete(event)
    assert "operator abort" in str(err.value)
    assert not cluster.cancel(travel_id)  # second cancel is a no-op
    assert_no_leaks(cluster, travel_id)


def test_completed_traversal_ignores_deadline():
    """A deadline longer than the traversal must never fire."""
    cluster = Cluster.build(
        chain_graph(), ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK)
    )
    _, event = cluster.submit(kstep(0, 2), deadline=30.0)
    outcome = cluster.runtime.run_until_complete(event)
    assert sorted(outcome.result.vertices) == [2]


@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_cancellation_never_corrupts_co_runners(engine: EngineKind):
    """Cancel one of several concurrent traversals mid-run; the survivors
    must return exactly the serial oracle's results."""
    graph = chain_graph()
    survivors = [kstep(i, 3).compile() for i in (0, 10, 20)]
    victim = kstep(0, 12).compile()
    ref = ReferenceEngine(graph)
    expected = [ref.run(plan).vertices for plan in survivors]

    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=engine))
    victim_id, victim_ev = cluster.submit(victim, tenant="batch", deadline=1e-6)
    survivor_subs = [
        cluster.submit(plan, tenant="interactive") for plan in survivors
    ]
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(victim_ev)
    for (tid, event), want in zip(survivor_subs, expected):
        outcome = cluster.runtime.run_until_complete(event)
        assert outcome.result.vertices == want
    assert_no_leaks(cluster, victim_id)


def test_cancelled_travel_metrics_and_trace():
    cluster = Cluster.build(
        chain_graph(),
        ClusterConfig(
            nservers=3, engine=EngineKind.GRAPHTREK, trace_enabled=True
        ),
    )
    travel_id, event = cluster.submit(kstep(0, 12), deadline=1e-6)
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    snap = cluster.metrics_snapshot()
    assert snap["counters"]["coord.cancelled"] == 1
    assert snap["counters"]["sched.cancelled{tenant=default,where=running}"] == 1
    kinds = [ev.kind for ev in cluster.board.obs.trace.events_for(travel_id)]
    assert "sched.cancel" in kinds
    assert "travel.cancelled" in kinds
    dag = cluster.trace_dag(travel_id)
    assert dag.status == "cancelled"


def test_chaos_mixed_cancel_and_crash():
    """chaos_check_many drives cancel + crash schedules concurrently: every
    non-cancelled query matches its oracle or fails cleanly, deadline
    queries may cancel, and nothing leaks."""
    from repro.faults.chaos import chaos_check_many

    graph = chain_graph()
    queries = [kstep(0, 10), kstep(5, 2), kstep(15, 2), kstep(25, 3)]
    saw_cancel = False
    for seed in range(6):
        outcome = chaos_check_many(
            graph,
            queries,
            seed=seed,
            scheduler="wfq",
            scheduler_config=SchedulerConfig(
                max_inflight=2,
                tenant_weights={"interactive": 3.0, "batch": 1.0},
            ),
            tenants=["batch", "interactive", "interactive", "interactive"],
            # most schedules give the scan a deadline tight enough to fire
            # mid-run; every other schedule also crashes a server
            deadlines=[1e-6 if seed % 3 != 2 else None, None, None, None],
            crash=seed % 2 == 1,
        )
        assert outcome.ok, (
            f"seed={seed}: leaked={outcome.leaked} verdicts="
            f"{[(v.index, v.matched, v.cancelled, v.error) for v in outcome.verdicts]}"
        )
        saw_cancel |= any(v.cancelled for v in outcome.verdicts)
    assert saw_cancel, "no schedule ever cancelled — the mix is vacuous"


def test_threaded_runtime_deadline_cancellation():
    """Wall-clock deadlines fire on the threaded runtime too."""
    cluster = Cluster.build(
        chain_graph(),
        ClusterConfig(
            nservers=3, engine=EngineKind.GRAPHTREK, runtime="threaded"
        ),
    )
    try:
        travel_id, event = cluster.submit(kstep(0, 20), deadline=1e-6)
        with pytest.raises(TraversalCancelled):
            cluster.runtime.run_until_complete(event)
        outcome = cluster.traverse(kstep(0, 2), cold=False)
        assert sorted(outcome.result.vertices) == [2]
    finally:
        cluster.shutdown()
