"""Unit tests for the admission scheduler (repro.sched): policies, admission
control, quotas, and backpressure."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine.options import graphtrek_options
from repro.errors import AdmissionRejected, SimulationError
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.sched import (
    POLICY_NAMES,
    FifoPolicy,
    PriorityPolicy,
    QueuedTravel,
    SchedulerConfig,
    WfqPolicy,
    make_policy,
)


def chain_graph(n: int = 40) -> PropertyGraph:
    g = PropertyGraph()
    for i in range(n):
        g.add_vertex(i, "node", {})
    for i in range(n - 1):
        g.add_edge(i, i + 1, "link", {})
    return g


def kstep(src: int, steps: int) -> GTravel:
    q = GTravel.v(src)
    for _ in range(steps):
        q = q.e("link")
    return q


def build(policy: str = "fifo", sched: SchedulerConfig = None, **cfg) -> Cluster:
    return Cluster.build(
        chain_graph(),
        ClusterConfig(
            nservers=3,
            engine=graphtrek_options(scheduler=policy),
            scheduler_config=sched,
            **cfg,
        ),
    )


def entry(seq: int, steps: int, tenant: str = "default", priority=None) -> QueuedTravel:
    return QueuedTravel(
        travel_id=seq,
        plan=kstep(0, steps).compile(),
        tenant=tenant,
        priority=priority,
        client_event=None,
        admit_time=0.0,
        seq=seq,
    )


# -- policy keys --------------------------------------------------------------


def test_fifo_keys_follow_submission_order():
    policy = FifoPolicy()
    keys = [policy.key(entry(seq, steps=8 - seq)) for seq in range(4)]
    assert keys == sorted(keys)


def test_priority_defaults_to_step_count():
    policy = PriorityPolicy()
    long_first = policy.key(entry(0, steps=8))
    short_later = policy.key(entry(1, steps=2))
    assert short_later < long_first


def test_priority_explicit_class_beats_step_count():
    policy = PriorityPolicy()
    urgent_scan = policy.key(entry(0, steps=8, priority=0))
    lookup = policy.key(entry(1, steps=1))
    assert urgent_scan < lookup


def test_wfq_cheaper_traversal_gets_earlier_finish_tag():
    policy = WfqPolicy()
    scan = policy.key(entry(0, steps=8, tenant="batch"))
    small = policy.key(entry(1, steps=1, tenant="interactive"))
    assert small < scan


def test_wfq_weight_divides_cost():
    policy = WfqPolicy({"heavy": 4.0})
    light = policy.key(entry(0, steps=7, tenant="light"))  # cost 8 / 1
    heavy = policy.key(entry(1, steps=7, tenant="heavy"))  # cost 8 / 4
    assert heavy < light


def test_wfq_same_tenant_accumulates_finish_tags():
    policy = WfqPolicy()
    first = policy.key(entry(0, steps=1, tenant="t"))
    second = policy.key(entry(1, steps=1, tenant="t"))
    assert first < second


def test_wfq_rejects_non_positive_weight():
    policy = WfqPolicy({"bad": 0.0})
    with pytest.raises(SimulationError):
        policy.key(entry(0, steps=1, tenant="bad"))


def test_make_policy_names():
    for name in POLICY_NAMES:
        assert make_policy(name).name == name
    with pytest.raises(SimulationError):
        make_policy("round-robin")


# -- admission control ---------------------------------------------------------


def test_transparent_default_launches_synchronously():
    cluster = build()
    travel_id, event = cluster.submit(kstep(0, 2))
    assert cluster.scheduler.queue_depth == 0  # launched, not queued
    outcome = cluster.runtime.run_until_complete(event)
    assert sorted(outcome.result.vertices) == [2]


def test_admission_rejected_when_pending_full():
    cluster = build(sched=SchedulerConfig(max_inflight=1, max_pending=2))
    events = [cluster.submit(kstep(i, 2))[1] for i in range(3)]  # 1 runs, 2 queue
    with pytest.raises(AdmissionRejected) as err:
        cluster.submit(kstep(3, 2), tenant="spiky")
    assert err.value.tenant == "spiky"
    snap = cluster.metrics_snapshot()
    assert snap["counters"]["sched.rejected{tenant=spiky}"] == 1
    for event in events:  # the admitted ones still complete
        cluster.runtime.run_until_complete(event)


def test_rejected_submission_leaves_no_state():
    cluster = build(sched=SchedulerConfig(max_inflight=1, max_pending=1))
    ids = [cluster.submit(kstep(i, 2))[0] for i in range(2)]
    with pytest.raises(AdmissionRejected):
        cluster.submit(kstep(2, 2))
    assert cluster.scheduler.queue_depth == 1
    # no travel id was burned: the next admitted submission is contiguous
    next_id = cluster.coordinator.allocate_travel_id()
    assert next_id == max(ids) + 1


def test_max_inflight_limits_concurrency():
    cluster = build(sched=SchedulerConfig(max_inflight=2))
    events = [cluster.submit(kstep(i, 3))[1] for i in range(5)]
    assert cluster.scheduler.inflight_count == 2
    assert cluster.scheduler.queue_depth == 3
    for event in events:
        cluster.runtime.run_until_complete(event)
    assert cluster.scheduler.inflight_count == 0
    assert cluster.scheduler.queue_depth == 0


def test_launch_order_respects_policy():
    """Under priority scheduling a short traversal queued behind long ones
    launches first once a slot frees."""
    cluster = build("priority", sched=SchedulerConfig(max_inflight=1))
    cluster.enable_tracing()
    submissions = [
        cluster.submit(kstep(0, 6)),  # launches immediately
        cluster.submit(kstep(1, 6)),  # queued
        cluster.submit(kstep(2, 1)),  # queued, but shortest: launches next
    ]
    for _, event in submissions:
        cluster.runtime.run_until_complete(event)
    launches = [
        ev.travel_id
        for ev in cluster.board.obs.trace.events()
        if ev.kind == "sched.launch"
    ]
    assert launches[0] == submissions[0][0]
    assert launches[1] == submissions[2][0]  # the short one jumped the queue


# -- quotas & backpressure -----------------------------------------------------


def test_token_bucket_throttles_tenant():
    cluster = build(
        "fifo",
        sched=SchedulerConfig(quota_capacity=2.0, quota_refill_rate=50.0),
    )
    events = [cluster.submit(kstep(i, 1), tenant="t")[1] for i in range(4)]
    # bucket holds 2 tokens: two launch instantly, two wait for refill
    assert cluster.scheduler.inflight_count == 2
    assert cluster.scheduler.queue_depth == 2
    for event in events:
        outcome = cluster.runtime.run_until_complete(event)
        assert len(outcome.result.vertices) == 1
    assert cluster.scheduler.queue_depth == 0


def test_quota_only_throttles_the_exhausted_tenant():
    cluster = build(
        "fifo",
        sched=SchedulerConfig(quota_capacity=1.0, quota_refill_rate=50.0),
    )
    ev_a = cluster.submit(kstep(0, 1), tenant="a")[1]
    ev_a2 = cluster.submit(kstep(1, 1), tenant="a")[1]  # a is out of tokens
    ev_b = cluster.submit(kstep(2, 1), tenant="b")[1]  # b is not
    assert cluster.scheduler.inflight_count == 2  # a's first + b
    assert cluster.scheduler.queue_depth == 1
    for event in (ev_a, ev_a2, ev_b):
        cluster.runtime.run_until_complete(event)


def test_tenant_tokens_introspection():
    cluster = build(sched=SchedulerConfig(quota_capacity=3.0))
    assert cluster.scheduler.tenant_tokens("t") == 3.0
    cluster.runtime.run_until_complete(cluster.submit(kstep(0, 1), tenant="t")[1])
    assert cluster.scheduler.tenant_tokens("t") < 3.0
    assert build().scheduler.tenant_tokens("t") is None  # quotas off


def test_per_server_backpressure_defers_launches():
    cluster = build(sched=SchedulerConfig(per_server_inflight=1))
    first_id, first_ev = cluster.submit(kstep(0, 4))
    second_id, second_ev = cluster.submit(kstep(5, 4))
    # the first traversal has outstanding executions, so the second waits
    assert cluster.scheduler.inflight_count == 1
    assert cluster.scheduler.queue_depth == 1
    cluster.runtime.run_until_complete(first_ev)
    outcome = cluster.runtime.run_until_complete(second_ev)
    assert sorted(outcome.result.vertices) == [9]


def test_wait_metrics_and_gauges():
    cluster = build(sched=SchedulerConfig(max_inflight=1))
    events = [cluster.submit(kstep(i, 2), tenant="t")[1] for i in range(3)]
    for event in events:
        cluster.runtime.run_until_complete(event)
    snap = cluster.metrics_snapshot()
    assert snap["counters"]["sched.submitted{tenant=t}"] == 3
    assert snap["counters"]["sched.launched{tenant=t}"] == 3
    hist = snap["histograms"]["sched.wait_seconds{tenant=t}"]
    assert hist["count"] == 3
    assert hist["max"] > 0.0  # somebody actually queued
    assert snap["gauges"]["sched.queue_depth"] == 0
    assert snap["gauges"]["sched.inflight"] == 0


def test_elapsed_includes_queue_wait():
    """stats.elapsed is measured from admission, so a queued traversal's
    latency covers its time in the queue — the bench's p99 metric."""
    solo_small = build().traverse(kstep(1, 2), cold=False).stats.elapsed
    solo_scan = build().traverse(kstep(0, 8), cold=False).stats.elapsed
    cluster = build(sched=SchedulerConfig(max_inflight=1))
    _, scan_ev = cluster.submit(kstep(0, 8))
    _, small_ev = cluster.submit(kstep(1, 2))
    cluster.runtime.run_until_complete(scan_ev)
    queued = cluster.runtime.run_until_complete(small_ev).stats.elapsed
    # the small query waited for the whole scan, so its latency exceeds the
    # scan's solo duration — far more than its own solo run
    assert queued > solo_scan > solo_small


def test_drain_queued():
    from repro.errors import TraversalCancelled

    cluster = build(sched=SchedulerConfig(max_inflight=1))
    events = [cluster.submit(kstep(i, 2))[1] for i in range(4)]
    assert cluster.scheduler.drain_queued() == 3
    assert cluster.scheduler.queue_depth == 0
    cluster.runtime.run_until_complete(events[0])  # the running one finishes
    for event in events[1:]:
        with pytest.raises(TraversalCancelled):
            cluster.runtime.run_until_complete(event)
