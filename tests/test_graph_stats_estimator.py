"""Per-server statistics and the selectivity estimator.

On hand-built graphs where the exact answer is countable, the estimator
must be exact for tracked values, deterministic byte-for-byte per seed,
robust on empty labels/properties (never a ZeroDivisionError), and
partition-mergeable: folding per-server summaries must agree with the
global summary wherever merging loses no information.
"""

import random

from repro.graph import GraphSummary, PropertyGraph
from repro.graph.stats import SKETCH_TRACK_CAP, LabelStats, PropertySketch
from repro.lang import EQ, IN, RANGE
from repro.lang.filters import FilterSet, PropertyFilter


def small_graph() -> PropertyGraph:
    g = PropertyGraph()
    for vid in range(8):
        g.add_vertex(vid, "U", {"color": vid % 2})          # 4 of each color
    for vid in range(8, 24):
        g.add_vertex(vid, "F", {"kind": "text" if vid % 4 == 0 else "bin"})
    for src in range(8):
        for k in range(2):
            g.add_edge(src, 8 + (src * 2 + k) % 16, "r", {"w": src % 4})
    return g


def _fs(*filters) -> FilterSet:
    return FilterSet.of(list(filters))


def test_vertex_selectivity_exact_on_tracked_values():
    summary = GraphSummary.from_graph(small_graph())
    # exact: 4 of 8 U vertices have color 0
    assert summary.vertex_selectivity("U", _fs(PropertyFilter("color", EQ, 0))) == 0.5
    # exact: 4 of 16 F vertices are text (vids 8, 12, 16, 20)
    sel = summary.vertex_selectivity("F", _fs(PropertyFilter("kind", EQ, "text")))
    assert sel == 4 / 16
    # IN unions tracked values; RANGE covers the whole span
    assert summary.vertex_selectivity("U", _fs(PropertyFilter("color", IN, (0, 1)))) == 1.0
    assert summary.vertex_selectivity("U", _fs(PropertyFilter("color", RANGE, (0, 1)))) == 1.0
    # conjunction multiplies (independence assumption), so it can only shrink
    both = summary.vertex_selectivity(
        "U", _fs(PropertyFilter("color", EQ, 0), PropertyFilter("color", RANGE, (0, 0)))
    )
    assert 0.0 < both <= 0.5


def test_edge_selectivity_exact_on_tracked_values():
    summary = GraphSummary.from_graph(small_graph())
    stats = summary.label_stats("r")
    assert stats.count == 16
    # w cycles 0..3 over src, 2 edges per src: 4 of 16 edges have w == 0
    assert stats.edge_selectivity(_fs(PropertyFilter("w", EQ, 0))) == 4 / 16
    assert stats.edge_selectivity(_fs(PropertyFilter("w", RANGE, (0, 1)))) == 0.5


def test_empty_labels_and_properties_are_zero_not_errors():
    summary = GraphSummary.from_graph(small_graph())
    assert summary.vertex_selectivity("NoSuchType", _fs(PropertyFilter("x", EQ, 1))) == 0.0
    assert summary.vertex_selectivity("U", _fs(PropertyFilter("nope", EQ, 1))) == 0.0
    assert summary.label_stats("ghost").count == 0
    assert summary.label_stats("ghost").edge_selectivity(
        _fs(PropertyFilter("w", EQ, 0))
    ) == 0.0
    empty = GraphSummary.from_graph(PropertyGraph())
    assert empty.total_vertices == 0
    assert empty.vertex_selectivity("U", _fs(PropertyFilter("c", EQ, 1))) == 0.0
    # an empty filter set is pass-all by definition, even on an empty summary
    assert empty.vertex_selectivity("U", FilterSet()) == 1.0
    # sketches over zero observations
    sk = PropertySketch.from_counter({}, 0)
    for fs_filter in (
        PropertyFilter("k", EQ, 1),
        PropertyFilter("k", IN, (1, 2)),
        PropertyFilter("k", RANGE, (0, 9)),
    ):
        assert sk.selectivity(fs_filter) == 0.0


def test_summary_is_byte_deterministic_per_seed():
    def build(seed: int) -> PropertyGraph:
        rng = random.Random(seed)
        g = PropertyGraph()
        for vid in range(40):
            g.add_vertex(vid, rng.choice(("U", "F")), {"c": rng.randrange(6)})
        for _ in range(120):
            g.add_edge(
                rng.randrange(40), rng.randrange(40), rng.choice(("a", "b")),
                {"w": rng.random()},
            )
        return g

    for seed in (0, 1, 9):
        one = GraphSummary.from_graph(build(seed)).to_json()
        two = GraphSummary.from_graph(build(seed)).to_json()
        assert one == two, f"seed {seed}"
    assert GraphSummary.from_graph(build(0)).to_json() != (
        GraphSummary.from_graph(build(1)).to_json()
    )


def test_merged_partitions_match_global_summary():
    g = small_graph()
    vids = sorted(g.vertex_ids())
    parts = [vids[0::3], vids[1::3], vids[2::3]]
    merged = GraphSummary.merged(
        [GraphSummary.from_graph(g, part) for part in parts]
    )
    whole = GraphSummary.from_graph(g)
    assert merged.type_counts == whole.type_counts
    assert merged.total_vertices == whole.total_vertices
    for label in ("r",):
        assert merged.label_stats(label).count == whole.label_stats(label).count
    fs = _fs(PropertyFilter("kind", EQ, "text"))
    assert merged.vertex_selectivity("F", fs) == whole.vertex_selectivity("F", fs)
    assert GraphSummary.merged([]).total_vertices == 0


def test_sketch_tail_beyond_track_cap():
    n = SKETCH_TRACK_CAP + 36
    sk = PropertySketch.from_counter({i: 1 for i in range(n)}, n)
    assert sk.population == n
    # an untracked value falls into the lumped tail: a small non-zero guess
    tail = sk.eq_selectivity(n - 1)
    assert 0.0 < tail < 1.0
    # the numeric span lets RANGE see the tail too
    assert sk.range_selectivity(0, n) == 1.0
    assert sk.range_selectivity(n + 1, n + 2) == 0.0
    # unhashable probes degrade gracefully instead of raising
    assert sk.eq_selectivity([1, 2]) >= 0.0


def test_reversed_view_transposes_endpoints():
    summary = GraphSummary.from_graph(small_graph())
    fwd = summary.label_stats("r")
    rev = summary.label_stats("~r")
    assert isinstance(rev, LabelStats)
    assert rev.count == fwd.count
    assert rev.src_type_counts == fwd.dst_type_counts
    assert rev.dst_type_counts == fwd.src_type_counts
    fs = _fs(PropertyFilter("w", EQ, 0))
    assert rev.edge_selectivity(fs) == fwd.edge_selectivity(fs)
