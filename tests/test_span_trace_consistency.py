"""Differential check between the two observability layers.

PR 1's span tracer and this PR's flight recorder observe the same traversal
through independent code paths: spans are opened/closed by the engines'
work loop, trace events by the lifecycle instrumentation. They must agree —
the number of ``unit`` spans under a traversal's span tree equals the DAG's
``processed_units`` (the count of ``exec.terminated(reason="ok")``
records). A divergence means one layer missed or double-counted work.
"""

from repro.cluster.coordinator import CoordinatorConfig
from repro.engine import EngineKind
from repro.faults.plan import sample_fault_plan
from repro.lang import GTravel
from repro.obs.trace import unit_span_count

from tests.conftest import ALL_ENGINES, build_cluster


def query_for(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read")


def run_traced(graph, query, kind, **cfg):
    cluster = build_cluster(graph, kind, trace_enabled=True, **cfg)
    outcome = cluster.traverse(query.compile())
    travel_id = outcome.result.travel_id
    dag = cluster.trace_dag(travel_id)
    return cluster, dag, travel_id


def test_unit_spans_match_processed_units_every_engine(metadata_graph):
    graph, ids = metadata_graph
    for kind in ALL_ENGINES:
        cluster, dag, travel_id = run_traced(graph, query_for(ids), kind)
        spans = cluster.board.obs.spans
        assert unit_span_count(spans, travel_id) == dag.processed_units, (
            f"{kind.value}: span tracer and flight recorder disagree on "
            f"processed work units"
        )
        assert dag.processed_units > 0, kind


def test_unit_spans_match_under_wire_faults(metadata_graph):
    """Retries, duplicate deliveries, and fine-grained replays must not
    desynchronize the two layers: a duplicate that is deduped produces
    neither a unit span nor an ok-termination; a replayed execution
    produces exactly one of each per actual processing."""
    graph, ids = metadata_graph
    plan = sample_fault_plan(7, nservers=3, max_drop=0.15, max_duplicate=0.15)
    cc = CoordinatorConfig(
        exec_timeout=1.0, watch_interval=0.25, fine_grained_recovery=True
    )
    for kind in (EngineKind.GRAPHTREK, EngineKind.ASYNC):
        cluster, dag, travel_id = run_traced(
            graph,
            query_for(ids),
            kind,
            fault_plan=plan,
            reliable=True,
            coordinator_config=cc,
        )
        spans = cluster.board.obs.spans
        assert unit_span_count(spans, travel_id) == dag.processed_units, (
            f"{kind.value}: layers diverged under faults"
        )


def test_processed_units_stable_across_identical_runs(metadata_graph):
    graph, ids = metadata_graph
    counts = []
    for _ in range(2):
        _, dag, _ = run_traced(graph, query_for(ids), EngineKind.GRAPHTREK)
        counts.append(dag.processed_units)
    assert counts[0] == counts[1]
