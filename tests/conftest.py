"""Shared fixtures and helpers for the distributed-engine tests."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.graph import GraphBuilder, PropertyGraph, hpc_metadata_schema

ALL_ENGINES = (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK)


def build_cluster(graph: PropertyGraph, kind: EngineKind, nservers: int = 3, **cfg):
    return Cluster.build(graph, ClusterConfig(nservers=nservers, engine=kind, **cfg))


def assert_engines_match_oracle(graph, query, nservers=3, engines=ALL_ENGINES, **cfg):
    """Differential check: every engine returns the oracle's vertex sets."""
    plan = query.compile() if hasattr(query, "compile") else query
    ref = ReferenceEngine(graph).run(plan)
    outcomes = {}
    for kind in engines:
        cluster = build_cluster(graph, kind, nservers, **cfg)
        outcome = cluster.traverse(plan)
        assert outcome.result.same_vertices(ref), (
            f"{kind.value} diverged from oracle: "
            f"{outcome.result.returned} != {ref.returned}"
        )
        outcomes[kind] = outcome
    return ref, outcomes


@pytest.fixture()
def metadata_graph():
    """A small, hand-built rich-metadata graph covering all paper labels."""
    b = GraphBuilder(schema=hpc_metadata_schema())
    users = [b.vertex("User", name=f"user{i}") for i in range(3)]
    jobs, execs, files = [], [], []
    for i in range(6):
        files.append(b.vertex("File", name=f"f{i}", kind="text" if i % 2 else "binary",
                              annotation="B" if i < 3 else "raw"))
    for u_idx, user in enumerate(users):
        for j in range(2):
            job = b.vertex("Job", jobid=len(jobs), ts=float(100 * len(jobs)))
            jobs.append(job)
            b.edge(user, job, "run", ts=float(100 * (len(jobs) - 1)))
            for e in range(2):
                ex = b.vertex("Execution", model="A" if (u_idx + e) % 2 == 0 else "B",
                              ts=float(100 * len(jobs) + e))
                execs.append(ex)
                b.edge(job, ex, "hasExecutions")
                fin = files[(u_idx * 2 + e) % len(files)]
                fout = files[(u_idx * 2 + e + 3) % len(files)]
                b.edge(ex, fin, "read", ts=1.0)
                b.edge(fin, ex, "readBy")
                b.edge(ex, fout, "write", ts=2.0)
    graph = b.build()
    return graph, {"users": users, "jobs": jobs, "execs": execs, "files": files}
