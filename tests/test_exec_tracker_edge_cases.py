"""ExecTracker edge cases and execution-count accounting (paper §IV-C).

The tracker must stay exact under message reordering (a child's termination
outracing its creation report), under fine-grained replay (duplicate
termination reports for one logical execution), and across stale attempts.
The per-traversal ``executions`` statistic counts *fresh* terminations only —
the coordinator double-counting replayed executions was a real bug these
tests pin down.
"""

from __future__ import annotations

from repro.cluster import Cluster, ClusterConfig, CoordinatorConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.engine.tracing import ExecTracker
from repro.lang import GTravel
from repro.net.message import ExecStatus, TraverseRequest


def status(eid, created=(), results=0, attempt=0, server=0):
    return ExecStatus(
        travel_id=1, exec_id=eid, server=server,
        created=tuple(created), results_sent=results, attempt=attempt,
    )


class TestReordering:
    def test_child_termination_before_parent_creation_report(self):
        tracker = ExecTracker()
        tracker.register_initial([(1, 0, 0)], now=0.0)
        # child 2's termination arrives first: parked as early-terminated
        assert tracker.on_status(status(2), now=1.0) is True
        assert not tracker.complete
        assert 2 in tracker.early_terminated
        # parent 1 terminates and registers child 2's creation: reconciled
        assert tracker.on_status(status(1, created=[(2, 1, 1)]), now=2.0) is True
        assert tracker.complete
        assert tracker.created_total == 2
        assert tracker.terminated_total == 2
        assert not tracker.early_terminated and not tracker.pending

    def test_creation_report_of_already_terminated_child_not_recounted(self):
        tracker = ExecTracker()
        tracker.register_initial([(1, 0, 0), (3, 1, 0)], now=0.0)
        assert tracker.on_status(status(1, created=[(2, 1, 1)]), now=1.0) is True
        assert tracker.on_status(status(2), now=2.0) is True
        # a replayed parent repeats the creation of (already terminated) 2
        assert tracker.on_status(status(1, created=[(2, 1, 1)]), now=3.0) is False
        assert tracker.created_total == 3  # 1, 3, and 2 — each exactly once
        assert tracker.terminated_total == 2


class TestDuplicateTerminations:
    def test_duplicate_after_replay_returns_false(self):
        tracker = ExecTracker()
        tracker.register_initial([(1, 0, 0)], now=0.0)
        assert tracker.on_status(status(1), now=1.0) is True
        # the replayed execution reports termination a second time
        assert tracker.on_status(status(1), now=2.0) is False
        assert tracker.terminated_total == 1
        assert tracker.complete

    def test_duplicate_does_not_reregister_children_or_results(self):
        tracker = ExecTracker()
        tracker.register_initial([(1, 0, 0)], now=0.0)
        tracker.on_status(status(1, created=[(2, 1, 1)], results=1), now=1.0)
        before = tracker.snapshot()
        assert tracker.on_status(
            status(1, created=[(2, 1, 1)], results=1), now=2.0
        ) is False
        assert tracker.snapshot() == before, (
            "a duplicate report must not change any accounting"
        )

    def test_duplicate_of_early_terminated_exec_returns_false(self):
        tracker = ExecTracker()
        tracker.register_initial([(1, 0, 0)], now=0.0)
        assert tracker.on_status(status(2), now=1.0) is True  # early
        assert tracker.on_status(status(2), now=2.0) is False  # replayed dup
        tracker.on_status(status(1, created=[(2, 1, 1)]), now=3.0)
        # the duplicate must not have left a second early-termination behind
        assert tracker.complete
        assert tracker.terminated_total == 2

    def test_stale_attempt_ignored(self):
        tracker = ExecTracker(attempt=1)
        tracker.register_initial([(5, 0, 0)], now=10.0)
        assert tracker.on_status(status(5, attempt=0), now=11.0) is False
        assert tracker.last_activity == 10.0  # stale reports are not activity
        assert 5 in tracker.pending


# -- integration: restart/replay counters and the executions statistic --------


def _fast_watchdog(**kwargs):
    return CoordinatorConfig(exec_timeout=0.5, watch_interval=0.1, **kwargs)


def _drop_first_forward():
    dropped = []

    def flt(src, dst, msg):
        if (
            isinstance(msg, TraverseRequest)
            and msg.level > 0
            and msg.attempt == 0
            and src != dst
            and not dropped
        ):
            dropped.append(msg)
            return True
        return False

    return flt, dropped


def test_timeout_triggered_restart_counters(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK,
                      coordinator_config=_fast_watchdog()),
    )
    flt, dropped = _drop_first_forward()
    cluster.runtime.drop_filter = flt
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped and out.stats.restarts == 1
    metrics = cluster.obs.metrics
    assert metrics.counter_value("coord.timeouts") >= 1
    assert metrics.counter_value("coord.restarts") == 1
    travel_spans = cluster.obs.spans.spans_of_kind("travel")
    assert travel_spans and travel_spans[0].attrs["restarts"] == 1
    assert travel_spans[0].attrs["status"] == "ok"


def test_replayed_executions_not_double_counted(metadata_graph):
    """The executions statistic of a run recovered via replay must match a
    failure-free run: one logical execution, however many times its status
    is (re)reported, counts once."""
    graph, ids = metadata_graph
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()

    clean = Cluster.build(
        graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK)
    )
    clean_out = clean.traverse(plan)

    recovered = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            coordinator_config=_fast_watchdog(
                fine_grained_recovery=True, max_replay_rounds=2
            ),
        ),
    )
    flt, dropped = _drop_first_forward()
    recovered.runtime.drop_filter = flt
    out = recovered.traverse(plan)
    assert dropped
    assert out.stats.restarts == 0 and out.stats.replays >= 1
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))
    assert out.result.same_vertices(clean_out.result)
    assert out.stats.executions == clean_out.stats.executions, (
        "replay inflated the executions statistic"
    )
    assert recovered.obs.metrics.counter_value("coord.replays") >= 1


def test_sync_executions_counted_per_barrier_step(metadata_graph):
    """Sync accounting is engine-side: one execution per (server, step)."""
    graph, ids = metadata_graph
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.SYNC))
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()
    out = cluster.traverse(plan)
    # 3 servers x 4 levels (0..3) under global barriers
    assert out.stats.executions == 12
    assert cluster.obs.metrics.counter_total("engine.status_reports") == 12
