"""Per-tenant SLO burn-rate alerting: math, transitions, and feeds."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SLOConfig, SLOTracker
from repro.obs.trace import FlightRecorder


def make_tracker(**cfg):
    defaults = dict(
        latency_objective=1.0,
        error_budget=0.5,
        fast_window=5.0,
        slow_window=30.0,
        burn_threshold=1.0,
        min_events=2,
    )
    defaults.update(cfg)
    metrics = MetricsRegistry()
    trace = FlightRecorder(enabled=True)
    tracker = SLOTracker(SLOConfig(**defaults), metrics=metrics, trace=trace)
    return tracker, metrics, trace


def test_error_burn_fires_and_resolves_with_transitions_only():
    tracker, metrics, trace = make_tracker()
    # 2 failures out of 2: burn = (2/2)/0.5 = 2.0 > threshold 1.0 -> firing
    tracker.record_terminal("alpha", "failed", None, now=1.0)
    assert tracker.alert_log == []  # min_events not met yet
    tracker.record_terminal("alpha", "failed", None, now=2.0)
    assert [a.state for a in tracker.alert_log] == ["firing"]
    assert tracker.alert_active("alpha")
    # staying bad appends nothing: the log records transitions, not states
    tracker.record_terminal("alpha", "failed", None, now=3.0)
    assert len(tracker.alert_log) == 1
    # successes dilute the ratio until burn <= threshold -> resolved
    for t in (4.0, 5.0, 6.0):
        tracker.record_terminal("alpha", "ok", 0.1, now=t)
    assert [a.state for a in tracker.alert_log] == ["firing", "resolved"]
    assert not tracker.alert_active("alpha")


def test_burn_math_is_ratio_over_budget():
    tracker, _m, _t = make_tracker(error_budget=0.25, burn_threshold=2.0)
    tracker.record_terminal("a", "failed", None, now=0.0)
    tracker.record_terminal("a", "ok", 0.1, now=0.1)
    # 1 bad / 2 total = 0.5; over budget 0.25 -> burn 2.0, NOT > threshold
    assert tracker.alert_log == []
    tracker.record_terminal("a", "failed", None, now=0.2)
    # 2/3 / 0.25 = 2.67 > 2.0 on both windows -> fires
    (alert,) = tracker.alert_log
    assert alert.burn_fast == pytest.approx((2 / 3) / 0.25)
    assert alert.burn_slow == alert.burn_fast
    assert alert.window_events == 3


def test_slow_window_vetoes_a_fast_blip():
    # an old run of successes parks good events in the slow window only;
    # a burst of failures then maxes the fast burn but not the slow one
    tracker, _m, _t = make_tracker(
        fast_window=1.0, slow_window=100.0, burn_threshold=1.5
    )
    for i in range(10):
        tracker.record_terminal("a", "ok", 0.1, now=float(i))
    tracker.record_terminal("a", "failed", None, now=50.0)
    tracker.record_terminal("a", "failed", None, now=50.5)
    # fast burn = (2/2)/0.5 = 2.0 > 1.5, slow burn = (2/12)/0.5 = 0.33
    assert tracker.alert_log == []


def test_latency_objective_counts_queue_to_terminal_time():
    tracker, _m, _t = make_tracker(latency_objective=0.5)
    tracker.record_terminal("a", "ok", 0.5, now=1.0)  # exactly at: good
    tracker.record_terminal("a", "ok", 0.6, now=2.0)  # over: bad
    tracker.record_terminal("a", "ok", 0.7, now=3.0)
    # 2 bad / 3 = 0.67 over budget 0.5 -> 1.33 > 1.0 -> latency alert
    (alert,) = tracker.alert_log
    assert alert.objective == "latency" and alert.state == "firing"
    assert tracker.violates_latency(0.6)
    assert not tracker.violates_latency(0.5)
    assert not tracker.violates_latency(None)


def test_cancellations_spend_no_budget():
    tracker, _m, _t = make_tracker()
    for t in range(8):
        tracker.record_terminal("a", "cancelled", None, now=float(t))
    assert tracker.alert_log == []
    assert tracker.active_alerts() == []


def test_rejections_feed_the_error_objective():
    tracker, _m, _t = make_tracker()
    tracker.record_rejection("a", now=0.0)
    tracker.record_rejection("a", now=0.5)
    (alert,) = tracker.alert_log
    assert alert.objective == "errors" and alert.tenant == "a"


def test_transitions_emit_trace_events_and_metrics():
    tracker, metrics, trace = make_tracker()
    tracker.record_terminal("beta", "failed", None, now=1.0)
    tracker.record_terminal("beta", "failed", None, now=2.0)
    (event,) = [e for e in trace.events() if e.kind == "slo.alert"]
    assert event.attrs["tenant"] == "beta"
    assert event.attrs["objective"] == "errors"
    assert event.attrs["state"] == "firing"
    assert (
        metrics.counter_value(
            "slo.alerts", tenant="beta", objective="errors", state="firing"
        )
        == 1
    )


def test_tenants_are_isolated_and_active_alerts_sorted():
    tracker, _m, _t = make_tracker()
    for tenant in ("zeta", "alpha"):
        tracker.record_terminal(tenant, "failed", None, now=1.0)
        tracker.record_terminal(tenant, "failed", None, now=2.0)
    tracker.record_terminal("calm", "ok", 0.1, now=2.0)
    assert tracker.active_alerts() == [
        {"tenant": "alpha", "objective": "errors"},
        {"tenant": "zeta", "objective": "errors"},
    ]
    assert not tracker.alert_active("calm")


def test_observations_age_out_of_the_slow_window():
    tracker, _m, _t = make_tracker(slow_window=10.0)
    tracker.record_terminal("a", "failed", None, now=0.0)
    tracker.record_terminal("a", "failed", None, now=1.0)
    assert tracker.alert_active("a")
    # much later, two clean completions: the old failures fell out, so the
    # window holds only good events and the alert resolves
    tracker.record_terminal("a", "ok", 0.1, now=100.0)
    tracker.record_terminal("a", "ok", 0.1, now=101.0)
    assert not tracker.alert_active("a")


def test_alert_log_payload_is_canonical_and_stable():
    tracker, _m, _t = make_tracker()
    tracker.record_terminal("a", "failed", None, now=1.25)
    tracker.record_terminal("a", "failed", None, now=2.5)
    payload = tracker.alert_log_payload()
    assert payload[0]["seq"] == 1 and payload[0]["clock"] == 2.5
    assert set(payload[0]) == {
        "seq", "clock", "tenant", "objective", "state",
        "burn_fast", "burn_slow", "window_events",
    }
    assert tracker.to_json() == tracker.to_json()
