"""Unit tests for the observability layer: registry, histograms, spans."""

from __future__ import annotations

import json
import math

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    SpanTracer,
    metric_key,
    render_key,
    validate_snapshot,
)
from repro.obs.export import canonical_json, observability_payload


class TestMetricKey:
    def test_labels_sorted_regardless_of_call_order(self):
        assert metric_key("m", {"b": 1, "a": 2}) == metric_key("m", {"a": 2, "b": 1})

    def test_render_without_labels(self):
        assert render_key(metric_key("engine.visits", {})) == "engine.visits"

    def test_render_with_labels(self):
        key = metric_key("engine.visits", {"server": 3, "level": 1})
        assert render_key(key) == "engine.visits{level=1,server=3}"


class TestHistogram:
    def test_empty_summary_is_nan(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["mean"])

    def test_single_sample(self):
        h = Histogram()
        h.observe(4.0)
        s = h.summary()
        assert s == {
            "count": 1, "sum": 4.0, "min": 4.0, "max": 4.0,
            "mean": 4.0, "p50": 4.0, "p95": 4.0, "p99": 4.0,
        }

    def test_nearest_rank_quantiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0

    def test_quantiles_insensitive_to_insertion_order(self):
        a, b = Histogram(), Histogram()
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        for v in values:
            a.observe(v)
        for v in sorted(values):
            b.observe(v)
        assert a.summary() == b.summary()


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.count("visits", server=0)
        reg.count("visits", 2, server=0)
        reg.count("visits", server=1)
        assert reg.counter_value("visits", server=0) == 3
        assert reg.counter_value("visits", server=1) == 1
        assert reg.counter_total("visits") == 4

    def test_gauge_set_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 5)
        reg.set_gauge("depth", 2)
        assert reg.gauge_value("depth") == 2

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("visits")
        reg.set_gauge("depth", 1)
        reg.observe("latency", 0.5)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_collectors_run_at_snapshot_and_are_idempotent(self):
        reg = MetricsRegistry()
        source = {"value": 7}
        reg.add_collector(lambda m: m.set_gauge("pull.value", source["value"]))
        assert reg.snapshot()["gauges"]["pull.value"] == 7
        # A second snapshot must agree (collectors set, never increment).
        assert reg.snapshot()["gauges"]["pull.value"] == 7
        source["value"] = 9
        assert reg.snapshot()["gauges"]["pull.value"] == 9

    def test_snapshot_keys_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.count("b.metric", server=1)
        reg.count("a.metric", server=2)
        reg.count("a.metric", server=0)
        snap = reg.snapshot()
        keys = list(snap["counters"])
        assert keys == sorted(keys)
        assert reg.to_json() == reg.to_json()
        # round-trips as JSON
        assert json.loads(reg.to_json()) == snap

    def test_clear_resets_everything(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.observe("h", 1.0)
        reg.clear()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}


class TestSpanTracer:
    def _clocked_tracer(self):
        tracer = SpanTracer()
        state = {"t": 0.0}
        tracer.bind_clock(lambda: state["t"])
        return tracer, state

    def test_begin_end_records_interval(self):
        tracer, state = self._clocked_tracer()
        sid = tracer.begin("unit", "s0:L0", server=0)
        state["t"] = 1.5
        tracer.end(sid, vertices=3)
        (span,) = tracer.timeline_spans()
        assert span.start == 0.0 and span.end == 1.5
        assert span.attrs == {"server": 0, "vertices": 3}

    def test_end_is_idempotent(self):
        tracer, state = self._clocked_tracer()
        sid = tracer.begin("disk", "v1")
        state["t"] = 1.0
        tracer.end(sid)
        state["t"] = 2.0
        tracer.end(sid)  # must not move the end time
        assert tracer.timeline_spans()[0].end == 1.0

    def test_disabled_tracer_returns_zero_ids(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.begin("unit", "x") == 0
        tracer.end(0)
        assert len(tracer) == 0

    def test_travel_and_level_spans_are_causally_linked(self):
        tracer, state = self._clocked_tracer()
        root = tracer.travel_span("t1", engine="graphtrek")
        assert tracer.travel_span("t1") == root  # lazy: one per travel
        lvl0 = tracer.level_span("t1", 0)
        lvl1 = tracer.level_span("t1", 1)
        assert tracer.level_span("t1", 0) == lvl0
        unit = tracer.begin("unit", "s0:L1", parent=lvl1)
        state["t"] = 3.0
        tracer.end(unit)
        tracer.finish_travel("t1", status="ok")
        spans = {s.span_id: s for s in tracer.timeline_spans()}
        assert spans[lvl0].parent_id == root
        assert spans[lvl1].parent_id == root
        assert spans[unit].parent_id == lvl1
        # finish_travel closed every remaining open span
        assert all(s.end is not None for s in spans.values())
        assert spans[root].attrs["status"] == "ok"

    def test_timeline_ordered_by_start_time(self):
        tracer, state = self._clocked_tracer()
        state["t"] = 5.0
        late = tracer.begin("unit", "late")
        state["t"] = 1.0
        early = tracer.begin("unit", "early")
        tracer.end(late)
        tracer.end(early)
        assert [s["span_id"] for s in tracer.timeline()] == [early, late]


class TestExportValidation:
    def test_payload_bundles_metrics_and_spans(self):
        obs = Observability()
        obs.metrics.count("c")
        payload = observability_payload(obs.metrics, obs.spans, obs.trace)
        assert set(payload) == {"metrics", "spans", "trace"}
        assert canonical_json(payload) == obs.to_json()

    def test_validate_flags_nan_and_empty(self):
        snap = {
            "counters": {"bad": float("nan")},
            "gauges": {},
            "histograms": {"empty": Histogram().summary()},
        }
        problems = validate_snapshot(snap)
        assert any("bad" in p for p in problems)
        assert any("empty" in p for p in problems)

    def test_validate_requires_histograms_when_asked(self):
        snap = {"counters": {}, "gauges": {}, "histograms": {}}
        assert validate_snapshot(snap) == []
        assert validate_snapshot(snap, require_histograms=True)

    def test_clean_snapshot_passes(self):
        reg = MetricsRegistry()
        reg.count("ok")
        reg.observe("lat", 0.25)
        assert validate_snapshot(reg.snapshot(), require_histograms=True) == []
