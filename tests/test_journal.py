"""Unit tests for the durable traversal journal (WAL framing, CRC
integrity, replay fold, compaction, and the file backend)."""

import pickle

import pytest

from repro.cluster.journal import (
    FileJournalStorage,
    JournalState,
    MemoryJournalStorage,
    TraversalJournal,
)
from repro.errors import CorruptJournal
from repro.storage.persist import pack_record


def _sample_plan():
    return {"steps": ["run", "hasExecutions"]}


def test_append_replay_roundtrip():
    journal = TraversalJournal()
    journal.append("admit", tid=1, plan=_sample_plan(), tenant="batch",
                   priority=2, deadline=5.0, admit_time=0.1, seq=0)
    journal.append("launch", tid=1, tenant="batch")
    journal.append("dispatch", tid=1, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.2)
    state = journal.replay()
    assert 1 in state.running and not state.queued
    entry = state.running[1]
    assert entry["qos"]["tenant"] == "batch"
    assert entry["qos"]["deadline"] == 5.0
    assert state.next_travel_id == 2
    # the live mirror and a cold replay agree
    assert journal.state.running.keys() == state.running.keys()


def test_terminal_clears_state_and_counts():
    journal = TraversalJournal()
    journal.append("dispatch", tid=3, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.0)
    journal.append("terminal", tid=3, status="ok")
    journal.append("admit", tid=4, plan=_sample_plan(), tenant="t",
                   priority=None, deadline=None, admit_time=0.0, seq=1)
    journal.append("terminal", tid=4, status="cancelled")
    state = journal.replay()
    assert not state.running and not state.queued
    assert state.terminals == {"ok": 1, "cancelled": 1}
    assert state.next_travel_id == 5


def test_progress_records_accumulate():
    journal = TraversalJournal()
    journal.append("dispatch", tid=2, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.0)
    journal.append("progress", tid=2, statuses=10, results=3)
    journal.append("progress", tid=2, statuses=5, results=1)
    journal.append("progress", tid=99, statuses=7)  # unknown tid: ignored
    state = journal.replay()
    assert state.running[2]["progress"] == {"statuses": 15, "results": 4}


def test_epoch_record_advances_epoch():
    journal = TraversalJournal()
    assert journal.state.epoch == 0
    journal.append("epoch", epoch=2)
    assert journal.replay().epoch == 2


def test_crc_corruption_raises_typed_error():
    storage = MemoryJournalStorage()
    journal = TraversalJournal(storage)
    journal.append("epoch", epoch=1)
    data = bytearray(storage.read())
    data[-1] ^= 0xFF  # flip a payload bit → CRC mismatch
    storage.reset(bytes(data))
    with pytest.raises(CorruptJournal, match="checksum|crc|mismatch"):
        journal.replay()


def test_torn_tail_raises_typed_error():
    storage = MemoryJournalStorage()
    journal = TraversalJournal(storage)
    journal.append("epoch", epoch=1)
    storage.reset(storage.read()[:-3])  # torn write: length runs past end
    with pytest.raises(CorruptJournal):
        journal.replay()


def test_undecodable_and_untagged_records_rejected():
    storage = MemoryJournalStorage(pack_record(b"\x00not-a-pickle"))
    with pytest.raises(CorruptJournal, match="undecodable"):
        TraversalJournal(storage)
    storage = MemoryJournalStorage(
        pack_record(pickle.dumps(["no", "kind", "tag"]))
    )
    with pytest.raises(CorruptJournal, match="kind-tagged"):
        TraversalJournal(storage)
    storage = MemoryJournalStorage(
        pack_record(pickle.dumps({"kind": "wat"}))
    )
    with pytest.raises(CorruptJournal, match="unknown"):
        TraversalJournal(storage)


def test_compaction_bounds_size_and_preserves_state():
    storage = MemoryJournalStorage()
    journal = TraversalJournal(storage, checkpoint_interval=8)
    for tid in range(1, 40):
        journal.append("dispatch", tid=tid, plan=_sample_plan(), attempt=0,
                       epoch=0, composite=False, child_of=None, submit_time=0.0)
        journal.append("terminal", tid=tid, status="ok")
    journal.append("dispatch", tid=100, plan=_sample_plan(), attempt=0,
                   epoch=0, composite=False, child_of=None, submit_time=1.0)
    assert journal.checkpoints_written > 0
    # compaction keeps the journal proportional to *live* travels, not history
    assert journal.size_bytes() < journal.bytes_appended / 4
    state = journal.replay()
    assert set(state.running) == {100}
    assert state.terminals["ok"] == 39
    assert state.next_travel_id == 101
    # a fresh journal over the same bytes sees the same state
    cold = TraversalJournal(MemoryJournalStorage(storage.read()))
    assert cold.state.as_payload() == state.as_payload()


def test_checkpoint_then_tail_replay():
    """Records appended after a compaction fold on top of the checkpoint."""
    storage = MemoryJournalStorage()
    journal = TraversalJournal(storage, checkpoint_interval=10_000)
    journal.append("dispatch", tid=1, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.0)
    journal.compact()
    journal.append("dispatch", tid=2, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.5)
    journal.append("terminal", tid=1, status="ok")
    state = TraversalJournal(MemoryJournalStorage(storage.read())).state
    assert set(state.running) == {2}
    assert state.terminals == {"ok": 1}


def test_journal_state_payload_roundtrip():
    state = JournalState(epoch=3, next_travel_id=9,
                         queued={1: {"tid": 1}}, running={2: {"tid": 2}},
                         terminals={"ok": 4})
    assert JournalState.from_payload(state.as_payload()) == state


def test_file_journal_storage_roundtrip(tmp_path):
    path = tmp_path / "wal" / "journal.bin"
    journal = TraversalJournal(FileJournalStorage(path))
    journal.append("dispatch", tid=7, plan=_sample_plan(), attempt=0, epoch=0,
                   composite=False, child_of=None, submit_time=0.0)
    journal.append("epoch", epoch=1)
    assert path.exists()
    # a second process opening the same file sees the same state
    reopened = TraversalJournal(FileJournalStorage(path))
    assert set(reopened.state.running) == {7}
    assert reopened.state.epoch == 1
    reopened.compact()
    assert TraversalJournal(FileJournalStorage(path)).state.epoch == 1
    assert len(FileJournalStorage(path)) == path.stat().st_size
