"""Tests for the simulated runtime: contexts, delivery, disks, interference."""

import pytest

from repro.errors import SimulationError
from repro.net.message import Message, TraverseRequest
from repro.net.topology import NetworkModel
from repro.runtime.simulated import SimRuntime
from repro.storage.costmodel import DiskCostModel, IOCost


def make_runtime(n=2, **kwargs) -> SimRuntime:
    rt = SimRuntime(n, **kwargs)
    rt.coordinator_server = 0
    return rt


def test_context_validation():
    rt = make_runtime(2)
    with pytest.raises(SimulationError):
        rt.context(5)
    ctx = rt.context(1)
    assert ctx.server_id == 1 and ctx.nservers == 2


def test_message_delivery_with_latency():
    rt = make_runtime(2, network=NetworkModel(base_latency=1e-3, bandwidth=1e9))
    received = []
    rt.register_handler(1, lambda msg: received.append((rt.sim.now, msg)))
    ctx = rt.context(0)
    msg = TraverseRequest(1, level=0, entries={}, exec_id=1, from_server=0)
    ctx.send(1, msg)
    assert received == []  # not synchronous
    rt.sim.run()
    assert len(received) == 1
    assert received[0][0] >= 1e-3
    assert rt.messages_sent == 1 and rt.bytes_sent == msg.nbytes


def test_delivery_to_unregistered_server_raises():
    rt = make_runtime(2)
    with pytest.raises(SimulationError):
        rt.deliver(0, 1, Message(1))


def test_coordinator_delivery():
    rt = make_runtime(2)
    received = []
    rt.register_coordinator(lambda msg: received.append(msg))
    rt.context(1).send_coordinator(Message(7))
    rt.sim.run()
    assert len(received) == 1 and received[0].travel_id == 7


def test_coordinator_unregistered_raises():
    rt = make_runtime(1)
    with pytest.raises(SimulationError):
        rt.deliver_to_coordinator(0, Message(1))


def test_drop_filter_swallows_messages():
    rt = make_runtime(2)
    received = []
    rt.register_handler(1, lambda msg: received.append(msg))
    rt.drop_filter = lambda src, dst, msg: dst == 1
    rt.context(0).send(1, Message(1))
    rt.sim.run()
    assert received == []
    assert rt.messages_sent == 0


def test_disk_charges_model_time():
    model = DiskCostModel(seek_time=1e-3, block_time=1e-4)
    rt = make_runtime(1, disk_model=model)
    ctx = rt.context(0)
    def proc(ctx):
        yield ctx.disk(IOCost(seeks=1, blocks=2))
    p = rt.sim.process(proc(ctx))
    rt.sim.run()
    assert rt.sim.now == pytest.approx(1e-3 + 2e-4)
    assert not p.failed


def test_disk_capacity_serializes():
    model = DiskCostModel(seek_time=1e-3, block_time=0.0)
    rt = make_runtime(1, disk_model=model, disk_capacity=1)
    ctx = rt.context(0)
    finish = []
    def proc(ctx):
        yield ctx.disk(IOCost(seeks=1))
        finish.append(rt.sim.now)
    rt.sim.process(proc(ctx))
    rt.sim.process(proc(ctx))
    rt.sim.run()
    assert finish == [pytest.approx(1e-3), pytest.approx(2e-3)]


def test_disk_capacity_two_overlaps():
    model = DiskCostModel(seek_time=1e-3, block_time=0.0)
    rt = make_runtime(1, disk_model=model, disk_capacity=2)
    ctx = rt.context(0)
    finish = []
    def proc(ctx):
        yield ctx.disk(IOCost(seeks=1))
        finish.append(rt.sim.now)
    rt.sim.process(proc(ctx))
    rt.sim.process(proc(ctx))
    rt.sim.run()
    assert finish == [pytest.approx(1e-3), pytest.approx(1e-3)]


def test_interference_adds_delay():
    class AlwaysSlow:
        def delay(self, server, level):
            return 0.5
    rt = make_runtime(1, disk_model=DiskCostModel(seek_time=0, block_time=0, cache_hit_time=0),
                      interference=AlwaysSlow())
    ctx = rt.context(0)
    def proc(ctx):
        yield ctx.disk(IOCost(), level=1, accesses=2)
    rt.sim.process(proc(ctx))
    rt.sim.run()
    assert rt.sim.now == pytest.approx(1.0)


def test_queue_roundtrip_through_context():
    rt = make_runtime(1)
    ctx = rt.context(0)
    q = ctx.queue(priority=True)
    got = []
    def consumer(ctx, q):
        item = yield ctx.queue_get(q)
        got.append(item)
    rt.sim.process(consumer(ctx, q))
    ctx.queue_put(q, (2, 0, "low"))
    ctx.queue_put(q, (1, 1, "high"))
    rt.sim.run()
    # both puts landed before the consumer's first get ran, so the heap
    # ordering applies and the smallest priority wins
    assert got == [(1, 1, "high")]
    assert ctx.queue_len(q) == 1


def test_sleep_and_now():
    rt = make_runtime(1)
    ctx = rt.context(0)
    def proc(ctx):
        yield ctx.sleep(2.0)
        return ctx.now()
    p = rt.sim.process(proc(ctx))
    rt.sim.run()
    assert p.value == 2.0


def test_completion_event_run_until():
    rt = make_runtime(1)
    ev = rt.completion_event()
    rt.sim.schedule(1.5, lambda: ev.succeed("done"))
    assert rt.run_until_complete(ev) == "done"


def test_invalid_server_count():
    with pytest.raises(SimulationError):
        SimRuntime(0)
