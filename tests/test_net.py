"""Tests for messages and the network model."""

import pytest

from repro.net import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    ExecStatus,
    NetworkModel,
    ResultReport,
    SuccessReport,
    SyncBatch,
    SyncStepDone,
    TraverseRequest,
    entries_nbytes,
)


def test_latency_base_plus_bandwidth():
    model = NetworkModel(base_latency=1e-4, bandwidth=1e6, loopback_latency=1e-6)
    assert model.latency(0, 1, 0) == pytest.approx(1e-4)
    assert model.latency(0, 1, 1_000_000) == pytest.approx(1e-4 + 1.0)


def test_loopback_cheaper_than_remote():
    assert INFINIBAND_QDR.latency(3, 3, 4096) < INFINIBAND_QDR.latency(3, 4, 4096)


def test_client_latency_slower_than_server_network():
    assert INFINIBAND_QDR.client_latency(1024) > INFINIBAND_QDR.latency(0, 1, 1024)


def test_ethernet_slower_than_ib():
    assert ETHERNET_10G.latency(0, 1, 65536) > INFINIBAND_QDR.latency(0, 1, 65536)


def test_entries_nbytes_scales_with_entries_and_anchors():
    small = entries_nbytes({1: ()})
    big = entries_nbytes({i: () for i in range(10)})
    assert big > small
    anchored = entries_nbytes({1: (frozenset(range(100)),)})
    assert anchored > small


def test_traverse_request_size_includes_plan():
    msg = TraverseRequest(1, level=0, entries={1: ()}, exec_id=1, from_server=0)
    assert msg.nbytes > 256  # plan shipped with every dispatch


def test_exec_status_size_scales_with_created():
    a = ExecStatus(1, exec_id=1, created=())
    b = ExecStatus(1, exec_id=1, created=tuple((i, 0, 1) for i in range(10)))
    assert b.nbytes > a.nbytes


def test_result_report_size_scales_with_vertices():
    a = ResultReport(1, level=1, vertices=frozenset([1]))
    b = ResultReport(1, level=1, vertices=frozenset(range(100)))
    assert b.nbytes > a.nbytes


def test_success_report_fields():
    msg = SuccessReport(1, rtn_level=2, anchors=frozenset([5]), exec_id=9)
    assert msg.rtn_level == 2 and 5 in msg.anchors
    assert msg.nbytes > 0


def test_sync_messages_defaults():
    batch = SyncBatch(1, level=3, entries={2: ()}, from_server=1)
    assert batch.nbytes > 256
    done = SyncStepDone(1, level=3, server=1, sent_counts={0: 1, 2: 2})
    assert done.nbytes > SyncStepDone(1).nbytes
