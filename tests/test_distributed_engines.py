"""Differential and behavioural tests for the three distributed engines."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import EQ, IN, RANGE, GTravel
from repro.workloads import (
    data_audit_query,
    paper_rmat1,
    pick_start_vertex,
    provenance_query,
    rmat_graph,
    rmat_kstep_query,
    suspicious_user_query,
)
from tests.conftest import ALL_ENGINES, assert_engines_match_oracle, build_cluster


# -- differential correctness on the metadata graph ----------------------------

def test_one_step_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    assert_engines_match_oracle(graph, GTravel.v(ids["users"][0]).e("run"))


def test_multi_step_chain_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read")
    assert_engines_match_oracle(graph, q)


def test_edge_filters_match_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").ea("ts", RANGE, (0.0, 150.0)).e("hasExecutions")
    assert_engines_match_oracle(graph, q)


def test_vertex_filters_match_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = (
        GTravel.v(ids["users"][1])
        .e("run").e("hasExecutions").e("read")
        .va("kind", EQ, "text")
    )
    assert_engines_match_oracle(graph, q)


def test_all_vertices_source_matches_oracle(metadata_graph):
    graph, _ = metadata_graph
    q = GTravel.v().va("type", EQ, "Execution").e("read")
    assert_engines_match_oracle(graph, q)


def test_paper_audit_query_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = data_audit_query(ids["users"][0], 0.0, 1000.0)
    assert_engines_match_oracle(graph, q)


def test_paper_provenance_query_matches_oracle(metadata_graph):
    graph, _ = metadata_graph
    q = provenance_query(model="A", annotation="B")
    ref, _ = assert_engines_match_oracle(graph, q)
    # the provenance query returns executions (level 0), nothing else
    assert set(ref.returned) == {0}


def test_paper_suspicious_user_query_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = suspicious_user_query(ids["users"][2])
    assert_engines_match_oracle(graph, q)


def test_multi_source_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(*ids["users"]).e("run").e("hasExecutions")
    assert_engines_match_oracle(graph, q)


def test_in_filter_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(*ids["execs"]).va("model", IN, ["A"]).e("write")
    assert_engines_match_oracle(graph, q)


def test_zero_step_plan_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(*ids["files"]).va("kind", EQ, "text")
    assert_engines_match_oracle(graph, q)


def test_missing_sources_yield_empty(metadata_graph):
    graph, _ = metadata_graph
    q = GTravel.v(10_000, 10_001).e("run")
    ref, outcomes = assert_engines_match_oracle(graph, q)
    assert ref.vertices == frozenset()


def test_intermediate_rtn_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(*ids["jobs"]).rtn().e("hasExecutions").va("model", EQ, "A")
    ref, _ = assert_engines_match_oracle(graph, q)
    assert set(ref.returned) == {0}


def test_double_rtn_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).rtn().e("run").rtn().e("hasExecutions")
    assert_engines_match_oracle(graph, q)


def test_single_server_cluster(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions")
    assert_engines_match_oracle(graph, q, nservers=1)


def test_more_servers_than_work(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run")
    assert_engines_match_oracle(graph, q, nservers=16)


def test_greedy_partitioner_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("write")
    assert_engines_match_oracle(graph, q, partitioner="greedy")


def test_cycle_traversal_matches_oracle(metadata_graph):
    """read -> readBy cycles revisit executions at deeper levels (§II-C)."""
    graph, ids = metadata_graph
    q = GTravel.v(*ids["execs"][:4]).e("read").e("readBy").e("read").e("readBy")
    assert_engines_match_oracle(graph, q)


def test_rmat_traversal_matches_oracle():
    cfg = paper_rmat1(scale=8, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    q = rmat_kstep_query(src, 5)
    assert_engines_match_oracle(graph, q, nservers=5)


# -- engine-specific behaviour ----------------------------------------------------

def test_sync_engine_reports_barrier_rounds(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    out = cluster.traverse(GTravel.v(ids["users"][0]).e("run").e("hasExecutions"))
    assert out.stats.barrier_rounds == 3  # levels 0, 1, 2
    assert out.stats.redundant_visits == 0
    assert out.stats.combined_visits == 0


def test_async_engines_report_no_barriers(metadata_graph):
    graph, ids = metadata_graph
    for kind in (EngineKind.ASYNC, EngineKind.GRAPHTREK):
        cluster = build_cluster(graph, kind)
        out = cluster.traverse(GTravel.v(ids["users"][0]).e("run"))
        assert out.stats.barrier_rounds == 0


def test_graphtrek_drops_duplicates_async_pays_io():
    """On a duplicate-heavy traversal, GraphTrek records redundant visits
    while Async-GT re-reads (more real I/O) — the §V-A mechanism."""
    cfg = paper_rmat1(scale=8, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    plan = rmat_kstep_query(src, 6).compile()
    gt = build_cluster(graph, EngineKind.GRAPHTREK, nservers=4).traverse(plan)
    pa = build_cluster(graph, EngineKind.ASYNC, nservers=4).traverse(plan)
    sy = build_cluster(graph, EngineKind.SYNC, nservers=4).traverse(plan)
    assert gt.stats.redundant_visits > 0
    assert pa.stats.redundant_visits == 0
    assert pa.stats.real_io_visits > sy.stats.real_io_visits
    assert gt.stats.real_io_visits + gt.stats.combined_visits <= pa.stats.real_io_visits


def test_stats_visit_identity():
    """total received requests = real + combined + redundant (Fig. 7)."""
    cfg = paper_rmat1(scale=7, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    out = build_cluster(graph, EngineKind.GRAPHTREK, nservers=4).traverse(
        rmat_kstep_query(src, 5).compile()
    )
    st = out.stats
    assert st.total_visits == st.real_io_visits + st.combined_visits + st.redundant_visits
    per_server_total = sum(
        sum(bucket.values()) for bucket in st.per_server.values()
    )
    assert per_server_total == st.total_visits


def test_elapsed_positive_and_messages_counted(metadata_graph):
    graph, ids = metadata_graph
    for kind in ALL_ENGINES:
        out = build_cluster(graph, kind).traverse(GTravel.v(ids["users"][0]).e("run"))
        assert out.stats.elapsed > 0
        assert out.stats.messages > 0
        assert out.stats.bytes_sent > 0


def test_deterministic_elapsed(metadata_graph):
    graph, ids = metadata_graph
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    def run():
        return build_cluster(graph, EngineKind.GRAPHTREK).traverse(plan).stats.elapsed
    assert run() == run()


def test_concurrent_traversals(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    plans = [
        GTravel.v(ids["users"][0]).e("run").compile(),
        GTravel.v(ids["users"][1]).e("run").e("hasExecutions").compile(),
        GTravel.v().va("type", EQ, "File").compile(),
    ]
    outcomes = cluster.traverse_many(plans)
    ref = ReferenceEngine(graph)
    for plan, outcome in zip(plans, outcomes):
        assert outcome.result.same_vertices(ref.run(plan))


def test_concurrent_traversals_sync_engine(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    plans = [
        GTravel.v(ids["users"][0]).e("run").compile(),
        GTravel.v(ids["users"][2]).e("run").e("hasExecutions").compile(),
    ]
    outcomes = cluster.traverse_many(plans)
    ref = ReferenceEngine(graph)
    for plan, outcome in zip(plans, outcomes):
        assert outcome.result.same_vertices(ref.run(plan))


def test_sequential_traversals_reuse_cluster(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    for user in ids["users"]:
        out = cluster.traverse(GTravel.v(user).e("run"))
        expected = ReferenceEngine(graph).run(GTravel.v(user).e("run").compile())
        assert out.result.same_vertices(expected)


def test_live_updates_visible_to_traversal(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    user = ids["users"][0]
    new_job = 5000
    cluster.ingest_vertex(new_job, "Job", {"jobid": 999, "ts": 1.0})
    cluster.ingest_edge(user, new_job, "run", {"ts": 1.0})
    out = cluster.traverse(GTravel.v(user).e("run"))
    assert new_job in out.result.vertices


def test_ingest_edge_requires_ingested_source(metadata_graph):
    graph, _ = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        cluster.ingest_edge(99_999, 1, "run")


def test_progress_reports_during_run(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    travel_id, event = cluster.submit(plan)
    # drive the simulation a tiny bit, then ask for progress
    cluster.runtime.sim.run(until=cluster.runtime.sim.peek())
    progress = cluster.progress(travel_id)
    assert isinstance(progress, dict)
    cluster.runtime.run_until_complete(event)
    assert cluster.progress(travel_id) == {}  # finished traversals report empty


def test_server_loads_and_cold_start(metadata_graph):
    graph, _ = metadata_graph
    cluster = build_cluster(graph, EngineKind.SYNC)
    loads = cluster.server_loads()
    assert sum(loads) == graph.num_vertices
    cluster.cold_start()  # must not raise


def test_engine_options_override(metadata_graph):
    from repro.engine import graphtrek_options
    graph, ids = metadata_graph
    opts = graphtrek_options(workers=1, cache_capacity=16)
    cluster = Cluster.build(graph, ClusterConfig(nservers=2, engine=opts))
    out = cluster.traverse(GTravel.v(ids["users"][0]).e("run"))
    expected = ReferenceEngine(graph).run(GTravel.v(ids["users"][0]).e("run").compile())
    assert out.result.same_vertices(expected)


def test_tiny_cache_still_correct():
    """Cache evictions cause re-dispatch but never wrong results."""
    from repro.engine import graphtrek_options
    cfg = paper_rmat1(scale=7, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    plan = rmat_kstep_query(src, 5).compile()
    ref = ReferenceEngine(graph).run(plan)
    opts = graphtrek_options(cache_capacity=8)
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=opts))
    out = cluster.traverse(plan, limit=10_000)
    assert out.result.same_vertices(ref)
