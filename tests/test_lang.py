"""Tests for GTravel: filters, the builder, and compiled plans."""

import pytest

from repro.errors import QueryError
from repro.lang import (
    EQ,
    IN,
    RANGE,
    FilterOp,
    FilterSet,
    GTravel,
    PropertyFilter,
    union_results,
)


# -- filters ---------------------------------------------------------------

def test_eq_filter():
    f = PropertyFilter("x", EQ, 5)
    assert f.matches({"x": 5})
    assert not f.matches({"x": 6})
    assert not f.matches({})  # missing property never matches


def test_in_filter():
    f = PropertyFilter("x", IN, [1, 2, 3])
    assert f.matches({"x": 2})
    assert not f.matches({"x": 9})
    assert isinstance(f.value, frozenset)


def test_in_filter_requires_iterable():
    with pytest.raises(QueryError):
        PropertyFilter("x", IN, 5)


def test_range_filter_inclusive():
    f = PropertyFilter("x", RANGE, (1, 10))
    assert f.matches({"x": 1})
    assert f.matches({"x": 10})
    assert not f.matches({"x": 0})
    assert not f.matches({"x": 11})


def test_range_filter_validation():
    with pytest.raises(QueryError):
        PropertyFilter("x", RANGE, (10, 1))
    with pytest.raises(QueryError):
        PropertyFilter("x", RANGE, 5)


def test_range_filter_type_mismatch_is_false():
    f = PropertyFilter("x", RANGE, (1, 10))
    assert not f.matches({"x": "not-a-number"})


def test_in_filter_unhashable_value_is_false():
    f = PropertyFilter("x", IN, [1, 2])
    assert not f.matches({"x": [1]})


def test_filter_requires_key_and_op():
    with pytest.raises(QueryError):
        PropertyFilter("", EQ, 1)
    with pytest.raises(QueryError):
        PropertyFilter("x", "EQ", 1)  # not a FilterOp


def test_filterset_and_composition():
    fs = FilterSet().add(PropertyFilter("a", EQ, 1)).add(PropertyFilter("b", EQ, 2))
    assert fs.matches({"a": 1, "b": 2})
    assert not fs.matches({"a": 1, "b": 3})
    assert len(fs) == 2


def test_empty_filterset_matches_everything():
    fs = FilterSet()
    assert fs.matches({})
    assert not fs  # falsy when empty
    assert fs.describe() == "*"


def test_filterset_describe():
    fs = FilterSet().add(PropertyFilter("ts", RANGE, (0, 5)))
    assert "ts RANGE" in fs.describe()


# -- builder -----------------------------------------------------------------

def test_paper_audit_query_compiles():
    plan = (
        GTravel.v(7)
        .e("run")
        .ea("start_ts", RANGE, (10, 20))
        .e("read")
        .va("type", EQ, "text")
        .rtn()
        .compile()
    )
    assert plan.source_ids == (7,)
    assert plan.num_steps == 2
    assert plan.steps[0].label == "run"
    assert len(plan.steps[0].edge_filters) == 1
    assert len(plan.steps[1].vertex_filters) == 1
    assert plan.return_levels == frozenset({2})


def test_paper_provenance_query_compiles():
    plan = (
        GTravel.v()
        .va("type", EQ, "Execution")
        .rtn()
        .va("model", EQ, "A")
        .e("read")
        .va("annotation", EQ, "B")
        .compile()
    )
    assert plan.source_ids is None
    assert len(plan.source_filters) == 2
    assert plan.rtn_levels == frozenset({0})
    assert plan.has_intermediate_returns


def test_methods_chain_return_self():
    q = GTravel.v(1)
    assert q.e("x") is q
    assert q.ea("k", EQ, 1) is q
    assert q.va("k", EQ, 1) is q
    assert q.rtn() is q


def test_v_dedupes_preserving_order():
    plan = GTravel.v(3, 1, 3, 2).compile()
    assert plan.source_ids == (3, 1, 2)


def test_v_requires_int_ids():
    with pytest.raises(QueryError):
        GTravel.v("a")
    with pytest.raises(QueryError):
        GTravel.v(True)


def test_v_only_once():
    with pytest.raises(QueryError):
        GTravel.v(1).v_(2)


def test_ea_requires_step():
    with pytest.raises(QueryError):
        GTravel.v(1).ea("k", EQ, 1)


def test_e_requires_source():
    with pytest.raises(QueryError):
        GTravel().e("x")


def test_empty_label_rejected():
    with pytest.raises(QueryError):
        GTravel.v(1).e("")


def test_compile_without_source_rejected():
    with pytest.raises(QueryError):
        GTravel().compile()


def test_zero_step_plan():
    plan = GTravel.v(1, 2).va("t", EQ, "x").compile()
    assert plan.num_steps == 0
    assert plan.final_level == 0
    assert plan.return_levels == frozenset({0})
    assert not plan.has_intermediate_returns


def test_default_returns_final_level():
    plan = GTravel.v(1).e("a").e("b").compile()
    assert plan.return_levels == frozenset({2})


def test_multiple_rtn_levels():
    plan = GTravel.v(1).rtn().e("a").rtn().e("b").compile()
    assert plan.rtn_levels == frozenset({0, 1})
    assert plan.return_levels == frozenset({0, 1})
    assert plan.has_intermediate_returns


def test_rtn_at_final_is_not_intermediate():
    plan = GTravel.v(1).e("a").rtn().compile()
    assert plan.return_levels == frozenset({1})
    assert not plan.has_intermediate_returns


def test_describe_roundtrips_structure():
    text = GTravel.v(1).e("run").ea("ts", RANGE, (0, 9)).rtn().describe()
    assert "GTravel.v(1)" in text
    assert ".e('run')" in text
    assert "RANGE" in text
    assert ".rtn()" in text


def test_describe_all_vertices():
    assert GTravel.v().describe().startswith("GTravel.v()")


def test_union_results():
    # canonical sorted tuple: deterministic regardless of input ordering
    assert union_results({1, 2}, [2, 3], (4,)) == (1, 2, 3, 4)
    assert union_results([3, 1], {2}) == union_results({1, 2}, (3,))
    assert union_results() == ()


def test_filterop_enum_values():
    assert FilterOp.EQ.value == "EQ"
    assert EQ is FilterOp.EQ and IN is FilterOp.IN and RANGE is FilterOp.RANGE
