"""Tests for the single-node reference evaluator (the correctness oracle)."""

import pytest

from repro.engine import ReferenceEngine
from repro.graph import GraphBuilder, PropertyGraph
from repro.lang import EQ, IN, RANGE, GTravel


@pytest.fixture()
def diamond():
    """a -> {b, c} -> d, with properties for filtering."""
    g = PropertyGraph()
    g.add_vertex(0, "A", {"name": "a"})
    g.add_vertex(1, "B", {"name": "b", "keep": 1})
    g.add_vertex(2, "B", {"name": "c", "keep": 0})
    g.add_vertex(3, "C", {"name": "d"})
    g.add_edge(0, 1, "to", {"w": 1})
    g.add_edge(0, 2, "to", {"w": 9})
    g.add_edge(1, 3, "to", {"w": 1})
    g.add_edge(2, 3, "to", {"w": 1})
    return g


def run(graph, query):
    return ReferenceEngine(graph).run(query.compile())


def test_simple_one_step(diamond):
    res = run(diamond, GTravel.v(0).e("to"))
    assert res.vertices == {1, 2}


def test_two_step_reaches_sink(diamond):
    res = run(diamond, GTravel.v(0).e("to").e("to"))
    assert res.vertices == {3}


def test_edge_filter_prunes_path(diamond):
    res = run(diamond, GTravel.v(0).e("to").ea("w", EQ, 1))
    assert res.vertices == {1}


def test_vertex_filter_after_step(diamond):
    res = run(diamond, GTravel.v(0).e("to").va("keep", EQ, 1))
    assert res.vertices == {1}


def test_source_filter(diamond):
    res = run(diamond, GTravel.v(0, 1).va("name", EQ, "b").e("to"))
    assert res.vertices == {3}


def test_all_vertices_source_with_type_filter(diamond):
    res = run(diamond, GTravel.v().va("type", EQ, "B"))
    assert res.vertices == {1, 2}


def test_missing_source_ids_ignored(diamond):
    res = run(diamond, GTravel.v(0, 999).e("to"))
    assert res.vertices == {1, 2}


def test_zero_step_returns_filtered_sources(diamond):
    res = run(diamond, GTravel.v(1, 2).va("keep", EQ, 0))
    assert res.vertices == {2}
    assert res.at_level(0) == {2}


def test_empty_result_when_filter_excludes_all(diamond):
    res = run(diamond, GTravel.v(0).e("to").ea("w", EQ, 42))
    assert res.vertices == frozenset()


def test_rtn_intermediate_requires_completed_path(diamond):
    # Return level-1 vertices whose onward edge has w == 1: both b and c do.
    res = run(diamond, GTravel.v(0).e("to").rtn().e("to").ea("w", EQ, 1))
    assert res.at_level(1) == {1, 2}


def test_rtn_intermediate_prunes_dead_ends():
    g = PropertyGraph()
    g.add_vertex(0, "A")
    g.add_vertex(1, "B")  # has onward edge
    g.add_vertex(2, "B")  # dead end
    g.add_vertex(3, "C")
    g.add_edge(0, 1, "to")
    g.add_edge(0, 2, "to")
    g.add_edge(1, 3, "to")
    res = run(g, GTravel.v(0).e("to").rtn().e("to"))
    assert res.at_level(1) == {1}
    assert 2 not in res.vertices


def test_rtn_source_level(diamond):
    res = run(diamond, GTravel.v(0, 1).rtn().e("to").e("to"))
    # both 0 and 1 have 2-step paths? 1 -> 3 -> (3 has no out-edges)
    assert res.at_level(0) == {0}


def test_multiple_rtn_levels(diamond):
    res = run(diamond, GTravel.v(0).rtn().e("to").rtn().e("to"))
    assert res.at_level(0) == {0}
    assert res.at_level(1) == {1, 2}
    assert res.at_level(2) == frozenset()  # final not marked -> not returned


def test_rtn_final_equals_default(diamond):
    with_rtn = run(diamond, GTravel.v(0).e("to").rtn())
    without = run(diamond, GTravel.v(0).e("to"))
    assert with_rtn.same_vertices(without)


def test_revisit_across_steps_allowed():
    """A cycle: the same vertex may appear at different levels (§II-C)."""
    g = PropertyGraph()
    g.add_vertex(0, "A")
    g.add_vertex(1, "A")
    g.add_edge(0, 1, "to")
    g.add_edge(1, 0, "to")
    res = run(g, GTravel.v(0).e("to").e("to"))
    assert res.vertices == {0}
    res4 = run(g, GTravel.v(0).e("to").e("to").e("to").e("to"))
    assert res4.vertices == {0}


def test_within_step_dedup():
    """Parallel edges produce the vertex once per level."""
    g = PropertyGraph()
    g.add_vertex(0, "A")
    g.add_vertex(1, "A")
    g.add_edge(0, 1, "to")
    g.add_edge(0, 1, "to")
    res = run(g, GTravel.v(0).e("to"))
    assert res.at_level(1) == {1}


def test_in_filter_on_vertices(diamond):
    res = run(diamond, GTravel.v(0).e("to").va("name", IN, ["b", "zzz"]))
    assert res.vertices == {1}


def test_range_filter_on_edges(diamond):
    res = run(diamond, GTravel.v(0).e("to").ea("w", RANGE, (0, 5)))
    assert res.vertices == {1}


def test_label_isolation():
    g = PropertyGraph()
    g.add_vertex(0, "A")
    g.add_vertex(1, "A")
    g.add_vertex(2, "A")
    g.add_edge(0, 1, "x")
    g.add_edge(0, 2, "y")
    assert run(g, GTravel.v(0).e("x")).vertices == {1}
    assert run(g, GTravel.v(0).e("y")).vertices == {2}
    assert run(g, GTravel.v(0).e("z")).vertices == set()


def test_run_with_stats_returns_reference_kind(diamond):
    from repro.engine import EngineKind

    engine = ReferenceEngine(diamond)
    result, stats = engine.run_with_stats(GTravel.v(0).e("to").compile())
    assert stats.engine is EngineKind.REFERENCE
    assert result.vertices == {1, 2}
