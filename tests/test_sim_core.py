"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(2.5)
        return "ok"
    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.5
    assert p.value == "ok"


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(0.5)
    sim.process(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(1.5)


def test_parallel_processes_overlap():
    sim = Simulator()
    done = []
    def proc(sim, dt, name):
        yield sim.timeout(dt)
        done.append((sim.now, name))
    sim.process(proc(sim, 3.0, "slow"))
    sim.process(proc(sim, 1.0, "fast"))
    sim.run()
    assert done == [(1.0, "fast"), (3.0, "slow")]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_value_delivered():
    sim = Simulator()
    ev = sim.event("x")
    def proc(sim, ev):
        value = yield ev
        return value * 2
    p = sim.process(proc(sim, ev))
    sim.schedule(1.0, lambda: ev.succeed(21))
    sim.run()
    assert p.value == 42


def test_event_double_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_inside_process():
    sim = Simulator()
    ev = sim.event()
    caught = []
    def proc(sim, ev):
        try:
            yield ev
        except ValueError as err:
            caught.append(str(err))
    sim.process(proc(sim, ev))
    sim.schedule(0.5, lambda: ev.fail(ValueError("boom")))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_fails_process():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(1)
        raise RuntimeError("bad")
    p = sim.process(proc(sim))
    sim.run()
    assert p.triggered and p.failed
    with pytest.raises(RuntimeError):
        _ = p.value


def test_process_waits_on_process():
    sim = Simulator()
    def child(sim):
        yield sim.timeout(2.0)
        return "child-done"
    def parent(sim):
        result = yield sim.process(child(sim))
        return f"got {result}"
    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "got child-done"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_yielding_non_event_fails_process():
    sim = Simulator()
    def proc(sim):
        yield 42
    p = sim.process(proc(sim))
    sim.run()
    assert p.failed


def test_run_until_event():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(5)
        return 7
    p = sim.process(proc(sim))
    assert sim.run_until(p) == 7
    assert sim.now == 5


def test_run_until_deadlock_detected():
    sim = Simulator()
    ev = sim.event("never")
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until(ev)


def test_run_until_limit():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(100)
    p = sim.process(proc(sim))
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until(p, limit=10)


def test_run_with_until_stops_clock():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(100)
    sim.process(proc(sim))
    assert sim.run(until=30) == 30
    assert sim.now == 30


def test_any_of_first_wins():
    sim = Simulator()
    def proc(sim):
        t1 = sim.timeout(5, "slow")
        t2 = sim.timeout(2, "fast")
        result = yield sim.any_of([t1, t2])
        return list(result.values())
    p = sim.process(proc(sim))
    sim.run_until(p)
    assert p.value == ["fast"]
    assert sim.now >= 2


def test_all_of_waits_for_all():
    sim = Simulator()
    def proc(sim):
        values = yield sim.all_of([sim.timeout(1, "a"), sim.timeout(3, "b")])
        return values
    p = sim.process(proc(sim))
    sim.run_until(p)
    assert p.value == ["a", "b"]
    assert sim.now == 3


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    def proc(sim):
        values = yield sim.all_of([])
        return values
    p = sim.process(proc(sim))
    sim.run()
    assert p.value == []


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


def test_interrupt_raises_in_process():
    sim = Simulator()
    log = []
    def proc(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            log.append(intr.cause)
            yield sim.timeout(1)
        return "recovered"
    p = sim.process(proc(sim))
    sim.schedule(2.0, lambda: p.interrupt("stop"))
    sim.run_until(p)
    assert log == ["stop"]
    assert p.value == "recovered"
    # the process finished at t=3; the abandoned timeout(100) stays queued
    assert sim.now == pytest.approx(3.0)
    sim.run()
    assert sim.now == pytest.approx(100.0)


def test_interrupt_finished_process_is_noop():
    sim = Simulator()
    def proc(sim):
        yield sim.timeout(1)
    p = sim.process(proc(sim))
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()
    assert not p.failed


def test_callback_on_triggered_event_fires_async():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("v")
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == []  # not synchronous
    sim.run()
    assert seen == ["v"]


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_max_events_guard():
    sim = Simulator()
    def proc(sim):
        while True:
            yield sim.timeout(1)
    sim.process(proc(sim))
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.schedule(4.2, lambda: None)
    assert sim.peek() == 4.2
    sim.run()
    assert sim.peek() == float("inf")


def test_orphan_crash_surfaces_in_run_until():
    """A process that dies with no waiter must not hang the run loop."""
    sim = Simulator()
    def worker(sim):
        yield sim.timeout(1)
        raise RuntimeError("worker died")
    sim.process(worker(sim), name="worker0")
    never = sim.event("never")
    sim.schedule(10.0, lambda: None)  # keep the heap non-empty past the crash
    with pytest.raises(SimulationError, match="worker0"):
        sim.run_until(never)


def test_waited_on_failure_is_not_orphan():
    sim = Simulator()
    def child(sim):
        yield sim.timeout(1)
        raise RuntimeError("child failure")
    def parent(sim):
        try:
            yield sim.process(child(sim))
        except RuntimeError:
            return "handled"
    p = sim.process(parent(sim))
    assert sim.run_until(p) == "handled"
    assert sim.orphan_failures == []


def test_determinism_two_identical_runs():
    def build():
        sim = Simulator()
        trace = []
        def proc(sim, name, dt):
            for i in range(3):
                yield sim.timeout(dt)
                trace.append((sim.now, name, i))
        sim.process(proc(sim, "a", 1.0))
        sim.process(proc(sim, "b", 1.0))
        sim.process(proc(sim, "c", 0.7))
        sim.run()
        return trace
    assert build() == build()
