"""Generative round-trip + corruption suite for the columnar adjacency codec.

The encode/decode pair must be an exact bijection on its domain — arbitrary
id sequences, sorted or not, duplicates and all — and every way a block can
be damaged (truncated varint, bit-flip anywhere, wrong magic, trailing
bytes) must raise the typed :class:`~repro.errors.CorruptAdjacencyBlock`.
Never silent garbage: a decode either returns exactly what was encoded or
raises.

Runs under a fixed, derandomized hypothesis profile so tier-1 stays
deterministic in CI.
"""

from __future__ import annotations

import struct
import zlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import CorruptAdjacencyBlock
from repro.storage.columnar import (
    AdjacencyBlock,
    block_entry_count,
    decode_block,
    encode_block,
    zigzag_decode,
    zigzag_encode,
)

# Fixed profile: derandomized (same examples every run, so tier-1 stays
# deterministic in CI) and without the wall-clock deadline (CI machines jitter).
settings.register_profile(
    "columnar-fixed", settings(derandomize=True, deadline=None, max_examples=60)
)
settings.load_profile("columnar-fixed")

#: arbitrary id sequences: unsorted, duplicate-bearing, empty, negative
ids_lists = st.lists(
    st.integers(min_value=-(2**62), max_value=2**62), max_size=64
)
#: realistic neighbor columns: non-negative vertex ids
vid_lists = st.lists(st.integers(min_value=0, max_value=2**62), max_size=64)

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
props_dicts = st.dictionaries(st.text(min_size=1, max_size=8), scalar, max_size=4)


def reframe(body: bytes) -> bytes:
    """Re-seal a (possibly damaged) body under a *valid* CRC, so decode
    failures exercise the framing checks rather than the checksum."""
    return body + struct.pack(">I", zlib.crc32(body))


# -- round-trip properties ----------------------------------------------------


@given(st.integers(min_value=-(2**62), max_value=2**62))
def test_zigzag_roundtrip(n):
    assert zigzag_decode(zigzag_encode(n)) == n
    assert zigzag_encode(n) >= 0


@given(ids_lists)
def test_id_column_roundtrips_exactly(ids):
    """Arbitrary sequences — unsorted, duplicates, negatives, empty — come
    back exactly, in order."""
    assert decode_block(encode_block(ids)) == list(ids)


@given(vid_lists)
def test_sorted_column_roundtrips_and_counts(vids):
    ordered = sorted(vids)
    buf = encode_block(ordered)
    assert decode_block(buf) == ordered
    assert block_entry_count(buf) == len(ordered)


def test_empty_block_roundtrip():
    buf = encode_block([])
    assert decode_block(buf) == []
    assert block_entry_count(buf) == 0


def test_duplicates_and_inversions_roundtrip():
    ids = [7, 7, 3, 3, 3, 900, 1]
    assert decode_block(encode_block(ids)) == ids


@given(vid_lists, st.data())
def test_adjacency_block_roundtrips(vids, data):
    """Full blocks (ids + per-edge property column) round-trip through
    encode/decode, both all-empty-props (elided column) and mixed."""
    props = tuple(data.draw(props_dicts) for _ in vids)
    if not any(props):
        props = ()
    block = AdjacencyBlock(5, "cites", tuple(vids), props)
    back = AdjacencyBlock.decode(5, "cites", block.encode())
    assert back.targets == tuple(vids)
    assert back.pairs() == block.pairs()


@given(vid_lists)
def test_from_edges_sorts_by_destination(vids):
    block = AdjacencyBlock.from_edges(1, "ref", [(v, {}) for v in vids])
    assert list(block.targets) == sorted(vids)


def test_sorted_dense_ids_compress():
    """The point of the layout: sorted neighbor columns take far fewer
    bytes than 8-byte-per-id storage."""
    ids = list(range(1000, 2000))
    assert len(encode_block(ids)) < 8 * len(ids) / 3


# -- corruption: every damage mode raises the typed error --------------------


@given(ids_lists.filter(lambda l: len(l) > 0), st.data())
def test_any_bitflip_raises_typed_error(ids, data):
    """CRC32 catches every single-bit flip; magic/frame checks catch the
    rest. No flip may ever decode silently."""
    buf = bytearray(encode_block(ids))
    i = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    buf[i] ^= 1 << bit
    with pytest.raises(CorruptAdjacencyBlock):
        decode_block(bytes(buf))


@given(ids_lists, st.data())
def test_any_truncation_raises_typed_error(ids, data):
    buf = encode_block(ids)
    cut = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
    with pytest.raises(CorruptAdjacencyBlock):
        decode_block(buf[:cut])


def test_truncated_varint_specifically():
    """Cut the delta column mid-varint under a *valid* CRC: the varint
    decoder itself must catch the truncation."""
    body = encode_block([1, 300, 70_000])[:-4]
    for cut in range(2, len(body)):
        with pytest.raises(CorruptAdjacencyBlock):
            decode_block(reframe(body[:cut]))


def test_count_overrunning_payload():
    """A count claiming more ids than the payload holds is truncation."""
    body = bytearray(encode_block([4, 9])[:-4])
    body[1] = 7  # count varint says 7, only 2 deltas follow
    with pytest.raises(CorruptAdjacencyBlock):
        decode_block(reframe(bytes(body)))


def test_trailing_bytes_rejected():
    body = encode_block([4, 9])[:-4] + b"\x00\x00"
    with pytest.raises(CorruptAdjacencyBlock):
        decode_block(reframe(body))


def test_wrong_magic_rejected():
    buf = bytearray(encode_block([1]))
    buf[0] = 0x00
    with pytest.raises(CorruptAdjacencyBlock):
        decode_block(bytes(buf))
    with pytest.raises(CorruptAdjacencyBlock):
        block_entry_count(bytes(buf))


def test_short_frames_rejected():
    for n in range(6):
        with pytest.raises(CorruptAdjacencyBlock):
            decode_block(b"\xc7" + b"\x00" * n)


@given(vid_lists.filter(lambda l: len(l) > 0), st.data())
def test_adjacency_block_bitflip_raises(vids, data):
    block = AdjacencyBlock.from_edges(3, "link", [(v, {"w": 1}) for v in vids])
    buf = bytearray(block.encode())
    i = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
    bit = data.draw(st.integers(min_value=0, max_value=7))
    buf[i] ^= 1 << bit
    with pytest.raises(CorruptAdjacencyBlock):
        AdjacencyBlock.decode(3, "link", bytes(buf))


def test_adjacency_block_bad_props_flag():
    block = AdjacencyBlock(1, "x", (2, 3))
    body = bytearray(block.encode()[:-4])
    body[-1] = 9  # props flag must be 0 or 1
    with pytest.raises(CorruptAdjacencyBlock):
        AdjacencyBlock.decode(1, "x", reframe(bytes(body)))


def test_props_length_mismatch_rejected():
    with pytest.raises(CorruptAdjacencyBlock):
        AdjacencyBlock(1, "x", (2, 3), ({"a": 1},))
