"""Tests for edge-cut and vertex-cut partitioning."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph import PropertyGraph
from repro.partition import (
    GreedyBalancedEdgeCut,
    HashEdgeCut,
    VertexCutResult,
    evaluate_partition,
    greedy_vertex_cut,
    make_partitioner,
    splitmix64,
)
from repro.workloads import paper_rmat1, rmat_graph


def skewed_graph() -> PropertyGraph:
    g = PropertyGraph()
    for i in range(20):
        g.add_vertex(i, "A")
    # vertex 0 is a hub with 15 out-edges; others sparse
    for i in range(1, 16):
        g.add_edge(0, i, "to")
    g.add_edge(1, 2, "to")
    g.add_edge(3, 4, "to")
    return g


def test_splitmix64_deterministic_and_spread():
    assert splitmix64(1) == splitmix64(1)
    values = {splitmix64(i) % 8 for i in range(64)}
    assert len(values) == 8  # hits every bucket


def test_hash_edge_cut_covers_all_vertices():
    g = skewed_graph()
    part = HashEdgeCut(4)
    assignment = part.assign(g)
    assert sum(len(p) for p in assignment) == g.num_vertices
    flat = [v for p in assignment for v in p]
    assert sorted(flat) == sorted(g.vertex_ids())


def test_hash_edge_cut_stable():
    part = HashEdgeCut(8)
    assert all(part.owner(v) == part.owner(v) for v in range(100))


def test_hash_salt_changes_assignment():
    a = HashEdgeCut(8, salt=0)
    b = HashEdgeCut(8, salt=12345)
    assert any(a.owner(v) != b.owner(v) for v in range(100))


def test_single_server_owns_everything():
    part = HashEdgeCut(1)
    assert all(part.owner(v) == 0 for v in range(50))


def test_invalid_server_count():
    with pytest.raises(PartitionError):
        HashEdgeCut(0)


def test_greedy_balances_edges_better_than_hash():
    g = rmat_graph(paper_rmat1(scale=8, edge_factor=8))
    hash_report = evaluate_partition(g, HashEdgeCut(8))
    greedy_report = evaluate_partition(g, GreedyBalancedEdgeCut(8).fit(g))
    assert greedy_report.edge_imbalance <= hash_report.edge_imbalance
    assert greedy_report.edge_imbalance < 1.2


def test_greedy_requires_fit():
    part = GreedyBalancedEdgeCut(4)
    with pytest.raises(PartitionError):
        part.owner(1)


def test_make_partitioner_factory():
    g = skewed_graph()
    assert isinstance(make_partitioner("hash", 4), HashEdgeCut)
    assert isinstance(make_partitioner("greedy", 4, graph=g), GreedyBalancedEdgeCut)
    with pytest.raises(PartitionError):
        make_partitioner("greedy", 4)
    with pytest.raises(PartitionError):
        make_partitioner("nope", 4)


def test_partition_report_metrics():
    g = skewed_graph()
    report = evaluate_partition(g, HashEdgeCut(4))
    assert report.vertex_loads.sum() == g.num_vertices
    assert report.edge_loads.sum() == g.num_edges
    assert report.byte_loads.sum() > 0
    d = report.as_dict()
    assert d["nservers"] == 4
    assert d["edge_imbalance"] >= 1.0


def test_vertex_cut_covers_all_edges():
    g = skewed_graph()
    result = greedy_vertex_cut(g, 4)
    assert isinstance(result, VertexCutResult)
    assert result.edge_loads.sum() == g.num_edges
    # every vertex has at least one replica
    assert set(result.replicas) == set(g.vertex_ids())


def test_vertex_cut_replication_factor_bounds():
    g = skewed_graph()
    result = greedy_vertex_cut(g, 4)
    assert 1.0 <= result.replication_factor <= 4.0


def test_vertex_cut_balances_hub_edges():
    """The greedy vertex-cut splits the hub's edges across servers, which an
    edge-cut cannot do — the property the paper's §VI discussion cites."""
    g = skewed_graph()
    vc = greedy_vertex_cut(g, 4)
    ec = evaluate_partition(g, HashEdgeCut(4))
    assert vc.edge_imbalance <= ec.edge_imbalance


def test_vertex_cut_invalid_servers():
    with pytest.raises(PartitionError):
        greedy_vertex_cut(skewed_graph(), 0)


def test_hash_partition_roughly_uniform_on_rmat():
    g = rmat_graph(paper_rmat1(scale=8, edge_factor=4))
    report = evaluate_partition(g, HashEdgeCut(8))
    assert report.vertex_imbalance < 1.3
    loads = report.vertex_loads
    assert loads.min() > 0.5 * loads.mean()
