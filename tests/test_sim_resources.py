"""Unit tests for simulation resources, stores, and the token bucket."""

import pytest

from repro.errors import SimulationError
from repro.sim import PriorityStore, Resource, Simulator, Store, TokenBucket


def test_resource_grants_up_to_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2 = res.request(), res.request()
    assert r1.triggered and r2.triggered
    r3 = res.request()
    assert not r3.triggered
    assert res.queue_length == 1


def test_resource_release_grants_waiter():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    r1 = res.request()
    r2 = res.request()
    res.release(r1)
    assert r2.triggered
    assert res.in_use == 1


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    first = res.request()
    waiters = [res.request() for _ in range(3)]
    res.release(first)
    assert waiters[0].triggered and not waiters[1].triggered
    res.release(waiters[0])
    assert waiters[1].triggered


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = Resource(sim, capacity=1, priority=True)
    holder = res.request()
    low = res.request(priority=5)
    high = res.request(priority=1)
    res.release(holder)
    assert high.triggered and not low.triggered


def test_resource_process_usage_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    times = []
    def user(sim, res, dt):
        req = res.request()
        yield req
        yield sim.timeout(dt)
        res.release(req)
        times.append(sim.now)
    sim.process(user(sim, res, 2.0))
    sim.process(user(sim, res, 3.0))
    sim.run()
    assert times == [2.0, 5.0]


def test_release_foreign_request_rejected():
    sim = Simulator()
    res_a, res_b = Resource(sim), Resource(sim)
    req = res_a.request()
    with pytest.raises(SimulationError):
        res_b.release(req)


def test_release_idle_resource_rejected():
    sim = Simulator()
    res = Resource(sim)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_release_ungranted_request_cancels_it():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    held = res.request()
    waiting = res.request()
    res.release(waiting)  # cancel the queued claim
    assert res.queue_length == 0
    assert res.in_use == 1
    res.release(held)
    assert res.in_use == 0


def test_zero_capacity_rejected():
    with pytest.raises(SimulationError):
        Resource(Simulator(), capacity=0)


def test_store_fifo():
    sim = Simulator()
    store = Store(sim)
    store.put("a")
    store.put("b")
    g1, g2 = store.get(), store.get()
    sim.run()
    assert g1.value == "a" and g2.value == "b"


def test_store_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []
    def consumer(sim, store):
        item = yield store.get()
        got.append((sim.now, item))
    sim.process(consumer(sim, store))
    sim.schedule(3.0, lambda: store.put("late"))
    sim.run()
    assert got == [(3.0, "late")]


def test_priority_store_pops_smallest():
    sim = Simulator()
    store = PriorityStore(sim)
    store.put((5, 1, "five"))
    store.put((1, 2, "one"))
    store.put((3, 3, "three"))
    g = store.get()
    sim.run()
    assert g.value == (1, 2, "one")


def test_priority_store_waiting_getter_bypasses_heap():
    sim = Simulator()
    store = PriorityStore(sim)
    g = store.get()
    store.put((9, 0, "x"))
    sim.run()
    assert g.value == (9, 0, "x")


def test_priority_store_drain_matching():
    sim = Simulator()
    store = PriorityStore(sim)
    for i in range(6):
        store.put((i, i, f"item{i}"))
    taken = store.drain_matching(lambda item: item[0] % 2 == 0)
    assert [t[2] for t in taken] == ["item0", "item2", "item4"]
    g = store.get()
    sim.run()
    assert g.value == (1, 1, "item1")
    assert len(store) == 2


def test_token_bucket_delays_when_drained():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=10.0, burst=5.0)
    assert bucket.delay_for(5.0) == 0.0  # burst covers it
    delay = bucket.delay_for(10.0)
    assert delay == pytest.approx(1.0)  # 10 units at 10/sec


def test_token_bucket_refills_over_time():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=2.0)
    bucket.delay_for(2.0)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert bucket.delay_for(2.0) == 0.0


def test_token_bucket_validates_params():
    with pytest.raises(SimulationError):
        TokenBucket(Simulator(), rate=0, burst=1)
