"""Tests for the GraphStore layout (graph partition on the LSM store)."""

import pytest

from repro.errors import KeyNotFound
from repro.graph import GraphBuilder, hpc_metadata_schema
from repro.storage import GraphStore, LSMConfig


@pytest.fixture()
def sample():
    b = GraphBuilder(schema=hpc_metadata_schema())
    u = b.vertex("User", name="sam", uid=7)
    j = b.vertex("Job", jobid=1, ts=10.0)
    e1 = b.vertex("Execution", model="A", ts=11.0)
    f1 = b.vertex("File", name="/d/x.txt", kind="text")
    f2 = b.vertex("File", name="/d/y.bin", kind="binary")
    b.edge(u, j, "run", ts=10.0)
    b.edge(j, e1, "hasExecutions", ts=11.0)
    b.edge(e1, f1, "read", ts=11.5)
    b.edge(e1, f2, "read", ts=11.6)
    b.edge(e1, f2, "write", ts=11.7)
    graph = b.build()
    return graph, (u, j, e1, f1, f2)


def loaded_store(graph, vids):
    store = GraphStore(LSMConfig())
    store.load_partition(graph, vids)
    return store


def test_load_partition_counts(sample):
    graph, vids = sample
    store = loaded_store(graph, vids)
    assert store.vertex_count() == 5
    assert sorted(store.local_vertices()) == sorted(vids)


def test_vertex_props_include_type(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    props, cost = store.vertex_props(u)
    assert props["name"] == "sam"
    assert props["uid"] == 7
    assert props["type"] == "User"
    assert cost.seeks >= 1  # attribute scan hits the SSTable


def test_edges_by_label(sample):
    graph, (u, j, e1, f1, f2) = sample
    store = loaded_store(graph, [e1])
    reads, _ = store.edges(e1, "read")
    assert sorted(dst for dst, _ in reads) == sorted([f1, f2])
    writes, _ = store.edges(e1, "write")
    assert [dst for dst, _ in writes] == [f2]
    assert store.edges(e1, "nonexistent")[0] == []


def test_edge_props_roundtrip(sample):
    graph, (u, j, *_rest) = sample
    store = loaded_store(graph, [u])
    edges, _ = store.edges(u, "run")
    assert edges == [(j, {"ts": 10.0})]


def test_all_edges_grouped(sample):
    graph, (_u, _j, e1, f1, f2) = sample
    store = loaded_store(graph, [e1])
    all_edges, _ = store.all_edges(e1)
    labels = sorted(set(label for label, _, _ in all_edges))
    assert labels == ["hasExecutions", "read", "write"] or labels == ["read", "write"]
    # e1 has no hasExecutions out-edge; only read/read/write
    assert len(all_edges) == 3


def test_vertices_of_type_index(sample):
    graph, (u, j, e1, f1, f2) = sample
    store = loaded_store(graph, [u, j, e1, f1, f2])
    assert sorted(store.local_vertices_of_type("File")) == sorted([f1, f2])
    assert store.local_vertices_of_type("Nothing") == []


def test_remote_vertex_raises(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    assert not store.has_vertex(999)
    with pytest.raises(KeyNotFound):
        store.vertex_props(999)
    with pytest.raises(KeyNotFound):
        store.edges(999, "run")


def test_namespace_of(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    assert store.namespace_of(u) == "User"
    assert store.namespace_of(999) is None


def test_live_insert_vertex_and_edge(sample):
    graph, (u, j, *_rest) = sample
    store = loaded_store(graph, [u])
    store.insert_vertex(100, "Job", {"jobid": 2})
    props, _ = store.vertex_props(100)
    assert props["jobid"] == 2 and props["type"] == "Job"
    store.insert_edge(u, 100, "run", {"ts": 20.0})
    edges, _ = store.edges(u, "run")
    assert (100, {"ts": 20.0}) in edges
    assert (j, {"ts": 10.0}) in edges


def test_live_insert_edge_sequencing(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    for i in range(3):
        store.insert_edge(u, 200 + i, "run", {"n": i})
    edges, _ = store.edges(u, "run")
    assert len(edges) == 4  # 1 loaded + 3 live


def test_set_vertex_prop_overwrites(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    store.set_vertex_prop(u, "name", "sammy")
    props, _ = store.vertex_props(u)
    assert props["name"] == "sammy"


def test_delete_vertex_removes_everything(sample):
    graph, (u, *_rest) = sample
    store = loaded_store(graph, [u])
    store.delete_vertex(u)
    assert not store.has_vertex(u)
    assert store.local_vertices_of_type("User") == []
    with pytest.raises(KeyNotFound):
        store.vertex_props(u)


def test_vertex_without_props_still_discoverable():
    b = GraphBuilder()
    v = b.vertex("Bare")
    graph = b.build()
    store = loaded_store(graph, [v])
    props, _ = store.vertex_props(v)
    assert props == {"type": "Bare"}


def test_cold_start_clears_block_cache(sample):
    graph, vids = sample
    store = GraphStore(LSMConfig(block_cache_blocks=64))
    store.load_partition(graph, vids)
    _, cold1 = store.vertex_props(vids[0])
    _, warm = store.vertex_props(vids[0])
    assert warm.blocks == 0
    store.cold_start()
    _, cold2 = store.vertex_props(vids[0])
    assert cold2.blocks >= 1


def test_empty_partition_is_fine(sample):
    graph, _ = sample
    store = GraphStore(LSMConfig())
    assert store.load_partition(graph, []) == 0
    assert store.vertex_count() == 0
