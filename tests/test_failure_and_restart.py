"""Failure detection, traversal restart, and straggler-injection tests."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterConfig,
    CoordinatorConfig,
    ExternalInterference,
    StragglerSpec,
    paper_interference,
)
from repro.engine import EngineKind, ReferenceEngine
from repro.errors import TraversalFailed
from repro.ids import COORDINATOR
from repro.lang import GTravel
from repro.net.message import TraverseRequest
from tests.conftest import ALL_ENGINES


def fast_watchdog(**kwargs):
    return CoordinatorConfig(exec_timeout=0.5, watch_interval=0.1, **kwargs)


def test_lost_dispatch_detected_and_restarted(metadata_graph):
    """Drop the first inter-server dispatch: the execution never terminates,
    the watchdog times out, and the restarted attempt succeeds (§IV-C)."""
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK,
                      coordinator_config=fast_watchdog()),
    )
    dropped = []

    def drop_first_forward(src, dst, msg):
        if (
            isinstance(msg, TraverseRequest)
            and msg.level > 0
            and msg.attempt == 0
            and not dropped
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_first_forward
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped, "test premise: a dispatch must have been dropped"
    assert out.stats.restarts == 1
    expected = ReferenceEngine(graph).run(plan)
    assert out.result.same_vertices(expected)


def test_persistent_failure_exhausts_restarts(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK,
                      coordinator_config=fast_watchdog(max_restarts=1)),
    )
    # every forward dispatch to server 1 vanishes, in every attempt
    cluster.runtime.drop_filter = lambda src, dst, msg: (
        isinstance(msg, TraverseRequest) and dst == 1 and msg.level > 0 and src != dst
    )
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    with pytest.raises(TraversalFailed, match="restarts"):
        cluster.traverse(plan)


def test_sync_engine_restart_after_lost_batch(metadata_graph):
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=EngineKind.SYNC,
                      coordinator_config=fast_watchdog()),
    )
    dropped = []

    def drop_one(src, dst, msg):
        from repro.net.message import SyncBatch
        if (
            isinstance(msg, SyncBatch)
            and msg.attempt == 0
            and not dropped
            and src != COORDINATOR
        ):
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_one
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert out.stats.restarts == 1
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_restart_does_not_duplicate_results(metadata_graph):
    """Results reported by the failed attempt must not leak into the final
    result set (attempt-tagged messages are discarded)."""
    graph, ids = metadata_graph
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK,
                      coordinator_config=fast_watchdog()),
    )
    state = {"dropped": False}

    def drop_late(src, dst, msg):
        # drop a level-2 dispatch so level-1 work completes (and may report)
        if (
            isinstance(msg, TraverseRequest)
            and msg.level == 2
            and msg.attempt == 0
            and not state["dropped"]
        ):
            state["dropped"] = True
            return True
        return False

    cluster.runtime.drop_filter = drop_late
    plan = GTravel.v(*ids["users"]).rtn().e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


# -- straggler injection -------------------------------------------------------------

def test_interference_policy_budget():
    policy = ExternalInterference([StragglerSpec(server=1, level=3, delay=0.05, count=2)])
    assert policy.delay(1, 3) == 0.05
    assert policy.delay(1, 3) == 0.05
    assert policy.delay(1, 3) == 0.0  # budget exhausted
    assert policy.injected == 2
    assert policy.remaining() == 0


def test_interference_only_matching_server_level():
    policy = ExternalInterference([StragglerSpec(server=1, level=3)])
    assert policy.delay(0, 3) == 0.0
    assert policy.delay(1, 2) == 0.0
    assert policy.delay(1, None) == 0.0


def test_paper_interference_round_robin():
    policy = paper_interference(servers=(4, 5, 6), levels=(1, 3, 7))
    specs = {(s.server, s.level) for s in policy.specs}
    assert specs == {(4, 1), (5, 3), (6, 7)}


def test_interference_slows_traversal(metadata_graph):
    graph, ids = metadata_graph
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()
    base = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.SYNC))
    slow = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.SYNC,
            interference=ExternalInterference(
                [StragglerSpec(server=s, level=1, delay=0.01, count=100) for s in range(3)]
            ),
        ),
    )
    t_base = base.traverse(plan).stats.elapsed
    t_slow = slow.traverse(plan).stats.elapsed
    assert t_slow > t_base


def test_interference_identical_for_both_engines(metadata_graph):
    """The paper's fairness requirement: fixed deterministic delays mean both
    engines face the same injected interference budget."""
    graph, ids = metadata_graph
    plan = GTravel.v(*ids["users"]).e("run").e("hasExecutions").compile()
    injected = []
    for kind in (EngineKind.SYNC, EngineKind.GRAPHTREK):
        policy = ExternalInterference([StragglerSpec(server=0, level=1, delay=0.005, count=50)])
        cluster = Cluster.build(
            graph, ClusterConfig(nservers=3, engine=kind, interference=policy)
        )
        out = cluster.traverse(plan)
        assert out.result.vertices  # sanity: the traversal returned something
        injected.append(policy.injected)
    assert injected[0] > 0
    # both engines visit the same unique (level, vertex) work on that server
    assert injected[0] == injected[1]
