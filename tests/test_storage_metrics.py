"""Storage-layer metric counters, checked against hand-computed values.

The block cache's hit/miss/eviction counters and the bloom filters'
probe/negative counters feed the observability gauges, so each one is pinned
to an exactly computable scenario on tiny fixtures.
"""

from __future__ import annotations

from repro.storage import BlockCache, BloomFilter, LSMConfig, LSMStore


# -- block cache --------------------------------------------------------------

def test_blockcache_hits_misses_evictions_hand_computed():
    cache = BlockCache(capacity_blocks=2)
    assert cache.access(1, 0) is False  # miss, resident {A}
    assert cache.access(1, 0) is True   # hit
    assert cache.access(1, 1) is False  # miss, resident {A, B}
    assert cache.access(1, 2) is False  # miss, evicts A (LRU)
    assert cache.access(1, 0) is False  # miss again (was evicted), evicts B
    assert cache.stats_dict() == {
        "hits": 1, "misses": 4, "evictions": 2, "resident_blocks": 2,
    }


def test_blockcache_zero_capacity_never_evicts():
    cache = BlockCache(0)
    for block in range(5):
        assert cache.access(1, block) is False
    assert cache.stats_dict() == {
        "hits": 0, "misses": 5, "evictions": 0, "resident_blocks": 0,
    }


def test_blockcache_reset_stats_clears_evictions():
    cache = BlockCache(1)
    cache.access(1, 0)
    cache.access(1, 1)  # evicts block 0
    assert cache.evictions == 1
    cache.reset_stats()
    assert cache.stats_dict() == {
        "hits": 0, "misses": 0, "evictions": 0, "resident_blocks": 1,
    }


def test_blockcache_clear_keeps_counters():
    cache = BlockCache(4)
    cache.access(1, 0)
    cache.access(1, 0)
    cache.clear()  # cold start: drops blocks, keeps counters
    assert cache.hits == 1 and cache.misses == 1
    assert cache.stats_dict()["resident_blocks"] == 0


# -- bloom filter --------------------------------------------------------------

def test_bloom_probe_and_negative_counters():
    bloom = BloomFilter(100, 0.01)
    present = [f"in-{i}".encode() for i in range(100)]
    bloom.update(present)
    for key in present:
        assert key in bloom  # no false negatives, 100 probes
    absent_hits = 0
    for i in range(200):
        if f"out-{i}".encode() in bloom:
            absent_hits += 1  # false positive
    assert bloom.probes == 300
    # every non-negative probe on an absent key is a false positive
    assert bloom.negatives == 200 - absent_hits
    assert bloom.negatives + absent_hits + 100 == bloom.probes


def test_bloom_counters_start_at_zero():
    bloom = BloomFilter(10)
    assert bloom.probes == 0 and bloom.negatives == 0
    bloom.add(b"x")
    assert bloom.probes == 0  # add() does not probe


# -- LSM store snapshot --------------------------------------------------------

def _loaded_store(cache_blocks: int = 8) -> LSMStore:
    store = LSMStore(LSMConfig(block_cache_blocks=cache_blocks))
    store.bulk_load((f"k{i:03d}".encode(), b"v" * 8) for i in range(64))
    return store


def test_lsm_metrics_snapshot_tracks_bloom_negatives():
    store = _loaded_store()
    snap0 = store.metrics_snapshot()
    assert snap0["bloom.probes"] == 0
    assert snap0["lsm.table_count"] == 1

    value, _ = store.get(b"k001")
    assert value == b"v" * 8
    # an in-range missing key: the range check cannot short-circuit, so the
    # bloom filter itself must answer (or give a false positive)
    missing, _ = store.get(b"k010x")
    assert missing is None

    snap = store.metrics_snapshot()
    assert snap["lsm.gets"] == 2
    assert snap["bloom.probes"] == 2
    # the miss was answered by the filter or paid a false-positive probe
    assert (
        snap["bloom.negatives"] + snap["lsm.bloom_false_positives"] == 1
    )


def test_lsm_metrics_snapshot_tracks_cache_counters():
    store = _loaded_store(cache_blocks=8)
    store.get(b"k010")
    store.get(b"k010")  # same entry: second read hits the block cache
    snap = store.metrics_snapshot()
    assert snap["blockcache.hits"] >= 1
    assert snap["blockcache.misses"] >= 1
    assert snap["blockcache.resident_blocks"] >= 1


def test_lsm_metrics_snapshot_has_no_table_ids():
    """SSTable ids come from a process-global counter; exporting them would
    break byte-identical snapshots across cluster builds."""
    store = _loaded_store()
    assert all("table_id" not in key for key in store.metrics_snapshot())


def test_lsm_metrics_snapshot_aggregates_multiple_tables():
    store = LSMStore(LSMConfig(block_cache_blocks=4))
    store.bulk_load([(b"a", b"1"), (b"c", b"3")])
    store.bulk_load([(b"a", b"1new"), (b"d", b"4")])
    assert store.metrics_snapshot()["lsm.table_count"] == 2
    store.get(b"b")  # in both tables' key ranges: two bloom probes
    snap = store.metrics_snapshot()
    assert snap["bloom.probes"] == 2
    assert (
        snap["bloom.negatives"] + snap["lsm.bloom_false_positives"] == 2
    )
