"""Tests for the RMAT and metadata-graph workload generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import hpc_metadata_schema, in_degree_stats, out_degree_stats
from repro.graph.property import props_size_bytes
from repro.workloads import (
    PAPER_TABLE2,
    YEAR,
    MetadataGraphConfig,
    RMATConfig,
    data_audit_query,
    generate_metadata_graph,
    paper_rmat1,
    paper_scaled_config,
    pick_start_vertex,
    provenance_query,
    rmat_kstep_query,
    suspicious_user_query,
)
from repro.workloads.rmat import rmat_edge_array, rmat_graph


# -- RMAT ------------------------------------------------------------------------

def test_rmat_edge_counts():
    cfg = RMATConfig(scale=8, edge_factor=4, seed=1)
    edges = rmat_edge_array(cfg)
    assert edges.shape == (256 * 4, 2)
    assert edges.min() >= 0 and edges.max() < 256


def test_rmat_deterministic():
    cfg = paper_rmat1(scale=7)
    assert np.array_equal(rmat_edge_array(cfg), rmat_edge_array(cfg))


def test_rmat_seed_changes_graph():
    a = rmat_edge_array(paper_rmat1(scale=7, seed=1))
    b = rmat_edge_array(paper_rmat1(scale=7, seed=2))
    assert not np.array_equal(a, b)


def test_rmat_parameters_validated():
    with pytest.raises(GraphError):
        RMATConfig(a=0.5, b=0.5, c=0.5, d=0.5)
    with pytest.raises(GraphError):
        RMATConfig(scale=0)
    with pytest.raises(GraphError):
        RMATConfig(edge_factor=0)


def test_rmat_paper_params_produce_skew():
    """a=0.45 concentrates edges on low-id vertices (power-law skew)."""
    cfg = paper_rmat1(scale=10, edge_factor=8)
    graph = rmat_graph(cfg)
    out = out_degree_stats(graph)
    assert out.maximum > 4 * out.mean  # heavy tail
    assert out.gini > 0.3
    inn = in_degree_stats(graph)
    assert inn.maximum > 4 * inn.mean


def test_rmat_uniform_params_produce_little_skew():
    cfg = RMATConfig(scale=10, edge_factor=8, a=0.25, b=0.25, c=0.25, d=0.25)
    out = out_degree_stats(rmat_graph(cfg))
    assert out.gini < 0.3


def test_rmat_graph_attribute_sizes():
    cfg = paper_rmat1(scale=6)
    graph = rmat_graph(cfg)
    for vid in list(graph.vertex_ids())[:10]:
        size = props_size_bytes(graph.vertex(vid).props)
        assert 100 <= size <= 160  # ~128 bytes, as in the paper


def test_rmat_graph_single_label():
    graph = rmat_graph(paper_rmat1(scale=6))
    assert graph.edge_labels() == {"link"}


def test_pick_start_vertex_has_degree():
    cfg = paper_rmat1(scale=8)
    src = pick_start_vertex(cfg, min_degree=2)
    graph = rmat_graph(cfg)
    assert graph.out_degree(src) >= 2


def test_pick_start_vertex_deterministic():
    cfg = paper_rmat1(scale=8)
    assert pick_start_vertex(cfg) == pick_start_vertex(cfg)


# -- metadata graph ------------------------------------------------------------------

@pytest.fixture(scope="module")
def md():
    return generate_metadata_graph(MetadataGraphConfig(users=16, files=512, seed=3))


def test_metadata_counts_consistent(md):
    stats = md.stats
    assert stats.users == 16 and stats.files == 512
    assert stats.jobs == len(md.job_ids)
    assert stats.executions == len(md.execution_ids)
    assert md.graph.num_edges == stats.edges
    assert md.graph.num_vertices == stats.users + stats.jobs + stats.executions + stats.files


def test_metadata_schema_valid(md):
    """Generation went through the schema-checked builder, so every edge
    already satisfies hpc_metadata_schema; spot-check the labels exist."""
    labels = md.graph.edge_labels()
    for label in ("run", "hasExecutions", "exe", "read", "write", "readBy"):
        assert label in labels, label


def test_metadata_read_edges_have_reverse(md):
    assert md.stats.by_label["read"] == md.stats.by_label["readBy"]
    assert md.stats.by_label["write"] == md.stats.by_label["writtenBy"]


def test_metadata_timestamps_in_year(md):
    for jid in md.job_ids[:50]:
        ts = md.graph.vertex(jid).props["ts"]
        assert 0 <= ts < YEAR


def test_metadata_power_law_file_popularity(md):
    inn = in_degree_stats(md.graph)
    assert inn.maximum > 10 * max(1.0, inn.p50)  # heavy-tailed popularity


def test_metadata_entity_chain(md):
    g = md.graph
    uid = md.user_ids[0]
    jobs = [dst for _, dst, _ in g.out_edges(uid, "run")]
    assert jobs, "power user 0 runs jobs"
    execs = [dst for _, dst, _ in g.out_edges(jobs[0], "hasExecutions")]
    assert execs
    assert g.vertex(execs[0]).vtype == "Execution"
    exes = [dst for _, dst, _ in g.out_edges(execs[0], "exe")]
    assert len(exes) == 1 and g.vertex(exes[0]).vtype == "File"


def test_metadata_deterministic():
    a = generate_metadata_graph(MetadataGraphConfig(users=8, files=128, seed=9))
    b = generate_metadata_graph(MetadataGraphConfig(users=8, files=128, seed=9))
    assert a.stats.row() == b.stats.row()
    assert a.graph.num_edges == b.graph.num_edges


def test_metadata_user_named(md):
    uid = md.user_named("user0003")
    assert md.graph.vertex(uid).props["name"] == "user0003"
    with pytest.raises(KeyError):
        md.user_named("nobody")


def test_paper_scaled_config_ratios():
    small = paper_scaled_config(0.5)
    big = paper_scaled_config(2.0)
    assert big.users > small.users
    assert big.files > small.files
    assert PAPER_TABLE2["jobs"] / PAPER_TABLE2["users"] > 100  # sanity on constants


def test_stats_ratios_normalized(md):
    ratios = md.stats.ratios()
    assert ratios["users"] == 1.0
    assert ratios["executions"] > ratios["jobs"] > 0


# -- canned queries -------------------------------------------------------------------

def test_audit_query_structure():
    plan = data_audit_query(5, 0.0, 100.0).compile()
    assert [s.label for s in plan.steps] == ["run", "hasExecutions", "read"]
    assert plan.return_levels == frozenset({3})


def test_provenance_query_structure():
    plan = provenance_query().compile()
    assert plan.source_ids is None
    assert plan.rtn_levels == frozenset({0})


def test_suspicious_user_query_is_paper_chain():
    plan = suspicious_user_query(9).compile()
    assert [s.label for s in plan.steps] == [
        "run", "hasExecutions", "write", "readBy", "write",
    ]
    assert plan.return_levels == frozenset({5})


def test_rmat_kstep_query_depth():
    plan = rmat_kstep_query(3, 8).compile()
    assert plan.num_steps == 8
    assert all(s.label == "link" for s in plan.steps)
