"""Tests for the multi-label step extension: ``e("read", "write")``."""

import pytest

from repro.engine import EngineKind, ReferenceEngine
from repro.errors import QueryError
from repro.lang import GTravel
from repro.lang.plan import Step
from tests.conftest import assert_engines_match_oracle


def test_e_accepts_multiple_labels():
    plan = GTravel.v(1).e("read", "write").compile()
    assert plan.steps[0].labels == ("read", "write")
    assert plan.steps[0].label == "read"  # display helper


def test_e_dedupes_labels():
    plan = GTravel.v(1).e("a", "b", "a").compile()
    assert plan.steps[0].labels == ("a", "b")


def test_e_rejects_empty_labels():
    with pytest.raises(QueryError):
        GTravel.v(1).e()
    with pytest.raises(QueryError):
        GTravel.v(1).e("a", "")


def test_step_accepts_single_string():
    step = Step("read")
    assert step.labels == ("read",)


def test_step_rejects_empty():
    with pytest.raises(QueryError):
        Step(())


def test_describe_shows_all_labels():
    text = GTravel.v(1).e("read", "write").describe()
    assert ".e('read', 'write')" in text


def test_reference_unions_labels(metadata_graph):
    graph, ids = metadata_graph
    ex = ids["execs"][0]
    multi = ReferenceEngine(graph).run(GTravel.v(ex).e("read", "write").compile())
    reads = ReferenceEngine(graph).run(GTravel.v(ex).e("read").compile())
    writes = ReferenceEngine(graph).run(GTravel.v(ex).e("write").compile())
    assert multi.vertices == reads.vertices | writes.vertices
    assert multi.vertices > reads.vertices or multi.vertices > writes.vertices


def test_engines_match_oracle_multilabel(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(*ids["execs"][:6]).e("read", "write", "exe")
    assert_engines_match_oracle(graph, q)


def test_multilabel_mid_chain_matches_oracle(metadata_graph):
    graph, ids = metadata_graph
    q = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read", "write")
    assert_engines_match_oracle(graph, q)


def test_multilabel_with_edge_filters(metadata_graph):
    from repro.lang import RANGE

    graph, ids = metadata_graph
    q = (
        GTravel.v(*ids["execs"])
        .e("read", "write")
        .ea("ts", RANGE, (0.0, 10.0))
    )
    assert_engines_match_oracle(graph, q)


def test_multilabel_touchfiles_idiom(metadata_graph):
    """The natural audit idiom this extension enables: every file an
    execution touched, regardless of how."""
    graph, ids = metadata_graph
    q = GTravel.v(*ids["execs"]).e("read", "write", "exe")
    ref, _ = assert_engines_match_oracle(graph, q)
    assert ref.vertices  # touches something
    for vid in ref.vertices:
        assert graph.vertex(vid).vtype == "File"
