"""Cross-runtime validation: the engines on real OS threads.

The threaded runtime runs the identical engine generators on worker threads
with per-server locks. Timings are nondeterministic wall clock, so these
tests assert *result-set parity* with the oracle and with the simulated
runtime — proving the engines do not depend on virtual-time semantics.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig, CoordinatorConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import EQ, GTravel
from repro.workloads import paper_rmat1, pick_start_vertex, rmat_graph, rmat_kstep_query

#: generous virtual-time watchdog so slow CI machines never trigger restarts
RELAXED = CoordinatorConfig(exec_timeout=1e6, watch_interval=50.0)


def threaded_cluster(graph, kind, nservers=3):
    return Cluster.build(
        graph,
        ClusterConfig(
            nservers=nservers,
            engine=kind,
            runtime="threaded",
            coordinator_config=RELAXED,
        ),
    )


@pytest.mark.parametrize("kind", [EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK])
def test_threaded_matches_oracle_metadata(metadata_graph, kind):
    graph, ids = metadata_graph
    plan = (
        GTravel.v(ids["users"][0]).e("run").e("hasExecutions").e("read").compile()
    )
    ref = ReferenceEngine(graph).run(plan)
    cluster = threaded_cluster(graph, kind)
    try:
        outcome = cluster.traverse(plan)
        assert outcome.result.same_vertices(ref)
        assert outcome.stats.elapsed > 0
    finally:
        cluster.shutdown()


def test_threaded_matches_simulated_on_rmat():
    cfg = paper_rmat1(scale=7, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    plan = rmat_kstep_query(src, 4).compile()
    sim_cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    sim_result = sim_cluster.traverse(plan).result
    thr_cluster = threaded_cluster(graph, EngineKind.GRAPHTREK)
    try:
        thr_result = thr_cluster.traverse(plan).result
        assert thr_result.same_vertices(sim_result)
    finally:
        thr_cluster.shutdown()


def test_threaded_rtn_semantics(metadata_graph):
    graph, ids = metadata_graph
    plan = GTravel.v(*ids["jobs"]).rtn().e("hasExecutions").va("model", EQ, "A").compile()
    ref = ReferenceEngine(graph).run(plan)
    cluster = threaded_cluster(graph, EngineKind.GRAPHTREK)
    try:
        assert cluster.traverse(plan).result.same_vertices(ref)
    finally:
        cluster.shutdown()


def test_threaded_sequential_traversals(metadata_graph):
    graph, ids = metadata_graph
    cluster = threaded_cluster(graph, EngineKind.GRAPHTREK)
    try:
        ref = ReferenceEngine(graph)
        for user in ids["users"]:
            plan = GTravel.v(user).e("run").compile()
            assert cluster.traverse(plan).result.same_vertices(ref.run(plan))
    finally:
        cluster.shutdown()


def test_threaded_shutdown_idempotent(metadata_graph):
    graph, _ = metadata_graph
    cluster = threaded_cluster(graph, EngineKind.SYNC)
    cluster.shutdown()
    cluster.shutdown()  # second call must not raise
