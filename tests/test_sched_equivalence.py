"""Differential concurrency harness for the scheduler (the PR's proof
obligation): N random traversals submitted concurrently under every
scheduler policy and every engine must return exactly what serial
single-traversal oracle runs return — scheduling reorders work, never
answers. A second leg reruns the matrix under a sampled fault plan with one
mid-run crash; a third asserts the scheduler itself is deterministic
(identical ``sched.*`` metric snapshots and byte-identical trace
serializations for repeated seeded runs)."""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.engine.options import options_for
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.sched import POLICY_NAMES, SchedulerConfig

from tests.conftest import ALL_ENGINES

SEEDS = range(10)

#: queueing is forced so policies actually reorder launches
SCHED = SchedulerConfig(
    max_inflight=2, tenant_weights={"interactive": 3.0, "batch": 1.0}
)


def random_graph(rng: random.Random, nvertices: int = 24, nedges: int = 72):
    g = PropertyGraph()
    for vid in range(nvertices):
        g.add_vertex(vid, "node", {"x": vid % 5})
    for _ in range(nedges):
        src = rng.randrange(nvertices)
        dst = rng.randrange(nvertices)
        g.add_edge(src, dst, rng.choice(("link", "ref")), {})
    return g


def random_queries(rng: random.Random, nvertices: int, n: int = 5):
    queries = []
    for _ in range(n):
        q = GTravel.v(rng.randrange(nvertices))
        for _ in range(rng.randint(1, 3)):
            q = q.e(rng.choice(("link", "ref")))
        if rng.random() < 0.3:
            q = q.rtn()
        queries.append(q.compile())
    return queries


def qos_specs(rng: random.Random, n: int):
    return [
        {"tenant": rng.choice(("interactive", "batch"))} for _ in range(n)
    ]


def normalize(returned: dict) -> dict:
    """Drop empty levels: engines omit them, the oracle may include them
    (``same_vertices`` semantics)."""
    return {lv: frozenset(vids) for lv, vids in returned.items() if vids}


def oracle_results(graph, plans):
    ref = ReferenceEngine(graph)
    return [normalize(ref.run(plan).returned) for plan in plans]


@pytest.mark.parametrize("policy", POLICY_NAMES)
@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_concurrent_matches_serial_oracle(engine: EngineKind, policy: str):
    """The differential contract across ≥10 seeds: concurrent execution
    through the scheduler returns the serial oracle's result sets."""
    for seed in SEEDS:
        rng = random.Random(seed)
        graph = random_graph(rng)
        plans = random_queries(rng, 24)
        expected = oracle_results(graph, plans)
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=3,
                engine=options_for(engine, scheduler=policy),
                scheduler_config=SCHED,
            ),
        )
        outcomes = cluster.traverse_many(
            plans, cold=False, qos=qos_specs(rng, len(plans))
        )
        for i, (outcome, want) in enumerate(zip(outcomes, expected)):
            got = normalize(outcome.result.returned)
            assert got == want, (
                f"seed={seed} {engine.value}/{policy} query {i}: "
                f"{got} != oracle {want}"
            )
        assert cluster.scheduler.queue_depth == 0
        assert cluster.scheduler.inflight_count == 0


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_concurrent_under_faults_with_crash(policy: str):
    """The same differential contract under a PR-2 fault plan with one
    mid-run server crash: every query matches its serial fault-free oracle
    or fails cleanly, and the cluster leaks no state."""
    from repro.faults.chaos import chaos_check_many

    for seed in (0, 1, 2, 3):
        rng = random.Random(100 + seed)
        graph = random_graph(rng)
        plans = random_queries(rng, 24, n=3)
        outcome = chaos_check_many(
            graph,
            plans,
            seed=seed,
            scheduler=policy,
            scheduler_config=SCHED,
            tenants=[spec["tenant"] for spec in qos_specs(rng, len(plans))],
            crash=True,
        )
        assert outcome.ok, (
            f"seed={seed} policy={policy}: leaked={outcome.leaked} "
            f"verdicts={[(v.index, v.matched, v.failed_cleanly, v.error) for v in outcome.verdicts]}"
        )


def _sched_run(seed: int, policy: str):
    """One seeded concurrent run; returns (sched metrics, trace bytes)."""
    rng = random.Random(seed)
    graph = random_graph(rng)
    plans = random_queries(rng, 24)
    specs = qos_specs(rng, len(plans))
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=options_for(EngineKind.GRAPHTREK, scheduler=policy),
            scheduler_config=SCHED,
            trace_enabled=True,
        ),
    )
    cluster.traverse_many(plans, cold=False, qos=specs)
    snap = cluster.metrics_snapshot()
    sched_metrics = {
        section: {
            k: v for k, v in snap.get(section, {}).items() if k.startswith("sched.")
        }
        for section in ("counters", "gauges", "histograms")
    }
    return sched_metrics, cluster.board.obs.trace.to_json()


@pytest.mark.parametrize("policy", POLICY_NAMES)
def test_seed_sweep_determinism(policy: str):
    """Repeated runs of the same (seed, policy, workload) on the simulated
    runtime produce identical ``sched.*`` metric snapshots and byte-identical
    trace serializations."""
    for seed in (0, 5, 9):
        first_metrics, first_trace = _sched_run(seed, policy)
        again_metrics, again_trace = _sched_run(seed, policy)
        assert first_metrics == again_metrics, f"seed={seed} metrics diverged"
        assert first_trace == again_trace, f"seed={seed} trace bytes diverged"
        assert first_metrics["counters"], "no sched.* counters recorded"


def test_policies_disagree_on_order_not_results():
    """Sanity check that the matrix is not vacuous: policies genuinely
    produce different launch orders on a contended workload."""
    orders = {}
    for policy in POLICY_NAMES:
        rng = random.Random(7)
        graph = random_graph(rng)
        plans = random_queries(rng, 24)
        cluster = Cluster.build(
            graph,
            ClusterConfig(
                nservers=3,
                engine=options_for(EngineKind.GRAPHTREK, scheduler=policy),
                scheduler_config=SchedulerConfig(max_inflight=1),
                trace_enabled=True,
            ),
        )
        cluster.traverse_many(plans, cold=False, qos=qos_specs(rng, len(plans)))
        orders[policy] = tuple(
            ev.travel_id
            for ev in cluster.board.obs.trace.events()
            if ev.kind == "sched.launch"
        )
    assert len(set(orders.values())) > 1, (
        f"all policies launched in the same order: {orders}"
    )
