"""Chaos legs for online shard migration: crashes and wire faults landing
on every phase of the protocol.

The contract mirrors the rest of the fault stack, extended to ownership:
queries racing a migration match their serial fault-free oracle or fail
cleanly; the migration reaches a clean terminal phase (``done`` or
``aborted`` — never wedged); after recovery every migrated vertex is owned
by exactly one server that actually holds its data (none lost, none owned
twice); and no migration state leaks.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.faults.chaos import chaos_check_many
from repro.faults.plan import CrashEvent, FaultPlan, FaultSpec
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.rebalance import MigrationConfig
from repro.sched import SchedulerConfig


def random_graph(rng: random.Random, nvertices: int = 24, nedges: int = 72):
    g = PropertyGraph()
    for vid in range(nvertices):
        g.add_vertex(vid, "node", {"x": vid % 5})
    for _ in range(nedges):
        src = rng.randrange(nvertices)
        dst = rng.randrange(nvertices)
        g.add_edge(src, dst, rng.choice(("link", "ref")), {})
    return g


def random_queries(rng: random.Random, nvertices: int, n: int = 4):
    queries = []
    for _ in range(n):
        q = GTravel.v(rng.randrange(nvertices))
        for _ in range(rng.randint(1, 3)):
            q = q.e(rng.choice(("link", "ref")))
        queries.append(q.compile())
    return queries


def assert_ownership_consistent(cluster, vids, nservers=3):
    for vid in vids:
        owner = cluster.routing.owner(vid)
        assert cluster.servers[owner].store.has_vertex(vid), (
            f"vertex {vid} lost: routed to {owner} which lacks it"
        )
        extra = [
            s
            for s in range(nservers)
            if s != owner and cluster.servers[s].store.has_vertex(vid)
        ]
        assert not extra, f"vertex {vid} owned twice: {owner} and {extra}"


def test_chaos_many_with_concurrent_migration():
    """The concurrent chaos harness with a migration racing the workload
    under sampled drop/dup/delay plans (no crash): queries keep their
    differential contract and ownership ends consistent."""
    for seed in range(4):
        rng = random.Random(500 + seed)
        graph = random_graph(rng)
        outcome = chaos_check_many(
            graph,
            random_queries(rng, 24),
            seed=seed,
            scheduler="wfq",
            scheduler_config=SchedulerConfig(max_inflight=2),
            migrate=True,
            migration=MigrationConfig(chunk_vertices=2, dual_window=0.01),
        )
        assert outcome.ok, (
            f"seed={seed}: leaked={outcome.leaked} verdicts="
            f"{[(v.index, v.matched, v.failed_cleanly, v.error) for v in outcome.verdicts]}"
        )
        assert outcome.migration_state.phase in ("done", "aborted")


def test_chaos_many_migration_with_server_crash():
    """A mid-workload backend-server crash (source, target, or bystander —
    the sampled plan decides) while the migration runs: clean abort or
    commit, never inconsistent ownership."""
    phases = set()
    for seed in range(6):
        rng = random.Random(600 + seed)
        graph = random_graph(rng)
        outcome = chaos_check_many(
            graph,
            random_queries(rng, 24),
            seed=seed,
            crash=True,
            migrate=True,
            migration=MigrationConfig(chunk_vertices=2, dual_window=0.02),
        )
        assert outcome.ok, (
            f"seed={seed}: leaked={outcome.leaked} verdicts="
            f"{[(v.index, v.matched, v.failed_cleanly, v.error) for v in outcome.verdicts]}"
        )
        phases.add(outcome.migration_state.phase)
    assert phases, "no migrations ran"


def test_chaos_many_migration_with_coordinator_crash():
    """Coordinator crash + journal replay with a migration in flight: the
    recovered epoch must be consistent — committed cutovers stay committed,
    anything earlier rolls back, no vertex lost or double-owned."""
    for seed in range(6):
        rng = random.Random(700 + seed)
        graph = random_graph(rng)
        outcome = chaos_check_many(
            graph,
            random_queries(rng, 24),
            seed=seed,
            crash_coordinator=True,
            migrate=True,
            migration=MigrationConfig(chunk_vertices=2, dual_window=0.02),
        )
        assert outcome.ok, (
            f"seed={seed}: leaked={outcome.leaked} verdicts="
            f"{[(v.index, v.matched, v.failed_cleanly, v.error) for v in outcome.verdicts]}"
        )
        assert outcome.migration_state.phase in ("done", "aborted")


@pytest.mark.parametrize("phase", ["copy", "dual"])
def test_coordinator_crash_mid_phase_recovers_consistently(phase):
    """Deterministic (non-sampled) crash placement: kill the coordinator
    host squarely inside the copy phase / the double-routing window, then
    recover and verify journal replay lands on a consistent epoch."""
    rng = random.Random(7)
    graph = random_graph(rng, nvertices=40, nedges=120)
    # slow copy for the "copy" leg (1-vertex chunks), long dual window for
    # the "dual" leg, so the crash lands inside the intended phase
    cfg = MigrationConfig(
        chunk_vertices=1 if phase == "copy" else 8,
        dual_window=0.5 if phase == "dual" else 0.01,
    )
    cluster = Cluster.build(
        graph, ClusterConfig(nservers=3, journal=True, migration=cfg)
    )
    sim = cluster.runtime.sim
    vids = tuple(sorted(cluster.servers[1].store.local_vertices())[:6])
    mid, event = cluster.rebalance(1, 2, vids=vids, wait=False)
    if phase == "copy":
        sim.run(until=sim.now + 0.001)
    else:
        sim.run(until=sim.now + 0.2)
        state = cluster.migrator.active.get(mid)
        assert state is not None and state.phase == "dual", (
            f"crash missed the dual window: {state and state.phase}"
        )
        assert cluster.routing.dual_count == len(vids)
    version_before = cluster.routing.version
    epoch_before = cluster.coordinator.epoch
    cluster.runtime.crash_server(0)
    sim.run(until=sim.now + 0.05)
    cluster.runtime.recover_server(0)
    sim.run(until=sim.now + 2.0)
    assert event.triggered
    terminal = event.value
    assert terminal.phase in ("done", "aborted")
    assert cluster.coordinator.epoch == epoch_before + 1
    # version monotonicity survives the crash (stale steps stay fenced)
    assert cluster.routing.version > version_before
    assert cluster.routing.dual_count == 0
    assert_ownership_consistent(cluster, vids)
    assert cluster.migrator.leaked_state() == []
    # the recovered cluster still answers correctly over the moved range
    out = cluster.traverse(GTravel.v(vids[0]).e("link"), cold=False)
    fresh = Cluster.build(graph, ClusterConfig(nservers=3))
    want = fresh.traverse(GTravel.v(vids[0]).e("link"), cold=False)
    assert sorted(out.result.vertices) == sorted(want.result.vertices)


def test_coordinator_crash_after_cutover_commits():
    """A journaled cutover is the commit point: crash between cutover and
    the final ``done`` record must recover with the target owning the
    range and the source copy dropped (replay completes the drop)."""
    rng = random.Random(11)
    graph = random_graph(rng, nvertices=40, nedges=120)
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            journal=True,
            migration=MigrationConfig(
                chunk_vertices=8, dual_window=0.01, drain_timeout=60.0
            ),
        ),
    )
    sim = cluster.runtime.sim
    vids = tuple(sorted(cluster.servers[1].store.local_vertices())[:4])
    # pin a travel in _active so the post-cutover drain cannot finish
    # before we crash: submit but do not run the sim to completion
    mid, event = cluster.rebalance(1, 2, vids=vids, wait=False)
    # run until the cutover record lands in the journal
    for _ in range(200):
        sim.run(until=sim.now + 0.01)
        recs = cluster.journal.state.migrations
        if mid in recs and recs[mid]["phase"] in ("cutover", "done"):
            break
    rec = cluster.journal.state.migrations[mid]
    cluster.runtime.crash_server(0)
    sim.run(until=sim.now + 0.05)
    cluster.runtime.recover_server(0)
    sim.run(until=sim.now + 2.0)
    assert event.triggered
    state = event.value
    # journaled at cutover (or later) == committed, even though the
    # in-memory migration process died with the coordinator
    assert rec["phase"] in ("cutover", "done")
    assert state.phase == "done"
    for vid in vids:
        assert cluster.routing.owner(vid) == 2
        assert cluster.servers[2].store.has_vertex(vid)
        assert not cluster.servers[1].store.has_vertex(vid)
    assert cluster.journal.state.migrations[mid]["phase"] == "done"
    assert cluster.migrator.leaked_state() == []


def test_drop_and_reorder_on_migration_traffic():
    """Targeted wire faults on the migration data plane itself: heavy drop
    + reorder on MigrateChunk and dropped MigrateAcks. The idempotent
    (mid, seq) apply + bounded resend protocol must converge with every
    chunk applied exactly once."""
    rng = random.Random(13)
    graph = random_graph(rng, nvertices=40, nedges=120)
    plan = FaultPlan(
        seed=13,
        per_type={
            "MigrateChunk": FaultSpec(
                drop=0.25, duplicate=0.2, reorder=0.5, reorder_window=0.01
            ),
            "MigrateAck": FaultSpec(drop=0.25, duplicate=0.2),
        },
    )
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            fault_plan=plan,
            journal=True,
            migration=MigrationConfig(
                chunk_vertices=2, dual_window=0.01, max_resends=12
            ),
        ),
    )
    vids = tuple(sorted(cluster.servers[1].store.local_vertices())[:8])
    plan_q = GTravel.v(vids[0]).e("link").compile()
    before = sorted(cluster.traverse(plan_q, cold=False).result.vertices)
    state = cluster.rebalance(1, 2, vids=vids)
    assert state.phase == "done", state.abort_reason
    assert state.resends > 0, "no resends under 25% chunk drop — vacuous leg"
    # exactly-once apply: chunks_applied counts unique (mid, seq) applies
    assert state.chunks_applied == (len(vids) + 1) // 2
    assert_ownership_consistent(cluster, vids)
    after = sorted(cluster.traverse(plan_q, cold=False).result.vertices)
    assert after == before
    assert cluster.migrator.leaked_state() == []


def test_source_crash_mid_copy_aborts_cleanly():
    """The migration source crashing (and never recovering) mid-copy: the
    chunk job notices, the migration aborts, target partials are dropped,
    and ownership reverts to the (crashed, storage-intact) source."""
    rng = random.Random(17)
    graph = random_graph(rng, nvertices=40, nedges=120)
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            journal=True,
            fault_plan=FaultPlan(
                seed=17, crashes=(CrashEvent(server=1, at=0.004),)
            ),
            migration=MigrationConfig(chunk_vertices=1, dual_window=0.05),
        ),
    )
    sim = cluster.runtime.sim
    vids = tuple(sorted(cluster.servers[1].store.local_vertices())[:8])
    mid, event = cluster.rebalance(1, 2, vids=vids, wait=False)
    sim.run(until=sim.now + 5.0)
    assert event.triggered
    state = event.value
    assert state.phase == "aborted", state.phase
    assert cluster.routing.dual_count == 0
    assert cluster.routing.override_count == 0
    # every vertex reverted to the source; no partial copy left on target
    for vid in vids:
        assert cluster.routing.owner(vid) == 1
        assert not cluster.servers[2].store.has_vertex(vid)
    assert cluster.migrator.leaked_state() == []
