"""Chaos differential tests (the PR's acceptance criterion).

For ≥10 seeded fault plans — wire drops, duplicates, delay spikes, plus one
mid-traversal server crash on a subset — every traversal must either return
a result set identical to the fault-free run at the same seed, or fail
cleanly with ``TraversalFailed`` after ``max_restarts``. And on the simulated
runtime, rerunning the same plan + seed must reproduce the same
``net.*``/``faults.*`` counters exactly.
"""

import pytest

from repro.engine import EngineKind
from repro.faults.chaos import chaos_check, run_fault_free, run_under_faults
from repro.faults.plan import sample_fault_plan
from repro.lang import GTravel


CHAOS_SEEDS = list(range(10))
#: seeds that additionally schedule one mid-traversal crash + recovery
CRASH_SEEDS = {1, 4, 7}


def chaos_query(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_differential_graphtrek(metadata_graph, seed):
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph, chaos_query(ids), seed=seed, crash=seed in CRASH_SEEDS
    )
    assert outcome.ok, (
        f"seed {seed}: faulty run returned a wrong result set "
        f"(matched={outcome.matched}, error={outcome.error})\n"
        f"plan={outcome.plan}\ncounters={outcome.net_counters}"
    )
    if seed in CRASH_SEEDS:
        crash_keys = [k for k in outcome.net_counters if k.startswith("faults.crashes")]
        assert crash_keys, f"crash plan did not crash: {outcome.net_counters}"


@pytest.mark.parametrize("seed", [0, 2, 5])
def test_chaos_differential_sync_engine(metadata_graph, seed):
    """The synchronous baseline survives the same wire faults (its recovery
    is whole-traversal restart; no fine-grained replay)."""
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph,
        chaos_query(ids),
        seed=seed,
        engine=EngineKind.SYNC,
        max_drop=0.06,  # sync barriers lose a whole step per drop; keep it sane
    )
    assert outcome.ok, f"seed {seed}: {outcome.error}, counters={outcome.net_counters}"


def test_chaos_metric_snapshots_are_deterministic(metadata_graph):
    """Same fault plan + seed → byte-identical net.*/faults.* counters."""
    graph, ids = metadata_graph
    query = chaos_query(ids)
    baseline, duration = run_fault_free(graph, query)
    plan = sample_fault_plan(3, nservers=3, crash_window=(0.2 * duration, 3.0 * duration))
    from repro.faults.chaos import chaos_coordinator_config

    cc = chaos_coordinator_config(duration)
    runs = [run_under_faults(graph, query, plan, coordinator_config=cc) for _ in range(2)]
    (res_a, err_a, net_a, _), (res_b, err_b, net_b, _) = runs
    assert net_a == net_b
    assert res_a == res_b
    assert err_a == err_b
    # and the faulty run actually exercised the machinery
    assert any(k.startswith("faults.crashes") for k in net_a)


def test_chaos_without_reliable_channel_still_converges_or_fails_cleanly(
    metadata_graph,
):
    """Fault plan + bare wire (no acks): the §IV-C restart machinery is the
    only safety net, and the contract must still hold."""
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph, chaos_query(ids), seed=6, reliable=False, max_drop=0.05
    )
    assert outcome.ok, f"{outcome.error}, counters={outcome.net_counters}"


def test_fault_free_plan_under_channel_matches_baseline(metadata_graph):
    """A zero-probability fault plan with the reliable channel on is an
    identity transform on the result sets."""
    from repro.faults.plan import FaultPlan

    graph, ids = metadata_graph
    query = chaos_query(ids)
    baseline, _ = run_fault_free(graph, query)
    res, err, net, _ = run_under_faults(graph, query, FaultPlan(seed=0))
    assert err is None
    assert res == baseline
    assert not any(k.startswith("net.retries") for k in net)
