"""Tests for engine internals: anchors, cache, tracing, registry, options."""

import pytest

from repro.engine import (
    EngineKind,
    TravelRegistry,
    TraversalAffiliateCache,
    analyze_sources,
    graphtrek_options,
    options_for,
    plain_async_options,
    sync_options,
)
from repro.engine.frontier import (
    EMPTY_ANCHORS,
    anchors_covered,
    anchors_union,
    extend_anchors,
    intermediate_rtn_levels,
    merge_entries,
    merge_entry,
)
from repro.engine.statistics import StatsBoard
from repro.engine.tracing import ExecTracker
from repro.errors import TraversalError
from repro.lang import EQ, GTravel
from repro.net.message import ExecStatus


# -- frontier / anchors ------------------------------------------------------

def test_anchor_union_and_extend():
    a = (frozenset({1}),)
    b = (frozenset({2}),)
    assert anchors_union(a, b) == (frozenset({1, 2}),)
    assert anchors_union(EMPTY_ANCHORS, a) == a
    assert extend_anchors(a, 7) == (frozenset({1}), frozenset({7}))


def test_anchors_covered_semantics():
    small = (frozenset({1}),)
    big = (frozenset({1, 2}),)
    assert anchors_covered(small, big)
    assert not anchors_covered(big, small)
    assert anchors_covered(EMPTY_ANCHORS, EMPTY_ANCHORS)
    assert not anchors_covered(small, EMPTY_ANCHORS)  # length mismatch


def test_merge_entry_unions_anchors():
    entries = {}
    merge_entry(entries, 5, (frozenset({1}),))
    merge_entry(entries, 5, (frozenset({2}),))
    assert entries[5] == (frozenset({1, 2}),)


def test_merge_entries_bulk():
    dst = {1: EMPTY_ANCHORS}
    merge_entries(dst, {2: EMPTY_ANCHORS, 1: EMPTY_ANCHORS})
    assert set(dst) == {1, 2}


def test_intermediate_rtn_levels():
    plan = GTravel.v(1).rtn().e("a").rtn().e("b").rtn().compile()
    assert intermediate_rtn_levels(plan) == (0, 1)  # final (2) excluded


# -- traversal-affiliate cache --------------------------------------------------

def test_cache_lookup_insert():
    cache = TraversalAffiliateCache(10)
    assert cache.lookup("t1", 0, 5) is None
    cache.insert("t1", 0, 5, EMPTY_ANCHORS)
    assert cache.lookup("t1", 0, 5) == EMPTY_ANCHORS
    assert cache.hits == 1 and cache.misses == 1


def test_cache_reinsert_merges_anchors():
    cache = TraversalAffiliateCache(10)
    cache.insert("t", 1, 5, (frozenset({1}),))
    cache.insert("t", 1, 5, (frozenset({2}),))
    assert cache.lookup("t", 1, 5) == (frozenset({1, 2}),)
    assert len(cache) == 1


def test_cache_evicts_smallest_step_first():
    """Time-based replacement (§V-A): smallest step ids go first."""
    cache = TraversalAffiliateCache(3)
    cache.insert("t", 1, 10, EMPTY_ANCHORS)
    cache.insert("t", 2, 20, EMPTY_ANCHORS)
    cache.insert("t", 3, 30, EMPTY_ANCHORS)
    cache.insert("t", 4, 40, EMPTY_ANCHORS)  # evicts the level-1 entry
    assert cache.lookup("t", 1, 10) is None
    assert cache.lookup("t", 4, 40) is not None
    assert cache.evictions == 1


def test_cache_evicts_other_travel_when_inserter_empty():
    cache = TraversalAffiliateCache(2)
    cache.insert("t1", 5, 1, EMPTY_ANCHORS)
    cache.insert("t1", 6, 2, EMPTY_ANCHORS)
    cache.insert("t2", 0, 3, EMPTY_ANCHORS)
    assert len(cache) == 2
    assert cache.lookup("t2", 0, 3) is not None


def test_cache_forget_travel():
    cache = TraversalAffiliateCache(10)
    cache.insert(("t", 0), 1, 1, EMPTY_ANCHORS)
    cache.insert(("t", 0), 2, 2, EMPTY_ANCHORS)
    cache.insert(("u", 0), 1, 3, EMPTY_ANCHORS)
    cache.forget_travel_prefix("t")
    assert len(cache) == 1
    assert cache.lookup(("u", 0), 1, 3) is not None


def test_cache_level_span():
    cache = TraversalAffiliateCache(10)
    assert cache.level_span("t") == (-1, -1)
    cache.insert("t", 2, 1, EMPTY_ANCHORS)
    cache.insert("t", 5, 1, EMPTY_ANCHORS)
    assert cache.level_span("t") == (2, 5)


def test_cache_capacity_validation():
    with pytest.raises(ValueError):
        TraversalAffiliateCache(0)


# -- exec tracker ----------------------------------------------------------------

def status(eid, created=(), results=0, attempt=0):
    return ExecStatus(1, exec_id=eid, server=0, created=tuple(created),
                      results_sent=results, attempt=attempt)


def test_tracker_simple_lifecycle():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0)], now=0.0)
    assert not tr.complete
    tr.on_status(status(1, created=[(2, 1, 1)]), now=1.0)
    assert not tr.complete
    tr.on_status(status(2), now=2.0)
    assert tr.complete
    assert tr.created_total == 2 and tr.terminated_total == 2


def test_tracker_results_accounting():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0)], now=0.0)
    tr.on_status(status(1, results=2), now=1.0)
    assert not tr.complete  # two result messages still in flight
    tr.on_result(now=2.0)
    tr.on_result(now=2.5)
    assert tr.complete


def test_tracker_handles_termination_before_creation():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0)], now=0.0)
    tr.on_status(status(2), now=0.5)  # child reports before parent's status
    assert not tr.complete
    tr.on_status(status(1, created=[(2, 1, 1)]), now=1.0)
    assert tr.complete


def test_tracker_ignores_stale_attempt():
    tr = ExecTracker(attempt=1)
    tr.register_initial([(1, 0, 0)], now=0.0)
    tr.on_status(status(1, attempt=0), now=1.0)  # from failed attempt 0
    assert not tr.complete
    tr.on_status(status(1, attempt=1), now=2.0)
    assert tr.complete


def test_tracker_progress_by_level():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0), (2, 1, 0)], now=0.0)
    tr.on_status(status(1, created=[(3, 2, 1), (4, 3, 1)]), now=1.0)
    assert tr.progress() == {0: 1, 1: 2}


def test_tracker_idle_tracking():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0)], now=5.0)
    assert tr.idle_for(11.0) == 6.0
    tr.on_status(status(1), now=12.0)
    assert tr.idle_for(13.0) == 1.0


def test_tracker_snapshot():
    tr = ExecTracker()
    tr.register_initial([(1, 0, 0)], now=0.0)
    snap = tr.snapshot()
    assert snap["created"] == 1 and snap["pending"] == 1


# -- registry ------------------------------------------------------------------------

def test_registry_register_get_unregister():
    reg = TravelRegistry()
    plan = GTravel.v(1).e("a").compile()
    entry = reg.register(10, plan)
    assert reg.get(10) is entry
    assert entry.attempt == 0
    reg.unregister(10)
    assert reg.get(10) is None


def test_registry_duplicate_rejected():
    reg = TravelRegistry()
    plan = GTravel.v(1).compile()
    reg.register(1, plan)
    with pytest.raises(TraversalError):
        reg.register(1, plan)


def test_registry_bump_attempt():
    reg = TravelRegistry()
    reg.register(1, GTravel.v(1).compile())
    assert reg.bump_attempt(1) == 1
    assert reg.get(1).attempt == 1


def test_analyze_sources_type_index():
    plan = GTravel.v().va("type", EQ, "File").va("kind", EQ, "text").compile()
    info = analyze_sources(plan)
    assert info.index_type == "File"
    assert len(info.reduced_filters) == 1
    assert info.reduced_filters.filters[0].key == "kind"


def test_analyze_sources_no_type_filter():
    plan = GTravel.v().va("kind", EQ, "text").compile()
    info = analyze_sources(plan)
    assert info.index_type is None
    assert len(info.reduced_filters) == 1


# -- options ---------------------------------------------------------------------------

def test_option_presets():
    gt = graphtrek_options()
    assert gt.cache_enabled and gt.merge_enabled and gt.priority_schedule
    pa = plain_async_options()
    assert not (pa.cache_enabled or pa.merge_enabled or pa.priority_schedule)
    sy = sync_options()
    assert sy.kind is EngineKind.SYNC and not sy.is_async
    assert gt.is_async and pa.is_async


def test_options_for_lookup_and_overrides():
    opts = options_for(EngineKind.GRAPHTREK, workers=2)
    assert opts.workers == 2 and opts.kind is EngineKind.GRAPHTREK
    with pytest.raises(ValueError):
        options_for(EngineKind.REFERENCE)


# -- stats board ---------------------------------------------------------------------------

def test_stats_board_accumulates():
    board = StatsBoard(EngineKind.GRAPHTREK)
    board.visit(1, server=0, kind="real", n=2)
    board.visit(1, server=1, kind="redundant")
    board.message(1, 100)
    st = board.stats(1)
    assert st.real_io_visits == 2 and st.redundant_visits == 1
    assert st.messages == 1 and st.bytes_sent == 100
    assert st.total_visits == 3
    assert st.server_counts("real") == {0: 2, 1: 0}


def test_stats_board_reset_keeps_restarts():
    board = StatsBoard(EngineKind.ASYNC)
    st = board.stats(1)
    st.restarts = 2
    board.visit(1, 0, "real")
    board.reset(1)
    st2 = board.stats(1)
    assert st2.real_io_visits == 0 and st2.restarts == 2


def test_stats_board_pop():
    board = StatsBoard(EngineKind.SYNC)
    board.visit(1, 0, "real")
    st = board.pop(1)
    assert st.real_io_visits == 1
    assert board.pop(1).real_io_visits == 0  # fresh default


def test_stats_invalid_visit_kind():
    board = StatsBoard(EngineKind.SYNC)
    with pytest.raises(ValueError):
        board.visit(1, 0, "bogus")
