"""Tier-1 observability smoke target.

Runs a miniature 2-step benchmark cell through the real harness path (the
same ``run_cell`` every figure uses), exports the observability payload, and
fails hard on NaN values or empty/missing histograms — the tripwire for
instrumentation silently falling out of the hot paths.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import metrics_payload, run_cell
from repro.engine import EngineKind
from repro.obs.export import validate_snapshot
from repro.workloads import paper_rmat1, pick_start_vertex, rmat_graph, rmat_kstep_query

SMOKE_SCALE = 8  # 256 vertices: seconds of wall time, all hot paths exercised
SMOKE_STEPS = 2


@pytest.fixture(scope="module")
def smoke_graph():
    return rmat_graph(paper_rmat1(scale=SMOKE_SCALE, edge_factor=8, seed=1))


@pytest.fixture(scope="module")
def smoke_plan():
    src = pick_start_vertex(paper_rmat1(scale=SMOKE_SCALE, edge_factor=8, seed=1))
    return rmat_kstep_query(src, SMOKE_STEPS).compile()


@pytest.mark.parametrize(
    "kind", [EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK]
)
def test_smoke_benchmark_cell_emits_healthy_snapshot(smoke_graph, smoke_plan, kind):
    cell = run_cell(smoke_graph, smoke_plan, kind, nservers=2)
    assert cell.metrics, "run_cell must capture an observability snapshot"
    problems = validate_snapshot(cell.metrics, require_histograms=True)
    assert problems == [], f"{kind.value}: " + "; ".join(problems)
    counters = cell.metrics["counters"]
    assert any(key.startswith("engine.real_visits") for key in counters)
    histograms = cell.metrics["histograms"]
    assert any(key.startswith("disk.access_seconds") for key in histograms)
    assert any(key.startswith("travel.elapsed_seconds") for key in histograms)
    # pull collectors populated the storage gauges for every server
    gauges = cell.metrics["gauges"]
    for server in range(2):
        assert f"storage.lsm.gets{{server={server}}}" in gauges


def test_smoke_metrics_payload_round_trips_as_json(smoke_graph, smoke_plan, tmp_path):
    cell = run_cell(smoke_graph, smoke_plan, EngineKind.GRAPHTREK, nservers=2)
    payload = metrics_payload([cell])
    cell_key = f"{cell.engine}x2"
    assert set(payload) == {cell_key}
    out = tmp_path / "smoke_metrics.json"
    out.write_text(json.dumps(payload))
    restored = json.loads(out.read_text())
    assert validate_snapshot(restored[cell_key], require_histograms=True) == []


def test_smoke_snapshot_does_not_change_benchmark_results(smoke_graph, smoke_plan):
    """Instrumentation is out-of-band: recording must not move the simulated
    clock, so the paper-table figures stay exactly where the seed puts them."""
    a = run_cell(smoke_graph, smoke_plan, EngineKind.GRAPHTREK, nservers=2)
    b = run_cell(smoke_graph, smoke_plan, EngineKind.GRAPHTREK, nservers=2)
    assert a.elapsed == b.elapsed
    assert a.real_io_visits == b.real_io_visits
    assert a.metrics == b.metrics
