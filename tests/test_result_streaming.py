"""Tests for the buffered result pipeline (paper §IV-B future work)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, CoordinatorConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import EQ, GTravel
from repro.net import NetworkModel
from repro.workloads import paper_rmat1, pick_start_vertex, rmat_graph, rmat_kstep_query

#: a deliberately slow client link (1 MB/s), so result-transfer time matters
SLOW_CLIENT = NetworkModel(client_base_latency=500e-6, client_bandwidth=1e6)


def build(graph, *, streaming: bool, chunk: int = 64, nservers: int = 4,
          kind: EngineKind = EngineKind.GRAPHTREK, network: NetworkModel = SLOW_CLIENT):
    return Cluster.build(
        graph,
        ClusterConfig(
            nservers=nservers,
            engine=kind,
            network=network,
            coordinator_config=CoordinatorConfig(
                stream_results=streaming, stream_chunk_vertices=chunk
            ),
        ),
    )


@pytest.fixture(scope="module")
def big_result_setup():
    cfg = paper_rmat1(scale=9, edge_factor=8)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    plan = rmat_kstep_query(src, 6).compile()  # returns most of the graph
    ref = ReferenceEngine(graph).run(plan)
    return graph, plan, ref


def test_streaming_returns_identical_results(big_result_setup):
    graph, plan, ref = big_result_setup
    out = build(graph, streaming=True).traverse(plan)
    assert out.result.same_vertices(ref)
    assert out.stats.result_chunks > 1


def test_streaming_faster_for_large_results(big_result_setup):
    """Chunks overlap with the traversal, so the tail transfer shrinks."""
    graph, plan, ref = big_result_setup
    bulk = build(graph, streaming=False).traverse(plan)
    streamed = build(graph, streaming=True).traverse(plan)
    assert len(ref.vertices) > 200  # premise: result set is large
    assert streamed.stats.elapsed < bulk.stats.elapsed


def test_streaming_with_sync_engine(big_result_setup):
    graph, plan, ref = big_result_setup
    out = build(graph, streaming=True, kind=EngineKind.SYNC).traverse(plan)
    assert out.result.same_vertices(ref)
    assert out.stats.result_chunks >= 1


def test_streaming_tiny_result_single_chunk(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph, streaming=True, nservers=3)
    plan = GTravel.v(ids["users"][0]).e("run").compile()
    out = cluster.traverse(plan)
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))
    # one chunk per contributing result report; a tiny result stays small
    assert 1 <= out.stats.result_chunks <= 3


def test_streaming_empty_result(metadata_graph):
    graph, _ = metadata_graph
    cluster = build(graph, streaming=True, nservers=3)
    plan = GTravel.v().va("type", EQ, "Nothing").compile()
    out = cluster.traverse(plan)
    assert out.result.vertices == frozenset()
    assert out.stats.result_chunks == 0


def test_streaming_with_intermediate_rtn(metadata_graph):
    graph, ids = metadata_graph
    cluster = build(graph, streaming=True, nservers=3)
    plan = GTravel.v(*ids["jobs"]).rtn().e("hasExecutions").va("model", EQ, "A").compile()
    out = cluster.traverse(plan)
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))


def test_chunk_count_scales_with_chunk_size(big_result_setup):
    """A 1-vertex chunk forces per-vertex messages; large chunks coalesce
    whatever is in the backlog when the streamer wakes."""
    graph, plan, ref = big_result_setup
    small = build(graph, streaming=True, chunk=1).traverse(plan)
    large = build(graph, streaming=True, chunk=4096).traverse(plan)
    assert small.stats.result_chunks >= len(ref.vertices)
    assert small.stats.result_chunks > large.stats.result_chunks
    assert small.result.same_vertices(large.result)
