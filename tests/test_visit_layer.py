"""Unit tests for the shared per-vertex visit/expansion layer."""

import pytest

from repro.engine.frontier import EMPTY_ANCHORS
from repro.engine.visit import (
    ExpandSinks,
    VisitData,
    expand_vertex,
    filters_at,
    labels_needed,
    needs_props,
    read_vertex,
)
from repro.graph import GraphBuilder
from repro.lang import EQ, FilterSet, GTravel
from repro.lang.filters import PropertyFilter
from repro.storage import GraphStore, LSMConfig
from repro.storage.costmodel import IOCost


@pytest.fixture()
def plan():
    return (
        GTravel.v(0)
        .e("x")
        .va("color", EQ, "red")
        .e("y")
        .compile()
    )


def owner(vid):
    return vid % 2


def test_labels_needed_by_level(plan):
    assert labels_needed(plan, [0]) == {"x"}
    assert labels_needed(plan, [1]) == {"y"}
    assert labels_needed(plan, [2]) == set()  # final level scans nothing
    assert labels_needed(plan, [0, 1]) == {"x", "y"}


def test_filters_at_levels(plan):
    assert not filters_at(plan, 0, None)  # no source filters
    assert filters_at(plan, 1, None).filters[0].key == "color"
    override = FilterSet((PropertyFilter("z", EQ, 1),))
    assert filters_at(plan, 0, override) is override


def test_needs_props(plan):
    assert not needs_props(plan, [0], None)
    assert needs_props(plan, [1], None)
    assert needs_props(plan, [0, 1], None)


def test_read_vertex_single_label_scan():
    b = GraphBuilder()
    v = b.vertex("T", color="red")
    w = b.vertex("T")
    b.edge(v, w, "x", n=1)
    b.edge(v, w, "y", n=2)
    store = GraphStore(LSMConfig())
    store.load_partition(b.build(), [v, w])
    data = read_vertex(store, v, {"x"}, want_props=False)
    assert data.props is None
    assert [dst for dst, _ in data.edges["x"]] == [w]
    assert "y" not in data.edges
    assert data.cost.seeks >= 1


def test_read_vertex_multi_label_single_scan():
    b = GraphBuilder()
    v = b.vertex("T")
    w = b.vertex("T")
    b.edge(v, w, "x")
    b.edge(v, w, "y")
    b.edge(v, w, "z")
    store = GraphStore(LSMConfig())
    store.load_partition(b.build(), [v, w])
    single = read_vertex(store, v, {"x"}, want_props=False).cost
    combined = read_vertex(store, v, {"x", "y"}, want_props=False).cost
    # one scan over the whole edge block serves both labels: one seek
    assert combined.seeks == single.seeks
    data = read_vertex(store, v, {"x", "y"}, want_props=False)
    assert set(data.edges) == {"x", "y"}  # z filtered out, x/y present


def test_read_vertex_with_props():
    b = GraphBuilder()
    v = b.vertex("T", color="red")
    store = GraphStore(LSMConfig())
    store.load_partition(b.build(), [v])
    data = read_vertex(store, v, set(), want_props=True)
    assert data.props["color"] == "red"


def test_expand_final_level_collects_results(plan):
    sinks = ExpandSinks()
    data = VisitData(props={"color": "red"}, edges={}, cost=IOCost())
    outcome = expand_vertex(
        plan, 2, 7, EMPTY_ANCHORS, data, owner, sinks, (), "T"
    )
    assert outcome == "final"
    assert sinks.final_results == {7}


def test_expand_vertex_filter_blocks(plan):
    sinks = ExpandSinks()
    data = VisitData(props={"color": "blue"}, edges={"y": [(9, {})]}, cost=IOCost())
    outcome = expand_vertex(plan, 1, 5, EMPTY_ANCHORS, data, owner, sinks, (), "T")
    assert outcome == "filtered"
    assert not sinks.out


def test_expand_routes_by_owner(plan):
    sinks = ExpandSinks()
    data = VisitData(props=None, edges={"x": [(2, {}), (3, {}), (4, {})]}, cost=IOCost())
    outcome = expand_vertex(plan, 0, 0, EMPTY_ANCHORS, data, owner, sinks, (), "T")
    assert outcome == "expanded"
    assert set(sinks.out) == {(1, 0), (1, 1)}
    assert set(sinks.out[(1, 0)]) == {2, 4}
    assert set(sinks.out[(1, 1)]) == {3}


def test_expand_edge_filters_apply():
    plan = GTravel.v(0).e("x").ea("n", EQ, 1).compile()
    sinks = ExpandSinks()
    data = VisitData(
        props=None, edges={"x": [(2, {"n": 1}), (3, {"n": 2})]}, cost=IOCost()
    )
    expand_vertex(plan, 0, 0, EMPTY_ANCHORS, data, owner, sinks, (), "T")
    assert list(sinks.out[(1, 0)]) == [2]
    assert (1, 1) not in sinks.out


def test_expand_rtn_level_extends_anchors():
    plan = GTravel.v(0).rtn().e("x").compile()
    sinks = ExpandSinks()
    data = VisitData(props=None, edges={"x": [(3, {})]}, cost=IOCost())
    expand_vertex(plan, 0, 0, EMPTY_ANCHORS, data, owner, sinks, (0,), "T")
    assert sinks.out[(1, 1)][3] == (frozenset({0}),)


def test_expand_final_reports_anchors_to_owners():
    plan = GTravel.v(0).rtn().e("x").compile()
    sinks = ExpandSinks()
    anchors = (frozenset({0, 1}),)
    data = VisitData(props=None, edges={}, cost=IOCost())
    expand_vertex(plan, 1, 9, anchors, data, owner, sinks, (0,), "T")
    assert sinks.anchors_by_owner[(0, 0)] == {0}
    assert sinks.anchors_by_owner[(0, 1)] == {1}
    # rtn() marks only level 0, so the final level itself is not returned
    assert sinks.final_results == set()


def test_expand_type_filter_uses_vertex_type():
    plan = GTravel.v(0).e("x").va("type", EQ, "File").compile()
    sinks = ExpandSinks()
    data = VisitData(props={}, edges={}, cost=IOCost())
    assert expand_vertex(plan, 1, 5, EMPTY_ANCHORS, data, owner, sinks, (), "File") == "final"
    sinks2 = ExpandSinks()
    assert expand_vertex(plan, 1, 5, EMPTY_ANCHORS, data, owner, sinks2, (), "Job") == "filtered"
