"""Telemetry continuity across coordinator crash-recovery (the PR's
observability acceptance leg): with the durable journal enabled and the
coordinator-hosting server crashing mid-traversal, the telemetry plane's
exports must stay deterministic — byte-identical OpenMetrics, rollups,
health, and alert-log documents for the same (seed, config) — and must
reflect the recovery (epoch bump, crash counters) rather than resetting."""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.faults.chaos import chaos_coordinator_config
from repro.faults.plan import CrashEvent, FaultPlan
from repro.graph import GraphBuilder
from repro.lang import GTravel
from repro.obs.exporter import validate_openmetrics
from repro.obs.trace import SamplingPolicy
from tests.conftest import build_cluster

SEEDS = (0, 1, 2)


def crash_graph():
    b = GraphBuilder()
    vids = [b.vertex("n") for _ in range(32)]
    for i in range(31):
        b.edge(vids[i], vids[i + 1], "link")
        b.edge(vids[i], vids[(i * 11) % 32], "link")
    return b.build(), vids


def crash_run(seed: int):
    """One coordinator-crash run; returns every telemetry export."""
    graph, vids = crash_graph()
    plan = GTravel.v(*vids[: 8 + seed]).e("link").e("link").e("link").compile()
    baseline = build_cluster(graph, EngineKind.GRAPHTREK, nservers=3)
    start = baseline.now
    baseline.traverse(plan)
    duration = baseline.now - start
    fault_plan = FaultPlan(
        seed=seed,
        crashes=(
            CrashEvent(
                server=0,
                at=(0.3 + 0.1 * seed) * duration,
                recover_at=3.0 * duration,
            ),
        ),
    )
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            fault_plan=fault_plan,
            reliable=True,
            journal=True,
            coordinator_config=chaos_coordinator_config(duration),
            trace_enabled=True,
            trace_sampling=SamplingPolicy(sample_every_n=4, seed=seed),
        ),
    )
    cluster.traverse(plan)
    return {
        "openmetrics": cluster.openmetrics(),
        "rollups": cluster.telemetry.rollups_json(),
        "health": cluster.health_json(),
        "alerts": cluster.slo.to_json(),
        "hot": cluster.hot_shard_report().to_json(),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_exports_are_byte_identical_across_crash_recovery_reruns(seed):
    first, second = crash_run(seed), crash_run(seed)
    for name in first:
        assert first[name] == second[name], f"{name} diverged on rerun"
    assert validate_openmetrics(first["openmetrics"]) == []


def test_recovered_run_reports_the_new_epoch_and_the_crash():
    exports = crash_run(0)
    health = json.loads(exports["health"])
    assert health["epoch"] >= 1, "recovery must have bumped the epoch"
    assert all(s["up"] for s in health["servers"])  # recovered by the end
    assert "faults_crashes_total" in exports["openmetrics"]
    assert "health_coordinator_epoch" in exports["openmetrics"]
    # the journal stayed engaged across the crash
    assert health["journal"]["records"] > 0


def test_rollup_windows_span_the_crash_rather_than_resetting():
    exports = crash_run(1)
    rollups = json.loads(exports["rollups"])
    visits = [
        windows
        for rendered, windows in rollups["counters"].items()
        if rendered.startswith("engine.real_visits")
    ]
    assert visits, "execution-rate series missing from rollups"
    # windows accumulate monotonically across the epoch boundary — a
    # recovery must not restart window indices from zero
    for windows in visits:
        indices = [w["window"] for w in windows]
        assert indices == sorted(indices)
