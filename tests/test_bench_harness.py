"""Tests for the benchmark harness, report rendering, and experiment configs."""

import json

import pytest

from repro.bench.harness import (
    BenchEnvironment,
    Cell,
    cell_lookup,
    cells_payload,
    kstep_plan,
    rmat1_graph,
    rmat1_source,
    run_cell,
    run_engine_comparison,
)
from repro.bench.report import (
    banner,
    engine_table,
    fmt_time,
    kv_table,
    speedup_table,
    visit_breakdown_table,
)
from repro.engine import EngineKind

TINY = BenchEnvironment(scale=6, edge_factor=4, servers=(2, 3))


def test_env_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "9")
    monkeypatch.setenv("REPRO_BENCH_SERVERS", "2,4")
    monkeypatch.setenv("REPRO_BENCH_EDGE_FACTOR", "8")
    env = BenchEnvironment.from_env()
    assert env.scale == 9 and env.servers == (2, 4) and env.edge_factor == 8


def test_env_defaults(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_SERVERS", raising=False)
    env = BenchEnvironment.from_env()
    assert env.scale == 12 and len(env.servers) == 5


def test_graph_and_source_cached():
    g1 = rmat1_graph(TINY.scale, TINY.edge_factor)
    g2 = rmat1_graph(TINY.scale, TINY.edge_factor)
    assert g1 is g2
    src = rmat1_source(TINY.scale, TINY.edge_factor)
    assert g1.out_degree(src) >= 1


def test_run_cell_returns_stats():
    graph = rmat1_graph(TINY.scale, TINY.edge_factor)
    plan = kstep_plan(TINY, 3)
    cell = run_cell(graph, plan, EngineKind.GRAPHTREK, 2)
    assert cell.engine == "GraphTrek"
    assert cell.nservers == 2
    assert cell.elapsed > 0
    assert cell.real_io_visits > 0


def test_run_engine_comparison_covers_grid():
    graph = rmat1_graph(TINY.scale, TINY.edge_factor)
    plan = kstep_plan(TINY, 2)
    cells = run_engine_comparison(graph, plan, TINY.servers)
    assert len(cells) == len(TINY.servers) * 3
    lookup = cell_lookup(cells)
    assert ("Sync-GT", 2) in lookup and ("GraphTrek", 3) in lookup


def test_cells_payload_json_serializable():
    graph = rmat1_graph(TINY.scale, TINY.edge_factor)
    plan = kstep_plan(TINY, 2)
    cells = run_engine_comparison(graph, plan, (2,), engines=(EngineKind.SYNC,))
    payload = cells_payload(cells)
    text = json.dumps(payload)
    assert "Sync-GT" in text
    assert "per_server" not in text  # heavy field stripped


def test_fmt_time_units():
    assert fmt_time(2.5).strip() == "2.50 s"
    assert fmt_time(0.0123).strip() == "12.3 ms"


def test_engine_table_contains_rows_and_paper_refs():
    cells = [
        Cell("Sync-GT", 2, 1.0, 10, 0, 0, 5, 100, 3, 4),
        Cell("GraphTrek", 2, 0.8, 8, 1, 2, 6, 120, 0, 5),
    ]
    text = engine_table("T", cells, [2], ["Sync-GT", "GraphTrek"],
                        paper={("Sync-GT", 2): 47.8})
    assert "47.8s" in text and "1.00 s" in text and "800.0 ms" in text


def test_speedup_table_ratio():
    cells = [
        Cell("Sync-GT", 2, 2.0, 0, 0, 0, 0, 0, 0, 0),
        Cell("GraphTrek", 2, 1.0, 0, 0, 0, 0, 0, 0, 0),
    ]
    text = speedup_table("S", cells, [2], "Sync-GT", ["GraphTrek"])
    assert "0.500" in text


def test_visit_breakdown_table_totals():
    cell = Cell("GraphTrek", 2, 1.0, 3, 1, 2, 0, 0, 0, 0,
                per_server={0: {"real": 2, "combined": 1}, 1: {"real": 1, "redundant": 2}})
    text = visit_breakdown_table("V", cell)
    assert "TOTAL" in text
    assert "3" in text


def test_kv_table_and_banner():
    assert "a : 1" in kv_table("K", {"a": 1})
    assert "### hello ###" in banner("hello")


@pytest.mark.parametrize("name", ["table2"])
def test_cheap_experiments_run(name):
    """table2 runs in seconds; the heavy ones are covered by benchmarks/."""
    from repro.bench.experiments import exp_table2

    result = exp_table2()
    assert result.all_passed, result.failed_checks()
    assert result.rendered
