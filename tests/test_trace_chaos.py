"""Tracing under chaos: the flight recorder must stay coherent when the
network misbehaves.

For 10 seeded fault plans (drops, duplicates, delay spikes, some with a
mid-traversal crash), the faulty run's trace must reconstruct a valid
rooted DAG whose terminal event matches the run's outcome — ``ok`` when the
traversal converged, ``failed`` when it exhausted its restart budget. Wire
retries and duplicate deliveries appear as *annotations* on existing
nodes/edges, never as duplicate nodes: every node in the DAG has exactly
one creation record behind it.
"""

import pytest

from repro.faults.chaos import chaos_check
from repro.lang import GTravel

CHAOS_SEEDS = list(range(10))
CRASH_SEEDS = {1, 4, 7}


def chaos_query(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read").compile()


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_trace_reconstructs_valid_dag(metadata_graph, seed):
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph, chaos_query(ids), seed=seed, crash=seed in CRASH_SEEDS, trace=True
    )
    assert outcome.ok, f"seed {seed}: {outcome.error}"
    assert outcome.traces, f"seed {seed}: traced run recorded no traversals"
    # run_under_faults submits exactly one traversal (restarts reuse its id)
    assert len(outcome.traces) == 1
    (dag,) = outcome.traces.values()
    # assemble_all already ran verify(): rooted, acyclic, no orphans. Check
    # the terminal event agrees with the differential verdict.
    if outcome.matched:
        assert dag.status == "ok", f"seed {seed}"
    else:
        assert dag.status == "failed", (
            f"seed {seed}: clean failure must leave a travel.failed terminal "
            f"event, got status={dag.status}"
        )
    # 100% coverage: every recorded execution hangs off the root
    assert dag.reachable() == set(dag.nodes), f"seed {seed}"
    # retries/dups annotate existing nodes — each node has a creation record
    assert all(n.created_at is not None for n in dag.nodes.values()), (
        f"seed {seed}: a retry or duplicate fabricated a node without a "
        f"creation record"
    )


def test_chaos_trace_annotates_retries_and_dups_somewhere(metadata_graph):
    """Across the seed sweep the fault machinery demonstrably fired: at
    least one plan's DAG carries retry or dup-drop annotations, and those
    runs still verify as well-formed DAGs."""
    graph, ids = metadata_graph
    annotated = 0
    for seed in CHAOS_SEEDS:
        outcome = chaos_check(
            graph, chaos_query(ids), seed=seed, crash=seed in CRASH_SEEDS, trace=True
        )
        if not outcome.traces:
            continue
        (dag,) = outcome.traces.values()
        retries = sum(n.retries for n in dag.nodes.values())
        dups = sum(n.dup_drops for n in dag.nodes.values())
        edge_retries = sum(e.retries for e in dag.edges.values())
        if retries or dups:
            annotated += 1
            # node annotations and edge annotations describe the same wire
            # events, so a retried node implies a retried inbound edge
            if retries:
                assert edge_retries > 0
    assert annotated > 0, "no sampled plan exercised retries or duplicates"


def test_crash_seed_trace_records_fault_events(metadata_graph):
    """A crash-bearing plan leaves fault.crash / exec.replayed (or restart)
    evidence inside the recorded event stream, and the DAG still verifies."""
    graph, ids = metadata_graph
    outcome = chaos_check(
        graph, chaos_query(ids), seed=1, crash=True, trace=True
    )
    assert outcome.ok
    crashed = any(
        k.startswith("faults.crashes") for k in outcome.net_counters
    )
    if crashed:
        (dag,) = outcome.traces.values()
        recovered = (
            dag.attempts > 0
            or any(n.replays for n in dag.nodes.values())
            or dag.status in ("ok", "failed")
        )
        assert recovered
