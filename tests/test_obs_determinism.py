"""Determinism of the observability layer on the simulated runtime.

Identical seeds and configuration must yield *byte-identical* metrics
snapshots and span timelines across independently built clusters — the
contract that makes recorded instrument panels diffable between runs.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.graph import PropertyGraph
from repro.lang import GTravel
from repro.obs.export import canonical_json

LABELS = ("calls", "reads")


def seeded_graph(seed: int, n: int = 40, extra_edges: int = 90) -> PropertyGraph:
    rng = random.Random(seed)
    g = PropertyGraph()
    for vid in range(n):
        g.add_vertex(vid, "T", {"color": rng.randrange(3)})
    for vid in range(1, n):  # connected backbone
        g.add_edge(rng.randrange(vid), vid, rng.choice(LABELS), {"w": rng.randrange(4)})
    for _ in range(extra_edges):
        g.add_edge(
            rng.randrange(n), rng.randrange(n), rng.choice(LABELS),
            {"w": rng.randrange(4)},
        )
    return g


def run_once(kind: EngineKind, seed: int = 11):
    graph = seeded_graph(seed)
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=kind))
    plan = GTravel.v(0).e("calls").e(*LABELS).e(*LABELS).compile()
    outcome = cluster.traverse(plan)
    return cluster, outcome


@pytest.mark.parametrize(
    "kind", [EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK]
)
def test_metrics_snapshots_byte_identical_across_runs(kind):
    c1, o1 = run_once(kind)
    c2, o2 = run_once(kind)
    assert o1.result.returned == o2.result.returned
    assert c1.obs.metrics.to_json() == c2.obs.metrics.to_json()


@pytest.mark.parametrize(
    "kind", [EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK]
)
def test_span_timelines_byte_identical_across_runs(kind):
    c1, _ = run_once(kind)
    c2, _ = run_once(kind)
    timeline = c1.span_timeline()
    assert timeline, "instrumented run recorded no spans"
    assert c1.obs.spans.to_json() == c2.obs.spans.to_json()


def test_full_payload_byte_identical_and_snapshot_idempotent():
    c1, _ = run_once(EngineKind.GRAPHTREK)
    c2, _ = run_once(EngineKind.GRAPHTREK)
    assert c1.obs.to_json() == c2.obs.to_json()
    # Snapshotting runs the pull collectors; doing it twice must not drift.
    first = canonical_json(c1.metrics_snapshot())
    second = canonical_json(c1.metrics_snapshot())
    assert first == second


def test_export_writes_identical_bytes(tmp_path):
    c1, _ = run_once(EngineKind.GRAPHTREK)
    c2, _ = run_once(EngineKind.GRAPHTREK)
    p1 = c1.export_observability(tmp_path / "run1.json")
    p2 = c2.export_observability(tmp_path / "run2.json")
    assert p1.read_bytes() == p2.read_bytes()


def test_span_timeline_is_causally_well_formed():
    cluster, _ = run_once(EngineKind.GRAPHTREK)
    spans = cluster.span_timeline()
    by_id = {s["span_id"]: s for s in spans}
    kinds = {s["kind"] for s in spans}
    assert {"travel", "level", "unit", "disk"} <= kinds
    parent_kind = {"level": "travel", "unit": "level", "disk": "unit"}
    for span in spans:
        assert span["end"] is not None, f"span {span['span_id']} left open"
        assert span["end"] >= span["start"]
        if span["kind"] in parent_kind:
            parent = by_id[span["parent_id"]]
            assert parent["kind"] == parent_kind[span["kind"]]
            assert parent["start"] <= span["start"]
