"""Tests for the ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_registry_covers_every_paper_artifact():
    for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10", "fig11"):
        assert name in EXPERIMENTS


def test_unknown_experiment_rejected(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiments" in capsys.readouterr().out


def test_single_cheap_experiment_runs(capsys, monkeypatch, tmp_path):
    # shrink the environment so the run takes seconds
    monkeypatch.setenv("REPRO_BENCH_SCALE", "7")
    monkeypatch.setenv("REPRO_BENCH_SERVERS", "2,3")
    monkeypatch.setattr("repro.bench.harness.RESULTS_DIR", tmp_path)
    monkeypatch.setattr("repro.bench.__main__.save_results",
                        lambda name, payload: tmp_path / f"{name}.json")
    code = main(["table2"])
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "[PASS]" in out
    assert code in (0, 1)  # checks may be scale-sensitive; must not crash
