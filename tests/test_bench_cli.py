"""Tests for the ``python -m repro.bench`` experiment runner."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_registry_covers_every_paper_artifact():
    for name in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10", "fig11"):
        assert name in EXPERIMENTS


def test_unknown_experiment_rejected(capsys):
    assert main(["nope"]) == 2
    assert "unknown experiments" in capsys.readouterr().out


def test_single_cheap_experiment_runs(capsys, monkeypatch, tmp_path):
    # shrink the environment so the run takes seconds
    monkeypatch.setenv("REPRO_BENCH_SCALE", "7")
    monkeypatch.setenv("REPRO_BENCH_SERVERS", "2,3")
    monkeypatch.setattr("repro.bench.harness.RESULTS_DIR", tmp_path)
    monkeypatch.setattr("repro.bench.__main__.save_results",
                        lambda name, payload: tmp_path / f"{name}.json")
    code = main(["table2"])
    out = capsys.readouterr().out
    assert "Table II" in out
    assert "[PASS]" in out
    assert code in (0, 1)  # checks may be scale-sensitive; must not crash


def test_chaos_knobs_reach_the_experiment(capsys, monkeypatch):
    """--fault-plan/--exec-timeout/--max-restarts flow into exp_chaos, and
    naming no experiment while passing a fault knob implies 'chaos'."""
    from repro.bench.experiments import ExperimentResult

    calls = []

    def fake_chaos(env, **kwargs):
        calls.append(kwargs)
        return ExperimentResult("chaos", [], "stub", [])

    monkeypatch.setattr("repro.bench.experiments.exp_chaos", fake_chaos)
    monkeypatch.setattr("repro.bench.__main__.save_results",
                        lambda name, payload: f"/dev/null/{name}.json")
    code = main(["--fault-plan", "11", "--exec-timeout", "0.5", "--max-restarts", "2"])
    assert code == 0
    assert calls == [{"fault_seed": 11, "exec_timeout": 0.5, "max_restarts": 2}]
    assert "chaos" in capsys.readouterr().out


def test_chaos_registered():
    assert "chaos" in EXPERIMENTS
