"""Unit tests for the versioned routing table: the single source of truth
for vertex ownership during an online shard migration."""

from __future__ import annotations

import pytest

from repro.errors import RebalanceError, ReproError, StaleRoutingVersion
from repro.rebalance import RoutingTable


def make_table(nservers=3):
    # base partitioner: round-robin by vertex id
    return RoutingTable(lambda vid: vid % nservers, nservers)


# -- version monotonicity ------------------------------------------------------


def test_every_mutation_bumps_the_version_monotonically():
    t = make_table()
    versions = [t.version]
    versions.append(t.begin_dual([0, 3], src=0, dst=1))
    versions.append(t.cutover([0, 3], dst=1))
    versions.append(t.begin_dual([6], src=0, dst=2))
    versions.append(t.abort_dual([6]))
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions), "a mutation reused a version"
    assert t.version == versions[-1]


def test_restore_version_never_goes_backwards():
    t = make_table()
    t.begin_dual([0], src=0, dst=1)
    t.cutover([0], dst=1)
    high = t.version
    t.restore_version(high + 5)
    assert t.version == high + 6
    t.restore_version(0)  # stale floor: no-op
    assert t.version == high + 6


def test_crash_then_restore_stays_past_journaled_high_water():
    """The crash-consistency invariant: replaying a journal whose records
    carry version ``v`` must leave the live table strictly above ``v``, so
    any in-flight step stamped pre-crash is fenced, never applied."""
    t = make_table()
    t.begin_dual([0, 3], src=0, dst=1)
    journaled = t.cutover([0, 3], dst=1)
    t.on_coordinator_crash()
    assert t.dual_count == 0 and t.override_count == 0
    t.apply_override([0, 3], dst=1)  # recovery: no bump
    t.restore_version(journaled)
    assert t.version > journaled
    assert t.owner(0) == 1 and t.owner(3) == 1


# -- stale-version fencing -----------------------------------------------------


def test_require_current_fences_stale_and_future_versions():
    t = make_table()
    good = t.version
    t.require_current(good)  # no raise
    t.begin_dual([0], src=0, dst=1)
    with pytest.raises(StaleRoutingVersion) as excinfo:
        t.require_current(good, what="chunk apply")
    err = excinfo.value
    assert isinstance(err, RebalanceError) and isinstance(err, ReproError)
    assert err.expected == t.version and err.got == good
    assert "chunk apply" in str(err)


# -- double routing ------------------------------------------------------------


def test_dual_window_routes_to_both_with_source_primary():
    t = make_table()
    assert t.owners(3) == (0,)
    t.begin_dual([3], src=0, dst=2)
    assert t.owners(3) == (0, 2), "dual window must dispatch to both owners"
    assert t.owner(3) == 0, "source stays primary until cutover"
    t.cutover([3], dst=2)
    assert t.owners(3) == (2,)
    assert t.owner(3) == 2


def test_abort_dual_reverts_to_pre_window_ownership():
    t = make_table()
    t.begin_dual([0, 3], src=0, dst=1)
    t.cutover([0, 3], dst=1)
    # second hop: 1 -> 2, aborted
    t.begin_dual([0], src=1, dst=2)
    assert t.owners(0) == (1, 2)
    t.abort_dual([0])
    assert t.owners(0) == (1,), "abort must revert to the committed owner"
    assert t.owner(3) == 1, "unrelated override untouched"


def test_cutover_back_to_base_owner_clears_the_override():
    t = make_table()
    t.begin_dual([3], src=0, dst=1)
    t.cutover([3], dst=1)
    assert t.override_count == 1
    t.begin_dual([3], src=1, dst=0)
    t.cutover([3], dst=0)  # home again: base_owner(3) == 0
    assert t.override_count == 0, "an override matching the base is noise"
    assert t.owner(3) == 0


# -- admission validation ------------------------------------------------------


def test_begin_dual_rejects_bad_moves():
    t = make_table()
    with pytest.raises(RebalanceError, match="source and target"):
        t.begin_dual([0], src=1, dst=1)
    with pytest.raises(RebalanceError, match="out of range"):
        t.begin_dual([0], src=0, dst=7)
    with pytest.raises(RebalanceError, match="owned by server"):
        t.begin_dual([1], src=0, dst=2)  # vertex 1 belongs to server 1
    t.begin_dual([0], src=0, dst=1)
    with pytest.raises(RebalanceError, match="already migrating"):
        t.begin_dual([0], src=0, dst=2)
    # failed admissions must not have half-opened a window
    assert t.dual_count == 1


def test_cutover_requires_a_matching_window():
    t = make_table()
    with pytest.raises(RebalanceError, match="no double-routing window"):
        t.cutover([0], dst=1)
    t.begin_dual([0], src=0, dst=1)
    with pytest.raises(RebalanceError, match="no double-routing window"):
        t.cutover([0], dst=2)  # window targets 1, not 2
    assert t.owners(0) == (0, 1), "failed cutover left the window intact"
