"""Unit + closed-loop tests for the telemetry-driven rebalancer policy.

``select_migration`` is a pure function, pinned here against a hand-built
:class:`HotShardReport` fixture so the choice is exactly reproducible; the
closed-loop legs drive ``Cluster.start_rebalancer`` on a skewed workload
and watch it move load off the hot server without changing any answer.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.graph import GraphBuilder
from repro.lang import GTravel
from repro.obs.telemetry import HotShardReport
from repro.rebalance import (
    MigrationConfig,
    RebalancerConfig,
    select_migration,
)


def pinned_report(hot=(0,)):
    """A fixed three-server report: server 0 hot, server 2 coolest."""
    return HotShardReport(
        clock=10.0,
        window_width=1.0,
        servers=[
            {"server": 0, "exec_rate": 12.0, "inflight": 4, "score": 5.25},
            {"server": 1, "exec_rate": 2.0, "inflight": 0, "score": 0.9},
            {"server": 2, "exec_rate": 1.0, "inflight": 0, "score": 0.4},
        ],
        ranked=[0, 1, 2],
        hot=list(hot),
    )


LOADS = {0: [0, 3, 6, 9, 12, 15], 1: [1, 4, 7], 2: [2, 5, 8]}


# -- select_migration: deterministic choice from a pinned fixture --------------


def test_selection_from_pinned_report_is_deterministic():
    choice = select_migration(pinned_report(), LOADS)
    assert choice is not None
    assert choice.src == 0
    assert choice.dst == 2, "target must be the coolest server, not next-hot"
    # fraction 0.5 of six vertices, lowest-keyed prefix
    assert choice.vids == (0, 3, 6)
    assert choice.key_range == (0, 7)
    # pure function: same inputs, same choice
    assert select_migration(pinned_report(), LOADS) == choice


def test_fraction_and_cap_bound_the_move():
    assert select_migration(pinned_report(), LOADS, fraction=0.99).vids == (
        0,
        3,
        6,
        9,
        12,
    )
    assert select_migration(
        pinned_report(), LOADS, fraction=0.99, max_vertices=2
    ).vids == (0, 3)
    # a tiny fraction still moves at least one vertex
    assert select_migration(pinned_report(), LOADS, fraction=0.01).vids == (0,)


def test_no_hot_server_means_no_move_unless_forced():
    report = pinned_report(hot=())
    assert select_migration(report, LOADS) is None
    forced = select_migration(report, LOADS, require_hot=False)
    assert forced is not None and forced.src == 0, (
        "require_hot=False falls back to the top-ranked server"
    )


def test_empty_or_missing_source_loads_are_skipped():
    # hot server has nothing local to move: fall through to the next one
    loads = {0: [], 1: [1, 4, 7], 2: [2, 5, 8]}
    choice = select_migration(pinned_report(hot=(0, 1)), loads)
    assert choice is not None and choice.src == 1
    # nothing anywhere: no move
    assert select_migration(pinned_report(), {0: []}) is None


def test_single_server_report_is_never_actionable():
    report = HotShardReport(
        clock=0.0,
        window_width=1.0,
        servers=[{"server": 0, "exec_rate": 5.0, "inflight": 1, "score": 9.0}],
        ranked=[0],
        hot=[0],
    )
    assert select_migration(report, {0: [1, 2, 3]}) is None


# -- the closed loop on a live cluster -----------------------------------------


def skewed_cluster():
    b = GraphBuilder()
    vids = [b.vertex("n") for _ in range(30)]
    for i in range(29):
        b.edge(vids[i], vids[i + 1], "link")
    graph = b.build()
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            journal=True,
            migration=MigrationConfig(chunk_vertices=4, dual_window=0.01),
        ),
    )
    return cluster, vids


def heat(cluster, server, vids, n=8):
    """Pin real traversal work onto one server: starts it owns, a label
    that never matches, so no expansion leaves it."""
    mine = [v for v in vids if cluster.routing.owner(v) == server]
    for v in mine[:n]:
        cluster.traverse(GTravel.v(v).e("__no_such_label__"), cold=False)


def test_rebalancer_moves_load_off_the_hot_server():
    cluster, vids = skewed_cluster()
    hot = cluster.routing.owner(vids[0])
    heat(cluster, hot, vids)
    assert cluster.hot_shard_report().hottest == hot
    before = len(cluster.servers[hot].store.local_vertices())

    rebalancer = cluster.start_rebalancer(
        RebalancerConfig(
            interval=0.05, cooldown=0.05, max_migrations=1, require_hot=False
        )
    )
    sim = cluster.runtime.sim
    sim.run(until=sim.now + 5.0)
    assert not rebalancer.running, "loop must stop at max_migrations"
    assert len(rebalancer.migrations) == 1
    state = rebalancer.migrations[0]
    assert state.phase == "done", state.abort_reason
    assert state.src == hot
    after = len(cluster.servers[hot].store.local_vertices())
    assert after == before - len(state.vids) and len(state.vids) > 0
    # answers survive the autonomous move
    fresh = Cluster.build(cluster.migrator.graph, ClusterConfig(nservers=3))
    for v in vids[:6]:
        got = cluster.traverse(GTravel.v(v).e("link"), cold=False)
        want = fresh.traverse(GTravel.v(v).e("link"), cold=False)
        assert sorted(got.result.vertices) == sorted(want.result.vertices)
    assert cluster.migrator.leaked_state() == []


def test_rebalancer_stop_halts_the_loop_and_leaks_nothing():
    cluster, vids = skewed_cluster()
    heat(cluster, cluster.routing.owner(vids[0]), vids)
    rebalancer = cluster.start_rebalancer(
        RebalancerConfig(interval=0.05, cooldown=0.05, require_hot=False)
    )
    sim = cluster.runtime.sim
    sim.run(until=sim.now + 1.0)
    cluster.stop_rebalancer()
    assert not rebalancer.running
    moved = len(rebalancer.migrations)
    sim.run(until=sim.now + 1.0)
    assert len(rebalancer.migrations) == moved, "stopped loop kept migrating"
    assert cluster.migrator.active_count == 0
    assert cluster.migrator.leaked_state() == []


def test_rebalancer_requires_telemetry():
    from repro.errors import TelemetryDisabled

    b = GraphBuilder()
    b.vertex("n")
    cluster = Cluster.build(
        b.build(), ClusterConfig(nservers=2, telemetry_enabled=False)
    )
    with pytest.raises(TelemetryDisabled) as excinfo:
        cluster.start_rebalancer()
    assert excinfo.value.operation == "start_rebalancer()"
