"""Tests for key/value codecs and the graph-on-KV layout invariants."""

import pytest

from repro.errors import StorageError
from repro.storage import encoding as enc


def test_value_roundtrip_all_types():
    for value in (None, True, False, 0, -5, 2**40, 3.14, -0.0, "héllo", b"\x00\xff", ""):
        packed = enc.pack_value(value)
        out, offset = enc.unpack_value(packed)
        assert out == value
        assert offset == len(packed)


def test_value_rejects_unsupported_type():
    with pytest.raises(StorageError):
        enc.pack_value([1, 2])


def test_bool_is_not_confused_with_int():
    assert enc.unpack_value(enc.pack_value(True))[0] is True
    assert enc.unpack_value(enc.pack_value(1))[0] == 1
    assert enc.pack_value(True) != enc.pack_value(1)


def test_props_roundtrip():
    props = {"z": 1, "a": "x", "m": 2.5, "b": b"raw", "n": None}
    packed = enc.pack_props(props)
    out, _ = enc.unpack_props(packed)
    assert out == props


def test_props_deterministic_encoding():
    assert enc.pack_props({"a": 1, "b": 2}) == enc.pack_props({"b": 2, "a": 1})


def test_edge_record_roundtrip():
    packed = enc.pack_edge_record(1234, {"ts": 99})
    dst, props = enc.unpack_edge_record(packed)
    assert dst == 1234 and props == {"ts": 99}


def test_attr_key_roundtrip():
    key = enc.attr_key("User", 42, "name")
    assert enc.parse_attr_key(key) == ("User", 42, "name")


def test_edge_key_roundtrip():
    key = enc.edge_key("User", 42, "run", 7)
    assert enc.parse_edge_key(key) == ("User", 42, "run", 7)


def test_attrs_sort_before_edges_within_vertex():
    """The layout invariant: a vertex's attribute pairs precede its edge
    pairs, and everything for one vertex is contiguous."""
    attr = enc.attr_key("T", 5, "zzz")
    edge = enc.edge_key("T", 5, "aaa", 0)
    assert attr < edge
    prefix = enc.vertex_prefix("T", 5)
    assert attr.startswith(prefix) and edge.startswith(prefix)


def test_same_label_edges_contiguous():
    """Edges of one label sort together — the sequential-scan property."""
    keys = [
        enc.edge_key("T", 1, "read", 1),
        enc.edge_key("T", 1, "write", 0),
        enc.edge_key("T", 1, "read", 0),
        enc.edge_key("T", 1, "write", 1),
    ]
    keys.sort()
    labels = [enc.parse_edge_key(k)[2] for k in keys]
    assert labels == ["read", "read", "write", "write"]


def test_vertices_sorted_by_id_within_namespace():
    k1 = enc.vertex_prefix("T", 1)
    k2 = enc.vertex_prefix("T", 2)
    k300 = enc.vertex_prefix("T", 300)
    assert k1 < k2 < k300  # fixed-width big-endian ids


def test_namespaces_partition_keyspace():
    a_end = enc.prefix_end(b"A\x00")
    b_start = enc.vertex_prefix("B", 0)
    assert a_end <= b_start


def test_prefix_end_covers_prefixed_keys():
    prefix = enc.edges_prefix("T", 3, "run")
    end = enc.prefix_end(prefix)
    inside = enc.edge_key("T", 3, "run", 2**30)
    outside = enc.edge_key("T", 3, "runx", 0)
    assert prefix <= inside < end
    assert not (prefix <= outside < end)


def test_prefix_end_handles_trailing_ff():
    assert enc.prefix_end(b"a\xff") == b"b"
    assert enc.prefix_end(b"\xff\xff")  # all-FF fallback doesn't crash


def test_namespace_rejects_nul():
    with pytest.raises(StorageError):
        enc.vertex_prefix("bad\x00ns", 1)


def test_edge_label_rejects_nul():
    with pytest.raises(StorageError):
        enc.edge_key("T", 1, "bad\x00label", 0)


def test_parse_attr_key_rejects_edge_key():
    with pytest.raises(StorageError):
        enc.parse_attr_key(enc.edge_key("T", 1, "run", 0))


def test_parse_edge_key_rejects_attr_key():
    with pytest.raises(StorageError):
        enc.parse_edge_key(enc.attr_key("T", 1, "name"))


def test_iter_props_pairs_sorted():
    pairs = list(enc.iter_props_pairs({"b": 1, "a": 2}))
    assert [k for k, _ in pairs] == ["a", "b"]
