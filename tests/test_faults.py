"""Unit tests for fault plans, the injector, and runtime drop accounting."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.errors import SimulationError
from repro.faults import (
    CrashEvent,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    payload_type_name,
    sample_fault_plan,
)
from repro.ids import COORDINATOR
from repro.lang import GTravel
from repro.net.message import ExecStatus, TraverseRequest
from repro.net.reliable import AckFrame, DataFrame


# -- plan validation ------------------------------------------------------------


def test_fault_spec_rejects_bad_probability():
    with pytest.raises(SimulationError, match="not in"):
        FaultSpec(drop=1.5).validate()
    with pytest.raises(SimulationError, match="non-negative"):
        FaultSpec(delay_seconds=-1.0).validate()


def test_crash_event_coordinator_requires_recovery():
    # a coordinator-hosting server may crash — but only with a scheduled
    # recovery; a permanent coordinator loss is a config error, not a hang
    CrashEvent(server=0, at=1.0, recover_at=2.0).validate(
        nservers=3, coordinator_server=0
    )
    with pytest.raises(SimulationError, match="coordinator"):
        CrashEvent(server=0, at=1.0).validate(nservers=3, coordinator_server=0)
    # permanent crashes elsewhere stay legal
    CrashEvent(server=1, at=1.0).validate(nservers=3, coordinator_server=0)


def test_crash_event_rejects_unordered_window():
    with pytest.raises(SimulationError, match="ordered"):
        CrashEvent(server=1, at=2.0, recover_at=1.0).validate(3, 0)


def test_plan_spec_for_prefers_per_type():
    spec = FaultSpec(drop=0.5)
    plan = FaultPlan(per_type={"ExecStatus": spec})
    assert plan.spec_for("ExecStatus") is spec
    assert plan.spec_for("TraverseRequest") is plan.default


# -- injector determinism -------------------------------------------------------


def _decisions(plan, n=200):
    inj = FaultInjector(plan)
    msg = TraverseRequest(1, level=0, entries={}, exec_id=1, from_server=0)
    return [inj.decide(0, 1, msg) for _ in range(n)]


def test_injector_is_deterministic_per_seed():
    plan = FaultPlan(seed=9, default=FaultSpec(drop=0.2, duplicate=0.2, delay=0.3))
    assert _decisions(plan) == _decisions(plan)
    other = plan.with_seed(10)
    assert _decisions(plan) != _decisions(other)


def test_injector_honours_probability_zero_and_one():
    never = _decisions(FaultPlan(seed=1, default=FaultSpec()))
    assert all(d.clean for d in never)
    always = _decisions(FaultPlan(seed=1, default=FaultSpec(drop=1.0)))
    assert all(d.drop for d in always)


def test_payload_type_name_unwraps_frames():
    status = ExecStatus(3, exec_id=1, server=0, created=(), results_sent=0)
    frame = DataFrame(3, seq=7, src=0, dst=1, payload=status)
    assert payload_type_name(status) == "ExecStatus"
    assert payload_type_name(frame) == "ExecStatus"
    assert payload_type_name(AckFrame(3, seq=7)) == "Ack"


def test_sample_fault_plan_reproducible():
    a = sample_fault_plan(4, nservers=3, crash_window=(0.1, 1.0))
    b = sample_fault_plan(4, nservers=3, crash_window=(0.1, 1.0))
    assert a == b
    assert a.crashes and a.crashes[0].server != 0
    assert sample_fault_plan(5, nservers=3) != a


def test_sample_fault_plan_needs_a_crashable_server():
    with pytest.raises(SimulationError, match="crashable"):
        sample_fault_plan(1, nservers=1, crash_window=(0.0, 1.0))


# -- runtime drop accounting (satellite: count silently dropped messages) --------


def _tiny_cluster(graph, **cfg):
    return Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK, **cfg))


def test_legacy_drop_filter_counts_net_dropped(metadata_graph):
    graph, ids = metadata_graph
    cluster = _tiny_cluster(graph)
    dropped = []

    def drop_one(src, dst, msg):
        if isinstance(msg, TraverseRequest) and msg.level > 0 and not dropped:
            dropped.append(msg)
            return True
        return False

    cluster.runtime.drop_filter = drop_one
    from repro.cluster import CoordinatorConfig

    cluster.coordinator.config = CoordinatorConfig(exec_timeout=0.5, watch_interval=0.1)
    plan = GTravel.v(ids["users"][0]).e("run").e("hasExecutions").compile()
    out = cluster.traverse(plan)
    assert dropped
    assert out.result.same_vertices(ReferenceEngine(graph).run(plan))
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("net.dropped{reason=filter,type=TraverseRequest}") == 1
    assert cluster.runtime.messages_dropped == 1


def test_fault_plan_drops_are_counted_by_type(metadata_graph):
    graph, ids = metadata_graph
    plan = FaultPlan(seed=3, default=FaultSpec(drop=1.0))
    cluster = _tiny_cluster(graph, fault_plan=plan)
    travel = GTravel.v(ids["users"][0]).e("run").compile()
    from repro.cluster import CoordinatorConfig
    from repro.errors import TraversalFailed

    cluster.coordinator.config = CoordinatorConfig(
        exec_timeout=0.2, watch_interval=0.05, max_restarts=0
    )
    with pytest.raises(TraversalFailed):
        cluster.traverse(travel)
    counters = cluster.metrics_snapshot()["counters"]
    drop_keys = [k for k in counters if k.startswith("net.dropped{reason=fault")]
    assert drop_keys, counters
    assert cluster.runtime.messages_dropped > 0


def test_crashed_server_swallows_wire_traffic(metadata_graph):
    """Deliveries to and from a crashed server drop with reason=down."""
    graph, _ = metadata_graph
    cluster = _tiny_cluster(graph)
    runtime = cluster.runtime
    runtime.crash_server(1)
    assert runtime.is_down(1)
    before = runtime.messages_sent
    status = ExecStatus(1, exec_id=1, server=2, created=(), results_sent=0)
    runtime.deliver(2, 1, status)  # into the dead server
    runtime.deliver(1, 2, status)  # out of the dead server
    assert runtime.messages_sent == before
    assert runtime.messages_dropped == 2
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("net.dropped{reason=down,type=ExecStatus}") == 2
    runtime.recover_server(1)
    assert not runtime.is_down(1)
    runtime.deliver(2, 1, status)
    assert runtime.messages_sent == before + 1


def test_crash_and_recovery_counters_and_idempotence(metadata_graph):
    graph, _ = metadata_graph
    cluster = _tiny_cluster(graph)
    runtime = cluster.runtime
    runtime.crash_server(2)
    runtime.crash_server(2)  # second crash of a down server is a no-op
    runtime.recover_server(2)
    runtime.recover_server(2)
    counters = cluster.metrics_snapshot()["counters"]
    assert counters.get("faults.crashes{server=2}") == 1
    assert counters.get("faults.recoveries{server=2}") == 1
    assert counters.get("engine.crashes{server=2}") == 1


def test_coordinator_destination_is_typed(metadata_graph):
    """The coordinator path hands COORDINATOR (not a raw -1) to filters."""
    graph, ids = metadata_graph
    cluster = _tiny_cluster(graph)
    seen_dsts = []

    def spy(src, dst, msg):
        seen_dsts.append(dst)
        return False

    cluster.runtime.drop_filter = spy
    cluster.traverse(GTravel.v(ids["users"][0]).e("run").compile())
    assert COORDINATOR in seen_dsts
    assert all(d == COORDINATOR or 0 <= d < 3 for d in seen_dsts)


def test_install_faults_validates_against_topology(metadata_graph):
    graph, _ = metadata_graph
    plan = FaultPlan(seed=1, crashes=(CrashEvent(server=7, at=0.1, recover_at=0.2),))
    with pytest.raises(SimulationError, match="out of range"):
        Cluster.build(graph, ClusterConfig(nservers=3, fault_plan=plan))
