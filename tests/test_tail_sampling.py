"""Tail-based trace sampling: keep/drop routing, crash retention, and
per-traversal dropped-event attribution."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.errors import TraversalCancelled
from repro.faults.chaos import chaos_coordinator_config
from repro.faults.plan import CrashEvent, FaultPlan
from repro.graph import GraphBuilder
from repro.lang import GTravel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FlightRecorder, SamplingPolicy
from tests.conftest import build_cluster

NEVER = SamplingPolicy(sample_every_n=0)  # only the always-keep rules apply


def small_graph():
    b = GraphBuilder()
    vids = [b.vertex("n") for _ in range(16)]
    for i in range(15):
        b.edge(vids[i], vids[i + 1], "link")
        b.edge(vids[i], vids[(i * 5) % 16], "link")
    return b.build(), vids


# -- SamplingPolicy -----------------------------------------------------------


def test_sampling_policy_edge_rates_and_determinism():
    assert not any(SamplingPolicy(0).sampled(t) for t in range(50))
    assert all(SamplingPolicy(1).sampled(t) for t in range(50))
    policy = SamplingPolicy(sample_every_n=8, seed=3)
    picks = [t for t in range(200) if policy.sampled(t)]
    assert picks == [t for t in range(200) if policy.sampled(t)]
    assert 0 < len(picks) < 200
    assert picks != [t for t in range(200) if SamplingPolicy(8, seed=4).sampled(t)]


# -- FlightRecorder routing ---------------------------------------------------


def test_pending_events_commit_or_discard_at_the_terminal():
    rec = FlightRecorder(enabled=True)
    rec.configure(sampling=NEVER)
    rec.record("exec.start", travel_id=1)
    rec.record("exec.start", travel_id=2)
    # undecided buffers are still visible to readers (merged view)
    assert {e.travel_id for e in rec.events()} == {1, 2}
    rec.finalize_travel(1, keep=True, reason="terminal:failed")
    rec.finalize_travel(2, keep=False)
    assert [e.travel_id for e in rec.events()] == [1]
    assert rec.sampled_out == 1


def test_late_events_follow_the_stored_decision():
    rec = FlightRecorder(enabled=True)
    rec.configure(sampling=NEVER)
    rec.record("exec.start", travel_id=1)
    rec.finalize_travel(1, keep=False)
    rec.record("exec.report", travel_id=1)  # late: dropped directly
    assert rec.events() == [] and rec.sampled_out == 2
    rec.record("exec.start", travel_id=2)
    rec.finalize_travel(2, keep=True, reason="sampled")
    rec.record("exec.report", travel_id=2)  # late: committed directly
    assert len(rec.events_for(2)) == 2


def test_cluster_scope_events_bypass_sampling():
    rec = FlightRecorder(enabled=True)
    rec.configure(sampling=NEVER)
    rec.record("slo.alert", tenant="a", state="firing")
    assert [e.kind for e in rec.events()] == ["slo.alert"]


def test_keep_all_pending_retains_every_undecided_buffer():
    rec = FlightRecorder(enabled=True)
    rec.configure(sampling=NEVER)
    for tid in (5, 3, 9):
        rec.record("exec.start", travel_id=tid)
    rec.keep_all_pending(reason="coord.crash")
    assert sorted(rec.travel_ids()) == [3, 5, 9]
    # the flush decided keep for all three: later events commit directly
    rec.record("exec.report", travel_id=3)
    assert len(rec.events_for(3)) == 2


def test_finalize_counts_kept_and_sampled_out_metrics():
    rec = FlightRecorder(enabled=True)
    metrics = MetricsRegistry()
    rec.bind_metrics(metrics)
    rec.configure(sampling=NEVER)
    rec.record("exec.start", travel_id=1)
    rec.record("exec.report", travel_id=1)
    rec.record("exec.start", travel_id=2)
    rec.finalize_travel(1, keep=False)
    rec.finalize_travel(2, keep=True, reason="slow")
    assert metrics.counter_value("trace.sampled_out_traces") == 1
    assert metrics.counter_value("trace.sampled_out_events") == 2
    assert metrics.counter_value("trace.kept_traces", reason="slow") == 1


# -- dropped-event attribution (ring eviction) --------------------------------


def test_ring_evictions_attribute_to_the_owning_traversal():
    rec = FlightRecorder(enabled=True, max_events=4)
    metrics = MetricsRegistry()
    rec.bind_metrics(metrics)
    for _ in range(3):
        rec.record("exec.start", travel_id=7)
    for _ in range(4):
        rec.record("exec.start", travel_id=8)
    assert rec.dropped == 3
    assert rec.dropped_for(7) == 3 and rec.dropped_for(8) == 0
    assert metrics.counter_value("trace.dropped_events", travel_id="7") == 3
    assert rec.truncated


def test_untracked_evictions_count_against_every_traversal():
    rec = FlightRecorder(enabled=True, max_events=2)
    metrics = MetricsRegistry()
    rec.bind_metrics(metrics)
    rec.record("fault.crash", server_id=0)  # no travel id
    rec.record("exec.start", travel_id=1)
    rec.record("exec.start", travel_id=1)
    assert rec.dropped_for(1) == 1  # the untracked eviction may be anyone's
    assert (
        metrics.counter_value("trace.dropped_events", travel_id="untracked")
        == 1
    )


# -- cluster-level keep rules -------------------------------------------------


def test_healthy_traversals_sample_out_but_cancelled_ones_keep():
    graph, vids = small_graph()
    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, nservers=3,
        trace_enabled=True, trace_sampling=NEVER,
    )
    ok_outcome = cluster.traverse(GTravel.v(vids[0]).e("link").e("link"))
    ok_id = ok_outcome.result.travel_id
    assert cluster.board.obs.trace.events_for(ok_id) == []
    cancel_id, event = cluster.submit(
        GTravel.v(*vids).e("link").e("link").e("link").e("link"),
        deadline=1e-6,
    )
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    kinds = {e.kind for e in cluster.board.obs.trace.events_for(cancel_id)}
    assert kinds, "cancelled traversal's full trace must be retained"
    metrics = cluster.board.obs.metrics
    assert (
        metrics.counter_value("trace.kept_traces", reason="terminal:cancelled")
        == 1
    )
    assert metrics.counter_value("trace.sampled_out_traces") == 1


def test_seeded_one_in_n_keeps_the_sampled_traversal():
    graph, vids = small_graph()
    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, nservers=2,
        trace_enabled=True, trace_sampling=SamplingPolicy(1),
    )
    outcome = cluster.traverse(GTravel.v(vids[0]).e("link"))
    assert cluster.board.obs.trace.events_for(outcome.result.travel_id)
    assert (
        cluster.board.obs.metrics.counter_value(
            "trace.kept_traces", reason="sampled"
        )
        == 1
    )


def test_slow_traversals_keep_their_trace():
    graph, vids = small_graph()
    from repro.obs.slo import SLOConfig

    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, nservers=2,
        trace_enabled=True, trace_sampling=NEVER,
        slo_config=SLOConfig(latency_objective=1e-9),
    )
    outcome = cluster.traverse(GTravel.v(vids[0]).e("link"))
    assert cluster.board.obs.trace.events_for(outcome.result.travel_id)
    assert (
        cluster.board.obs.metrics.counter_value(
            "trace.kept_traces", reason="slow"
        )
        == 1
    )


def test_profile_bypasses_sampling_and_restores_it():
    graph, vids = small_graph()
    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, nservers=2,
        trace_enabled=True, trace_sampling=NEVER,
    )
    outcome, report = cluster.profile(GTravel.v(vids[0]).e("link").e("link"))
    assert report.steps, "profile() needs the full trace despite sampling"
    assert cluster.board.obs.trace.sampling is NEVER  # restored afterwards
    later = cluster.traverse(GTravel.v(vids[0]).e("link"), cold=False)
    assert cluster.board.obs.trace.events_for(later.result.travel_id) == []


# -- chaos: coordinator crash must not lose in-flight traces ------------------


def test_coordinator_crash_retains_inflight_trace_buffers():
    graph, vids = small_graph()
    plan = GTravel.v(*vids).e("link").e("link").e("link").compile()
    baseline = build_cluster(graph, EngineKind.GRAPHTREK, nservers=3)
    start = baseline.now
    baseline.traverse(plan)
    duration = baseline.now - start
    fault_plan = FaultPlan(
        crashes=(
            CrashEvent(server=0, at=0.4 * duration, recover_at=3.0 * duration),
        )
    )
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            fault_plan=fault_plan,
            reliable=True,
            journal=True,
            coordinator_config=chaos_coordinator_config(duration),
            trace_enabled=True,
            trace_sampling=NEVER,
        ),
    )
    outcome = cluster.traverse(plan)
    recorder = cluster.board.obs.trace
    events = recorder.events_for(outcome.result.travel_id)
    assert events, "trace of a traversal spanning a coordinator crash is kept"
    assert not recorder._pending, "no buffer may stay undecided after terminal"
    kept = cluster.board.obs.metrics.counter_total("trace.kept_traces")
    assert kept >= 1
