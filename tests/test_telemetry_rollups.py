"""Windowed rollups, pull-mode flushing, and hot-shard detection."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.lang import GTravel
from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.telemetry import (
    EXEC_RATE_METRIC,
    HotShardReport,
    TelemetryConfig,
    TelemetryPlane,
)
from tests.conftest import ALL_ENGINES, build_cluster


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def make_plane(**cfg):
    clock = FakeClock()
    plane = TelemetryPlane(TelemetryConfig(**cfg))
    plane.bind_clock(clock)
    return plane, clock


# -- per-record (push) windowing ----------------------------------------------


def test_counters_bin_into_clock_windows_with_rates():
    plane, clock = make_plane(window_width=1.0)
    key = metric_key("coord.submitted", {})
    plane.ingest("counter", key, 2)
    clock.t = 0.9
    plane.ingest("counter", key, 1)
    clock.t = 2.5  # skips window 1 entirely
    plane.ingest("counter", key, 4)
    windows = plane.rollups()["counters"]["coord.submitted"]
    assert [(w["window"], w["count"], w["rate"]) for w in windows] == [
        (0, 3, 3.0),
        (2, 4, 4.0),
    ]
    assert windows[0]["start"] == 0.0 and windows[1]["start"] == 2.0


def test_window_ring_is_bounded_and_evicts_oldest():
    plane, clock = make_plane(window_width=1.0, max_windows=4)
    key = metric_key("x", {})
    for w in range(10):
        clock.t = float(w)
        plane.ingest("counter", key, 1)
    windows = plane.rollups()["counters"]["x"]
    assert [w["window"] for w in windows] == [6, 7, 8, 9]


def test_gauges_keep_last_sample_per_window():
    plane, clock = make_plane(window_width=1.0)
    key = metric_key("depth", {})
    plane.ingest("gauge", key, 5)
    plane.ingest("gauge", key, 7)
    clock.t = 1.5
    plane.ingest("gauge", key, 2)
    windows = plane.rollups()["gauges"]["depth"]
    assert [(w["window"], w["last"]) for w in windows] == [(0, 7), (1, 2)]


def test_histogram_windows_summarize_with_bounded_samples():
    plane, clock = make_plane(window_width=1.0, max_samples_per_window=3)
    key = metric_key("lat", {})
    for v in (1.0, 2.0, 3.0, 4.0, 5.0):
        plane.ingest("hist", key, v)
    (row,) = plane.rollups()["histograms"]["lat"]
    # first-N retention: 3 samples kept, 2 counted as overflow, never lost
    assert row["count"] == 3 and row["overflow"] == 2
    assert row["p50"] == 2.0


def test_recent_rate_spans_retained_windows():
    plane, clock = make_plane(window_width=0.5)
    key = metric_key("hits", {"server": 1})
    plane.ingest("counter", key, 3)
    clock.t = 1.0  # window 2: span covers windows 0..2
    plane.ingest("counter", key, 3)
    assert plane.recent_rate("hits", server=1) == pytest.approx(6 / 1.5)
    assert plane.recent_rate("hits", server=9) == 0.0


def test_clear_resets_all_series():
    plane, _clock = make_plane()
    plane.ingest("counter", metric_key("x", {}), 1)
    plane.clear()
    payload = plane.rollups()
    assert payload["counters"] == {} and payload["histograms"] == {}


# -- pull mode (simulated runtime boundary flushes) ---------------------------


def small_graph():
    from repro.graph import GraphBuilder

    b = GraphBuilder()
    vids = [b.vertex("n") for _ in range(24)]
    for i in range(23):
        b.edge(vids[i], vids[i + 1], "link")
        b.edge(vids[i], vids[(i * 7) % 24], "link")
    return b.build(), vids


def test_pull_mode_window_totals_match_registry_totals():
    graph, vids = small_graph()
    cluster = build_cluster(graph, EngineKind.GRAPHTREK, nservers=3)
    cluster.traverse(GTravel.v(vids[0]).e("link").e("link").e("link"))
    rollups = cluster.rollups()
    snapshot = cluster.metrics_snapshot()
    assert rollups["counters"], "pull mode produced no counter windows"
    for rendered, windows in rollups["counters"].items():
        # every counter recorded after build flushes exactly once per window:
        # the windowed total must reconcile with the cumulative snapshot
        assert sum(w["count"] for w in windows) == pytest.approx(
            snapshot["counters"][rendered]
        ), rendered


def test_pull_mode_is_deterministic_across_reruns():
    def run():
        graph, vids = small_graph()
        cluster = build_cluster(graph, EngineKind.ASYNC, nservers=3)
        cluster.traverse(GTravel.v(vids[0]).e("link").e("link"))
        return cluster.telemetry.rollups_json()

    assert run() == run()


def test_registry_snapshot_bytes_unaffected_by_telemetry():
    """The tentpole's non-negotiable: turning the plane on must not change
    one byte of the registry's own snapshot."""
    graph, vids = small_graph()
    plan = GTravel.v(vids[0]).e("link").e("link")

    def run(enabled):
        cluster = build_cluster(
            graph, EngineKind.GRAPHTREK, nservers=3, telemetry_enabled=enabled
        )
        cluster.traverse(plan)
        return cluster.board.obs.metrics.to_json()

    assert run(True) == run(False)


def test_threaded_runtime_uses_per_record_windowing():
    graph, vids = small_graph()
    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, nservers=2, runtime="threaded"
    )
    try:
        cluster.traverse(GTravel.v(vids[0]).e("link").e("link"))
        rollups = cluster.rollups()
        # structural smoke only: threaded timing is not deterministic, but
        # the watcher feed must still produce windows for the hot counters
        assert any(
            rendered.startswith(EXEC_RATE_METRIC)
            for rendered in rollups["counters"]
        )
    finally:
        cluster.shutdown()


# -- hot-shard detection ------------------------------------------------------


def test_hot_shard_ranking_scores_and_threshold():
    plane, clock = make_plane(window_width=1.0)
    # server 0 does 6x the work of servers 1..2 and holds all the in-flight
    for _ in range(12):
        plane.ingest("counter", metric_key(EXEC_RATE_METRIC, {"server": 0}), 1)
    for s in (1, 2):
        for _ in range(2):
            plane.ingest(
                "counter", metric_key(EXEC_RATE_METRIC, {"server": s}), 1
            )
    report = plane.hot_shards({0: 4, 1: 0, 2: 0}, nservers=3)
    assert isinstance(report, HotShardReport)
    assert report.ranked == [0, 1, 2] and report.hottest == 0
    # rate share 12/16 vs mean 16/3 -> 2.25x; inflight 4 vs mean 4/3 -> 3x
    assert report.servers[0]["score"] == pytest.approx(2.25 + 3.0)
    assert report.hot == [0]


def test_uniform_load_is_never_hot():
    plane, clock = make_plane()
    for s in range(4):
        plane.ingest("counter", metric_key(EXEC_RATE_METRIC, {"server": s}), 5)
    report = plane.hot_shards({s: 1 for s in range(4)}, nservers=4)
    # uniform load scores w_rate + w_inflight = 2.0 < threshold everywhere
    assert report.hot == []
    assert all(r["score"] == pytest.approx(2.0) for r in report.servers)
    assert report.ranked == [0, 1, 2, 3]  # deterministic tie-break


@pytest.mark.parametrize("kind", ALL_ENGINES)
def test_cluster_hot_shard_report_ranks_the_loaded_server(kind):
    graph, vids = small_graph()
    cluster = build_cluster(graph, kind, nservers=3)
    # pin every real visit on one server: starts owned by it, bogus label
    # means no expansion ever leaves it
    owner = cluster.partitioner.owner(vids[0])
    mine = [v for v in vids if cluster.partitioner.owner(v) == owner]
    for v in mine[:8]:
        cluster.traverse(GTravel.v(v).e("__no_such_label__"), cold=False)
    report = cluster.hot_shard_report()
    assert report.hottest == owner
    assert report.to_json() == cluster.hot_shard_report().to_json()


def test_hot_shard_report_requires_telemetry():
    from repro.errors import ReproError, TelemetryDisabled

    graph, vids = small_graph()
    cluster = build_cluster(
        graph, EngineKind.SYNC, nservers=2, telemetry_enabled=False
    )
    assert cluster.telemetry is None
    with pytest.raises(TelemetryDisabled) as excinfo:
        cluster.hot_shard_report()
    # typed: catchable as the library base error, and self-describing
    assert isinstance(excinfo.value, ReproError)
    assert excinfo.value.operation == "hot_shard_report()"
    assert "telemetry_enabled=True" in str(excinfo.value)
    with pytest.raises(TelemetryDisabled):
        cluster.start_rebalancer()
    # rollups degrade to an empty-shaped payload instead of raising
    assert cluster.rollups()["counters"] == {}
