"""Channel-level tests for the at-least-once reliable transport."""

import pytest

from repro.ids import COORDINATOR
from repro.net.message import ExecStatus, TraverseRequest
from repro.net.reliable import AckFrame, DataFrame, ReliableChannel, ReliableConfig
from repro.obs.metrics import MetricsRegistry
from repro.runtime.simulated import SimRuntime


def make_runtime(nservers=2):
    runtime = SimRuntime(nservers)
    inboxes = {s: [] for s in range(nservers)}
    coord_inbox = []
    for s in range(nservers):
        runtime.register_handler(s, lambda m, s=s: inboxes[s].append(m))
    runtime.register_coordinator(coord_inbox.append)
    return runtime, inboxes, coord_inbox


def install(runtime, **cfg):
    metrics = MetricsRegistry()
    channel = ReliableChannel(
        runtime, config=ReliableConfig(**cfg), metrics=metrics, seed=1
    )
    runtime.install_channel(channel)
    return channel, metrics


def drain(runtime, until=1.0):
    """Run the simulator clock forward so retries/acks can fire."""
    ev = runtime.sim.event("drain")
    runtime.sim.schedule(until, ev.succeed)
    runtime.sim.run_until(ev)


def payload(travel_id=1):
    return ExecStatus(travel_id, exec_id=1, server=0, created=(), results_sent=0)


def test_clean_wire_delivers_once_with_ack():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime)
    runtime.deliver(0, 1, payload())
    drain(runtime)
    assert len(inboxes[1]) == 1
    assert isinstance(inboxes[1][0], ExecStatus)
    counters = metrics.snapshot()["counters"]
    assert counters["net.acks"] == 1
    assert "net.retries{type=ExecStatus}" not in counters
    assert channel.inflight_count == 0


def test_dropped_frame_is_retried_until_delivered():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime)
    state = {"dropped": 0}

    def drop_first_two(src, dst, msg):
        if isinstance(msg, DataFrame) and state["dropped"] < 2:
            state["dropped"] += 1
            return True
        return False

    runtime.drop_filter = drop_first_two
    runtime.deliver(0, 1, payload())
    drain(runtime)
    assert len(inboxes[1]) == 1  # delivered despite two wire losses
    counters = metrics.snapshot()["counters"]
    assert counters["net.retries{type=ExecStatus}"] == 2
    assert counters["net.acks"] == 1


def test_lost_ack_causes_retransmit_but_dedup_suppresses():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime)
    state = {"dropped": 0}

    def drop_first_ack(src, dst, msg):
        if isinstance(msg, AckFrame) and state["dropped"] == 0:
            state["dropped"] += 1
            return True
        return False

    runtime.drop_filter = drop_first_ack
    runtime.deliver(0, 1, payload())
    drain(runtime)
    # The receiver saw the frame twice but the engine handler only once.
    assert len(inboxes[1]) == 1
    counters = metrics.snapshot()["counters"]
    assert counters["net.dup_suppressed{type=ExecStatus}"] == 1


def test_retry_exhaustion_reports_delivery_failure():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime, max_retries=2, ack_timeout=0.001)
    failures = []
    channel.on_delivery_failure = lambda src, dst, p: failures.append((src, dst, p))
    runtime.drop_filter = lambda src, dst, msg: isinstance(msg, DataFrame) and dst == 1
    msg = payload()
    runtime.deliver(0, 1, msg)
    drain(runtime)
    assert failures == [(0, 1, msg)]
    assert inboxes[1] == []
    counters = metrics.snapshot()["counters"]
    assert counters["net.delivery_failed{dst=1}"] == 1
    assert counters["net.retries{type=ExecStatus}"] == 2
    assert channel.inflight_count == 0


def test_window_bounds_inflight_and_drains_in_order():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime, window=1)
    msgs = [
        TraverseRequest(1, level=i, entries={}, exec_id=i, from_server=0)
        for i in range(4)
    ]
    for m in msgs:
        runtime.deliver(0, 1, m)
    assert channel.inflight_count == 1  # rest are queued behind the window
    drain(runtime)
    assert [m.level for m in inboxes[1]] == [0, 1, 2, 3]
    counters = metrics.snapshot()["counters"]
    assert counters["net.window_stalls"] == 3


def test_coordinator_destination_roundtrip():
    runtime, _, coord_inbox = make_runtime()
    channel, metrics = install(runtime)
    runtime.deliver_to_coordinator(1, payload())
    drain(runtime)
    assert len(coord_inbox) == 1
    assert metrics.snapshot()["counters"]["net.acks"] == 1


def test_sender_crash_abandons_inflight_frames():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime, ack_timeout=0.001)
    runtime.drop_filter = lambda src, dst, msg: isinstance(msg, DataFrame)
    runtime.deliver(0, 1, payload())
    assert channel.inflight_count == 1
    runtime.crash_server(0)
    assert channel.inflight_count == 0  # crash wiped the sender's bookkeeping
    drain(runtime)
    assert inboxes[1] == []  # and no retry ever delivered it
    counters = metrics.snapshot()["counters"]
    assert counters["net.inflight_lost{server=0}"] == 1


def test_receiver_crash_clears_dedup_state():
    runtime, inboxes, _ = make_runtime()
    channel, metrics = install(runtime)
    runtime.deliver(0, 1, payload())
    drain(runtime)
    assert len(inboxes[1]) == 1
    runtime.crash_server(1)
    runtime.recover_server(1)
    # Same (travel, attempt, seq) arriving again post-crash is re-delivered:
    # the crashed receiver forgot it ever saw it, by design.
    runtime.deliver(0, 1, payload())
    drain(runtime, until=2.0)
    assert len(inboxes[1]) == 2


def test_forget_travel_prunes_dedup_state():
    runtime, inboxes, _ = make_runtime()
    channel, _ = install(runtime)
    runtime.deliver(0, 1, payload(travel_id=42))
    drain(runtime)
    assert channel._seen[1][42]
    channel.forget_travel(42)
    assert 42 not in channel._seen[1]


def test_double_install_rejected():
    from repro.errors import SimulationError

    runtime, _, _ = make_runtime()
    install(runtime)
    with pytest.raises(SimulationError, match="already installed"):
        install(runtime)


# -- coordinator epochs (crash recovery, DESIGN.md §13) -------------------------


def test_stale_epoch_frame_is_acked_but_never_delivered():
    """A frame stamped by a dead coordinator incarnation is fenced: acked at
    the transport level (the RST-like ack frees the sender's window so stale
    streams cannot head-of-line-block fresh epoch traffic) but never handed
    to the coordinator."""
    runtime, _, coord_inbox = make_runtime()
    channel, metrics = install(runtime)
    channel.coordinator_epoch = 1  # the coordinator recovered into epoch 1
    stale = payload()
    stale.epoch = 0
    runtime.deliver_to_coordinator(0, stale)
    drain(runtime, until=0.05)
    assert coord_inbox == []
    counters = metrics.snapshot()["counters"]
    assert counters.get("coord.fenced{layer=net,type=ExecStatus}", 0) == 1
    # exactly one send, one ack: no retries, and the window slot is free
    assert counters["net.acks"] == 1
    assert not any(k.startswith("net.retries") for k in counters)
    assert channel.inflight_count == 0


def test_current_epoch_frame_passes_the_fence():
    runtime, _, coord_inbox = make_runtime()
    channel, metrics = install(runtime)
    channel.coordinator_epoch = 2
    msg = payload()
    msg.epoch = 2
    runtime.deliver_to_coordinator(0, msg)
    drain(runtime)
    assert len(coord_inbox) == 1
    assert metrics.snapshot()["counters"]["net.acks"] == 1


def test_receiver_dedup_key_is_epoch_scoped():
    """The coordinator-side dedup key is (epoch, attempt, seq): a post-
    recovery frame reusing a pre-crash sequence number must not be
    suppressed by the dead epoch's window."""
    runtime, _, coord_inbox = make_runtime()
    channel, metrics = install(runtime)
    msg0 = payload()
    msg0.epoch = 0
    channel._on_data(COORDINATOR, DataFrame(1, seq=5, src=0, dst=COORDINATOR, payload=msg0))
    assert len(coord_inbox) == 1
    # same epoch + same seq → duplicate, suppressed
    channel._on_data(COORDINATOR, DataFrame(1, seq=5, src=0, dst=COORDINATOR, payload=msg0))
    assert len(coord_inbox) == 1
    assert metrics.snapshot()["counters"]["net.dup_suppressed{type=ExecStatus}"] == 1
    # crash + recovery: next epoch, same seq → delivered (fresh key space)
    channel.on_coordinator_crash()
    channel.coordinator_epoch = 1
    msg1 = payload()
    msg1.epoch = 1
    channel._on_data(COORDINATOR, DataFrame(1, seq=5, src=0, dst=COORDINATOR, payload=msg1))
    assert len(coord_inbox) == 2


def test_coordinator_crash_drops_inflight_and_queued_frames():
    """While the coordinator host is down no ack can flow; the connection
    reset drops both in-flight and window-queued frames toward it instead of
    letting them burn their retry budget against a dead link."""
    runtime, _, coord_inbox = make_runtime()
    channel, metrics = install(runtime, window=2)
    runtime.crash_server(runtime.coordinator_server)
    for _ in range(5):
        runtime.deliver_to_coordinator(1, payload())
    assert coord_inbox == []
    assert channel.inflight_count >= 1
    assert channel._queued
    channel.on_coordinator_crash()
    assert channel.inflight_count == 0
    assert not channel._queued
    counters = metrics.snapshot()["counters"]
    assert counters["net.inflight_lost{server=-1}"] >= 1
