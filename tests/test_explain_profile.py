"""GTravel ``explain()`` and ``Client.profile()`` acceptance tests.

The two query-facing halves of the tracing stack: EXPLAIN is a pure
function of the compiled plan (no traversal runs), PROFILE reconstructs a
rooted execution DAG that must cover 100% of recorded executions, and on
the simulated runtime the whole report is byte-identical per
(seed, configuration).
"""

import json

from repro.cluster.client import GraphTrekClient
from repro.engine import EngineKind
from repro.lang import GTravel
from repro.lang.filters import EQ
from repro.obs.trace import validate_trace

from tests.conftest import ALL_ENGINES, build_cluster


def query_for(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read")


def test_explain_is_structural_and_runs_no_traversal(metadata_graph):
    graph, ids = metadata_graph
    q = (
        GTravel.v(*ids["users"])
        .e("run")
        .e("hasExecutions")
        .va("model", EQ, "A")
        .rtn()
        .e("read")
        .va("kind", EQ, "text")
    )
    plan = q.explain()
    assert plan["final_level"] == 3
    assert [s["labels"] for s in plan["steps"]] == [
        ["run"], ["hasExecutions"], ["read"]
    ]
    assert plan["steps"][1]["vertex_filters"] == [
        {"key": "model", "op": "EQ", "value": "A"}
    ]
    assert plan["steps"][1]["rtn"] and not plan["steps"][0]["rtn"]
    assert plan["rtn_levels"] == [2]
    assert plan["has_intermediate_returns"]
    assert sorted(v for v in ids["users"]) == sorted(plan["source"]["ids"])
    # canonical-JSON-safe: frozenset/tuple filter values already converted
    json.dumps(plan, sort_keys=True)


def test_explain_matches_compiled_plan_explain(metadata_graph):
    _, ids = metadata_graph
    q = query_for(ids)
    assert q.explain() == q.compile().explain()


def test_profile_reconstructs_full_dag_every_engine(metadata_graph):
    """Acceptance: the profile's trace is a rooted DAG covering 100% of the
    recorded executions, for all three engines."""
    graph, ids = metadata_graph
    for kind in ALL_ENGINES:
        cluster = build_cluster(graph, kind)
        client = GraphTrekClient(cluster)
        report = client.profile(query_for(ids))
        assert report.status == "ok", kind
        dag_nodes = {n["exec_id"] for n in report.trace["nodes"]}
        assert dag_nodes, kind
        # rooted + full coverage: every recorded execution is reachable
        dag = cluster.trace_dag(report.travel_id)
        assert dag.reachable() == set(dag.nodes), kind
        assert set(dag.nodes) == dag_nodes, kind
        assert report.trace["roots"], kind
        # per-step rows exist for every plan level, with real work attributed
        assert [s.level for s in report.steps][:4] == [0, 1, 2, 3]
        assert sum(s.processed_units for s in report.steps) == dag.processed_units
        assert sum(report.per_server.values()) == len(dag.nodes)
        # the history recorded the run like a normal query
        assert client.history and client.history[-1].outcome is not None


def test_profile_reports_cache_hits_and_wall_clock(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    _, report = cluster.profile(query_for(ids))
    final = report.steps[-1]
    assert final.wall_clock is not None and final.wall_clock > 0
    visited = sum(s.stats.get("vertices", 0) for s in report.steps)
    assert visited > 0
    assert report.result_count is not None and report.result_count > 0
    # the formatted table renders one row per level
    table = report.format()
    assert table.count("\n  L") == len(report.steps)


def test_profile_is_byte_identical_per_seed_and_config(metadata_graph):
    graph, ids = metadata_graph
    payloads = []
    for _ in range(2):
        cluster = build_cluster(graph, EngineKind.GRAPHTREK)
        _, report = cluster.profile(query_for(ids))
        payloads.append(report.to_json())
        chrome = json.dumps(cluster.trace_payload(), sort_keys=True)
        payloads.append(chrome)
    assert payloads[0] == payloads[2]  # profile JSON
    assert payloads[1] == payloads[3]  # Chrome trace JSON


def test_chrome_trace_round_trips_the_validator(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.ASYNC, trace_enabled=True)
    cluster.traverse(query_for(ids).compile())
    payload = cluster.trace_payload(label="test")
    assert payload["traceEvents"]
    assert validate_trace(payload) == []
    # serialization round trip preserves validity
    assert validate_trace(json.loads(json.dumps(payload))) == []
