"""GTravel ``explain()`` and ``Client.profile()`` acceptance tests.

The two query-facing halves of the tracing stack: EXPLAIN is a pure
function of the compiled plan (no traversal runs), PROFILE reconstructs a
rooted execution DAG that must cover 100% of recorded executions, and on
the simulated runtime the whole report is byte-identical per
(seed, configuration).
"""

import json

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.client import GraphTrekClient
from repro.engine import EngineKind, graphtrek_options
from repro.lang import GTravel
from repro.lang.filters import EQ
from repro.obs.explain import empty_plan_document
from repro.obs.trace import validate_trace

from tests.conftest import ALL_ENGINES, build_cluster


def query_for(ids):
    return GTravel.v(*ids["users"]).e("run").e("hasExecutions").e("read")


def test_explain_is_structural_and_runs_no_traversal(metadata_graph):
    graph, ids = metadata_graph
    q = (
        GTravel.v(*ids["users"])
        .e("run")
        .e("hasExecutions")
        .va("model", EQ, "A")
        .rtn()
        .e("read")
        .va("kind", EQ, "text")
    )
    plan = q.explain()
    assert plan["final_level"] == 3
    assert [s["labels"] for s in plan["steps"]] == [
        ["run"], ["hasExecutions"], ["read"]
    ]
    assert plan["steps"][1]["vertex_filters"] == [
        {"key": "model", "op": "EQ", "value": "A"}
    ]
    assert plan["steps"][1]["rtn"] and not plan["steps"][0]["rtn"]
    assert plan["rtn_levels"] == [2]
    assert plan["has_intermediate_returns"]
    assert sorted(v for v in ids["users"]) == sorted(plan["source"]["ids"])
    # canonical-JSON-safe: frozenset/tuple filter values already converted
    json.dumps(plan, sort_keys=True)


def test_explain_matches_compiled_plan_explain(metadata_graph):
    _, ids = metadata_graph
    q = query_for(ids)
    assert q.explain() == q.compile().explain()


def test_profile_reconstructs_full_dag_every_engine(metadata_graph):
    """Acceptance: the profile's trace is a rooted DAG covering 100% of the
    recorded executions, for all three engines."""
    graph, ids = metadata_graph
    for kind in ALL_ENGINES:
        cluster = build_cluster(graph, kind)
        client = GraphTrekClient(cluster)
        report = client.profile(query_for(ids))
        assert report.status == "ok", kind
        dag_nodes = {n["exec_id"] for n in report.trace["nodes"]}
        assert dag_nodes, kind
        # rooted + full coverage: every recorded execution is reachable
        dag = cluster.trace_dag(report.travel_id)
        assert dag.reachable() == set(dag.nodes), kind
        assert set(dag.nodes) == dag_nodes, kind
        assert report.trace["roots"], kind
        # per-step rows exist for every plan level, with real work attributed
        assert [s.level for s in report.steps][:4] == [0, 1, 2, 3]
        assert sum(s.processed_units for s in report.steps) == dag.processed_units
        assert sum(report.per_server.values()) == len(dag.nodes)
        # the history recorded the run like a normal query
        assert client.history and client.history[-1].outcome is not None


def test_profile_reports_cache_hits_and_wall_clock(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.GRAPHTREK)
    _, report = cluster.profile(query_for(ids))
    final = report.steps[-1]
    assert final.wall_clock is not None and final.wall_clock > 0
    visited = sum(s.stats.get("vertices", 0) for s in report.steps)
    assert visited > 0
    assert report.result_count is not None and report.result_count > 0
    # the formatted table renders one row per level
    table = report.format()
    assert table.count("\n  L") == len(report.steps)


def test_profile_is_byte_identical_per_seed_and_config(metadata_graph):
    graph, ids = metadata_graph
    payloads = []
    for _ in range(2):
        cluster = build_cluster(graph, EngineKind.GRAPHTREK)
        _, report = cluster.profile(query_for(ids))
        payloads.append(report.to_json())
        chrome = json.dumps(cluster.trace_payload(), sort_keys=True)
        payloads.append(chrome)
    assert payloads[0] == payloads[2]  # profile JSON
    assert payloads[1] == payloads[3]  # Chrome trace JSON


def scan_query():
    """A scan-shaped chain the cost planner can rewrite."""
    return (
        GTravel.v()
        .va("type", EQ, "Execution")
        .e("read")
        .va("kind", EQ, "text")
        .rtn()
    )


def planner_cluster(graph, mode="cost", **cfg):
    return Cluster.build(
        graph,
        ClusterConfig(nservers=3, engine=graphtrek_options(planner=mode), **cfg),
    )


def test_explain_with_planner_shows_both_plans_and_costs(metadata_graph):
    graph, _ = metadata_graph
    cluster = planner_cluster(graph, "cost")
    doc = cluster.explain(scan_query())
    assert doc["planner"] == "cost"
    # both plan documents are complete EXPLAIN structures
    for side in ("original", "optimized"):
        assert doc[side]["steps"], side
        assert "annotations" in doc[side], side
    # cost mode always carries numeric per-level estimates for both plans
    for side in ("cost_original", "cost_optimized"):
        assert doc[side] is not None, side
        assert doc[side]["total"] > 0.0, side
        assert len(doc[side]["levels"]) >= 1, side
        for row in doc[side]["levels"]:
            assert set(row) == {"level", "rows_in", "rows_out", "cost"}
    assert isinstance(doc["rewrites"], list)
    json.dumps(doc, sort_keys=True)
    # rules mode explains without cost estimates
    rules_doc = planner_cluster(graph, "rules").explain(scan_query())
    assert rules_doc["planner"] == "rules"
    assert rules_doc["cost_original"] is None
    # and the planner-free cluster keeps the plain single-plan document
    plain_doc = build_cluster(graph, EngineKind.GRAPHTREK).explain(scan_query())
    assert "planner" not in plain_doc
    assert plain_doc["steps"]


def test_profile_with_planner_reports_estimated_vs_actual(metadata_graph):
    graph, _ = metadata_graph
    cluster = planner_cluster(graph, "cost")
    _, report = cluster.profile(scan_query())
    assert report.status == "ok"
    assert report.planner["mode"] == "cost"
    assert report.estimates, "cost mode must attach estimate rows"
    actual_by_level = {s.level: s.stats.get("vertices", 0) for s in report.steps}
    for row in report.estimates:
        assert set(row) >= {
            "level", "original_level", "estimated_rows", "actual_rows",
            "estimated_cost",
        }
        assert row["actual_rows"] == actual_by_level.get(row["level"], 0)
    # the report's query/plan keep the ORIGINAL chain the user wrote
    assert report.plan["steps"][0]["labels"] == ["read"]
    json.dumps(report.payload(), sort_keys=True)


def test_profile_with_planner_is_byte_identical_per_seed_and_config(metadata_graph):
    graph, _ = metadata_graph
    payloads = []
    for _ in range(2):
        cluster = planner_cluster(graph, "cost")
        _, report = cluster.profile(scan_query())
        payloads.append(report.to_json())
        payloads.append(json.dumps(cluster.trace_payload(), sort_keys=True))
    assert payloads[0] == payloads[2]  # profile JSON
    assert payloads[1] == payloads[3]  # Chrome trace JSON


def test_empty_chain_explain_is_well_formed():
    """Regression: ``GTravel().explain()`` used to blow up before ``v()``."""
    doc = GTravel().explain()
    assert doc == empty_plan_document()
    assert doc["final_level"] == 0
    assert doc["steps"] == []
    json.dumps(doc, sort_keys=True)


def test_chrome_trace_round_trips_the_validator(metadata_graph):
    graph, ids = metadata_graph
    cluster = build_cluster(graph, EngineKind.ASYNC, trace_enabled=True)
    cluster.traverse(query_for(ids).compile())
    payload = cluster.trace_payload(label="test")
    assert payload["traceEvents"]
    assert validate_trace(payload) == []
    # serialization round trip preserves validity
    assert validate_trace(json.loads(json.dumps(payload))) == []
