"""Tests for the property-graph data model, schema, and statistics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    PropertyGraph,
    Schema,
    Vertex,
    degree_histogram,
    effective_diameter_sample,
    fit_powerlaw_alpha,
    gini,
    hpc_metadata_schema,
    imbalance_factor,
    in_degree_stats,
    out_degree_stats,
    props_size_bytes,
    small_world_summary,
    validate_props,
)


# -- properties -------------------------------------------------------------

def test_validate_props_accepts_scalars():
    props = validate_props({"a": 1, "b": "s", "c": 2.0, "d": b"x", "e": True, "f": None})
    assert props["a"] == 1


def test_validate_props_rejects_container():
    with pytest.raises(GraphError):
        validate_props({"a": [1]})


def test_validate_props_rejects_empty_key():
    with pytest.raises(GraphError):
        validate_props({"": 1})


def test_props_size_tracks_payload():
    small = props_size_bytes({"a": "x"})
    large = props_size_bytes({"a": "x" * 100})
    assert large - small == 99


# -- vertex/edge ---------------------------------------------------------------

def test_vertex_effective_props_adds_type():
    v = Vertex(1, "User", {"name": "n"})
    assert v.effective_props() == {"name": "n", "type": "User"}


def test_vertex_explicit_type_prop_wins():
    v = Vertex(1, "User", {"type": "Override"})
    assert v.effective_props()["type"] == "Override"


# -- graph construction ----------------------------------------------------------

def test_builder_builds_graph():
    b = GraphBuilder()
    v1 = b.vertex("A", x=1)
    v2 = b.vertex("B")
    b.edge(v1, v2, "to", w=5)
    g = b.build()
    assert g.num_vertices == 2 and g.num_edges == 1
    assert g.out_edges(v1, "to") == [("to", v2, {"w": 5})]


def test_builder_reusable_after_build():
    b = GraphBuilder()
    b.vertex("A")
    g1 = b.build()
    v = b.vertex("A")
    g2 = b.build()
    assert g1.num_vertices == 1 and g2.num_vertices == 1
    assert v in g2 and v not in g1 or v in g1  # ids keep increasing


def test_duplicate_vertex_id_rejected():
    g = PropertyGraph()
    g.add_vertex(1, "A")
    with pytest.raises(GraphError):
        g.add_vertex(1, "A")


def test_edge_requires_endpoints():
    g = PropertyGraph()
    g.add_vertex(1, "A")
    with pytest.raises(GraphError):
        g.add_edge(1, 2, "to")
    with pytest.raises(GraphError):
        g.add_edge(2, 1, "to")


def test_multigraph_allows_parallel_edges():
    g = PropertyGraph()
    g.add_vertex(1, "A")
    g.add_vertex(2, "A")
    g.add_edge(1, 2, "to", {"n": 1})
    g.add_edge(1, 2, "to", {"n": 2})
    assert g.out_degree(1, "to") == 2


def test_out_edges_all_labels():
    g = PropertyGraph()
    for i in (1, 2, 3):
        g.add_vertex(i, "A")
    g.add_edge(1, 2, "x")
    g.add_edge(1, 3, "y")
    assert len(g.out_edges(1)) == 2
    assert g.out_degree(1) == 2
    assert g.edge_labels() == {"x", "y"}


def test_in_degrees():
    g = PropertyGraph()
    for i in (1, 2, 3):
        g.add_vertex(i, "A")
    g.add_edge(1, 3, "x")
    g.add_edge(2, 3, "x")
    assert g.in_degrees() == {3: 2}


def test_vertices_of_type_and_counts():
    g = PropertyGraph()
    g.add_vertex(1, "A")
    g.add_vertex(2, "B")
    g.add_vertex(3, "A")
    assert sorted(g.vertices_of_type("A")) == [1, 3]
    assert g.type_counts() == {"A": 2, "B": 1}


def test_unknown_vertex_access_raises():
    g = PropertyGraph()
    with pytest.raises(GraphError):
        g.vertex(9)
    with pytest.raises(GraphError):
        g.out_edges(9)


# -- schema -------------------------------------------------------------------------

def test_schema_enforces_vertex_types():
    schema = Schema().add_vertex_type("A")
    g = PropertyGraph(schema)
    g.add_vertex(1, "A")
    with pytest.raises(GraphError):
        g.add_vertex(2, "B")


def test_schema_enforces_edge_rules():
    schema = Schema().add_vertex_type("A").add_vertex_type("B")
    schema.add_edge_rule("to", "A", "B")
    g = PropertyGraph(schema)
    g.add_vertex(1, "A")
    g.add_vertex(2, "B")
    g.add_edge(1, 2, "to")
    with pytest.raises(GraphError):
        g.add_edge(2, 1, "to")  # wrong direction
    with pytest.raises(GraphError):
        g.add_edge(1, 2, "unknown")


def test_edge_rule_requires_known_types():
    schema = Schema().add_vertex_type("A")
    with pytest.raises(GraphError):
        schema.add_edge_rule("to", "A", "Missing")


def test_hpc_schema_covers_paper_labels():
    schema = hpc_metadata_schema()
    for label in ("run", "hasExecutions", "exe", "read", "write", "readBy"):
        assert label in schema.edge_rules
    schema.check_edge("read", "Execution", "File")
    with pytest.raises(GraphError):
        schema.check_edge("read", "File", "Execution")


# -- statistics ----------------------------------------------------------------------

def star_graph(n: int) -> PropertyGraph:
    g = PropertyGraph()
    g.add_vertex(0, "A")
    for i in range(1, n + 1):
        g.add_vertex(i, "A")
        g.add_edge(0, i, "to")
    return g


def test_degree_stats_on_star():
    g = star_graph(10)
    out = out_degree_stats(g)
    assert out.maximum == 10
    assert out.mean == pytest.approx(10 / 11)
    inn = in_degree_stats(g)
    assert inn.maximum == 1


def test_gini_extremes():
    assert gini(np.array([5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)
    assert gini(np.array([0.0, 0.0, 100.0])) > 0.6
    assert gini(np.array([])) == 0.0


def test_imbalance_factor():
    assert imbalance_factor(np.array([10, 10, 10])) == pytest.approx(1.0)
    assert imbalance_factor(np.array([1, 1, 10])) == pytest.approx(2.5)
    assert imbalance_factor(np.array([], dtype=np.int64)) == 1.0


def test_powerlaw_alpha_recovers_exponent():
    rng = np.random.default_rng(0)
    alpha = 2.5
    u = rng.random(20_000)
    degrees = np.floor((1 - u) ** (-1 / (alpha - 1))).astype(np.int64)
    # fit on the tail, where the discretization bias is small
    fitted = fit_powerlaw_alpha(degrees, dmin=5)
    assert 2.2 < fitted < 2.8


def test_powerlaw_alpha_insufficient_data():
    assert np.isnan(fit_powerlaw_alpha(np.array([], dtype=np.int64)))


def test_degree_histogram():
    g = star_graph(3)
    hist = degree_histogram(g)
    assert hist[3] == 1 and hist[0] == 3


def test_small_world_summary_keys():
    summary = small_world_summary(star_graph(4))
    assert summary["vertices"] == 5 and summary["edges"] == 4
    assert "out_alpha" in summary and "in_gini" in summary


def test_effective_diameter_sample_chain():
    g = PropertyGraph()
    for i in range(6):
        g.add_vertex(i, "A")
    for i in range(5):
        g.add_edge(i, i + 1, "to")
    rng = np.random.default_rng(1)
    d = effective_diameter_sample(g, rng, samples=6)
    assert 0 < d <= 5
