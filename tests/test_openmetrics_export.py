"""OpenMetrics export, the exposition linter, and the health document."""

import json

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.graph import GraphBuilder
from repro.lang import GTravel
from repro.obs.exporter import (
    escape_label_value,
    health_payload,
    metric_name,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.metrics import MetricsRegistry
from tests.conftest import ALL_ENGINES, build_cluster


def small_graph():
    b = GraphBuilder()
    vids = [b.vertex("n") for _ in range(16)]
    for i in range(15):
        b.edge(vids[i], vids[i + 1], "link")
    return b.build(), vids


# -- label escaping (the PR-1 exporter gap) -----------------------------------


def test_label_values_are_escaped_on_the_export_boundary():
    registry = MetricsRegistry()
    hostile = 'say "hi"\\now\nplease'
    registry.count("client.errors", reason=hostile)
    text = render_openmetrics(registry.snapshot())
    assert validate_openmetrics(text) == []
    (line,) = [l for l in text.splitlines() if l.startswith("client_errors")]
    assert r'reason="say \"hi\"\\now\nplease"' in line
    # the registry's own snapshot rendering stays raw — escaping is strictly
    # an export-boundary concern, so snapshot bytes cannot shift
    assert f"client.errors{{reason={hostile}}}" in registry.snapshot()["counters"]


def test_escape_label_value_covers_the_three_escapes():
    assert escape_label_value('a"b') == r"a\"b"
    assert escape_label_value("a\\b") == r"a\\b"
    assert escape_label_value("a\nb") == r"a\nb"
    assert escape_label_value(7) == "7"


def test_unescaped_quote_fails_the_linter():
    bad = '# TYPE x gauge\nx{l="a"b"} 1\n# EOF\n'
    assert any("label block" in p for p in validate_openmetrics(bad))


def test_linter_rejects_structural_problems():
    assert validate_openmetrics("") == ["document is empty"]
    assert any(
        "# EOF" in p for p in validate_openmetrics("# TYPE x gauge\nx 1\n")
    )
    assert any(
        "no preceding TYPE" in p for p in validate_openmetrics("x 1\n# EOF\n")
    )
    assert any(
        "_total" in p
        for p in validate_openmetrics("# TYPE x counter\nx 1\n# EOF\n")
    )
    assert any(
        "non-numeric" in p
        for p in validate_openmetrics("# TYPE x gauge\nx nope\n# EOF\n")
    )


def test_metric_name_maps_dotted_names_into_grammar():
    assert metric_name("coord.submitted") == "coord_submitted"
    assert metric_name("9lives") == "_9lives"


# -- rendering ----------------------------------------------------------------


def test_counters_histograms_and_rollups_render_with_types():
    registry = MetricsRegistry()
    registry.count("coord.submitted", 3)
    registry.observe("exec.latency", 0.5, server=1)
    snapshot = registry.snapshot()
    rollups = {
        "counters": {
            "coord.submitted": [{"window": 4, "count": 3, "rate": 12.0}]
        }
    }
    health = health_payload(
        epoch=2, servers_up=[True, False], coordinator_server=0,
        queue_depth=1, inflight=2, policy="fifo", active_alerts=[],
    )
    text = render_openmetrics(snapshot, rollups=rollups, health=health)
    assert validate_openmetrics(text) == []
    assert "# TYPE coord_submitted counter" in text
    assert "coord_submitted_total 3" in text
    assert 'exec_latency{server="1",quantile="0.95"} 0.5' in text
    assert 'rollup_coord_submitted_rate{window="4"} 12' in text
    assert 'health_server_up{server="1"} 0' in text
    assert "health_coordinator_epoch 2" in text
    assert text.endswith("# EOF\n")


# -- cluster-level export determinism -----------------------------------------


@pytest.mark.parametrize("kind", ALL_ENGINES)
def test_cluster_export_is_byte_identical_across_reruns(kind):
    def run():
        graph, vids = small_graph()
        cluster = build_cluster(graph, kind, nservers=3)
        cluster.traverse(GTravel.v(vids[0]).e("link").e("link"))
        return cluster.openmetrics(), cluster.health_json()

    first, second = run(), run()
    assert first == second
    assert validate_openmetrics(first[0]) == []


# -- health -------------------------------------------------------------------


def test_health_reports_ok_then_degrades_on_crash():
    graph, vids = small_graph()
    cluster = build_cluster(graph, EngineKind.GRAPHTREK, nservers=3)
    cluster.traverse(GTravel.v(vids[0]).e("link"))
    doc = cluster.health()
    assert doc["status"] == "ok"
    assert [s["server"] for s in doc["servers"]] == [0, 1, 2]
    assert doc["servers"][0]["coordinator_host"] is True
    assert doc["scheduler"]["queue_depth"] == 0
    assert doc["alerts"] == []
    cluster.runtime.crash_server(2)
    doc = cluster.health()
    assert doc["status"] == "degraded"
    assert doc["servers"][2]["up"] is False
    assert json.loads(cluster.health_json()) == doc


def test_health_includes_journal_doc_when_journaling():
    graph, vids = small_graph()
    cluster = build_cluster(graph, EngineKind.GRAPHTREK, nservers=2, journal=True)
    cluster.traverse(GTravel.v(vids[0]).e("link"))
    doc = cluster.health()
    assert doc["journal"]["records"] > 0
    assert doc["journal"]["size_bytes"] > 0


def test_health_payload_degrades_on_firing_alerts():
    doc = health_payload(
        epoch=0, servers_up=[True], coordinator_server=0, queue_depth=0,
        inflight=0, policy="fifo",
        active_alerts=[{"tenant": "a", "objective": "errors"}],
    )
    assert doc["status"] == "degraded" and doc["alerts"]
