"""Flight-recorder unit tests: ring buffer, eviction accounting, no-op mode.

The recorder is the base of the whole tracing stack, so its memory contract
is tested directly: a full ring evicts oldest-first, every eviction is
visible (``dropped`` attr + ``trace.dropped_events`` counter), and a
truncated recording degrades downstream consumers to warnings instead of
letting them present a partial DAG as complete.
"""

import json

import pytest

from repro.engine import EngineKind
from repro.errors import TraceError
from repro.lang import GTravel
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    FlightRecorder,
    TraceEvent,
    assemble_trace,
    validate_trace,
)

from tests.conftest import build_cluster


def test_recorder_disabled_is_a_noop():
    rec = FlightRecorder()  # disabled by default
    rec.record("exec.created", travel_id=1, exec_id=2)
    assert len(rec) == 0
    assert rec.events() == []
    assert not rec.truncated


def test_ring_buffer_evicts_oldest_and_counts_drops():
    metrics = MetricsRegistry()
    rec = FlightRecorder(enabled=True, max_events=10)
    rec.bind_metrics(metrics)
    for i in range(25):
        rec.record("exec.received", travel_id=1, exec_id=i)
    assert len(rec) == 10
    assert rec.dropped == 15
    assert rec.truncated
    # oldest evicted first: the survivors are the 15th..24th records
    assert [e.exec_id for e in rec.events()] == list(range(15, 25))
    assert metrics.counter_total("trace.dropped_events") == 15


def test_configure_shrink_evicts_immediately():
    rec = FlightRecorder(enabled=True, max_events=100)
    for i in range(20):
        rec.record("exec.received", travel_id=1, exec_id=i)
    rec.configure(max_events=5)
    assert len(rec) == 5
    assert rec.dropped == 15
    assert [e.exec_id for e in rec.events()] == list(range(15, 20))


def test_timeline_is_canonical_json():
    rec = FlightRecorder(enabled=True)
    rec.record("exec.created", travel_id=1, exec_id=7, zeta=1, alpha=2)
    payload = json.loads(rec.to_json())
    assert payload[0]["kind"] == "exec.created"
    # attrs are emitted sorted so two identical runs serialize identically
    assert list(payload[0]["attrs"]) == ["alpha", "zeta"]


def test_truncated_assembly_degrades_errors_to_warnings():
    """An orphan execution is a hard error on a complete trace but only a
    warning when the ring buffer evicted history (the creation record may
    simply have been dropped)."""
    events = [
        TraceEvent(
            seq=1, clock=0.0, kind="exec.received", travel_id=9, exec_id=42,
            parent_exec_id=None, server_id=0, step=1, attempt=0, attrs={},
        )
    ]
    with pytest.raises(TraceError):
        assemble_trace(events, 9)
    dag = assemble_trace(events, 9, dropped=3)
    assert dag.truncated
    assert dag.dropped_events == 3
    assert any("dropped 3 events" in w for w in dag.warnings)
    assert any("orphan" in w for w in dag.warnings)


def test_profile_surfaces_truncation_warning(metadata_graph):
    """End to end: a tiny ring cap on a real traversal must show up as a
    truncation warning in the PROFILE report, not as a TraceError."""
    graph, ids = metadata_graph
    cluster = build_cluster(
        graph, EngineKind.GRAPHTREK, trace_enabled=True, trace_max_events=25
    )
    query = GTravel.v(*ids["users"]).e("run").e("hasExecutions")
    outcome, report = cluster.profile(query)
    assert outcome is not None
    assert cluster.board.obs.trace.truncated
    assert any("dropped" in w for w in report.warnings)
    assert "WARNING" in report.format()


def test_validate_trace_flags_malformed_payloads():
    assert validate_trace({"traceEvents": []}) == []
    problems = validate_trace(
        {
            "traceEvents": [
                {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
                {"ph": "Q", "name": "x", "pid": 1, "tid": 1, "ts": 0},
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -5.0, "dur": 1},
            ]
        }
    )
    assert len(problems) == 3
    assert validate_trace([]) != []  # not even a dict
