"""Migration differential suite (this PR's proof obligation): traversal
results must be element-identical with and without a concurrent shard
migration, across every engine, planner mode, and contended scheduler
policy — an online rebalance moves data, never answers.

Legs: the 10-seed × engine × planner × fifo/wfq matrix on linear queries;
composite plans (repeat / union / back) and aggregates crossing a live
migration; deadline-cancelled travels during the double-routing window;
and zero-leak assertions on every migration's terminal state.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.engine.options import options_for
from repro.errors import TraversalCancelled
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.rebalance import MigrationConfig
from repro.sched import SchedulerConfig

from tests.conftest import ALL_ENGINES

SEEDS = range(10)
PLANNERS = ("off", "rules", "cost")
POLICIES = ("fifo", "wfq")

#: contended queueing, so migration jobs genuinely interleave with travels
SCHED = SchedulerConfig(
    max_inflight=2, tenant_weights={"interactive": 3.0, "rebalance": 0.5}
)
#: small chunks + a real dual window maximize migration/travel overlap
MIGRATION = MigrationConfig(chunk_vertices=4, dual_window=0.02)


def random_graph(rng: random.Random, nvertices: int = 24, nedges: int = 72):
    g = PropertyGraph()
    for vid in range(nvertices):
        g.add_vertex(vid, "node", {"x": vid % 5})
    for _ in range(nedges):
        src = rng.randrange(nvertices)
        dst = rng.randrange(nvertices)
        g.add_edge(src, dst, rng.choice(("link", "ref")), {})
    return g


def random_queries(rng: random.Random, nvertices: int, n: int = 5):
    queries = []
    for _ in range(n):
        q = GTravel.v(rng.randrange(nvertices))
        for _ in range(rng.randint(1, 3)):
            q = q.e(rng.choice(("link", "ref")))
        if rng.random() < 0.3:
            q = q.rtn()
        queries.append(q.compile())
    return queries


def normalize(returned: dict) -> dict:
    return {lv: frozenset(vids) for lv, vids in returned.items() if vids}


def build(graph, engine, planner, policy):
    return Cluster.build(
        graph,
        ClusterConfig(
            nservers=3,
            engine=options_for(engine, scheduler=policy, planner=planner),
            scheduler_config=SCHED,
            migration=MIGRATION,
            journal=True,
        ),
    )


def migration_source(cluster, fraction: float = 0.5):
    """Half of server 1's vertices (server 1, so the coordinator host and
    the migration target both stay distinct from the source)."""
    vids = sorted(cluster.servers[1].store.local_vertices())
    take = max(1, int(len(vids) * fraction))
    return tuple(vids[:take])


def run_with_migration(cluster, plans, qos=None):
    """Submit ``plans`` with a migration racing them: half the travels are
    admitted, the migration starts, the rest are admitted, everything
    drains together on the virtual clock."""
    specs = qos if qos is not None else [{} for _ in plans]
    half = len(plans) // 2
    events = [
        cluster.submit(q, **spec)[1]
        for q, spec in zip(plans[:half], specs[:half])
    ]
    vids = migration_source(cluster)
    _, mig_event = cluster.rebalance(1, 2, vids=vids, wait=False)
    events += [
        cluster.submit(q, **spec)[1]
        for q, spec in zip(plans[half:], specs[half:])
    ]
    outcomes = [cluster.runtime.run_until_complete(e) for e in events]
    state = cluster.runtime.run_until_complete(mig_event)
    return outcomes, state, vids


def assert_no_leaks(cluster):
    assert cluster.migrator.leaked_state() == []
    assert cluster.routing.dual_count == 0
    assert cluster.scheduler.queue_depth == 0
    assert cluster.scheduler.inflight_count == 0


def assert_moved(cluster, vids):
    for vid in vids:
        assert cluster.routing.owner(vid) == 2
        assert cluster.servers[2].store.has_vertex(vid)
        assert not cluster.servers[1].store.has_vertex(vid)


@pytest.mark.parametrize("planner", PLANNERS)
@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_results_identical_with_and_without_migration(engine, planner):
    """The differential matrix: for 10 seeds and both contended policies,
    a concurrent migration changes no traversal's result."""
    for seed in SEEDS:
        rng = random.Random(seed)
        graph = random_graph(rng)
        plans = random_queries(rng, 24)
        qos = [
            {"tenant": rng.choice(("interactive", "batch"))} for _ in plans
        ]
        baseline_cluster = build(graph, engine, planner, "fifo")
        baseline = [
            normalize(o.result.returned)
            for o in baseline_cluster.traverse_many(plans, cold=False, qos=qos)
        ]
        for policy in POLICIES:
            cluster = build(graph, engine, planner, policy)
            outcomes, state, vids = run_with_migration(cluster, plans, qos)
            assert state.phase == "done", (seed, policy, state.abort_reason)
            got = [normalize(o.result.returned) for o in outcomes]
            assert got == baseline, (
                f"seed={seed} {engine.value}/{planner}/{policy}: "
                f"migration changed results"
            )
            assert_moved(cluster, vids)
            assert_no_leaks(cluster)


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("engine", ALL_ENGINES, ids=lambda e: e.value)
def test_composite_plans_cross_migration(engine, policy):
    """repeat / union / back / aggregate plans racing a migration return
    exactly what they return on a static cluster."""
    for seed in (0, 1, 2, 3, 4):
        rng = random.Random(200 + seed)
        graph = random_graph(rng)
        plans = [
            GTravel.v(rng.randrange(24))
            .repeat(GTravel.s().e("link"))
            .times(2)
            .compile(),
            GTravel.v(rng.randrange(24))
            .union(GTravel.s().e("link"), GTravel.s().e("ref"))
            .compile(),
            GTravel.v(rng.randrange(24))
            .as_("a")
            .e("link")
            .back("a")
            .e("ref")
            .compile(),
            GTravel.v(rng.randrange(24)).e("link").count().compile(),
        ]
        baseline_cluster = build(graph, engine, "off", policy)
        baseline = []
        for plan in plans:
            out = baseline_cluster.traverse(plan, cold=False)
            baseline.append(
                (normalize(out.result.returned), out.result.aggregate)
            )
        cluster = build(graph, engine, "off", policy)
        outcomes, state, vids = run_with_migration(cluster, plans)
        assert state.phase == "done", (seed, state.abort_reason)
        got = [
            (normalize(o.result.returned), o.result.aggregate)
            for o in outcomes
        ]
        assert got == baseline, f"seed={seed} {engine.value}/{policy}"
        assert_moved(cluster, vids)
        assert_no_leaks(cluster)


@pytest.mark.parametrize("policy", POLICIES)
def test_deadline_cancelled_travels_do_not_wedge_migration(policy):
    """Travels cancelled by deadline mid-migration neither corrupt results
    nor wedge the drain: the migration still commits and nothing leaks."""
    for seed in (0, 1, 2):
        rng = random.Random(300 + seed)
        graph = random_graph(rng, nvertices=30, nedges=120)
        long_plans = [
            GTravel.v(rng.randrange(30)).e("link").e("link").e("ref").compile()
            for _ in range(4)
        ]
        check_plan = GTravel.v(rng.randrange(30)).e("link").compile()
        cluster = build(graph, EngineKind.GRAPHTREK, "off", policy)
        baseline_cluster = build(graph, EngineKind.GRAPHTREK, "off", policy)
        want = normalize(
            baseline_cluster.traverse(check_plan, cold=False).result.returned
        )
        # tiny deadlines: these travels die while the migration runs
        doomed = [
            cluster.submit(p, deadline=1e-4)[1] for p in long_plans[:2]
        ]
        vids = migration_source(cluster)
        _, mig_event = cluster.rebalance(1, 2, vids=vids, wait=False)
        doomed += [
            cluster.submit(p, deadline=1e-4)[1] for p in long_plans[2:]
        ]
        check_event = cluster.submit(check_plan)[1]
        cancelled = 0
        for event in doomed:
            try:
                cluster.runtime.run_until_complete(event)
            except TraversalCancelled:
                cancelled += 1
        outcome = cluster.runtime.run_until_complete(check_event)
        state = cluster.runtime.run_until_complete(mig_event)
        assert cancelled > 0, "deadlines never fired; the leg is vacuous"
        assert state.phase == "done", state.abort_reason
        assert normalize(outcome.result.returned) == want
        assert_moved(cluster, vids)
        assert_no_leaks(cluster)


def test_key_range_migration_and_repeat_queries():
    """The key-range form of ``Cluster.rebalance`` selects exactly the
    source's vertices inside [lo, hi), and repeated post-migration queries
    (cache warm + cold) keep matching."""
    rng = random.Random(42)
    graph = random_graph(rng)
    cluster = build(graph, EngineKind.GRAPHTREK, "cost", "fifo")
    local = sorted(cluster.servers[1].store.local_vertices())
    lo, hi = local[0], local[len(local) // 2] + 1
    expected = tuple(v for v in local if lo <= v < hi)
    plan = GTravel.v(expected[0]).e("link").compile()
    before = normalize(cluster.traverse(plan, cold=False).result.returned)
    state = cluster.rebalance(1, 0, key_range=(lo, hi))
    assert state.phase == "done"
    assert state.vids == expected
    for cold in (False, True):
        after = normalize(
            cluster.traverse(plan, cold=cold).result.returned
        )
        assert after == before
    assert_no_leaks(cluster)
