"""Id-allocation regression tests: concurrent submissions must never share
travel or execution ids (the allocator races on the threaded runtime were
previously untested)."""

from __future__ import annotations

import threading

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind
from repro.graph.builder import PropertyGraph
from repro.ids import IdAllocator
from repro.lang.gtravel import GTravel


def test_allocator_monotonic_and_unique():
    alloc = IdAllocator(10)
    ids = [alloc.next() for _ in range(100)]
    assert ids == list(range(10, 110))
    assert alloc.take(3) == [110, 111, 112]


def test_allocator_thread_hammer():
    """Many threads hammering one allocator never observe a duplicate."""
    alloc = IdAllocator()
    per_thread = 2000
    results: list[list[int]] = [[] for _ in range(8)]

    def worker(bucket: list[int]) -> None:
        for _ in range(per_thread):
            bucket.append(alloc.next())

    threads = [
        threading.Thread(target=worker, args=(bucket,)) for bucket in results
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    allocated = [i for bucket in results for i in bucket]
    assert len(allocated) == len(set(allocated)) == 8 * per_thread


def fan_graph(width: int = 30) -> PropertyGraph:
    g = PropertyGraph()
    g.add_vertex(0, "root", {})
    for i in range(1, width + 1):
        g.add_vertex(i, "leaf", {})
        g.add_edge(0, i, "link", {})
        g.add_vertex(width + i, "leaf2", {})
        g.add_edge(i, width + i, "link", {})
    return g


def _collect_ids(cluster, nqueries: int):
    queries = [GTravel.v(0).e("link").e("link") for _ in range(nqueries)]
    submissions = [cluster.submit(q) for q in queries]
    travel_ids = [tid for tid, _ in submissions]
    for _, event in submissions:
        cluster.runtime.run_until_complete(event)
    exec_ids = [
        ev.exec_id
        for ev in cluster.board.obs.trace.events()
        if ev.kind == "exec.created"
    ]
    return travel_ids, exec_ids


def test_many_inflight_traversals_get_unique_ids():
    """With many traversals in flight at once, every travel id and every
    execution id in the flight recorder is unique."""
    cluster = Cluster.build(
        fan_graph(),
        ClusterConfig(
            nservers=3, engine=EngineKind.GRAPHTREK, trace_enabled=True
        ),
    )
    travel_ids, exec_ids = _collect_ids(cluster, nqueries=16)
    assert len(travel_ids) == len(set(travel_ids)) == 16
    assert exec_ids, "no executions traced"
    assert len(exec_ids) == len(set(exec_ids))


def test_threaded_runtime_ids_unique():
    """The regression case: worker threads race into the per-server exec-id
    allocators on the threaded runtime."""
    cluster = Cluster.build(
        fan_graph(),
        ClusterConfig(
            nservers=3,
            engine=EngineKind.GRAPHTREK,
            runtime="threaded",
            trace_enabled=True,
        ),
    )
    try:
        travel_ids, exec_ids = _collect_ids(cluster, nqueries=8)
        assert len(travel_ids) == len(set(travel_ids)) == 8
        assert exec_ids, "no executions traced"
        assert len(exec_ids) == len(set(exec_ids))
    finally:
        cluster.shutdown()


def test_exec_id_spaces_disjoint_across_allocators():
    """Per-server exec allocators start in disjoint ``(server+1) << 32``
    blocks, and the coordinator's block is disjoint from all of them — so
    racing allocators on different servers cannot collide even in
    principle."""
    cluster = Cluster.build(
        fan_graph(), ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK)
    )
    blocks = [s.engine._next_exec.next() >> 32 for s in cluster.servers]
    blocks.append(cluster.coordinator._next_exec.next() >> 32)
    assert blocks == [1, 2, 3, 4]
