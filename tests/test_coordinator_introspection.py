"""Coordinator introspection under the interesting lifecycles: ``progress()``
and ``inflight_by_server()`` for cancelled and composite travels (the plain
running-travel case is covered by the engine-internals tests)."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, ReferenceEngine
from repro.errors import TraversalCancelled
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel


def chain_graph(n: int = 60) -> PropertyGraph:
    g = PropertyGraph()
    for i in range(n):
        g.add_vertex(i, "node", {})
    for i in range(n - 1):
        g.add_edge(i, i + 1, "link", {})
    return g


def kstep(src: int, steps: int) -> GTravel:
    q = GTravel.v(src)
    for _ in range(steps):
        q = q.e("link")
    return q


def _drain_to(cluster, until: float) -> None:
    """Advance the virtual clock to ``until`` without completing anything."""
    ev = cluster.runtime.sim.event("probe")
    cluster.runtime.sim.schedule(until, ev.succeed)
    cluster.runtime.sim.run_until(ev)


def _duration_of(graph, query) -> float:
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    start = cluster.now
    cluster.traverse(query)
    return cluster.now - start


def test_progress_of_cancelled_travel_clears():
    """Mid-run the travel reports outstanding executions; after an explicit
    cancel both views are empty — cancellation leaves no phantom work."""
    graph = chain_graph()
    query = kstep(0, 12).compile()
    duration = _duration_of(graph, query)
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    travel_id, event = cluster.submit(query)
    _drain_to(cluster, 0.5 * duration)
    assert not event.triggered
    mid = cluster.coordinator.progress(travel_id)
    assert mid and all(v >= 0 for v in mid.values())
    inflight = cluster.coordinator.inflight_by_server()
    assert inflight and all(0 <= s < 3 for s in inflight)
    assert sum(inflight.values()) >= sum(mid.values()) > 0

    assert cluster.cancel(travel_id, reason="operator abort")
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    assert cluster.coordinator.progress(travel_id) == {}
    assert cluster.coordinator.inflight_by_server() == {}


def test_progress_of_deadline_cancelled_travel_clears():
    cluster = Cluster.build(
        chain_graph(), ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK)
    )
    travel_id, event = cluster.submit(kstep(0, 12).compile(), deadline=1e-6)
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    assert cluster.coordinator.progress(travel_id) == {}
    assert cluster.coordinator.inflight_by_server() == {}


def test_progress_of_composite_delegates_to_current_child():
    """A composite parent's progress is its current child's progress, and
    the child's outstanding executions show up in inflight_by_server."""
    graph = chain_graph()
    query = GTravel.v(0).repeat(GTravel.s().e("link")).times(3).compile()
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    travel_id, event = cluster.submit(query)
    observations = []

    def probe():
        ct = cluster.coordinator._composites.get(travel_id)
        if ct is not None and ct.current_child is not None:
            parent = cluster.coordinator.progress(travel_id)
            child = cluster.coordinator.progress(ct.current_child)
            observations.append(
                (parent, child, cluster.coordinator.inflight_by_server())
            )
        if not event.triggered:
            cluster.runtime.schedule(1e-5, probe)

    cluster.runtime.schedule(0.0, probe)
    outcome = cluster.runtime.run_until_complete(event)
    ref = ReferenceEngine(graph).run(query)
    assert outcome.result.same_vertices(ref)

    assert observations, "composite never had an observable child in flight"
    for parent, child, inflight in observations:
        assert parent == child
        for server, count in inflight.items():
            assert 0 <= server < 3 and count > 0
    assert any(parent for parent, _, _ in observations)
    # after completion every view is empty again
    assert cluster.coordinator.progress(travel_id) == {}
    assert cluster.coordinator.inflight_by_server() == {}
    assert travel_id not in cluster.coordinator._composites


def test_progress_of_cancelled_composite_clears():
    """Deadline-cancel a composite mid-program: parent and child state both
    drain, and the introspection views empty out."""
    graph = chain_graph()
    query = GTravel.v(0).repeat(GTravel.s().e("link")).times(6).compile()
    duration = _duration_of(graph, query)
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    travel_id, event = cluster.submit(query, deadline=0.4 * duration)
    with pytest.raises(TraversalCancelled):
        cluster.runtime.run_until_complete(event)
    assert cluster.coordinator.progress(travel_id) == {}
    assert cluster.coordinator.inflight_by_server() == {}
    assert travel_id not in cluster.coordinator._composites
    assert travel_id not in cluster.coordinator._active
    # unknown ids are a safe no-op, not a KeyError
    assert cluster.coordinator.progress(10_000) == {}
