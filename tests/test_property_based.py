"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.engine.cache import TraversalAffiliateCache
from repro.engine.frontier import anchors_covered, anchors_union, merge_entry
from repro.lang import EQ, IN, RANGE, FilterSet, PropertyFilter
from repro.storage import LSMConfig, LSMStore
from repro.storage import encoding as enc

# -- value / props codec ------------------------------------------------------

scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)


@given(scalar)
def test_value_codec_roundtrip(value):
    packed = enc.pack_value(value)
    out, offset = enc.unpack_value(packed)
    assert out == value and offset == len(packed)


@given(st.dictionaries(st.text(min_size=1, max_size=12), scalar, max_size=8))
def test_props_codec_roundtrip(props):
    out, _ = enc.unpack_props(enc.pack_props(props))
    assert out == props


@given(st.integers(min_value=0, max_value=2**63 - 1),
       st.text(min_size=1, max_size=8).filter(lambda s: "\x00" not in s))
def test_attr_key_roundtrip(vid, prop):
    ns, vid2, prop2 = enc.parse_attr_key(enc.attr_key("T", vid, prop))
    assert (ns, vid2, prop2) == ("T", vid, prop)


@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=2, max_size=20,
                unique=True))
def test_vertex_key_order_matches_id_order(vids):
    keys = [enc.vertex_prefix("T", v) for v in vids]
    assert sorted(keys) == [enc.vertex_prefix("T", v) for v in sorted(vids)]


@given(st.binary(min_size=1, max_size=16).filter(lambda b: b != b"\xff" * len(b)))
def test_prefix_end_is_tight_upper_bound(prefix):
    end = enc.prefix_end(prefix)
    assert prefix < end
    assert (prefix + b"\xff" * 4) < end


# -- LSM store: model-based against a dict ------------------------------------------

ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(min_size=1, max_size=6),
                  st.binary(max_size=10)),
        st.tuples(st.just("del"), st.binary(min_size=1, max_size=6)),
        st.tuples(st.just("flush")),
        st.tuples(st.just("compact")),
    ),
    max_size=60,
)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_lsm_matches_dict_model(operations):
    store = LSMStore(LSMConfig(memtable_flush_bytes=256, max_sstables=3))
    model: dict[bytes, bytes] = {}
    for op in operations:
        if op[0] == "put":
            store.put(op[1], op[2])
            model[op[1]] = op[2]
        elif op[0] == "del":
            store.delete(op[1])
            model.pop(op[1], None)
        elif op[0] == "flush":
            store.flush()
        else:
            store.compact()
    for key, expected in model.items():
        assert store.get(key)[0] == expected
    items, _ = store.scan(b"", b"\xff" * 8)
    assert dict(items) == model
    # scans come back sorted and unique
    keys = [k for k, _ in items]
    assert keys == sorted(set(keys))


# -- filters ----------------------------------------------------------------------------

@given(st.integers(), st.integers(), st.integers())
def test_range_filter_agrees_with_python(lo, hi, x):
    lo, hi = min(lo, hi), max(lo, hi)
    f = PropertyFilter("k", RANGE, (lo, hi))
    assert f.matches({"k": x}) == (lo <= x <= hi)


@given(st.sets(st.integers(), max_size=10), st.integers())
def test_in_filter_agrees_with_python(values, x):
    f = PropertyFilter("k", IN, values)
    assert f.matches({"k": x}) == (x in values)


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(0, 3)),
                max_size=5),
       st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 3), max_size=3))
def test_filterset_is_conjunction(filter_specs, props):
    filters = [PropertyFilter(k, EQ, v) for k, v in filter_specs]
    fs = FilterSet.of(filters)
    assert fs.matches(props) == all(f.matches(props) for f in filters)


# -- anchors -------------------------------------------------------------------------------

anchor_sets = st.lists(
    st.frozensets(st.integers(0, 20), max_size=5), min_size=0, max_size=3
).map(tuple)


@given(anchor_sets, anchor_sets)
def test_anchor_union_commutative_and_covering(a, b):
    if len(a) != len(b) and a and b:
        return  # unions only defined for same-shape anchors
    u = anchors_union(a, b)
    u2 = anchors_union(b, a)
    assert u == u2
    if len(a) == len(b):
        assert anchors_covered(a, u)
        assert anchors_covered(b, u)


@given(anchor_sets)
def test_anchor_covered_reflexive(a):
    assert anchors_covered(a, a)


@given(anchor_sets, anchor_sets, anchor_sets)
def test_anchor_covered_transitive(a, b, c):
    if anchors_covered(a, b) and anchors_covered(b, c):
        assert anchors_covered(a, c)


@given(st.lists(st.tuples(st.integers(0, 5), anchor_sets), max_size=20))
def test_merge_entry_idempotent_under_coverage(items):
    entries = {}
    for vid, anchors in items:
        merge_entry(entries, vid, anchors)
    # merging everything again must not change the result
    snapshot = dict(entries)
    for vid, anchors in items:
        merge_entry(entries, vid, anchors)
    assert entries == snapshot


# -- traversal-affiliate cache -----------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 4), st.integers(0, 10)),
                max_size=80),
       st.integers(min_value=1, max_value=12))
@settings(max_examples=60, deadline=None)
def test_cache_size_invariants(inserts, capacity):
    cache = TraversalAffiliateCache(capacity)
    for travel, level, vid in inserts:
        cache.insert(travel, level, vid, ())
        assert len(cache) <= capacity
    # every cached triple is findable; lookups never crash
    for travel, level, vid in inserts:
        cache.lookup(travel, level, vid)


# -- traversal-operator reductions --------------------------------------------

from repro.lang.gtravel import union_results
from repro.lang.plan import AggregateSpec, canonical_groups, reduce_aggregate


@given(st.lists(st.lists(st.integers(0, 40), max_size=8), max_size=5))
def test_union_results_is_canonical_and_order_insensitive(parts):
    out = union_results(*parts)
    flat = set().union(*map(set, parts)) if parts else set()
    assert out == tuple(sorted(flat))
    assert union_results(*reversed(parts)) == out


@given(
    st.dictionaries(
        st.integers(0, 30),
        st.one_of(st.none(), st.integers(0, 3), st.text(max_size=4)),
        max_size=20,
    )
)
def test_reduce_aggregate_group_count_is_exact_and_idempotent(keys):
    spec = AggregateSpec(kind="group_count", by="color")
    final = frozenset(keys)
    agg = reduce_aggregate(spec, final, keys)
    assert agg.total == len(final)
    assert sum(n for _, n in agg.groups) == len(final)
    assert reduce_aggregate(spec, final, keys) == agg  # idempotent
    # groups are already in canonical order
    assert agg.groups == canonical_groups(dict(agg.groups).items())


@given(st.sets(st.integers(0, 50), max_size=25))
def test_reduce_aggregate_count_is_set_cardinality(final):
    agg = reduce_aggregate(AggregateSpec(kind="count"), frozenset(final), {})
    assert agg.total == len(final)
    assert agg.groups == ()


@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 5), st.text(max_size=3)),
            st.integers(1, 9),
        ),
        max_size=10,
        unique_by=lambda kv: str(kv[0]) + repr(kv[0] is None),
    )
)
def test_canonical_groups_is_permutation_invariant(items):
    assert canonical_groups(items) == canonical_groups(list(reversed(items)))
    # None buckets sort last
    ordered = canonical_groups(items)
    if any(k is None for k, _ in ordered):
        assert ordered[-1][0] is None
