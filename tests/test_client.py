"""Tests for the client facade."""

from repro.cluster import Cluster, ClusterConfig, GraphTrekClient
from repro.engine import EngineKind, ReferenceEngine
from repro.lang import EQ, GTravel


def make_client(graph):
    cluster = Cluster.build(graph, ClusterConfig(nservers=3, engine=EngineKind.GRAPHTREK))
    return GraphTrekClient(cluster)


def test_client_query_returns_outcome(metadata_graph):
    graph, ids = metadata_graph
    client = make_client(graph)
    outcome = client.query(GTravel.v(ids["users"][0]).e("run"))
    expected = ReferenceEngine(graph).run(GTravel.v(ids["users"][0]).e("run").compile())
    assert outcome.result.same_vertices(expected)
    assert len(client.history) == 1
    assert client.history[0].travel_id > 0


def test_client_accepts_precompiled_plan(metadata_graph):
    graph, ids = metadata_graph
    client = make_client(graph)
    plan = GTravel.v(ids["users"][1]).e("run").compile()
    outcome = client.query(plan)
    assert outcome.plan is plan


def test_client_union_emulates_or(metadata_graph):
    """The paper's OR workaround: separate traversals, unioned results."""
    graph, ids = metadata_graph
    client = make_client(graph)
    q_a = GTravel.v(*ids["execs"]).va("model", EQ, "A")
    q_b = GTravel.v(*ids["execs"]).va("model", EQ, "B")
    combined = client.query_union(q_a, q_b)
    assert combined == tuple(sorted(ids["execs"]))
    assert len(client.history) == 2


def test_client_last_stats(metadata_graph):
    graph, ids = metadata_graph
    client = make_client(graph)
    assert client.last_stats() is None
    client.query(GTravel.v(ids["users"][0]).e("run"))
    assert client.last_stats().elapsed > 0
