"""Setup shim for environments whose pip/setuptools lack PEP 517 wheel support."""

from setuptools import setup

setup()
