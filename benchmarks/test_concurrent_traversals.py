"""Concurrent-workload experiment (paper §I motivation).

"As an online database system, our system needs to support concurrent graph
traversals. The interferences among traversals easily create stragglers,
which can cause poor resource utilization and significant idling during each
global synchronization." — this bench isolates that claim: several 8-step
traversals at once, Sync-GT vs GraphTrek.
"""

from repro.bench.experiments import exp_concurrent_traversals


def test_concurrent_traversal_interference(benchmark, env, report_experiment):
    result = benchmark.pedantic(
        lambda: exp_concurrent_traversals(env), rounds=1, iterations=1
    )
    report_experiment(result, benchmark)
