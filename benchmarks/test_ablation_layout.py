"""Ablation — edge-key layout (paper §IV-B storage claim).

"Since we usually iterate edges by type, storing all the edges of one vertex
together based on their type will provide better performance for such
behavior" — compares the paper's grouped layout against an interleaved
(generic column-store) layout on the heterogeneous Darshan graph.
"""

from repro.bench.experiments import exp_ablation_layout


def test_ablation_edge_layout(benchmark, report_experiment):
    result = benchmark.pedantic(lambda: exp_ablation_layout(), rounds=1, iterations=1)
    report_experiment(result, benchmark)
