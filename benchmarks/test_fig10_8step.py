"""Fig. 10 — 8-step graph traversal on RMAT-1 (Sync-GT vs GraphTrek).

Paper: "with an 8-step graph traversal, the performance improvement over 32
servers was around 24%, compared with the 5% improvement over 2 servers."
"""

from repro.bench.experiments import exp_step_sweep


def test_fig10_8step_traversal(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_step_sweep(8, env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
