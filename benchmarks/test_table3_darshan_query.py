"""Table III — the suspicious-user audit query on the Darshan-like graph.

Paper (32 servers): Sync-GT 3575 ms, Async-GT 4159 ms, GraphTrek 2839 ms.
The query is the paper's 6-step chain::

    GTravel.v(suspectUser).e('run').ea('ts', RANGE, [ts, te])
           .e('hasExecutions').e('write').e('readBy').e('write').rtn()
"""

from repro.bench.experiments import exp_table3


def test_table3_darshan_audit_query(benchmark, report_experiment):
    result = benchmark.pedantic(lambda: exp_table3(32), rounds=1, iterations=1)
    report_experiment(result, benchmark)
