"""Fig. 8 — 2-step graph traversal on RMAT-1 (Sync-GT vs GraphTrek).

Paper: "for graph traversals with smaller steps and fewer servers, the
synchronous implementation actually performs better ... GraphTrek's relative
performance improves when more servers are involved."
"""

from repro.bench.experiments import exp_step_sweep


def test_fig8_2step_traversal(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_step_sweep(2, env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
