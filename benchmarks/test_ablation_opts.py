"""Ablation — each §V optimization in isolation (beyond the paper's tables).

Attributes GraphTrek's win over Async-GT to its mechanisms: the
traversal-affiliate cache, execution merging, and priority scheduling.
"""

from repro.bench.experiments import exp_ablation_optimizations


def test_ablation_async_optimizations(benchmark, env, report_experiment):
    result = benchmark.pedantic(
        lambda: exp_ablation_optimizations(env), rounds=1, iterations=1
    )
    report_experiment(result, benchmark)
