"""Table II — statistics of the rich-metadata graph.

The paper imported one year of Intrepid Darshan logs (177 users, 47.6k jobs,
123.4M executions, 34.6M files, 239.8M edges). We generate a synthetic graph
with the same structural shape at laptop scale; the checks assert the entity
hierarchy, edge/entity proportions, and the power-law file popularity the
paper reports.
"""

from repro.bench.experiments import exp_table2


def test_table2_metadata_graph_statistics(benchmark, report_experiment):
    result = benchmark.pedantic(exp_table2, rounds=1, iterations=1)
    report_experiment(result, benchmark)
