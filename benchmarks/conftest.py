"""Shared benchmark fixtures.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure of
the paper's evaluation section. Wall-clock time of each simulation run is
what pytest-benchmark reports; the paper's metric — simulated elapsed
traversal time — is printed in paper-style tables and saved as JSON under
``benchmarks/results/``.

Scale knobs: REPRO_BENCH_SCALE / REPRO_BENCH_EDGE_FACTOR / REPRO_BENCH_SERVERS.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchEnvironment, metrics_payload, save_results
from repro.obs.export import validate_snapshot


@pytest.fixture(scope="session")
def env() -> BenchEnvironment:
    return BenchEnvironment.from_env()


@pytest.fixture()
def report_experiment():
    """Fixture returning the report/assert helper (benchmarks/ is not a
    package, so the helper travels through a fixture instead of an import)."""
    return _report_experiment


def _report_experiment(result, benchmark=None) -> None:
    """Print the paper-style table, persist JSON, and assert shape checks."""
    print()
    print(result.rendered)
    print()
    for check in result.checks:
        status = "PASS" if check.passed else "FAIL"
        print(f"  [{status}] {check.name}: {check.detail}")
    save_results(result.experiment, result.payload())
    snapshots = metrics_payload(result.cells)
    if snapshots:
        save_results(result.experiment + "_metrics", snapshots)
        # NaN/inf anywhere in a snapshot means broken instrumentation;
        # empty histograms are tolerated here (tiny cells may skip paths)
        # and caught strictly by the tier-1 smoke test instead.
        for cell_name, snap in snapshots.items():
            nan_problems = [
                p for p in validate_snapshot(snap) if "is empty" not in p
            ]
            assert not nan_problems, (
                f"metrics snapshot {cell_name}: " + "; ".join(nan_problems)
            )
    if benchmark is not None:
        for cell in result.cells:
            benchmark.extra_info.setdefault("cells", []).append(
                {"engine": cell.engine, "servers": cell.nservers, "elapsed_s": cell.elapsed}
            )
    failed = result.failed_checks()
    assert not failed, "shape checks failed: " + "; ".join(
        f"{c.name} ({c.detail})" for c in failed
    )
