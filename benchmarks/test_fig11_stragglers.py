"""Fig. 11 — synthetic workload with external interference.

Paper: three transient stragglers (fixed per-access delays) at steps 1, 3 and
7 on three selected servers; "the results suggest an obvious performance
advantage of GraphTrek (2x with 32-server) compared with synchronous
solutions". Each bar is the average of three runs.
"""

from repro.bench.experiments import exp_fig11


def test_fig11_external_stragglers(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_fig11(env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
