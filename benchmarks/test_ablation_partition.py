"""Ablation — partitioning strategy (paper §VI discussion).

Compares hash edge-cut (the paper's default) against a degree-aware balanced
edge-cut, and reports the greedy vertex-cut's replication factor. The check
encodes the paper's position: even the best static balancing leaves
stragglers, so asynchrony still wins.
"""

from repro.bench.experiments import exp_ablation_partitioning


def test_ablation_partitioning(benchmark, env, report_experiment):
    result = benchmark.pedantic(
        lambda: exp_ablation_partitioning(env), rounds=1, iterations=1
    )
    report_experiment(result, benchmark)
