"""Table I — performance comparison on the RMAT-1 graph.

Paper numbers (seconds, 8-step traversal):

    servers   Sync-GT   Async-GT   GraphTrek
        2       47.8      63.7       45.2
        4       28.5      33.1       22.5
        8       17.1      20.6       13.4
       16       10.3      12.1        8.3
       32        7.2       7.4        5.6

Our graph is scaled down (REPRO_BENCH_SCALE, default 2^12 vertices), so
absolute numbers differ; the shape checks assert who wins and how the gaps
move with scale.
"""

from repro.bench.experiments import exp_table1


def test_table1_engine_comparison(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_table1(env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
