"""Fig. 9 — 4-step graph traversal on RMAT-1 (Sync-GT vs GraphTrek)."""

from repro.bench.experiments import exp_step_sweep


def test_fig9_4step_traversal(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_step_sweep(4, env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
