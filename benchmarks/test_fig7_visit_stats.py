"""Fig. 7 — per-server visit statistics of an 8-step GraphTrek traversal.

The paper's claims: redundant visits (caught by the traversal-affiliate
cache) dominate the requests servers receive, and execution merging is
concentrated on the servers storing the high-degree vertices, which "end up
with fewer real vertex requests and hence can catch up".
"""

from repro.bench.experiments import exp_fig7


def test_fig7_visit_breakdown(benchmark, env, report_experiment):
    result = benchmark.pedantic(lambda: exp_fig7(env), rounds=1, iterations=1)
    report_experiment(result, benchmark)
