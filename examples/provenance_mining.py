#!/usr/bin/env python
"""Provenance mining with intermediate returns (paper §II-B2, §IV-D).

The provenance query — *find the executions whose model is A and whose input
files are annotated B* — returns the traversal's **source** vertices via
``rtn()``, exercising the report-destination redirection machinery. The
example also shows the paper's OR workaround: issuing one traversal per
disjunct and unioning the results.

Run:  python examples/provenance_mining.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    EngineKind,
    GraphTrekClient,
    MetadataGraphConfig,
    generate_metadata_graph,
    provenance_query,
)


def main() -> None:
    md = generate_metadata_graph(
        MetadataGraphConfig(users=24, mean_jobs_per_user=6, files=768, seed=23)
    )
    graph = md.graph
    print(f"metadata graph: {md.stats.row()}")

    cluster = Cluster.build(graph, ClusterConfig(nservers=8, engine=EngineKind.GRAPHTREK))
    client = GraphTrekClient(cluster)

    # §III-A2 — executions of model A whose inputs carry annotation B.
    query = provenance_query(model="A", annotation="B")
    print("\nquery:", query.describe())
    outcome = client.query(query)
    execs = outcome.result.at_level(0)
    print(f"matched executions: {len(execs)} "
          f"({outcome.stats.elapsed * 1000:.1f} ms simulated)")
    for vid in sorted(execs)[:5]:
        props = graph.vertex(vid).props
        print(f"   exec {vid}: model={props['model']} params={props['params']!r}")

    # sanity: every returned execution really is model A with a B input
    for vid in execs:
        assert graph.vertex(vid).props["model"] == "A"
        annotations = {
            graph.vertex(dst).props.get("annotation")
            for _, dst, _ in graph.out_edges(vid, "read")
        }
        assert "B" in annotations

    # OR emulation (paper §III): model A *or* model B, via two traversals.
    either = client.query_union(
        provenance_query(model="A", annotation="B"),
        provenance_query(model="B", annotation="B"),
    )
    print(f"\nmodel A or B with B-annotated inputs: {len(either)} executions "
          "(two traversals, results unioned — the paper's OR workaround)")

    # progress reporting (§IV-C): submit, step the clock, peek at progress.
    plan = provenance_query(model="C", annotation="raw").compile()
    travel_id, event = cluster.submit(plan)
    sim = cluster.runtime.sim
    for _ in range(200):
        if event.triggered:
            break
        sim.run(until=sim.peek())
    progress = cluster.progress(travel_id)
    print(f"\nmid-flight progress (outstanding executions per step): {progress}")
    cluster.runtime.run_until_complete(event)
    print("traversal finished; progress now:", cluster.progress(travel_id))


if __name__ == "__main__":
    main()
