#!/usr/bin/env python
"""Quickstart: build a small rich-metadata graph, stand up a simulated
GraphTrek cluster, and run GTravel traversals on it.

Run:  python examples/quickstart.py
"""

from repro import (
    EQ,
    RANGE,
    Cluster,
    ClusterConfig,
    EngineKind,
    GraphBuilder,
    GTravel,
    hpc_metadata_schema,
)


def build_graph():
    """The paper's Fig. 1 scene: users running executions on files."""
    b = GraphBuilder(schema=hpc_metadata_schema())

    sam = b.vertex("User", name="sam", group="cgroup")
    john = b.vertex("User", name="john", group="admin")

    job = b.vertex("Job", jobid=201405, ts=100.0)
    exec1 = b.vertex("Execution", model="climate-sim", params="-n 1024", ts=110.0)
    exec2 = b.vertex("Execution", model="postprocess", params="-n 64", ts=400.0)

    app = b.vertex("File", name="app-01", kind="binary", size=256 * 1024)
    dset = b.vertex("File", name="dset-1", kind="data", size=1020 * 2**20)
    report = b.vertex("File", name="report.txt", kind="text", size=7 * 2**20)

    b.edge(sam, job, "run", ts=100.0)
    b.edge(job, exec1, "hasExecutions", ts=110.0)
    b.edge(job, exec2, "hasExecutions", ts=400.0)
    b.edge(exec1, app, "exe")
    b.edge(exec1, dset, "read", ts=115.0)
    b.edge(exec1, report, "write", ts=180.0, writeSize=7 * 2**20)
    b.edge(exec2, report, "read", ts=410.0)
    b.edge(report, exec2, "readBy", ts=410.0)
    return b.build(), {"sam": sam, "john": john, "report": report}


def main() -> None:
    graph, ids = build_graph()
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # A 4-server deployment running the full GraphTrek engine.
    cluster = Cluster.build(graph, ClusterConfig(nservers=4, engine=EngineKind.GRAPHTREK))

    # Paper §III-A1 — data auditing: files written by sam's executions
    # within a time frame, restricted to text files.
    audit = (
        GTravel.v(ids["sam"])
        .e("run").ea("ts", RANGE, (0.0, 200.0))
        .e("hasExecutions")
        .e("write")
        .va("kind", EQ, "text")
        .rtn()
    )
    print("\nquery:", audit.describe())
    outcome = cluster.traverse(audit)
    for vid in sorted(outcome.result.vertices):
        print(f"  -> {graph.vertex(vid).props['name']}")
    st = outcome.stats
    print(
        f"elapsed (simulated): {st.elapsed * 1000:.2f} ms | "
        f"visits: {st.real_io_visits} real / {st.redundant_visits} redundant | "
        f"messages: {st.messages}"
    )

    # Who read the report afterwards? Follow the reverse edge.
    readers = cluster.traverse(GTravel.v(ids["report"]).e("readBy"))
    print("\nreaders of report.txt:")
    for vid in sorted(readers.result.vertices):
        print(f"  -> execution model={graph.vertex(vid).props['model']}")


if __name__ == "__main__":
    main()
