#!/usr/bin/env python
"""Straggler analysis: why asynchronous traversal wins (paper §VII-A/C).

Reproduces the paper's two core demonstrations on one RMAT graph:

1. the Fig. 7 visit breakdown — redundant visits dominate, and execution
   merging concentrates on the hub-heavy servers so they can catch up;
2. the Fig. 11 experiment — with external interference injected on selected
   servers at selected steps, the asynchronous engine keeps making progress
   while the synchronous baseline waits at every barrier.

Run:  python examples/straggler_analysis.py
"""

from repro import (
    Cluster,
    ClusterConfig,
    EngineKind,
    paper_interference,
    paper_rmat1,
    pick_start_vertex,
    rmat_graph,
    rmat_kstep_query,
)

SCALE = 10
SERVERS = 16


def main() -> None:
    cfg = paper_rmat1(scale=SCALE, edge_factor=16)
    graph = rmat_graph(cfg)
    src = pick_start_vertex(cfg)
    plan = rmat_kstep_query(src, 8).compile()
    print(f"RMAT-1 graph: {graph.num_vertices} vertices, {graph.num_edges} edges; "
          f"8-step traversal from vertex {src} on {SERVERS} servers")

    # -- Fig. 7: visit breakdown under GraphTrek -------------------------------
    cluster = Cluster.build(graph, ClusterConfig(nservers=SERVERS, engine=EngineKind.GRAPHTREK))
    out = cluster.traverse(plan)
    st = out.stats
    print(f"\nvisit breakdown (GraphTrek): real={st.real_io_visits} "
          f"combined={st.combined_visits} redundant={st.redundant_visits}")
    rows = sorted(
        st.per_server.items(),
        key=lambda kv: -(sum(kv[1].values())),
    )
    print("  busiest servers (total | real/combined/redundant):")
    for server, bucket in rows[:5]:
        real, comb, red = (bucket.get(k, 0) for k in ("real", "combined", "redundant"))
        print(f"    server {server:2d}: {real + comb + red:6d} | {real}/{comb}/{red}")

    # -- Fig. 11: external interference ----------------------------------------
    print("\nwith external stragglers (steps 1/3/7 on servers 0/1/2):")
    for kind in (EngineKind.SYNC, EngineKind.GRAPHTREK):
        policy = paper_interference(servers=(0, 1, 2), levels=(1, 3, 7),
                                    delay=1e-3, count=500)
        cl = Cluster.build(
            graph,
            ClusterConfig(nservers=SERVERS, engine=kind, interference=policy),
        )
        outcome = cl.traverse(plan)
        print(f"    {kind.value:10s} {outcome.stats.elapsed * 1000:9.1f} ms simulated "
              f"(absorbed {policy.injected} delayed accesses)")

    base_sync = Cluster.build(graph, ClusterConfig(nservers=SERVERS, engine=EngineKind.SYNC))
    t_clean = base_sync.traverse(plan).stats.elapsed
    print(f"    (clean Sync-GT baseline: {t_clean * 1000:9.1f} ms)")


if __name__ == "__main__":
    main()
