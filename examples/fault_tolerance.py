#!/usr/bin/env python
"""Fault tolerance: message loss, fine-grained recovery, and checkpoints.

Demonstrates the three layers of the reproduction's failure story:

1. the paper's baseline (§IV-C): a lost execution is detected by the
   coordinator's status tracing and the traversal restarts;
2. the paper's future work, implemented here: fine-grained recovery replays
   just the lost execution — no restart;
3. durability: a server's store checkpoints to real files and restores after
   a "failure" (the role GPFS plays in the paper's deployment).

Run:  python examples/fault_tolerance.py
"""

import tempfile

from repro import (
    Cluster,
    ClusterConfig,
    CoordinatorConfig,
    EngineKind,
    GTravel,
    MetadataGraphConfig,
    generate_metadata_graph,
)
from repro.net.message import TraverseRequest
from repro.storage.persist import checkpoint_graph_store, restore_graph_store


def lossy_cluster(graph, fine_grained: bool):
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=4,
            engine=EngineKind.GRAPHTREK,
            coordinator_config=CoordinatorConfig(
                exec_timeout=0.5,
                watch_interval=0.1,
                fine_grained_recovery=fine_grained,
            ),
        ),
    )
    state = {"dropped": 0}

    def drop_one_forward(src, dst, msg):
        if (
            isinstance(msg, TraverseRequest)
            and msg.level > 0
            and state["dropped"] == 0
            and src != dst
        ):
            state["dropped"] += 1
            return True
        return False

    cluster.runtime.drop_filter = drop_one_forward
    return cluster


def main() -> None:
    md = generate_metadata_graph(MetadataGraphConfig(users=16, files=512, seed=3))
    graph = md.graph
    user = max(md.user_ids, key=lambda u: graph.out_degree(u, "run"))
    plan = GTravel.v(user).e("run").e("hasExecutions").compile()

    print("1) baseline recovery (paper §IV-C): lose a dispatch, restart")
    cluster = lossy_cluster(graph, fine_grained=False)
    out = cluster.traverse(plan)
    print(f"   restarts={out.stats.restarts} replays={out.stats.replays} "
          f"elapsed={out.stats.elapsed * 1000:.0f} ms, "
          f"{len(out.result.vertices)} results")

    print("2) fine-grained recovery (future work, implemented): replay only")
    cluster = lossy_cluster(graph, fine_grained=True)
    out2 = cluster.traverse(plan)
    print(f"   restarts={out2.stats.restarts} replays={out2.stats.replays} "
          f"elapsed={out2.stats.elapsed * 1000:.0f} ms, "
          f"{len(out2.result.vertices)} results")
    assert out2.result.same_vertices(out.result)
    assert out2.stats.restarts == 0

    print("3) checkpoint/restore: a server's store survives its server")
    cluster = Cluster.build(graph, ClusterConfig(nservers=4, engine=EngineKind.GRAPHTREK))
    victim = cluster.servers[2]
    with tempfile.TemporaryDirectory() as ckpt:
        checkpoint_graph_store(victim.store, ckpt)
        print(f"   checkpointed {victim.store.vertex_count()} vertices")
        victim.store = None  # the failure
        restored = restore_graph_store(ckpt)
    victim.store = restored
    victim.engine.store = restored
    out3 = cluster.traverse(plan)
    assert out3.result.same_vertices(out.result)
    print(f"   restored server answers traversals again "
          f"({len(out3.result.vertices)} results)")


if __name__ == "__main__":
    main()
