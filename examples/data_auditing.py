#!/usr/bin/env python
"""Data auditing on a generated HPC metadata graph (paper §II-B1, §VII-D).

Generates a Darshan-flavoured rich-metadata graph, then answers audit
questions with GTravel traversals, including the paper's Table III
"suspicious user" 6-step chain — comparing the three engines.

Run:  python examples/data_auditing.py
"""

import numpy as np

from repro import (
    Cluster,
    ClusterConfig,
    EngineKind,
    MetadataGraphConfig,
    data_audit_query,
    generate_metadata_graph,
    suspicious_user_query,
)
from repro.workloads import YEAR


def main() -> None:
    md = generate_metadata_graph(
        MetadataGraphConfig(users=32, mean_jobs_per_user=8, files=1024, seed=11)
    )
    graph = md.graph
    print(f"metadata graph: {md.stats.row()}")

    # pick the busiest user (most jobs) as the audit subject
    subject = max(md.user_ids, key=lambda u: graph.out_degree(u, "run"))
    name = graph.vertex(subject).props["name"]
    print(f"audit subject: {name} ({graph.out_degree(subject, 'run')} jobs)")

    cluster = Cluster.build(graph, ClusterConfig(nservers=8, engine=EngineKind.GRAPHTREK))

    # Q1 — which text files did this user read in the first quarter?
    q1 = data_audit_query(subject, 0.0, YEAR / 4, kind="text")
    out1 = cluster.traverse(q1)
    print(f"\nQ1 text files read in Q1: {len(out1.result.vertices)} files "
          f"({out1.stats.elapsed * 1000:.1f} ms simulated)")
    for vid in sorted(out1.result.vertices)[:5]:
        print(f"   {graph.vertex(vid).props['name']}")

    # Q2 — the paper's Table III chain: outputs of executions that read the
    # suspect's outputs (influence analysis), compared across engines.
    q2 = suspicious_user_query(subject).compile()
    print(f"\nQ2 influence query: {q2.describe()}")
    for kind in (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK):
        cluster_k = Cluster.build(graph, ClusterConfig(nservers=8, engine=kind))
        out = cluster_k.traverse(q2)
        st = out.stats
        print(
            f"   {kind.value:10s} {st.elapsed * 1000:8.1f} ms simulated | "
            f"{len(out.result.vertices):4d} influenced files | "
            f"visits real/comb/red = {st.real_io_visits}/{st.combined_visits}/{st.redundant_visits}"
        )

    # Q3 — live updates: ingest a fresh job and see it in the next audit.
    new_job = graph.num_vertices + 1
    cluster.ingest_vertex(new_job, "Job", {"jobid": 999_999, "ts": 42.0})
    cluster.ingest_edge(subject, new_job, "run", {"ts": 42.0})
    from repro import GTravel
    jobs = cluster.traverse(GTravel.v(subject).e("run"))
    assert new_job in jobs.result.vertices
    print(f"\nQ3 live ingest: job 999999 visible in the next traversal "
          f"({len(jobs.result.vertices)} jobs total)")


if __name__ == "__main__":
    main()
