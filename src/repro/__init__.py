"""GraphTrek reproduction: asynchronous graph traversal for property
graph-based metadata management (Dai et al., IEEE CLUSTER 2015).

Quickstart::

    from repro import (
        Cluster, ClusterConfig, EngineKind, GTravel, EQ, RANGE,
        GraphBuilder, hpc_metadata_schema,
    )

    b = GraphBuilder(schema=hpc_metadata_schema())
    user = b.vertex("User", name="sam")
    job = b.vertex("Job", jobid=1, ts=100.0)
    b.edge(user, job, "run", ts=100.0)
    graph = b.build()

    cluster = Cluster.build(graph, ClusterConfig(nservers=4, engine=EngineKind.GRAPHTREK))
    outcome = cluster.traverse(GTravel.v(user).e("run"))
    print(sorted(outcome.result.vertices), outcome.stats.elapsed)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.cluster import (
    BackendServer,
    Cluster,
    ClusterConfig,
    Coordinator,
    CoordinatorConfig,
    ExternalInterference,
    GraphTrekClient,
    StragglerSpec,
    paper_interference,
)
from repro.engine import (
    EngineKind,
    EngineOptions,
    ReferenceEngine,
    TraversalOutcome,
    TraversalResult,
    TraversalStats,
    graphtrek_options,
    plain_async_options,
    sync_options,
)
from repro.errors import (
    GraphError,
    KeyNotFound,
    PartitionError,
    QueryError,
    ReproError,
    SimulationError,
    StorageError,
    TraversalError,
    TraversalFailed,
)
from repro.graph import (
    Edge,
    GraphBuilder,
    PropertyGraph,
    Schema,
    Vertex,
    hpc_metadata_schema,
)
from repro.faults import CrashEvent, FaultPlan, FaultSpec, sample_fault_plan
from repro.lang import EQ, IN, RANGE, FilterOp, GTravel, TraversalPlan, union_results
from repro.net import (
    ETHERNET_10G,
    INFINIBAND_QDR,
    NetworkModel,
    ReliableConfig,
)
from repro.storage import GPFS, LOCAL_DISK, DiskCostModel, GraphStore, LSMConfig, LSMStore
from repro.workloads import (
    MetadataGraphConfig,
    RMATConfig,
    data_audit_query,
    generate_metadata_graph,
    paper_rmat1,
    paper_scaled_config,
    pick_start_vertex,
    provenance_query,
    rmat_graph,
    rmat_kstep_query,
    suspicious_user_query,
)

__version__ = "1.0.0"

__all__ = [
    "BackendServer",
    "Cluster",
    "ClusterConfig",
    "Coordinator",
    "CoordinatorConfig",
    "ExternalInterference",
    "GraphTrekClient",
    "StragglerSpec",
    "paper_interference",
    "EngineKind",
    "EngineOptions",
    "ReferenceEngine",
    "TraversalOutcome",
    "TraversalResult",
    "TraversalStats",
    "graphtrek_options",
    "plain_async_options",
    "sync_options",
    "GraphError",
    "KeyNotFound",
    "PartitionError",
    "QueryError",
    "ReproError",
    "SimulationError",
    "StorageError",
    "TraversalError",
    "TraversalFailed",
    "CrashEvent",
    "FaultPlan",
    "FaultSpec",
    "sample_fault_plan",
    "ReliableConfig",
    "Edge",
    "GraphBuilder",
    "PropertyGraph",
    "Schema",
    "Vertex",
    "hpc_metadata_schema",
    "EQ",
    "IN",
    "RANGE",
    "FilterOp",
    "GTravel",
    "TraversalPlan",
    "union_results",
    "ETHERNET_10G",
    "INFINIBAND_QDR",
    "NetworkModel",
    "GPFS",
    "LOCAL_DISK",
    "DiskCostModel",
    "GraphStore",
    "LSMConfig",
    "LSMStore",
    "MetadataGraphConfig",
    "RMATConfig",
    "data_audit_query",
    "generate_metadata_graph",
    "paper_rmat1",
    "paper_scaled_config",
    "pick_start_vertex",
    "provenance_query",
    "rmat_graph",
    "rmat_kstep_query",
    "suspicious_user_query",
    "__version__",
]
