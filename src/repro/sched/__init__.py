"""Multi-tenant traversal scheduling: admission control, fair queueing,
backpressure, and deadline cancellation (DESIGN.md §11)."""

from repro.sched.policy import (
    POLICY_NAMES,
    FifoPolicy,
    PriorityPolicy,
    SchedPolicy,
    WfqPolicy,
    make_policy,
)
from repro.sched.scheduler import QueuedTravel, SchedulerConfig, TraversalScheduler

__all__ = [
    "POLICY_NAMES",
    "FifoPolicy",
    "PriorityPolicy",
    "SchedPolicy",
    "WfqPolicy",
    "make_policy",
    "QueuedTravel",
    "SchedulerConfig",
    "TraversalScheduler",
]
