"""The multi-traversal scheduler: admission control, fair queueing,
backpressure, and deadline cancellation.

Sits between ``Client.submit`` and the coordinator (paper §I motivates this
layer: "interferences among traversals easily create stragglers" in an
online metadata store). Every submission is *admitted* into a bounded
pending queue — or rejected with :class:`~repro.errors.AdmissionRejected`
when the queue is full — and *launched* into the coordinator when the
configured policy and resource limits allow:

* ``max_inflight`` caps concurrently running traversals;
* ``per_server_inflight`` is backpressure on the paper's execution model:
  while any backend server has that many outstanding executions, no new
  traversal launches (dispatch throttling instead of queue explosion);
* per-tenant token buckets (``quota_capacity`` / ``quota_refill_rate``)
  rate-limit launches per tenant, refilled on the runtime clock;
* a deadline (per submission or ``default_deadline``) cancels a traversal
  wherever it is — still queued, or mid-run via
  :meth:`~repro.cluster.coordinator.Coordinator.cancel`, which quiesces
  outstanding executions through the stale-attempt machinery.

Determinism: on the simulated runtime every decision is a pure function of
(submission order, policy state, virtual clock), so ``sched.*`` metrics and
trace events of a seeded workload are byte-identical across runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from repro.errors import AdmissionRejected, TraversalCancelled
from repro.ids import TravelId
from repro.lang.plan import TraversalPlan
from repro.sched.policy import SchedPolicy, make_policy


@dataclass(frozen=True)
class SchedulerConfig:
    """Admission, fairness, and backpressure knobs.

    The default configuration is *transparent*: no pending bound, no
    in-flight caps, no quotas, no deadline — every submission launches
    synchronously inside ``submit`` and the cluster behaves exactly as it
    did without a scheduler.
    """

    #: bounded admission queue; ``None`` = unbounded (never reject)
    max_pending: Optional[int] = None
    #: concurrently *running* traversal cap; ``None`` = unbounded
    max_inflight: Optional[int] = None
    #: backpressure: defer launches while any server has this many
    #: outstanding executions; ``None`` = off
    per_server_inflight: Optional[int] = None
    #: WFQ tenant weights (unlisted tenants weigh 1.0)
    tenant_weights: Mapping[str, float] = field(default_factory=dict)
    #: per-tenant token bucket on launches; ``None`` = no quota
    quota_capacity: Optional[float] = None
    #: tokens per virtual second
    quota_refill_rate: float = 1.0
    #: seconds from admission after which a traversal is cancelled;
    #: ``None`` = no deadline unless the submission sets one
    default_deadline: Optional[float] = None
    #: re-check interval while blocked on backpressure or quotas
    backpressure_poll: float = 0.005


@dataclass
class QueuedTravel:
    """One admitted traversal (or plan-less job), queued or in flight."""

    travel_id: TravelId
    #: ``None`` for jobs — non-traversal work admitted via ``submit_job``
    plan: Optional[TraversalPlan]
    tenant: str
    priority: Optional[int]
    client_event: Any
    admit_time: float
    seq: int
    key: tuple = ()
    deadline: Optional[float] = None
    #: WFQ start tag (set by the policy at admission)
    vft_start: float = 0.0
    state: str = "queued"  # queued | running | done | cancelled
    #: job entries: zero-arg callable returning the generator to run
    job: Optional[Callable[[], Any]] = None


class TraversalScheduler:
    """Deterministic admission + launch control in front of one coordinator.

    All entry points assume the caller holds the coordinator server's
    ``runtime.exclusive`` lock (``Cluster.submit`` provides it); callbacks
    the scheduler arms itself (deadlines, polls) take the lock on their own.
    """

    def __init__(
        self,
        runtime,
        coordinator,
        policy: SchedPolicy,
        config: Optional[SchedulerConfig] = None,
    ):
        self.runtime = runtime
        self.coordinator = coordinator
        self.policy = policy
        self.config = config or SchedulerConfig()
        self.metrics = coordinator.metrics
        self.trace = coordinator.trace
        self.journal = coordinator.journal
        self._ctx = coordinator.ctx
        self._seq = itertools.count()
        self._heap: list[tuple[tuple, int, TravelId]] = []
        self._queued: dict[TravelId, QueuedTravel] = {}
        self._inflight: dict[TravelId, QueuedTravel] = {}
        self._buckets: dict[str, tuple[float, float]] = {}  # tokens, last refill
        self._pumping = False
        self._repump = False
        self._poll_armed = False
        coordinator.on_terminal = self._on_travel_terminal

    @classmethod
    def for_cluster(
        cls, runtime, coordinator, scheduler_name: str,
        config: Optional[SchedulerConfig] = None,
    ) -> "TraversalScheduler":
        config = config or SchedulerConfig()
        policy = make_policy(scheduler_name, dict(config.tenant_weights))
        return cls(runtime, coordinator, policy, config)

    # -- introspection (collectors must SET gauges from these) --------------

    @property
    def queue_depth(self) -> int:
        return len(self._queued)

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def entry_for(self, travel_id: TravelId) -> Optional[QueuedTravel]:
        """The queued or in-flight entry for ``travel_id`` (None once
        terminal)."""
        return self._queued.get(travel_id) or self._inflight.get(travel_id)

    def tenant_tokens(self, tenant: str) -> Optional[float]:
        """Current token balance (after refill), or None without quotas."""
        if self.config.quota_capacity is None:
            return None
        return self._refill(tenant, self._ctx.now())

    # -- submission ---------------------------------------------------------

    def submit(
        self,
        plan: TraversalPlan,
        *,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        """Admit one traversal; returns ``(travel_id, completion event)``.

        Raises :class:`~repro.errors.AdmissionRejected` when the pending
        queue is at ``max_pending`` — before a travel id is allocated, so a
        rejected submission leaves no state anywhere.
        """
        now = self._ctx.now()
        cfg = self.config
        if self.runtime.is_down(self.runtime.coordinator_server):
            self.metrics.count("sched.rejected", tenant=tenant)
            raise AdmissionRejected(tenant, "coordinator host is down")
        if cfg.max_pending is not None and len(self._queued) >= cfg.max_pending:
            self.metrics.count("sched.rejected", tenant=tenant)
            self.trace.record(
                "sched.reject", server_id=self._ctx.server_id,
                tenant=tenant, pending=len(self._queued),
            )
            raise AdmissionRejected(
                tenant, f"pending queue full ({cfg.max_pending} traversals)"
            )
        travel_id = self.coordinator.allocate_travel_id()
        event = self.runtime.completion_event()
        entry = QueuedTravel(
            travel_id=travel_id,
            plan=plan,
            tenant=tenant,
            priority=priority,
            client_event=event,
            admit_time=now,
            seq=next(self._seq),
        )
        entry.key = self.policy.key(entry)
        relative = deadline if deadline is not None else cfg.default_deadline
        if relative is not None:
            entry.deadline = now + relative
            self.runtime.schedule(
                relative, lambda tid=travel_id: self._deadline_fire(tid)
            )
        if self.journal is not None:
            self.journal.append(
                "admit",
                tid=travel_id,
                plan=plan,
                tenant=tenant,
                priority=priority,
                deadline=entry.deadline,
                admit_time=now,
                seq=entry.seq,
            )
        self._queued[travel_id] = entry
        heapq.heappush(self._heap, (entry.key, entry.seq, travel_id))
        self.metrics.count("sched.submitted", tenant=tenant)
        self.trace.record(
            "sched.submit",
            travel_id=travel_id,
            server_id=self._ctx.server_id,
            tenant=tenant,
            policy=self.policy.name,
            steps=plan.final_level,
        )
        self._pump()
        return travel_id, event

    def submit_job(
        self,
        job: Callable[[], Any],
        *,
        tenant: str = "rebalance",
        priority: Optional[int] = None,
    ):
        """Admit a plan-less *job* — a zero-arg callable returning a
        generator to run on the coordinator context. Jobs flow through the
        same policy key, launch-order heap, in-flight caps, backpressure,
        and per-tenant quotas as traversals, which is exactly the point:
        shard-migration copy traffic submits here as a low-priority tenant
        so bulk data movement queues behind interactive traversals.

        Returns ``(job_id, completion event)``; the event succeeds with
        ``True`` or fails with whatever the generator raised. Jobs are not
        journaled (a migration journals its own phase records) and bypass
        ``max_pending`` — callers submit serially, one chunk at a time.
        """
        now = self._ctx.now()
        job_id = self.coordinator.allocate_travel_id()
        event = self.runtime.completion_event()
        entry = QueuedTravel(
            travel_id=job_id,
            plan=None,
            tenant=tenant,
            priority=priority,
            client_event=event,
            admit_time=now,
            seq=next(self._seq),
            job=job,
        )
        entry.key = self.policy.key(entry)
        self._queued[job_id] = entry
        heapq.heappush(self._heap, (entry.key, entry.seq, job_id))
        self.metrics.count("sched.submitted", tenant=tenant)
        self.trace.record(
            "sched.submit",
            travel_id=job_id,
            server_id=self._ctx.server_id,
            tenant=tenant,
            policy=self.policy.name,
            steps=0,
        )
        self._pump()
        return job_id, event

    # -- cancellation -------------------------------------------------------

    def cancel(self, travel_id: TravelId, reason: str = "cancelled") -> bool:
        """Cancel a queued or running traversal; True if anything happened.

        A queued traversal is removed and its event failed with
        :class:`~repro.errors.TraversalCancelled`; a running one is handed
        to :meth:`Coordinator.cancel`, which unregisters it so outstanding
        executions terminate as stale, then fails the event.
        """
        entry = self._queued.pop(travel_id, None)
        if entry is not None:
            entry.state = "cancelled"
            self.metrics.count(
                "sched.cancelled", tenant=entry.tenant, where="queued"
            )
            self.trace.record(
                "sched.cancel",
                travel_id=travel_id,
                server_id=self._ctx.server_id,
                tenant=entry.tenant,
                where="queued",
                reason=reason,
            )
            if self.journal is not None:
                self.journal.append("terminal", tid=travel_id, status="cancelled")
            entry.client_event.fail(TraversalCancelled(travel_id, reason))
            self._notify_terminal(travel_id)
            self._pump()
            return True
        if travel_id in self._inflight:
            return self.coordinator.cancel(travel_id, reason)
        return False

    def _deadline_fire(self, travel_id: TravelId) -> None:
        with self.runtime.exclusive(self.runtime.coordinator_server):
            entry = self._queued.get(travel_id) or self._inflight.get(travel_id)
            if entry is None or entry.state in ("done", "cancelled"):
                return
            self.cancel(travel_id, reason="deadline exceeded")

    def _notify_terminal(self, travel_id: TravelId) -> None:
        """Tell downstream terminal listeners (the recovery supervisor
        chains after this scheduler on ``coordinator.on_terminal``) about a
        queued-side cancellation the coordinator never saw."""
        handler = self.coordinator.on_terminal
        if handler is not None and handler != self._on_travel_terminal:
            handler(travel_id, "cancelled")

    def _on_travel_terminal(self, travel_id: TravelId, status: str) -> None:
        """Coordinator callback: a launched traversal reached a terminal
        state (``ok`` / ``failed`` / ``cancelled``)."""
        entry = self._inflight.pop(travel_id, None)
        if entry is None:
            return
        entry.state = "cancelled" if status == "cancelled" else "done"
        if status == "cancelled":
            self.metrics.count(
                "sched.cancelled", tenant=entry.tenant, where="running"
            )
            self.trace.record(
                "sched.cancel",
                travel_id=travel_id,
                server_id=self._ctx.server_id,
                tenant=entry.tenant,
                where="running",
                reason=status,
            )
        self._pump()

    # -- the pump -----------------------------------------------------------

    def _pump(self) -> None:
        """Launch queued traversals until a limit blocks or the queue drains.

        Re-entrant-safe: a launch can complete synchronously (zero-source
        traversals resolve inside ``Coordinator.submit``) and re-enter via
        ``_on_travel_terminal``; the guard flag folds that into the loop.
        """
        if self._pumping:
            self._repump = True
            return
        self._pumping = True
        try:
            while True:
                self._repump = False
                launched = self._launch_next()
                if not launched and not self._repump:
                    break
        finally:
            self._pumping = False

    def _launch_next(self) -> bool:
        if not self._queued:
            return False
        cfg = self.config
        if (
            cfg.max_inflight is not None
            and len(self._inflight) >= cfg.max_inflight
        ):
            return False  # a completion will pump again
        if self._backpressured():
            self._arm_poll(cfg.backpressure_poll)
            return False
        entry = self._pop_eligible()
        if entry is None:
            return False
        self._launch(entry)
        return True

    def _backpressured(self) -> bool:
        cap = self.config.per_server_inflight
        if cap is None:
            return False
        counts = self.coordinator.inflight_by_server()
        return bool(counts) and max(counts.values()) >= cap

    def _pop_eligible(self) -> Optional[QueuedTravel]:
        """Smallest-key queued entry whose tenant has quota, skipping (and
        re-queueing) entries of exhausted tenants. Arms a refill poll when
        everything queued is quota-blocked."""
        now = self._ctx.now()
        skipped: list[tuple[tuple, int, TravelId]] = []
        chosen: Optional[QueuedTravel] = None
        while self._heap:
            item = heapq.heappop(self._heap)
            entry = self._queued.get(item[2])
            if entry is None:
                continue  # cancelled while queued; drop the stale heap slot
            if self._try_consume(entry.tenant, now):
                chosen = entry
                break
            skipped.append(item)
        for item in skipped:
            heapq.heappush(self._heap, item)
        if chosen is None:
            if self._queued:  # every tenant is out of tokens: wait for refill
                self._arm_poll(self._refill_eta(now))
            return None
        del self._queued[chosen.travel_id]
        return chosen

    def _launch(self, entry: QueuedTravel) -> None:
        now = self._ctx.now()
        entry.state = "running"
        self.policy.on_launch(entry)
        self._inflight[entry.travel_id] = entry
        wait = now - entry.admit_time
        self.metrics.count("sched.launched", tenant=entry.tenant)
        self.metrics.observe("sched.wait_seconds", wait, tenant=entry.tenant)
        self.trace.record(
            "sched.launch",
            travel_id=entry.travel_id,
            server_id=self._ctx.server_id,
            tenant=entry.tenant,
            wait=wait,
        )
        if entry.job is not None:
            self._ctx.spawn(
                self._run_job(entry), name=f"job-{entry.travel_id}"
            )
            return
        if self.journal is not None:
            self.journal.append("launch", tid=entry.travel_id, tenant=entry.tenant)
        self.coordinator.submit(
            entry.plan,
            travel_id=entry.travel_id,
            client_event=entry.client_event,
            submit_time=entry.admit_time,
        )

    def _run_job(self, entry: QueuedTravel):
        """Run a job entry's generator on the coordinator context and settle
        its completion event. Runs as coordinator-hosted in-process code, so
        no ``exclusive`` lock is taken here (same discipline as the
        coordinator's own processes)."""
        failure: Optional[Exception] = None
        try:
            yield from entry.job()
        except Exception as exc:  # noqa: BLE001 - job outcome, reported below
            failure = exc
        if entry.travel_id not in self._inflight:
            return  # crashed / cancelled while running; events re-settled elsewhere
        self._on_travel_terminal(
            entry.travel_id, "failed" if failure is not None else "ok"
        )
        if not entry.client_event.triggered:
            if failure is not None:
                entry.client_event.fail(failure)
            else:
                entry.client_event.succeed(True)

    # -- token buckets ------------------------------------------------------

    def _refill(self, tenant: str, now: float) -> float:
        cap = self.config.quota_capacity
        assert cap is not None
        tokens, last = self._buckets.get(tenant, (cap, now))
        tokens = min(cap, tokens + (now - last) * self.config.quota_refill_rate)
        self._buckets[tenant] = (tokens, now)
        return tokens

    def _try_consume(self, tenant: str, now: float) -> bool:
        if self.config.quota_capacity is None:
            return True
        tokens = self._refill(tenant, now)
        if tokens < 1.0:
            return False
        self._buckets[tenant] = (tokens - 1.0, now)
        return True

    def _refill_eta(self, now: float) -> float:
        """Seconds until the best-off queued tenant reaches one token."""
        rate = max(self.config.quota_refill_rate, 1e-9)
        best = None
        for entry in self._queued.values():
            tokens = self._refill(entry.tenant, now)
            need = max(0.0, (1.0 - tokens) / rate)
            best = need if best is None else min(best, need)
        return max(best if best is not None else 0.0, 1e-6)

    # -- blocked-state polling ---------------------------------------------

    def _arm_poll(self, delay: float) -> None:
        if self._poll_armed:
            return
        self._poll_armed = True
        self.runtime.schedule(max(delay, 1e-6), self._poll_fire)

    def _poll_fire(self) -> None:
        with self.runtime.exclusive(self.runtime.coordinator_server):
            self._poll_armed = False
            if self._queued:
                self._pump()

    # -- coordinator crash recovery (DESIGN.md §13) -------------------------

    def on_host_crash(self) -> None:
        """The coordinator's host crashed: drop all scheduler state.

        Client completion events are *not* failed here — they survive the
        crash and are re-bound during recovery (queued travels are
        readmitted, running ones resumed). The recovery supervisor fails
        the events of anything it cannot restore.
        """
        self._queued.clear()
        self._heap.clear()
        self._inflight.clear()
        self._buckets.clear()
        self._pumping = False
        self._repump = False
        self._poll_armed = False

    def readmit(
        self,
        travel_id: TravelId,
        plan: TraversalPlan,
        *,
        client_event: Any,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_abs: Optional[float] = None,
        admit_time: float = 0.0,
    ) -> bool:
        """Re-queue a journaled-but-never-launched traversal after a
        coordinator crash, preserving its tenant/priority/deadline QoS.

        Call in original admission (``seq``) order so fresh sequence
        numbers reproduce the pre-crash queue order. Returns False (and
        cancels the travel) when its deadline already passed.
        """
        now = self._ctx.now()
        if deadline_abs is not None and deadline_abs <= now:
            self.metrics.count(
                "sched.cancelled", tenant=tenant, where="queued"
            )
            if self.journal is not None:
                self.journal.append("terminal", tid=travel_id, status="cancelled")
            client_event.fail(TraversalCancelled(travel_id, "deadline exceeded"))
            self._notify_terminal(travel_id)
            return False
        entry = QueuedTravel(
            travel_id=travel_id,
            plan=plan,
            tenant=tenant,
            priority=priority,
            client_event=client_event,
            admit_time=admit_time,
            seq=next(self._seq),
            deadline=deadline_abs,
        )
        entry.key = self.policy.key(entry)
        if deadline_abs is not None:
            self.runtime.schedule(
                max(deadline_abs - now, 1e-9),
                lambda tid=travel_id: self._deadline_fire(tid),
            )
        self._queued[travel_id] = entry
        heapq.heappush(self._heap, (entry.key, entry.seq, travel_id))
        self.metrics.count("sched.readmitted", tenant=tenant)
        self._pump()
        return True

    def restore_inflight(
        self,
        travel_id: TravelId,
        plan: TraversalPlan,
        *,
        client_event: Any,
        tenant: str = "default",
        priority: Optional[int] = None,
        deadline_abs: Optional[float] = None,
        admit_time: float = 0.0,
    ) -> None:
        """Re-track a traversal the recovered coordinator resumed, so
        terminal accounting and deadline cancellation keep working."""
        entry = QueuedTravel(
            travel_id=travel_id,
            plan=plan,
            tenant=tenant,
            priority=priority,
            client_event=client_event,
            admit_time=admit_time,
            seq=next(self._seq),
            deadline=deadline_abs,
            state="running",
        )
        self._inflight[travel_id] = entry
        if deadline_abs is not None:
            # expired deadlines fire on the next tick, after the resumed
            # travel is fully re-dispatched, and cancel it mid-run
            self.runtime.schedule(
                max(deadline_abs - self._ctx.now(), 1e-9),
                lambda tid=travel_id: self._deadline_fire(tid),
            )

    # -- draining (tests / shutdown hygiene) --------------------------------

    def drain_queued(self, reason: str = "shutdown") -> int:
        """Cancel everything still queued; returns how many were dropped."""
        dropped = 0
        for travel_id in sorted(self._queued):
            if self.cancel(travel_id, reason=reason):
                dropped += 1
        return dropped
