"""Scheduling policies: the order in which admitted traversals launch.

A policy assigns every queued traversal a totally-ordered *key* at admission
time; the scheduler launches the smallest eligible key first. Keys are pure
functions of (submission order, plan shape, tenant history), never of wall
clock, so on the simulated runtime the launch order of a seeded workload is
deterministic.

Three policies, selectable via ``EngineOptions.scheduler``:

* ``fifo``     — submission order (the pre-scheduler behaviour);
* ``priority`` — smallest explicit priority first (defaulting to the plan's
  step count, so short traversals jump long scans), FIFO within a class;
* ``wfq``      — start-time fair queueing (SFQ): each tenant accumulates
  virtual finish tags ``start + cost / weight``; heavier-weighted tenants
  and cheaper traversals get earlier tags. Approximates weighted processor
  sharing over traversal launches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sched.scheduler import QueuedTravel

#: policy names accepted by ``EngineOptions.scheduler``
POLICY_NAMES = ("fifo", "priority", "wfq")


class SchedPolicy:
    """Base class: FIFO by submission sequence."""

    name = "fifo"

    def key(self, entry: "QueuedTravel") -> tuple:
        """The launch-order key assigned at admission (smaller runs first)."""
        return (entry.seq,)

    def on_launch(self, entry: "QueuedTravel") -> None:
        """Hook invoked when ``entry`` is dequeued for launch."""


class FifoPolicy(SchedPolicy):
    name = "fifo"


class PriorityPolicy(SchedPolicy):
    """Strict priority classes; FIFO inside a class.

    An unset priority defaults to the plan's step count — the paper's
    straggler concern is long scans starving interactive lookups, and step
    count is the cheapest honest proxy for traversal size.
    """

    name = "priority"

    def key(self, entry: "QueuedTravel") -> tuple:
        if entry.priority is not None:
            priority = entry.priority
        elif entry.plan is not None:
            priority = entry.plan.final_level
        else:
            priority = 0  # plan-less jobs (migration chunks) set priority
        return (priority, entry.seq)


class WfqPolicy(SchedPolicy):
    """Start-time fair queueing over traversal launches.

    Every admission stamps the entry with a virtual finish tag::

        start  = max(virtual_now, last_finish[tenant])
        finish = start + cost / weight

    where ``cost`` is the traversal's step count + 1 and ``weight`` the
    tenant's configured share (default 1.0). The scheduler launches entries
    in finish-tag order; ``virtual_now`` advances to the start tag of each
    launched entry, which keeps an idle tenant from banking unbounded
    credit.
    """

    name = "wfq"

    def __init__(self, weights: dict[str, float] | None = None):
        self._weights = dict(weights or {})
        self._virtual = 0.0
        self._finish: dict[str, float] = {}

    def weight_of(self, tenant: str) -> float:
        weight = float(self._weights.get(tenant, 1.0))
        if weight <= 0:
            raise SimulationError(f"tenant {tenant!r} has non-positive weight")
        return weight

    def key(self, entry: "QueuedTravel") -> tuple:
        cost = 1.0 if entry.plan is None else float(entry.plan.final_level + 1)
        start = max(self._virtual, self._finish.get(entry.tenant, 0.0))
        finish = start + cost / self.weight_of(entry.tenant)
        self._finish[entry.tenant] = finish
        entry.vft_start = start
        return (finish, entry.seq)

    def on_launch(self, entry: "QueuedTravel") -> None:
        self._virtual = max(self._virtual, entry.vft_start)


def make_policy(name: str, weights: dict[str, float] | None = None) -> SchedPolicy:
    """Policy factory keyed by ``EngineOptions.scheduler``."""
    if name == "fifo":
        return FifoPolicy()
    if name == "priority":
        return PriorityPolicy()
    if name == "wfq":
        return WfqPolicy(weights)
    raise SimulationError(
        f"unknown scheduler policy {name!r}; choices: {', '.join(POLICY_NAMES)}"
    )
