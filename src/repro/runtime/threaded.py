"""Real-thread runtime: the same engine generators on OS threads.

Purpose: validate that the engines' behaviour does not depend on the
discrete-event kernel. Every server gets a *server lock* (a per-server GIL):
engine code — message handlers and worker steps between yields — runs under
it, which reproduces the simulator's run-to-completion semantics, while
yielded operations (sleeps, disk time, queue waits) release the lock.
Timings are wall-clock and therefore nondeterministic; parity tests compare
result sets, not times.

Design notes:

* yielded ops are small command tuples interpreted by a per-process
  trampoline thread (``_Op``);
* disk time = the cost model's virtual seconds times ``time_scale``, bounded
  below so scheduling noise cannot starve progress;
* message delivery uses ``threading.Timer`` for latency, then invokes the
  destination handler under the destination's server lock;
* ``shutdown()`` poisons every queue so worker threads exit.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import RuntimeUnavailable, SimulationError
from repro.ids import COORDINATOR, ServerId
from repro.net.message import Message
from repro.net.topology import INFINIBAND_QDR, NetworkModel
from repro.runtime.base import InterferencePolicy, Runtime, ServerContext
from repro.storage.costmodel import GPFS, DiskCostModel, IOCost

_POISON = object()


@dataclass
class _Op:
    """One yielded runtime operation."""

    kind: str  # "sleep" | "disk" | "get" | "wait"
    payload: Any = None


class ThreadEvent:
    """Completion event with a value or an exception."""

    def __init__(self):
        self._event = threading.Event()
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        return self._event.is_set()

    def succeed(self, value: Any = None) -> None:
        self._value = value
        self._event.set()

    def fail(self, exc: BaseException) -> None:
        self._exc = exc
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise SimulationError("threaded runtime: wait timed out")
        if self._exc is not None:
            raise self._exc
        return self._value


class _ThreadQueue:
    """Thread-safe priority/FIFO queue with a poison-pill shutdown path."""

    def __init__(self, priority: bool):
        self._q: queue.Queue = queue.PriorityQueue() if priority else queue.Queue()
        self._priority = priority
        self._size = 0
        self._lock = threading.Lock()

    def put(self, item: Any) -> None:
        with self._lock:
            self._size += 1
        self._q.put(item)

    def poison(self, n: int) -> None:
        for _ in range(n):
            # Poison sorts after real items in the priority queue.
            self._q.put((float("inf"), 0, _POISON) if self._priority else _POISON)

    def get_blocking(self) -> Any:
        item = self._q.get()
        if item is _POISON or (
            isinstance(item, tuple) and len(item) == 3 and item[2] is _POISON
        ):
            return _POISON
        with self._lock:
            self._size -= 1
        return item

    def __len__(self) -> int:
        return max(0, self._size)


class ThreadServerContext(ServerContext):
    """One server's view of the threaded runtime."""

    def __init__(self, runtime: "ThreadRuntime", server_id: ServerId):
        self._rt = runtime
        self.server_id = server_id
        self.nservers = runtime.nservers

    def now(self) -> float:
        return (time.monotonic() - self._rt.epoch) / self._rt.time_scale

    def sleep(self, dt: float) -> _Op:
        return _Op("sleep", dt)

    def spawn(self, gen, name: str = "proc"):
        return self._rt._spawn(self.server_id, gen, name)

    def queue(self, priority: bool = False, name: str = "q") -> _ThreadQueue:
        q = _ThreadQueue(priority)
        self._rt._queues.append(q)
        return q

    def queue_put(self, q: _ThreadQueue, item: Any) -> None:
        q.put(item)

    def queue_get(self, q: _ThreadQueue) -> _Op:
        return _Op("get", q)

    def queue_len(self, q: _ThreadQueue) -> int:
        return len(q)

    def wait(self, event: ThreadEvent) -> _Op:
        return _Op("wait", event)

    def disk(self, cost: IOCost, level: Optional[int] = None, accesses: int = 1) -> _Op:
        return _Op("disk", (self.server_id, cost, level, accesses))

    def cpu(self, dt: float) -> _Op:
        return _Op("sleep", dt)

    def send(self, dst: ServerId, msg: Message) -> None:
        self._rt.deliver(self.server_id, dst, msg)

    def send_coordinator(self, msg: Message) -> None:
        self._rt.deliver_to_coordinator(self.server_id, msg)


class ThreadRuntime(Runtime):
    """Thread-per-worker runtime with per-server engine locks."""

    def __init__(
        self,
        nservers: int,
        *,
        network: NetworkModel = INFINIBAND_QDR,
        disk_model: DiskCostModel = GPFS,
        disk_capacity: int = 1,
        interference: Optional[InterferencePolicy] = None,
        time_scale: float = 0.02,
        min_sleep: float = 0.0,
    ):
        if nservers < 1:
            raise SimulationError(f"nservers must be >= 1, got {nservers}")
        self.nservers = nservers
        self.network = network
        self.disk_model = disk_model
        self.interference = interference
        self.time_scale = time_scale
        self.min_sleep = min_sleep
        self.epoch = time.monotonic()
        self._locks = [threading.RLock() for _ in range(nservers)]
        self._disks = [threading.Semaphore(disk_capacity) for _ in range(nservers)]
        self._handlers: dict[ServerId, Callable[[Message], None]] = {}
        self._coordinator_handler: Optional[Callable[[Message], None]] = None
        self._queues: list[_ThreadQueue] = []
        self._threads: list[threading.Thread] = []
        self._shutdown = threading.Event()
        self.drop_filter: Optional[Callable[[ServerId, ServerId, Message], bool]] = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self._count_lock = threading.Lock()
        self._intf_lock = threading.Lock()
        self._proc_ids = itertools.count()
        self._init_fault_state()

    # -- wiring ---------------------------------------------------------------

    def context(self, server_id: ServerId) -> ThreadServerContext:
        if not (0 <= server_id < self.nservers):
            raise SimulationError(f"server id {server_id} out of range")
        return ThreadServerContext(self, server_id)

    def register_handler(self, server_id: ServerId, handler) -> None:
        self._handlers[server_id] = handler

    def register_coordinator(self, handler) -> None:
        self._coordinator_handler = handler
        self.coordinator_server = getattr(self, "coordinator_server", 0)

    # -- process trampoline --------------------------------------------------------

    def _spawn(self, server_id: ServerId, gen, name: str) -> threading.Thread:
        thread = threading.Thread(
            target=self._trampoline,
            args=(server_id, gen),
            name=f"s{server_id}:{name}:{next(self._proc_ids)}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()
        return thread

    def _trampoline(self, server_id: ServerId, gen) -> None:
        lock = self._locks[server_id]
        value: Any = None
        exc: Optional[BaseException] = None
        while not self._shutdown.is_set():
            with lock:
                try:
                    if exc is not None:
                        pending, exc = exc, None
                        op = gen.throw(pending)
                    else:
                        op = gen.send(value)
                except StopIteration:
                    return
            value = None
            try:
                value = self._perform(op)
            except Exception as err:
                # Mirror the simulator: a failed waitable (e.g. a child
                # traversal's completion event) is thrown into the process.
                exc = err
                continue
            if value is _POISON:
                return

    def _perform(self, op: _Op) -> Any:
        if op.kind == "sleep":
            dt = max(self.min_sleep, op.payload * self.time_scale)
            if dt > 0:
                time.sleep(dt)
            return None
        if op.kind == "get":
            return op.payload.get_blocking()
        if op.kind == "wait":
            # Bounded like run_until_complete's default so a lost child can
            # never hang the orchestrator thread; the timeout error is thrown
            # into the waiting generator by the trampoline.
            return op.payload.wait(60.0)
        if op.kind == "disk":
            server_id, cost, level, accesses = op.payload
            service = self.disk_model.time(cost)
            if self.interference is not None:
                with self._intf_lock:
                    for _ in range(max(1, accesses)):
                        service += self.interference.delay(server_id, level)
            with self._disks[server_id]:
                dt = max(self.min_sleep, service * self.time_scale)
                if dt > 0:
                    time.sleep(dt)
            return None
        raise RuntimeUnavailable(f"threaded runtime cannot perform op {op.kind!r}")

    # -- delivery ---------------------------------------------------------------------

    def _dispatch(self, dst: ServerId, handler, msg: Message) -> None:
        lock = self._locks[dst]
        with lock:
            handler(msg)

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if self._shutdown.is_set():
            return
        timer = threading.Timer(max(0.0, delay) * self.time_scale, fn)
        timer.daemon = True
        timer.start()

    def deliver(self, src: ServerId, dst: ServerId, msg: Message) -> None:
        if self.channel is not None:
            self.channel.send(src, dst, msg)
            return
        self.raw_deliver(src, dst, msg)

    def deliver_to_coordinator(self, src: ServerId, msg: Message) -> None:
        if self._coordinator_handler is None:
            raise SimulationError("no coordinator registered")
        if self.channel is not None:
            self.channel.send(src, COORDINATOR, msg)
            return
        self.raw_deliver_to_coordinator(src, msg)

    def raw_deliver(self, src: ServerId, dst: ServerId, msg: Message) -> None:
        """One-shot delivery over the (faulty) wire; the channel's transport."""
        if self._shutdown.is_set():
            return
        with self._count_lock:
            verdict = self._wire_verdict(src, dst, msg)
        if verdict.drop:
            return
        handler = self._handlers.get(dst)
        if handler is None:
            raise SimulationError(f"no handler registered for server {dst}")
        delay = self.network.latency(src, dst, msg.nbytes) + verdict.extra_delay
        self._schedule_arrivals(dst, handler, msg, delay, verdict)

    def raw_deliver_to_coordinator(self, src: ServerId, msg: Message) -> None:
        if self._coordinator_handler is None:
            raise SimulationError("no coordinator registered")
        if self._shutdown.is_set():
            return
        with self._count_lock:
            verdict = self._wire_verdict(src, COORDINATOR, msg)
        if verdict.drop:
            return
        dst = self.coordinator_server
        delay = (
            self.network.latency(src, dst, msg.nbytes) + verdict.extra_delay
        )
        self._schedule_arrivals(dst, self._coordinator_handler, msg, delay, verdict)

    def _schedule_arrivals(
        self, dst: ServerId, handler, msg: Message, delay: float, verdict
    ) -> None:
        copies = 1 + verdict.duplicates
        with self._count_lock:
            self.messages_sent += copies
            self.bytes_sent += msg.nbytes * copies
        self.schedule(delay, lambda: self._dispatch(dst, handler, msg))
        for i in range(verdict.duplicates):
            self._count("faults.duplicated")
            self.schedule(
                delay + (i + 1) * max(verdict.dup_spacing, 1e-6),
                lambda: self._dispatch(dst, handler, msg),
            )

    # -- crash model -------------------------------------------------------------------

    def crash_server(self, server: ServerId) -> None:
        with self._locks[server]:
            super().crash_server(server)

    def recover_server(self, server: ServerId) -> None:
        with self._locks[server]:
            super().recover_server(server)

    # -- driving -----------------------------------------------------------------------

    def completion_event(self) -> ThreadEvent:
        return ThreadEvent()

    def exclusive(self, server_id: ServerId):
        return self._locks[server_id]

    def run_until_complete(self, waitable: ThreadEvent, limit: Optional[float] = None):
        timeout = 60.0 if limit is None else limit * self.time_scale
        return waitable.wait(timeout)

    def shutdown(self) -> None:
        """Poison every queue so worker threads exit; idempotent."""
        self._shutdown.set()
        for q in self._queues:
            q.poison(8)
