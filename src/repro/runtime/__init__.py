"""Execution runtimes: the virtual-time simulator and the thread runtime."""

from repro.runtime.base import InterferencePolicy, Runtime, ServerContext
from repro.runtime.simulated import SimRuntime, SimServerContext
from repro.runtime.threaded import ThreadEvent, ThreadRuntime, ThreadServerContext

__all__ = [
    "InterferencePolicy",
    "Runtime",
    "ServerContext",
    "SimRuntime",
    "SimServerContext",
    "ThreadEvent",
    "ThreadRuntime",
    "ThreadServerContext",
]
