"""Runtime abstraction: what an engine needs from its execution environment.

Engines are written as generator-based actors against :class:`ServerContext`.
They never import the simulator directly, so the same engine code runs on the
virtual-time runtime (:mod:`repro.runtime.simulated`) and the real-thread
runtime (:mod:`repro.runtime.threaded`). An engine yields the opaque
*waitables* returned by context methods::

    def worker(self):
        while True:
            item = yield self.ctx.queue_get(self.queue)
            yield self.ctx.disk(cost, level=item.level)
            self.ctx.send(dst, msg)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Protocol

from repro.ids import ServerId
from repro.net.message import Message
from repro.storage.costmodel import IOCost


class InterferencePolicy(Protocol):
    """External-interference hook: extra virtual seconds for one vertex
    access on ``server`` while the accessing execution works at ``level``."""

    def delay(self, server: ServerId, level: Optional[int]) -> float: ...


class ServerContext(ABC):
    """The per-server execution environment handed to engine instances."""

    server_id: ServerId
    nservers: int

    # -- time ------------------------------------------------------------

    @abstractmethod
    def now(self) -> float:
        """Current time (virtual or wall, depending on runtime)."""

    @abstractmethod
    def sleep(self, dt: float) -> Any:
        """Waitable that resumes after ``dt`` seconds."""

    # -- processes ---------------------------------------------------------

    @abstractmethod
    def spawn(self, gen, name: str = "proc") -> Any:
        """Run a generator as a concurrent process; returns its handle."""

    # -- queues --------------------------------------------------------------

    @abstractmethod
    def queue(self, priority: bool = False, name: str = "q") -> Any:
        """Create a work queue (priority queues pop smallest item first)."""

    @abstractmethod
    def queue_put(self, q: Any, item: Any) -> None: ...

    @abstractmethod
    def queue_get(self, q: Any) -> Any:
        """Waitable resolving to the next item."""

    @abstractmethod
    def queue_len(self, q: Any) -> int: ...

    # -- I/O -------------------------------------------------------------------

    @abstractmethod
    def disk(self, cost: IOCost, level: Optional[int] = None, accesses: int = 1) -> Any:
        """Waitable that occupies this server's disk for ``cost``.

        ``level`` tags the traversal step for the interference policy;
        ``accesses`` is how many logical vertex accesses the cost covers.
        """

    @abstractmethod
    def cpu(self, dt: float) -> Any:
        """Waitable modelling per-request processing overhead."""

    # -- messaging ---------------------------------------------------------------

    @abstractmethod
    def send(self, dst: ServerId, msg: Message) -> None:
        """Fire-and-forget message to another server's engine."""

    @abstractmethod
    def send_coordinator(self, msg: Message) -> None:
        """Send to the coordinator actor of this traversal's cluster."""


class Runtime(ABC):
    """Factory for server contexts plus message routing."""

    nservers: int

    @abstractmethod
    def context(self, server_id: ServerId) -> ServerContext: ...

    @abstractmethod
    def register_handler(
        self, server_id: ServerId, handler: Callable[[Message], None]
    ) -> None:
        """Install the engine's ``on_message`` for a server."""

    @abstractmethod
    def register_coordinator(self, handler: Callable[[Message], None]) -> None: ...

    @abstractmethod
    def run_until_complete(self, waitable: Any, limit: Optional[float] = None) -> Any:
        """Drive the runtime until ``waitable`` resolves; return its value."""

    @abstractmethod
    def completion_event(self) -> Any:
        """A one-shot event the coordinator resolves when a traversal ends."""

    def exclusive(self, server_id: ServerId):
        """Context manager serializing external calls into a server's engine
        or coordinator state. A no-op on the single-threaded simulator; the
        per-server lock on the threaded runtime."""
        from contextlib import nullcontext

        return nullcontext()

    def shutdown(self) -> None:
        """Release runtime resources (worker threads); no-op by default."""
