"""Runtime abstraction: what an engine needs from its execution environment.

Engines are written as generator-based actors against :class:`ServerContext`.
They never import the simulator directly, so the same engine code runs on the
virtual-time runtime (:mod:`repro.runtime.simulated`) and the real-thread
runtime (:mod:`repro.runtime.threaded`). An engine yields the opaque
*waitables* returned by context methods::

    def worker(self):
        while True:
            item = yield self.ctx.queue_get(self.queue)
            yield self.ctx.disk(cost, level=item.level)
            self.ctx.send(dst, msg)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Optional, Protocol

from repro.ids import COORDINATOR, ServerId
from repro.faults.inject import CLEAN, FaultDecision, payload_type_name
from repro.net.message import Message
from repro.storage.costmodel import IOCost

_DROP = FaultDecision(drop=True)


class InterferencePolicy(Protocol):
    """External-interference hook: extra virtual seconds for one vertex
    access on ``server`` while the accessing execution works at ``level``."""

    def delay(self, server: ServerId, level: Optional[int]) -> float: ...


class ServerContext(ABC):
    """The per-server execution environment handed to engine instances."""

    server_id: ServerId
    nservers: int

    # -- time ------------------------------------------------------------

    @abstractmethod
    def now(self) -> float:
        """Current time (virtual or wall, depending on runtime)."""

    @abstractmethod
    def sleep(self, dt: float) -> Any:
        """Waitable that resumes after ``dt`` seconds."""

    # -- processes ---------------------------------------------------------

    @abstractmethod
    def spawn(self, gen, name: str = "proc") -> Any:
        """Run a generator as a concurrent process; returns its handle."""

    # -- queues --------------------------------------------------------------

    @abstractmethod
    def queue(self, priority: bool = False, name: str = "q") -> Any:
        """Create a work queue (priority queues pop smallest item first)."""

    @abstractmethod
    def queue_put(self, q: Any, item: Any) -> None: ...

    @abstractmethod
    def queue_get(self, q: Any) -> Any:
        """Waitable resolving to the next item."""

    @abstractmethod
    def queue_len(self, q: Any) -> int: ...

    # -- I/O -------------------------------------------------------------------

    @abstractmethod
    def disk(self, cost: IOCost, level: Optional[int] = None, accesses: int = 1) -> Any:
        """Waitable that occupies this server's disk for ``cost``.

        ``level`` tags the traversal step for the interference policy;
        ``accesses`` is how many logical vertex accesses the cost covers.
        """

    @abstractmethod
    def cpu(self, dt: float) -> Any:
        """Waitable modelling per-request processing overhead."""

    # -- events -------------------------------------------------------------------

    @abstractmethod
    def wait(self, event: Any) -> Any:
        """Waitable resolving to a completion event's value.

        ``event`` is a one-shot event from :meth:`Runtime.completion_event`.
        If the event fails, the exception it failed with is raised *inside*
        the waiting generator (both runtimes throw it into the process), so
        orchestrating actors can catch child-traversal failures.
        """

    # -- messaging ---------------------------------------------------------------

    @abstractmethod
    def send(self, dst: ServerId, msg: Message) -> None:
        """Fire-and-forget message to another server's engine."""

    @abstractmethod
    def send_coordinator(self, msg: Message) -> None:
        """Send to the coordinator actor of this traversal's cluster."""


class Runtime(ABC):
    """Factory for server contexts plus message routing.

    The base class carries the wire-fault machinery shared by both concrete
    runtimes: an optional :class:`~repro.faults.plan.FaultPlan` (single
    injection point, superseding the raw ``drop_filter`` hook), the set of
    currently crashed servers, and the optional
    :class:`~repro.net.reliable.ReliableChannel` that interposes on every
    ``deliver`` call. Subclasses provide the clock (:meth:`schedule`) and
    the raw one-shot delivery primitives.
    """

    nservers: int
    coordinator_server: ServerId = 0
    #: legacy escape hatch: ``fn(src, dst, msg) -> True`` to swallow a message
    drop_filter: Optional[Callable[..., bool]] = None
    metrics = None  # bound MetricsRegistry, or None
    trace = None  # bound FlightRecorder, or None
    channel = None  # installed ReliableChannel, or None
    fault_plan = None
    fault_injector = None
    messages_dropped: int = 0

    @abstractmethod
    def context(self, server_id: ServerId) -> ServerContext: ...

    # -- faults and reliability -------------------------------------------

    @abstractmethod
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run ``fn()`` after ``delay`` runtime seconds (best effort; used
        for fault events and transport retries, never for engine work)."""

    def bind_metrics(self, metrics) -> None:
        """Route ``net.*``/``faults.*`` counters to a metrics registry."""
        self.metrics = metrics

    def bind_trace(self, trace) -> None:
        """Route fault verdicts and crash/recovery events to a flight
        recorder (only non-clean verdicts are recorded, so clean traffic
        costs nothing beyond the enabled-flag check)."""
        self.trace = trace

    def install_faults(self, plan) -> None:
        """Make ``plan`` the single fault-injection point for this runtime
        and schedule its crash/recovery events on the runtime clock."""
        plan.validate(self.nservers, self.coordinator_server)
        self.fault_plan = plan
        self.fault_injector = plan.injector()
        for ev in plan.crashes:
            self.schedule(ev.at, lambda s=ev.server: self.crash_server(s))
            if ev.recover_at != float("inf"):
                self.schedule(ev.recover_at, lambda s=ev.server: self.recover_server(s))

    def install_channel(self, channel) -> None:
        """Interpose a reliable channel between ``deliver`` and the wire.

        Must run after all handlers are registered: the channel captures the
        current handlers as its upper layer and replaces them with its frame
        handlers.
        """
        if self.channel is not None:
            from repro.errors import SimulationError

            raise SimulationError("a reliable channel is already installed")
        self.channel = channel
        channel.attach(self, dict(self._handlers), self._coordinator_handler)
        for sid in list(self._handlers):
            self._handlers[sid] = channel.server_frame_handler(sid)
        self._coordinator_handler = channel.coordinator_frame_handler
        self.add_crash_listener(channel.on_server_crash)

    # -- crash model --------------------------------------------------------

    def _init_fault_state(self) -> None:
        """Called from subclass ``__init__``: per-instance crash bookkeeping."""
        self._down: set[ServerId] = set()
        self._crash_listeners: list[Callable[[ServerId], None]] = []
        self._recovery_listeners: list[Callable[[ServerId], None]] = []

    def add_crash_listener(self, fn: Callable[[ServerId], None]) -> None:
        self._crash_listeners.append(fn)

    def add_recovery_listener(self, fn: Callable[[ServerId], None]) -> None:
        self._recovery_listeners.append(fn)

    def is_down(self, server: ServerId) -> bool:
        return server in self._down

    def crash_server(self, server: ServerId) -> None:
        """Crash ``server``: in-memory state is lost (listeners clear engine
        and transport state), wire traffic to/from it is silently dropped."""
        if server in self._down:
            return
        self._down.add(server)
        self._count("faults.crashes", server=server)
        if self.trace is not None:
            self.trace.record("fault.crash", server_id=server)
        for fn in self._crash_listeners:
            fn(server)

    def recover_server(self, server: ServerId) -> None:
        """Rejoin ``server`` with empty memory (LSM storage survived)."""
        if server not in self._down:
            return
        self._down.discard(server)
        self._count("faults.recoveries", server=server)
        if self.trace is not None:
            self.trace.record("fault.recover", server_id=server)
        for fn in self._recovery_listeners:
            fn(server)

    # -- wire verdicts ------------------------------------------------------

    def _wire_verdict(self, src: ServerId, dst: ServerId, msg: Message):
        """Decide what the wire does to one delivery: a FaultDecision whose
        ``drop`` covers crashed endpoints, the legacy ``drop_filter``, and
        the installed fault plan. Every drop is counted (``net.dropped``)."""
        dst_host = self.coordinator_server if dst == COORDINATOR else dst
        if self.is_down(src) or self.is_down(dst_host):
            self._note_drop(msg, "down")
            self._trace_verdict(src, dst, msg, "down")
            return _DROP
        if self.drop_filter is not None and self.drop_filter(src, dst, msg):
            self._note_drop(msg, "filter")
            self._trace_verdict(src, dst, msg, "filter")
            return _DROP
        if self.fault_injector is not None:
            decision = self.fault_injector.decide(src, dst, msg)
            if decision.drop:
                self._note_drop(msg, "fault")
            if not decision.clean:
                self._trace_verdict(
                    src, dst, msg, "fault",
                    drop=decision.drop,
                    duplicates=decision.duplicates,
                    extra_delay=decision.extra_delay,
                )
            return decision
        return CLEAN

    def _note_drop(self, msg: Message, reason: str) -> None:
        self.messages_dropped += 1
        self._count("net.dropped", type=payload_type_name(msg), reason=reason)

    def _trace_verdict(
        self, src: ServerId, dst: ServerId, msg: Message, cause: str, **attrs: Any
    ) -> None:
        """Record a non-clean wire verdict. The message's payload (or the
        frame's payload, when the reliable channel wrapped it) names the
        affected execution if it carries one."""
        if self.trace is None:
            return
        payload = getattr(msg, "payload", msg)
        kind = "fault.drop" if attrs.get("drop") or cause in ("down", "filter") else "fault.verdict"
        self.trace.record(
            kind,
            travel_id=getattr(payload, "travel_id", None),
            exec_id=getattr(payload, "exec_id", None),
            server_id=dst,
            attempt=getattr(payload, "attempt", 0),
            cause=cause,
            src=src,
            type=payload_type_name(msg),
            **{k: v for k, v in attrs.items() if k != "drop"},
        )

    def _count(self, name: str, n: float = 1, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n, **labels)

    @abstractmethod
    def register_handler(
        self, server_id: ServerId, handler: Callable[[Message], None]
    ) -> None:
        """Install the engine's ``on_message`` for a server."""

    @abstractmethod
    def register_coordinator(self, handler: Callable[[Message], None]) -> None: ...

    @abstractmethod
    def run_until_complete(self, waitable: Any, limit: Optional[float] = None) -> Any:
        """Drive the runtime until ``waitable`` resolves; return its value."""

    @abstractmethod
    def completion_event(self) -> Any:
        """A one-shot event the coordinator resolves when a traversal ends."""

    def exclusive(self, server_id: ServerId):
        """Context manager serializing external calls into a server's engine
        or coordinator state. A no-op on the single-threaded simulator; the
        per-server lock on the threaded runtime."""
        from contextlib import nullcontext

        return nullcontext()

    def shutdown(self) -> None:
        """Release runtime resources (worker threads); no-op by default."""
