"""Virtual-time runtime on the discrete-event kernel.

This is the evaluation runtime: disks are capacity-limited
:class:`~repro.sim.resources.Resource` objects charged via the
:class:`~repro.storage.costmodel.DiskCostModel`, messages arrive after
:class:`~repro.net.topology.NetworkModel` latency, and elapsed traversal time
is read off the virtual clock. Determinism: same seed + same configuration →
identical event order and identical timings.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.ids import COORDINATOR, ServerId
from repro.net.message import Message
from repro.net.topology import INFINIBAND_QDR, NetworkModel
from repro.runtime.base import InterferencePolicy, Runtime, ServerContext
from repro.sim.core import Event, Simulator
from repro.sim.resources import PriorityStore, Resource, Store
from repro.storage.costmodel import GPFS, DiskCostModel, IOCost


class SimServerContext(ServerContext):
    """One server's view of the simulated runtime."""

    def __init__(self, runtime: "SimRuntime", server_id: ServerId):
        self._rt = runtime
        self.server_id = server_id
        self.nservers = runtime.nservers

    # -- time ----------------------------------------------------------

    def now(self) -> float:
        return self._rt.sim.now

    def sleep(self, dt: float):
        return self._rt.sim.timeout(dt)

    # -- processes -------------------------------------------------------

    def spawn(self, gen, name: str = "proc"):
        return self._rt.sim.process(gen, name=f"s{self.server_id}:{name}")

    # -- queues --------------------------------------------------------------

    def queue(self, priority: bool = False, name: str = "q"):
        cls = PriorityStore if priority else Store
        return cls(self._rt.sim, name=f"s{self.server_id}:{name}")

    def queue_put(self, q, item) -> None:
        q.put(item)

    def queue_get(self, q):
        return q.get()

    def queue_len(self, q) -> int:
        return len(q)

    # -- events --------------------------------------------------------------

    def wait(self, event):
        # Sim events are themselves waitables: yielding one suspends the
        # process until it triggers (or throws its failure exception in).
        return event

    # -- I/O ---------------------------------------------------------------------

    def disk(self, cost: IOCost, level: Optional[int] = None, accesses: int = 1):
        return self._rt.sim.process(
            self._rt._disk_proc(self.server_id, cost, level, accesses),
            name=f"s{self.server_id}:disk",
        )

    def cpu(self, dt: float):
        return self._rt.sim.timeout(dt)

    # -- messaging ------------------------------------------------------------------

    def send(self, dst: ServerId, msg: Message) -> None:
        self._rt.deliver(self.server_id, dst, msg)

    def send_coordinator(self, msg: Message) -> None:
        self._rt.deliver_to_coordinator(self.server_id, msg)


class SimRuntime(Runtime):
    """The cluster-wide simulated runtime."""

    def __init__(
        self,
        nservers: int,
        *,
        network: NetworkModel = INFINIBAND_QDR,
        disk_model: DiskCostModel = GPFS,
        disk_capacity: int = 1,
        interference: Optional[InterferencePolicy] = None,
    ):
        if nservers < 1:
            raise SimulationError(f"nservers must be >= 1, got {nservers}")
        self.nservers = nservers
        self.sim = Simulator()
        self.network = network
        self.disk_model = disk_model
        self.interference = interference
        self._disks = [
            Resource(self.sim, disk_capacity, name=f"disk{s}") for s in range(nservers)
        ]
        self._handlers: dict[ServerId, Callable[[Message], None]] = {}
        self._coordinator_handler: Optional[Callable[[Message], None]] = None
        #: legacy fault injection: return True to silently drop a message
        #: (prefer ``install_faults`` with a FaultPlan)
        self.drop_filter: Optional[Callable[[ServerId, ServerId, Message], bool]] = None
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self._init_fault_state()

    # -- wiring ------------------------------------------------------------

    def context(self, server_id: ServerId) -> SimServerContext:
        if not (0 <= server_id < self.nservers):
            raise SimulationError(f"server id {server_id} out of range")
        return SimServerContext(self, server_id)

    def register_handler(self, server_id: ServerId, handler) -> None:
        self._handlers[server_id] = handler

    def register_coordinator(self, handler) -> None:
        self._coordinator_handler = handler

    # -- message delivery -------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        self.sim.schedule(delay, fn)

    def deliver(self, src: ServerId, dst: ServerId, msg: Message) -> None:
        if self.channel is not None:
            self.channel.send(src, dst, msg)
            return
        self.raw_deliver(src, dst, msg)

    def deliver_to_coordinator(self, src: ServerId, msg: Message) -> None:
        if self._coordinator_handler is None:
            raise SimulationError("no coordinator registered")
        if self.channel is not None:
            self.channel.send(src, COORDINATOR, msg)
            return
        self.raw_deliver_to_coordinator(src, msg)

    def raw_deliver(self, src: ServerId, dst: ServerId, msg: Message) -> None:
        """One-shot delivery over the (faulty) wire; the channel's transport."""
        verdict = self._wire_verdict(src, dst, msg)
        if verdict.drop:
            return
        handler = self._handlers.get(dst)
        if handler is None:
            raise SimulationError(f"no handler registered for server {dst}")
        delay = self.network.latency(src, dst, msg.nbytes) + verdict.extra_delay
        self._schedule_arrivals(handler, msg, delay, verdict)

    def raw_deliver_to_coordinator(self, src: ServerId, msg: Message) -> None:
        if self._coordinator_handler is None:
            raise SimulationError("no coordinator registered")
        verdict = self._wire_verdict(src, COORDINATOR, msg)
        if verdict.drop:
            return
        delay = (
            self.network.latency(src, self.coordinator_server, msg.nbytes)
            + verdict.extra_delay
        )
        self._schedule_arrivals(self._coordinator_handler, msg, delay, verdict)

    def _schedule_arrivals(self, handler, msg: Message, delay: float, verdict) -> None:
        copies = 1 + verdict.duplicates
        self.messages_sent += copies
        self.bytes_sent += msg.nbytes * copies
        self.sim.schedule(delay, lambda: handler(msg))
        for i in range(verdict.duplicates):
            self._count("faults.duplicated")
            self.sim.schedule(
                delay + (i + 1) * max(verdict.dup_spacing, 1e-6),
                lambda: handler(msg),
            )

    # -- disk ----------------------------------------------------------------------

    def _disk_proc(
        self, server_id: ServerId, cost: IOCost, level: Optional[int], accesses: int
    ):
        disk = self._disks[server_id]
        req = disk.request()
        yield req
        try:
            service = self.disk_model.time(cost)
            if self.interference is not None:
                for _ in range(max(1, accesses)):
                    service += self.interference.delay(server_id, level)
            if service > 0:
                yield self.sim.timeout(service)
        finally:
            disk.release(req)

    def disk_queue_length(self, server_id: ServerId) -> int:
        return self._disks[server_id].queue_length

    # -- driving ----------------------------------------------------------------------

    def completion_event(self) -> Event:
        return self.sim.event("traversal-complete")

    def run_until_complete(self, waitable: Event, limit: Optional[float] = None):
        return self.sim.run_until(waitable, limit=limit)
