"""Virtual-time runtime on the discrete-event kernel.

This is the evaluation runtime: disks are capacity-limited
:class:`~repro.sim.resources.Resource` objects charged via the
:class:`~repro.storage.costmodel.DiskCostModel`, messages arrive after
:class:`~repro.net.topology.NetworkModel` latency, and elapsed traversal time
is read off the virtual clock. Determinism: same seed + same configuration →
identical event order and identical timings.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.ids import ServerId
from repro.net.message import Message
from repro.net.topology import INFINIBAND_QDR, NetworkModel
from repro.runtime.base import InterferencePolicy, Runtime, ServerContext
from repro.sim.core import Event, Simulator
from repro.sim.resources import PriorityStore, Resource, Store
from repro.storage.costmodel import GPFS, DiskCostModel, IOCost


class SimServerContext(ServerContext):
    """One server's view of the simulated runtime."""

    def __init__(self, runtime: "SimRuntime", server_id: ServerId):
        self._rt = runtime
        self.server_id = server_id
        self.nservers = runtime.nservers

    # -- time ----------------------------------------------------------

    def now(self) -> float:
        return self._rt.sim.now

    def sleep(self, dt: float):
        return self._rt.sim.timeout(dt)

    # -- processes -------------------------------------------------------

    def spawn(self, gen, name: str = "proc"):
        return self._rt.sim.process(gen, name=f"s{self.server_id}:{name}")

    # -- queues --------------------------------------------------------------

    def queue(self, priority: bool = False, name: str = "q"):
        cls = PriorityStore if priority else Store
        return cls(self._rt.sim, name=f"s{self.server_id}:{name}")

    def queue_put(self, q, item) -> None:
        q.put(item)

    def queue_get(self, q):
        return q.get()

    def queue_len(self, q) -> int:
        return len(q)

    # -- I/O ---------------------------------------------------------------------

    def disk(self, cost: IOCost, level: Optional[int] = None, accesses: int = 1):
        return self._rt.sim.process(
            self._rt._disk_proc(self.server_id, cost, level, accesses),
            name=f"s{self.server_id}:disk",
        )

    def cpu(self, dt: float):
        return self._rt.sim.timeout(dt)

    # -- messaging ------------------------------------------------------------------

    def send(self, dst: ServerId, msg: Message) -> None:
        self._rt.deliver(self.server_id, dst, msg)

    def send_coordinator(self, msg: Message) -> None:
        self._rt.deliver_to_coordinator(self.server_id, msg)


class SimRuntime(Runtime):
    """The cluster-wide simulated runtime."""

    def __init__(
        self,
        nservers: int,
        *,
        network: NetworkModel = INFINIBAND_QDR,
        disk_model: DiskCostModel = GPFS,
        disk_capacity: int = 1,
        interference: Optional[InterferencePolicy] = None,
    ):
        if nservers < 1:
            raise SimulationError(f"nservers must be >= 1, got {nservers}")
        self.nservers = nservers
        self.sim = Simulator()
        self.network = network
        self.disk_model = disk_model
        self.interference = interference
        self._disks = [
            Resource(self.sim, disk_capacity, name=f"disk{s}") for s in range(nservers)
        ]
        self._handlers: dict[ServerId, Callable[[Message], None]] = {}
        self._coordinator_handler: Optional[Callable[[Message], None]] = None
        #: optional fault injection: return True to silently drop a message
        self.drop_filter: Optional[Callable[[ServerId, ServerId, Message], bool]] = None
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- wiring ------------------------------------------------------------

    def context(self, server_id: ServerId) -> SimServerContext:
        if not (0 <= server_id < self.nservers):
            raise SimulationError(f"server id {server_id} out of range")
        return SimServerContext(self, server_id)

    def register_handler(self, server_id: ServerId, handler) -> None:
        self._handlers[server_id] = handler

    def register_coordinator(self, handler) -> None:
        self._coordinator_handler = handler

    # -- message delivery -------------------------------------------------------

    def deliver(self, src: ServerId, dst: ServerId, msg: Message) -> None:
        if self.drop_filter is not None and self.drop_filter(src, dst, msg):
            return
        handler = self._handlers.get(dst)
        if handler is None:
            raise SimulationError(f"no handler registered for server {dst}")
        self.messages_sent += 1
        self.bytes_sent += msg.nbytes
        delay = self.network.latency(src, dst, msg.nbytes)
        self.sim.schedule(delay, lambda: handler(msg))

    def deliver_to_coordinator(self, src: ServerId, msg: Message) -> None:
        if self._coordinator_handler is None:
            raise SimulationError("no coordinator registered")
        if self.drop_filter is not None and self.drop_filter(src, -1, msg):
            return
        self.messages_sent += 1
        self.bytes_sent += msg.nbytes
        coord_server = getattr(self, "coordinator_server", 0)
        delay = self.network.latency(src, coord_server, msg.nbytes)
        handler = self._coordinator_handler
        self.sim.schedule(delay, lambda: handler(msg))

    # -- disk ----------------------------------------------------------------------

    def _disk_proc(
        self, server_id: ServerId, cost: IOCost, level: Optional[int], accesses: int
    ):
        disk = self._disks[server_id]
        req = disk.request()
        yield req
        try:
            service = self.disk_model.time(cost)
            if self.interference is not None:
                for _ in range(max(1, accesses)):
                    service += self.interference.delay(server_id, level)
            if service > 0:
                yield self.sim.timeout(service)
        finally:
            disk.release(req)

    def disk_queue_length(self, server_id: ServerId) -> int:
        return self._disks[server_id].queue_length

    # -- driving ----------------------------------------------------------------------

    def completion_event(self) -> Event:
        return self.sim.event("traversal-complete")

    def run_until_complete(self, waitable: Event, limit: Optional[float] = None):
        return self.sim.run_until(waitable, limit=limit)
