"""Vertex records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.property import validate_props
from repro.ids import VertexId


@dataclass
class Vertex:
    """A typed vertex with arbitrary scalar properties.

    ``vtype`` is the entity kind (``"User"``, ``"Execution"``, ``"File"`` …)
    and doubles as the storage namespace. It is also exposed to queries as
    the reserved property ``"type"`` so paper queries like
    ``va('type', EQ, 'Execution')`` work unchanged.
    """

    vid: VertexId
    vtype: str
    props: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.props = validate_props(self.props, f"vertex {self.vid}")

    def effective_props(self) -> dict[str, Any]:
        """Props as filters see them: user props plus the reserved ``type``."""
        merged = dict(self.props)
        merged.setdefault("type", self.vtype)
        return merged
