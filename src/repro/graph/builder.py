"""Property-graph construction and the in-memory graph container.

:class:`PropertyGraph` is the canonical in-memory representation used by
generators, partitioners, and the single-node reference engine. The
distributed engines never touch it directly — they read partitions loaded
into per-server :class:`~repro.storage.layout.GraphStore` instances.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Iterator, Mapping, Optional

from repro.errors import GraphError
from repro.graph.edge import Edge
from repro.graph.schema import Schema
from repro.graph.vertex import Vertex
from repro.ids import VertexId


class PropertyGraph:
    """Directed property multigraph with typed vertices and labelled edges.

    Out-adjacency is grouped by label (matching the storage layout), so
    ``graph.out_edges(v, "read")`` is the in-memory twin of the engine's
    sequential edge scan.
    """

    def __init__(self, schema: Optional[Schema] = None):
        self.schema = schema
        self._vertices: dict[VertexId, Vertex] = {}
        # vid -> label -> list[(dst, props)]
        self._out: dict[VertexId, dict[str, list[tuple[VertexId, dict[str, Any]]]]] = {}
        self._edge_count = 0

    # -- construction ---------------------------------------------------

    def add_vertex(
        self, vid: VertexId, vtype: str, props: Optional[Mapping[str, Any]] = None
    ) -> Vertex:
        if vid in self._vertices:
            raise GraphError(f"duplicate vertex id {vid}")
        if self.schema is not None:
            self.schema.check_vertex(vtype)
        vertex = Vertex(vid, vtype, dict(props or {}))
        self._vertices[vid] = vertex
        self._out[vid] = {}
        return vertex

    def add_edge(
        self,
        src: VertexId,
        dst: VertexId,
        label: str,
        props: Optional[Mapping[str, Any]] = None,
    ) -> Edge:
        if src not in self._vertices:
            raise GraphError(f"edge source {src} does not exist")
        if dst not in self._vertices:
            raise GraphError(f"edge destination {dst} does not exist")
        if self.schema is not None:
            self.schema.check_edge(
                label, self._vertices[src].vtype, self._vertices[dst].vtype
            )
        edge = Edge(src, dst, label, dict(props or {}))
        self._out[src].setdefault(label, []).append((dst, edge.props))
        self._edge_count += 1
        return edge

    # -- queries ----------------------------------------------------------

    def __contains__(self, vid: VertexId) -> bool:
        return vid in self._vertices

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return self._edge_count

    def vertex(self, vid: VertexId) -> Vertex:
        try:
            return self._vertices[vid]
        except KeyError:
            raise GraphError(f"no vertex {vid}") from None

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[VertexId]:
        return iter(self._vertices.keys())

    def vertices_of_type(self, vtype: str) -> list[VertexId]:
        return [v.vid for v in self._vertices.values() if v.vtype == vtype]

    def out_edges(
        self, vid: VertexId, label: Optional[str] = None
    ) -> list[tuple[str, VertexId, dict[str, Any]]]:
        """(label, dst, props) triples out of ``vid``; all labels if None."""
        adj = self._out.get(vid)
        if adj is None:
            raise GraphError(f"no vertex {vid}")
        if label is not None:
            return [(label, dst, props) for dst, props in adj.get(label, [])]
        out = []
        for lbl, targets in adj.items():
            out.extend((lbl, dst, props) for dst, props in targets)
        return out

    def out_degree(self, vid: VertexId, label: Optional[str] = None) -> int:
        adj = self._out.get(vid)
        if adj is None:
            raise GraphError(f"no vertex {vid}")
        if label is not None:
            return len(adj.get(label, []))
        return sum(len(t) for t in adj.values())

    def edge_labels(self) -> set[str]:
        labels: set[str] = set()
        for adj in self._out.values():
            labels.update(adj.keys())
        return labels

    def in_degrees(self) -> dict[VertexId, int]:
        """In-degree of every vertex (one full pass; used by stats)."""
        degrees: dict[VertexId, int] = defaultdict(int)
        for adj in self._out.values():
            for targets in adj.values():
                for dst, _ in targets:
                    degrees[dst] += 1
        return dict(degrees)

    def type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for v in self._vertices.values():
            counts[v.vtype] += 1
        return dict(counts)


class GraphBuilder:
    """Incremental builder with id allocation and validation.

    Convenience for workload generators::

        b = GraphBuilder(schema=hpc_metadata_schema())
        u = b.vertex("User", name="sam")
        j = b.vertex("Job", jobid=17)
        b.edge(u, j, "run", ts=1000)
        graph = b.build()
    """

    def __init__(self, schema: Optional[Schema] = None, first_vid: int = 0):
        self._graph = PropertyGraph(schema)
        self._next_vid = first_vid

    def vertex(self, vtype: str, **props: Any) -> VertexId:
        vid = self._next_vid
        self._next_vid += 1
        self._graph.add_vertex(vid, vtype, props)
        return vid

    def edge(self, src: VertexId, dst: VertexId, label: str, **props: Any) -> None:
        self._graph.add_edge(src, dst, label, props)

    def edges(self, pairs: Iterable[tuple[VertexId, VertexId]], label: str) -> None:
        for src, dst in pairs:
            self._graph.add_edge(src, dst, label)

    def build(self) -> PropertyGraph:
        graph = self._graph
        self._graph = PropertyGraph(graph.schema)  # builder can be reused
        return graph
