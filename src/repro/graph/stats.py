"""Graph statistics: degree distributions, power-law fits, imbalance —
plus the per-server summary statistics the cost-based planner consumes.

The paper motivates asynchrony with the small-world / power-law structure of
HPC metadata graphs; these helpers quantify that structure for generated
workloads (and back the Table II report).

The second half of the module (``PropertySketch`` / ``LabelStats`` /
``GraphSummary``) is the planner's substrate: cheap, mergeable summaries a
server can compute over its own partition — vertex-type histograms, per-label
edge counts with source/destination type breakdowns, and bounded
property-value sketches — from which :mod:`repro.lang.optimizer` estimates
per-step selectivities and cardinalities. Everything is deterministic per
(graph, vertex order): building the same summary twice yields byte-identical
``to_json()`` payloads.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

import numpy as np

from repro.graph.builder import PropertyGraph
from repro.lang.filters import FilterOp, FilterSet, PropertyFilter


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    count: int
    mean: float
    maximum: int
    p50: float
    p99: float
    gini: float
    powerlaw_alpha: float

    def as_dict(self) -> dict[str, float]:
        return dict(self.__dict__)


def fit_powerlaw_alpha(degrees: np.ndarray, dmin: int = 1) -> float:
    """MLE exponent for a discrete power law ``p(d) ~ d^-alpha``.

    Uses the continuous approximation (Clauset et al. 2009, eq. 3.1 with the
    -1/2 discreteness correction). Degrees below ``dmin`` are excluded.
    Returns NaN when fewer than 2 samples qualify.
    """
    tail = degrees[degrees >= dmin]
    if tail.size < 2:
        return float("nan")
    shifted = tail / (dmin - 0.5)
    return 1.0 + tail.size / float(np.sum(np.log(shifted)))


def gini(values: np.ndarray) -> float:
    """Gini coefficient of non-negative values (0 = balanced, →1 = skewed)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    total = sorted_vals.sum()
    if total <= 0:
        return 0.0
    n = sorted_vals.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * sorted_vals)) / (n * total) - (n + 1.0) / n)


def degree_stats(degrees: np.ndarray) -> DegreeStats:
    if degrees.size == 0:
        return DegreeStats(0, 0.0, 0, 0.0, 0.0, 0.0, float("nan"))
    return DegreeStats(
        count=int(degrees.size),
        mean=float(degrees.mean()),
        maximum=int(degrees.max()),
        p50=float(np.percentile(degrees, 50)),
        p99=float(np.percentile(degrees, 99)),
        gini=gini(degrees),
        powerlaw_alpha=fit_powerlaw_alpha(degrees),
    )


def out_degree_stats(graph: PropertyGraph) -> DegreeStats:
    degrees = np.array([graph.out_degree(v) for v in graph.vertex_ids()], dtype=np.int64)
    return degree_stats(degrees)


def in_degree_stats(graph: PropertyGraph) -> DegreeStats:
    in_deg = graph.in_degrees()
    degrees = np.array(
        [in_deg.get(v, 0) for v in graph.vertex_ids()], dtype=np.int64
    )
    return degree_stats(degrees)


def degree_histogram(graph: PropertyGraph) -> Counter:
    """out-degree -> vertex count."""
    hist: Counter = Counter()
    for vid in graph.vertex_ids():
        hist[graph.out_degree(vid)] += 1
    return hist


def imbalance_factor(loads: np.ndarray) -> float:
    """max/mean load ratio — 1.0 is perfectly balanced.

    Used to characterize partition skew (the straggler driver).
    """
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def entropy_bits(values: np.ndarray) -> float:
    """Shannon entropy of a load distribution, in bits."""
    total = values.sum()
    if total <= 0:
        return 0.0
    p = values[values > 0] / total
    return float(-np.sum(p * np.log2(p)))


def small_world_summary(graph: PropertyGraph) -> dict[str, float]:
    """A compact structural fingerprint used by workload tests."""
    out = out_degree_stats(graph)
    inn = in_degree_stats(graph)
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "out_alpha": out.powerlaw_alpha,
        "in_alpha": inn.powerlaw_alpha,
        "out_gini": out.gini,
        "in_gini": inn.gini,
        "max_out_degree": out.maximum,
        "max_in_degree": inn.maximum,
        "mean_out_degree": out.mean,
    }


def effective_diameter_sample(
    graph: PropertyGraph, rng: np.random.Generator, samples: int = 8
) -> float:
    """Approximate 90th-percentile BFS eccentricity from sampled sources.

    Treats edges as undirected is *not* done — we follow out-edges only,
    matching what a traversal can reach. Unreachable vertices are ignored.
    """
    vids = list(graph.vertex_ids())
    if not vids:
        return 0.0
    dists: list[int] = []
    for _ in range(min(samples, len(vids))):
        src = vids[int(rng.integers(len(vids)))]
        seen = {src: 0}
        frontier = [src]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for v in frontier:
                for _, dst, _ in graph.out_edges(v):
                    if dst not in seen:
                        seen[dst] = depth
                        nxt.append(dst)
            frontier = nxt
        dists.extend(seen.values())
    if not dists:
        return 0.0
    return float(np.percentile(np.array(dists), 90))


# -- planner statistics (property sketches, label stats, graph summary) --------

#: distinct values a sketch tracks exactly before lumping the tail into
#: ``other`` — large enough to hold every categorical property of the Darshan
#: workload exactly, small enough to stay cheap on high-cardinality keys.
SKETCH_TRACK_CAP = 64


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class PropertySketch:
    """A bounded summary of one property's value distribution.

    ``population`` is the number of entities in scope (vertices of the type,
    or edges of the label) — *not* the number carrying the key — so
    ``count / population`` directly estimates match probability, and a
    missing key (which never matches a filter) costs selectivity naturally.
    Up to :data:`SKETCH_TRACK_CAP` distinct values are counted exactly;
    the tail is lumped into ``other`` with a distinct-count estimate.
    Every estimator is total: empty sketches return 0.0, never a
    ``ZeroDivisionError``.
    """

    population: int = 0
    present: int = 0
    counts: dict[Any, int] = field(default_factory=dict)
    other: int = 0
    other_distinct: int = 0
    numeric_count: int = 0
    numeric_min: Optional[float] = None
    numeric_max: Optional[float] = None

    @classmethod
    def from_counter(cls, counter: Counter, population: int) -> "PropertySketch":
        sketch = cls(population=population, present=sum(counter.values()))
        numeric = [v for v in counter if _is_numeric(v)]
        if numeric:
            sketch.numeric_count = sum(counter[v] for v in numeric)
            sketch.numeric_min = float(min(numeric))
            sketch.numeric_max = float(max(numeric))
        ranked = sorted(counter.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        sketch.counts = dict(ranked[:SKETCH_TRACK_CAP])
        tail = ranked[SKETCH_TRACK_CAP:]
        sketch.other = sum(c for _, c in tail)
        sketch.other_distinct = len(tail)
        return sketch

    def merge(self, other: "PropertySketch") -> "PropertySketch":
        counter: Counter = Counter(self.counts)
        counter.update(other.counts)
        merged = PropertySketch.from_counter(
            counter, self.population + other.population
        )
        # carry through the already-lumped tails (their identities are gone)
        merged.present += self.other + other.other
        merged.other += self.other + other.other
        merged.other_distinct += self.other_distinct + other.other_distinct
        for src in (self, other):
            if src.numeric_min is None:
                continue
            merged.numeric_min = (
                src.numeric_min
                if merged.numeric_min is None
                else min(merged.numeric_min, src.numeric_min)
            )
            merged.numeric_max = (
                src.numeric_max
                if merged.numeric_max is None
                else max(merged.numeric_max, src.numeric_max)
            )
        return merged

    # -- selectivity estimators (all zero-division safe) -------------------

    def eq_selectivity(self, value: Any) -> float:
        if self.population <= 0:
            return 0.0
        try:
            hit = self.counts.get(value)
        except TypeError:  # unhashable probe value
            hit = None
        if hit is not None:
            return hit / self.population
        if self.other > 0:
            # an untracked value: assume it is one of the lumped tail values
            return self.other / (self.population * max(self.other_distinct, 1))
        return 0.0

    def in_selectivity(self, values: Iterable[Any]) -> float:
        return min(1.0, sum(self.eq_selectivity(v) for v in set(values)))

    def range_selectivity(self, lo: Any, hi: Any) -> float:
        if self.population <= 0:
            return 0.0
        exact = 0
        for value, count in self.counts.items():
            try:
                if lo <= value <= hi:
                    exact += count
            except TypeError:
                continue
        sel = exact / self.population
        if self.other > 0 and self.numeric_count > 0:
            # spread the lumped tail uniformly over the observed numeric span
            sel += (self.other / self.population) * self._span_overlap(lo, hi)
        return min(1.0, sel)

    def _span_overlap(self, lo: Any, hi: Any) -> float:
        if self.numeric_min is None or self.numeric_max is None:
            return 0.0
        try:
            qlo, qhi = float(lo), float(hi)
        except (TypeError, ValueError):
            return 0.0
        span = self.numeric_max - self.numeric_min
        if span <= 0.0:
            return 1.0 if qlo <= self.numeric_min <= qhi else 0.0
        overlap = min(qhi, self.numeric_max) - max(qlo, self.numeric_min)
        return max(0.0, min(1.0, overlap / span))

    def selectivity(self, flt: PropertyFilter) -> float:
        if flt.op is FilterOp.EQ:
            return self.eq_selectivity(flt.value)
        if flt.op is FilterOp.IN:
            return self.in_selectivity(flt.value)
        lo, hi = flt.value
        return self.range_selectivity(lo, hi)

    def payload(self) -> dict[str, Any]:
        return {
            "population": self.population,
            "present": self.present,
            "counts": sorted(
                ([repr(v), c] for v, c in self.counts.items()),
                key=lambda vc: (-vc[1], vc[0]),
            ),
            "other": self.other,
            "other_distinct": self.other_distinct,
            "numeric_count": self.numeric_count,
            "numeric_min": self.numeric_min,
            "numeric_max": self.numeric_max,
        }


@dataclass
class LabelStats:
    """Per-edge-label statistics: counts, endpoint type histograms, and
    edge-property sketches. ``reversed_view()`` transposes endpoints so the
    planner can cost a ``~label`` (reverse-edge) traversal from the same
    numbers."""

    label: str
    count: int = 0
    src_type_counts: dict[str, int] = field(default_factory=dict)
    dst_type_counts: dict[str, int] = field(default_factory=dict)
    src_distinct_by_type: dict[str, int] = field(default_factory=dict)
    dst_distinct_by_type: dict[str, int] = field(default_factory=dict)
    sketches: dict[str, PropertySketch] = field(default_factory=dict)

    def reversed_view(self) -> "LabelStats":
        return LabelStats(
            label="~" + self.label,
            count=self.count,
            src_type_counts=self.dst_type_counts,
            dst_type_counts=self.src_type_counts,
            src_distinct_by_type=self.dst_distinct_by_type,
            dst_distinct_by_type=self.src_distinct_by_type,
            sketches=self.sketches,
        )

    def edge_selectivity(self, filters: FilterSet) -> float:
        sel = 1.0
        for flt in filters.filters:
            sketch = self.sketches.get(flt.key)
            sel *= sketch.selectivity(flt) if sketch is not None else 0.0
        return sel

    def merge(self, other: "LabelStats") -> "LabelStats":
        def _sum(a: dict[str, int], b: dict[str, int]) -> dict[str, int]:
            out = dict(a)
            for k, v in b.items():
                out[k] = out.get(k, 0) + v
            return out

        sketches = dict(self.sketches)
        for key, sk in other.sketches.items():
            mine = sketches.get(key)
            if mine is None:
                # pad population so count/population stays an edge fraction
                mine = PropertySketch(population=self.count)
            sketches[key] = mine.merge(sk)
        for key, sk in self.sketches.items():
            if key not in other.sketches:
                sketches[key] = sk.merge(PropertySketch(population=other.count))
        return LabelStats(
            label=self.label,
            count=self.count + other.count,
            src_type_counts=_sum(self.src_type_counts, other.src_type_counts),
            dst_type_counts=_sum(self.dst_type_counts, other.dst_type_counts),
            # sources are partition-local, so summing is exact; destinations
            # may repeat across partitions, so the sum over-estimates —
            # acceptable for costing (documented in DESIGN.md §10)
            src_distinct_by_type=_sum(
                self.src_distinct_by_type, other.src_distinct_by_type
            ),
            dst_distinct_by_type=_sum(
                self.dst_distinct_by_type, other.dst_distinct_by_type
            ),
            sketches=sketches,
        )

    def payload(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "count": self.count,
            "src_type_counts": dict(sorted(self.src_type_counts.items())),
            "dst_type_counts": dict(sorted(self.dst_type_counts.items())),
            "src_distinct_by_type": dict(sorted(self.src_distinct_by_type.items())),
            "dst_distinct_by_type": dict(sorted(self.dst_distinct_by_type.items())),
            "sketches": {
                k: self.sketches[k].payload() for k in sorted(self.sketches)
            },
        }


@dataclass
class GraphSummary:
    """The planner's view of one partition (or, merged, the whole graph)."""

    total_vertices: int = 0
    type_counts: dict[str, int] = field(default_factory=dict)
    #: vertex type -> property key -> sketch (population = vertices of type)
    vertex_sketches: dict[str, dict[str, PropertySketch]] = field(default_factory=dict)
    labels: dict[str, LabelStats] = field(default_factory=dict)

    @classmethod
    def from_graph(
        cls, graph: PropertyGraph, vids: Optional[Iterable[int]] = None
    ) -> "GraphSummary":
        """Deterministically summarize ``vids`` (default: every vertex).

        Destination types come from the global graph, matching what a server
        learns from dispatch traffic; everything else is partition-local.
        """
        scope = sorted(vids) if vids is not None else sorted(graph.vertex_ids())
        type_counts: dict[str, int] = {}
        prop_counters: dict[str, dict[str, Counter]] = {}
        label_counts: dict[str, int] = {}
        src_types: dict[str, Counter] = {}
        dst_types: dict[str, Counter] = {}
        src_seen: dict[str, dict[str, set]] = {}
        dst_seen: dict[str, dict[str, set]] = {}
        edge_counters: dict[str, dict[str, Counter]] = {}
        for vid in scope:
            vertex = graph.vertex(vid)
            vtype = vertex.vtype
            type_counts[vtype] = type_counts.get(vtype, 0) + 1
            counters = prop_counters.setdefault(vtype, {})
            for key, value in vertex.props.items():
                counters.setdefault(key, Counter())[value] += 1
            for label, dst, eprops in graph.out_edges(vid):
                label_counts[label] = label_counts.get(label, 0) + 1
                src_types.setdefault(label, Counter())[vtype] += 1
                dtype = graph.vertex(dst).vtype
                dst_types.setdefault(label, Counter())[dtype] += 1
                src_seen.setdefault(label, {}).setdefault(vtype, set()).add(vid)
                dst_seen.setdefault(label, {}).setdefault(dtype, set()).add(dst)
                ecounters = edge_counters.setdefault(label, {})
                for key, value in eprops.items():
                    ecounters.setdefault(key, Counter())[value] += 1
        vertex_sketches = {
            vtype: {
                key: PropertySketch.from_counter(counter, type_counts[vtype])
                for key, counter in sorted(prop_counters.get(vtype, {}).items())
            }
            for vtype in sorted(type_counts)
        }
        labels = {}
        for label in sorted(label_counts):
            labels[label] = LabelStats(
                label=label,
                count=label_counts[label],
                src_type_counts=dict(sorted(src_types[label].items())),
                dst_type_counts=dict(sorted(dst_types[label].items())),
                src_distinct_by_type={
                    t: len(s) for t, s in sorted(src_seen[label].items())
                },
                dst_distinct_by_type={
                    t: len(s) for t, s in sorted(dst_seen[label].items())
                },
                sketches={
                    key: PropertySketch.from_counter(counter, label_counts[label])
                    for key, counter in sorted(edge_counters[label].items())
                },
            )
        return cls(
            total_vertices=len(scope),
            type_counts=dict(sorted(type_counts.items())),
            vertex_sketches=vertex_sketches,
            labels=labels,
        )

    @classmethod
    def merged(cls, summaries: Iterable["GraphSummary"]) -> "GraphSummary":
        """Combine per-server summaries into a cluster-wide one (the
        coordinator's planning input)."""
        out = cls()
        for summary in summaries:
            out = out._merge_one(summary)
        return out

    def _merge_one(self, other: "GraphSummary") -> "GraphSummary":
        type_counts = dict(self.type_counts)
        for t, c in other.type_counts.items():
            type_counts[t] = type_counts.get(t, 0) + c
        sketches: dict[str, dict[str, PropertySketch]] = {}
        for vtype in sorted(type_counts):
            mine = self.vertex_sketches.get(vtype, {})
            theirs = other.vertex_sketches.get(vtype, {})
            merged: dict[str, PropertySketch] = {}
            for key in sorted(set(mine) | set(theirs)):
                a = mine.get(
                    key, PropertySketch(population=self.type_counts.get(vtype, 0))
                )
                b = theirs.get(
                    key, PropertySketch(population=other.type_counts.get(vtype, 0))
                )
                merged[key] = a.merge(b)
            sketches[vtype] = merged
        labels: dict[str, LabelStats] = {}
        for label in sorted(set(self.labels) | set(other.labels)):
            a = self.labels.get(label, LabelStats(label=label))
            b = other.labels.get(label, LabelStats(label=label))
            labels[label] = a.merge(b)
        return GraphSummary(
            total_vertices=self.total_vertices + other.total_vertices,
            type_counts=dict(sorted(type_counts.items())),
            vertex_sketches=sketches,
            labels=labels,
        )

    # -- planner-facing estimators ----------------------------------------

    def label_stats(self, label: str) -> LabelStats:
        """Stats for ``label``; a ``~``-prefixed label yields the transposed
        view of its base label (reverse edges share the base statistics)."""
        if label.startswith("~"):
            base = self.labels.get(label[1:])
            return base.reversed_view() if base is not None else LabelStats(label)
        return self.labels.get(label, LabelStats(label))

    def vertex_selectivity(self, vtype: str, filters: FilterSet) -> float:
        """Estimated fraction of type-``vtype`` vertices matching ``filters``."""
        sel = 1.0
        sketches = self.vertex_sketches.get(vtype, {})
        for flt in filters.filters:
            if flt.key == "type":
                sel *= 1.0 if flt.matches({"type": vtype}) else 0.0
                continue
            sketch = sketches.get(flt.key)
            sel *= sketch.selectivity(flt) if sketch is not None else 0.0
        return sel

    def payload(self) -> dict[str, Any]:
        return {
            "total_vertices": self.total_vertices,
            "type_counts": dict(sorted(self.type_counts.items())),
            "vertex_sketches": {
                vtype: {k: sk.payload() for k, sk in sorted(sketches.items())}
                for vtype, sketches in sorted(self.vertex_sketches.items())
            },
            "labels": {
                label: stats.payload() for label, stats in sorted(self.labels.items())
            },
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical summaries."""
        return json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
