"""Graph statistics: degree distributions, power-law fits, imbalance.

The paper motivates asynchrony with the small-world / power-law structure of
HPC metadata graphs; these helpers quantify that structure for generated
workloads (and back the Table II report).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.graph.builder import PropertyGraph


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution."""

    count: int
    mean: float
    maximum: int
    p50: float
    p99: float
    gini: float
    powerlaw_alpha: float

    def as_dict(self) -> dict[str, float]:
        return dict(self.__dict__)


def fit_powerlaw_alpha(degrees: np.ndarray, dmin: int = 1) -> float:
    """MLE exponent for a discrete power law ``p(d) ~ d^-alpha``.

    Uses the continuous approximation (Clauset et al. 2009, eq. 3.1 with the
    -1/2 discreteness correction). Degrees below ``dmin`` are excluded.
    Returns NaN when fewer than 2 samples qualify.
    """
    tail = degrees[degrees >= dmin]
    if tail.size < 2:
        return float("nan")
    shifted = tail / (dmin - 0.5)
    return 1.0 + tail.size / float(np.sum(np.log(shifted)))


def gini(values: np.ndarray) -> float:
    """Gini coefficient of non-negative values (0 = balanced, →1 = skewed)."""
    if values.size == 0:
        return 0.0
    sorted_vals = np.sort(values.astype(np.float64))
    total = sorted_vals.sum()
    if total <= 0:
        return 0.0
    n = sorted_vals.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.sum(ranks * sorted_vals)) / (n * total) - (n + 1.0) / n)


def degree_stats(degrees: np.ndarray) -> DegreeStats:
    if degrees.size == 0:
        return DegreeStats(0, 0.0, 0, 0.0, 0.0, 0.0, float("nan"))
    return DegreeStats(
        count=int(degrees.size),
        mean=float(degrees.mean()),
        maximum=int(degrees.max()),
        p50=float(np.percentile(degrees, 50)),
        p99=float(np.percentile(degrees, 99)),
        gini=gini(degrees),
        powerlaw_alpha=fit_powerlaw_alpha(degrees),
    )


def out_degree_stats(graph: PropertyGraph) -> DegreeStats:
    degrees = np.array([graph.out_degree(v) for v in graph.vertex_ids()], dtype=np.int64)
    return degree_stats(degrees)


def in_degree_stats(graph: PropertyGraph) -> DegreeStats:
    in_deg = graph.in_degrees()
    degrees = np.array(
        [in_deg.get(v, 0) for v in graph.vertex_ids()], dtype=np.int64
    )
    return degree_stats(degrees)


def degree_histogram(graph: PropertyGraph) -> Counter:
    """out-degree -> vertex count."""
    hist: Counter = Counter()
    for vid in graph.vertex_ids():
        hist[graph.out_degree(vid)] += 1
    return hist


def imbalance_factor(loads: np.ndarray) -> float:
    """max/mean load ratio — 1.0 is perfectly balanced.

    Used to characterize partition skew (the straggler driver).
    """
    if loads.size == 0:
        return 1.0
    mean = loads.mean()
    if mean == 0:
        return 1.0
    return float(loads.max() / mean)


def entropy_bits(values: np.ndarray) -> float:
    """Shannon entropy of a load distribution, in bits."""
    total = values.sum()
    if total <= 0:
        return 0.0
    p = values[values > 0] / total
    return float(-np.sum(p * np.log2(p)))


def small_world_summary(graph: PropertyGraph) -> dict[str, float]:
    """A compact structural fingerprint used by workload tests."""
    out = out_degree_stats(graph)
    inn = in_degree_stats(graph)
    return {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "out_alpha": out.powerlaw_alpha,
        "in_alpha": inn.powerlaw_alpha,
        "out_gini": out.gini,
        "in_gini": inn.gini,
        "max_out_degree": out.maximum,
        "max_in_degree": inn.maximum,
        "mean_out_degree": out.mean,
    }


def effective_diameter_sample(
    graph: PropertyGraph, rng: np.random.Generator, samples: int = 8
) -> float:
    """Approximate 90th-percentile BFS eccentricity from sampled sources.

    Treats edges as undirected is *not* done — we follow out-edges only,
    matching what a traversal can reach. Unreachable vertices are ignored.
    """
    vids = list(graph.vertex_ids())
    if not vids:
        return 0.0
    dists: list[int] = []
    for _ in range(min(samples, len(vids))):
        src = vids[int(rng.integers(len(vids)))]
        seen = {src: 0}
        frontier = [src]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for v in frontier:
                for _, dst, _ in graph.out_edges(v):
                    if dst not in seen:
                        seen[dst] = depth
                        nxt.append(dst)
            frontier = nxt
        dists.extend(seen.values())
    if not dists:
        return 0.0
    return float(np.percentile(np.array(dists), 90))
