"""Optional schema declarations for heterogeneous metadata graphs.

A :class:`Schema` names the vertex types and constrains each edge label to a
(source type, destination type) pair, mirroring the paper's Fig. 1 model
(User --run--> Execution --read/write--> File, ...). Schemas are advisory:
graphs may be built without one, but when present the builder enforces it,
which catches generator bugs early.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GraphError


@dataclass(frozen=True)
class EdgeRule:
    """One allowed edge shape: label connecting src_type -> dst_type."""

    label: str
    src_type: str
    dst_type: str


@dataclass
class Schema:
    """A set of vertex types and edge rules."""

    vertex_types: set[str] = field(default_factory=set)
    edge_rules: dict[str, list[EdgeRule]] = field(default_factory=dict)

    def add_vertex_type(self, vtype: str) -> "Schema":
        self.vertex_types.add(vtype)
        return self

    def add_edge_rule(self, label: str, src_type: str, dst_type: str) -> "Schema":
        for vtype in (src_type, dst_type):
            if vtype not in self.vertex_types:
                raise GraphError(f"edge rule references unknown vertex type {vtype!r}")
        self.edge_rules.setdefault(label, []).append(EdgeRule(label, src_type, dst_type))
        return self

    def check_vertex(self, vtype: str) -> None:
        if vtype not in self.vertex_types:
            raise GraphError(f"vertex type {vtype!r} not in schema")

    def check_edge(self, label: str, src_type: str, dst_type: str) -> None:
        rules = self.edge_rules.get(label)
        if rules is None:
            raise GraphError(f"edge label {label!r} not in schema")
        for rule in rules:
            if rule.src_type == src_type and rule.dst_type == dst_type:
                return
        raise GraphError(
            f"edge {label!r} from {src_type!r} to {dst_type!r} violates schema"
        )


def hpc_metadata_schema() -> Schema:
    """The paper's rich-metadata schema (Fig. 1 plus the Table III labels)."""
    schema = Schema()
    for vtype in ("User", "Job", "Execution", "File"):
        schema.add_vertex_type(vtype)
    schema.add_edge_rule("run", "User", "Job")
    schema.add_edge_rule("run", "User", "Execution")
    schema.add_edge_rule("hasExecutions", "Job", "Execution")
    schema.add_edge_rule("exe", "Execution", "File")
    schema.add_edge_rule("read", "Execution", "File")
    schema.add_edge_rule("write", "Execution", "File")
    schema.add_edge_rule("readBy", "File", "Execution")
    schema.add_edge_rule("writtenBy", "File", "Execution")
    return schema
