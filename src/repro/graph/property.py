"""Property values and property maps.

Properties are flat ``str -> scalar`` maps on vertices and edges. Scalars
are the types the value codec supports (int, float, str, bytes, bool, None).
:func:`validate_props` rejects anything else early, so storage errors cannot
surface deep inside a traversal.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import GraphError

SCALAR_TYPES = (int, float, str, bytes, bool, type(None))


def validate_props(props: Mapping[str, Any], where: str = "entity") -> dict[str, Any]:
    """Validate and shallow-copy a property map."""
    out: dict[str, Any] = {}
    for key, value in props.items():
        if not isinstance(key, str) or not key:
            raise GraphError(f"{where}: property keys must be non-empty str, got {key!r}")
        if not isinstance(value, SCALAR_TYPES):
            raise GraphError(
                f"{where}: property {key!r} has unsupported type "
                f"{type(value).__name__}"
            )
        out[key] = value
    return out


def props_size_bytes(props: Mapping[str, Any]) -> int:
    """Approximate serialized size; used by workload generators to hit the
    paper's 128-byte attribute payloads."""
    total = 8
    for key, value in props.items():
        total += 8 + len(key.encode("utf-8")) + 1
        if isinstance(value, bool) or value is None:
            total += 1
        elif isinstance(value, (int, float)):
            total += 8
        elif isinstance(value, str):
            total += 8 + len(value.encode("utf-8"))
        elif isinstance(value, bytes):
            total += 8 + len(value)
    return total
