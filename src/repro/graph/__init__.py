"""Property-graph data model: vertices, edges, schemas, builders, stats."""

from repro.graph.builder import GraphBuilder, PropertyGraph
from repro.graph.edge import Edge
from repro.graph.property import props_size_bytes, validate_props
from repro.graph.schema import EdgeRule, Schema, hpc_metadata_schema
from repro.graph.stats import (
    DegreeStats,
    GraphSummary,
    LabelStats,
    PropertySketch,
    degree_histogram,
    degree_stats,
    effective_diameter_sample,
    fit_powerlaw_alpha,
    gini,
    imbalance_factor,
    in_degree_stats,
    out_degree_stats,
    small_world_summary,
)
from repro.graph.vertex import Vertex

__all__ = [
    "GraphBuilder",
    "PropertyGraph",
    "Edge",
    "Vertex",
    "EdgeRule",
    "Schema",
    "hpc_metadata_schema",
    "props_size_bytes",
    "validate_props",
    "DegreeStats",
    "GraphSummary",
    "LabelStats",
    "PropertySketch",
    "degree_histogram",
    "degree_stats",
    "effective_diameter_sample",
    "fit_powerlaw_alpha",
    "gini",
    "imbalance_factor",
    "in_degree_stats",
    "out_degree_stats",
    "small_world_summary",
]
