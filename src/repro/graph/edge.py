"""Edge records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.graph.property import validate_props
from repro.ids import VertexId


@dataclass
class Edge:
    """A directed, labelled edge with scalar properties.

    Edges are stored on (and owned by) their *source* vertex's server under
    the edge-cut partitioning the paper uses, grouped by ``label`` for
    sequential iteration.
    """

    src: VertexId
    dst: VertexId
    label: str
    props: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("edge label must be non-empty")
        self.props = validate_props(self.props, f"edge {self.src}->{self.dst}")
