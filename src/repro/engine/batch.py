"""Batch-vectorized frontier expansion (DESIGN.md §16).

The per-vertex hot path calls :func:`~repro.engine.visit.expand_vertex` once
per frontier entry: every vertex re-reads the step descriptor, re-checks the
short-circuit flag, and merges its destinations one ``merge_entry`` call at a
time. GRAPHITE's block-at-a-time traversal operator shows the win of moving
whole frontiers instead: decode adjacency once, then filter and dedup with
set operations.

:class:`BatchFrontier` is that operator, shared by the async, sync, and
reference engines. The engine keeps its per-vertex I/O loop — disk costs,
cache lookups, and visit accounting are per-vertex facts — and feeds each
surviving vertex's :class:`~repro.engine.visit.VisitData` into the batch,
which expands the whole unit in one pass at the end.

Eligibility (:func:`batch_eligible`): the ``batch_frontier`` engine option
must be on and the plan must have no intermediate ``rtn()`` marks. Without
intermediate returns every entry's anchor tuple is ``EMPTY_ANCHORS``, so
per-destination anchor merging degenerates to set union — exactly the
degenerate case :mod:`repro.engine.frontier` documents as "the common fast
path", and what lets a level's destinations move as one
``dict.fromkeys`` bulk insert per owner. Plans with intermediate returns
keep the per-vertex path, whose anchor algebra is the semantics.

Equivalence with the per-vertex path is enforced by
``tests/test_batch_frontier_equivalence.py``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.engine.frontier import EMPTY_ANCHORS, intermediate_rtn_levels
from repro.engine.options import EngineOptions
from repro.engine.visit import ExpandSinks, VisitData, filters_at
from repro.ids import ServerId, VertexId
from repro.lang.filters import FilterSet
from repro.lang.plan import TraversalPlan


def batch_eligible(opts: EngineOptions, plan: TraversalPlan) -> bool:
    """True when this plan's units may use the batch expansion path."""
    return opts.batch_frontier and not intermediate_rtn_levels(plan)


class BatchFrontier:
    """One work unit's surviving vertices, expanded in a single pass.

    Usage: construct per (plan, level) unit, :meth:`add` every vertex whose
    disk data is in hand (the method applies the level's vertex filters and
    reports whether the vertex survived), then :meth:`expand` once to
    produce next-level entries / final results into an
    :class:`~repro.engine.visit.ExpandSinks`.
    """

    def __init__(
        self,
        plan: TraversalPlan,
        level: int,
        level0_override: Optional[FilterSet] = None,
    ):
        self.plan = plan
        self.level = level
        # hoisted once per unit instead of once per vertex
        self.vfilters = filters_at(plan, level, level0_override)
        #: vertices that passed the level's vertex filters
        self.width = 0
        self._survivors: list[tuple[VertexId, VisitData, Optional[str]]] = []

    def add(self, vid: VertexId, data: VisitData, vertex_type: Optional[str]) -> bool:
        """Admit one visited vertex; False when the vertex filter rejects it."""
        if self.vfilters:
            props = dict(data.props) if data.props is not None else {}
            if vertex_type is not None:
                props.setdefault("type", vertex_type)
            if not self.vfilters.matches(props):
                return False
        self._survivors.append((vid, data, vertex_type))
        self.width += 1
        return True

    def expand(
        self, owner_fn: Callable[[VertexId], ServerId], sinks: ExpandSinks
    ) -> None:
        """Expand every admitted vertex into ``sinks`` in one batch pass.

        Element-identical to calling ``expand_vertex`` per survivor under
        the eligibility precondition (no intermediate rtn levels): all
        anchors are ``EMPTY_ANCHORS``, so destination dedup is plain set
        union and owner buckets fill with one bulk insert each.
        """
        plan, level = self.plan, self.level
        if level == plan.final_level:
            self._expand_final(sinks)
            return
        step = plan.steps[level]
        next_level = level + 1
        short_circuit = plan.short_circuit_final and next_level == plan.final_level
        efilters = step.edge_filters
        dsts: set[VertexId] = set()
        for label in step.labels:
            if efilters:
                dsts.update(
                    dst
                    for _, data, _ in self._survivors
                    for dst, eprops in data.edges.get(label, ())
                    if efilters.matches(eprops)
                )
            else:
                dsts.update(
                    dst
                    for _, data, _ in self._survivors
                    for dst, _ in data.edges.get(label, ())
                )
        if short_circuit:
            sinks.final_results.update(dsts)
            return
        by_owner: dict[ServerId, list[VertexId]] = {}
        for dst in dsts:
            by_owner.setdefault(owner_fn(dst), []).append(dst)
        for owner, group in by_owner.items():
            bucket = sinks.out.setdefault((next_level, owner), {})
            bucket.update(dict.fromkeys(group, EMPTY_ANCHORS))

    def _expand_final(self, sinks: ExpandSinks) -> None:
        plan = self.plan
        if plan.final_level not in plan.return_levels:
            return
        sinks.final_results.update(vid for vid, _, _ in self._survivors)
        agg = plan.aggregate
        if agg is not None and agg.needs_keys:
            if agg.needs_props:
                for vid, data, _ in self._survivors:
                    props: dict[str, Any] = (
                        dict(data.props) if data.props is not None else {}
                    )
                    sinks.final_groups[vid] = props.get(agg.by)
            else:
                for vid, _, vertex_type in self._survivors:
                    sinks.final_groups[vid] = vertex_type
