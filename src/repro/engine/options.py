"""Engine configuration: which optimizations are on, and CPU cost knobs.

The three paper engines are presets over one option set:

* ``sync_options()``       — level-synchronous baseline (Sync-GT);
* ``plain_async_options()``— asynchronous, no optimizations (Async-GT);
* ``graphtrek_options()``  — asynchronous + traversal-affiliate caching +
  execution scheduling & merging (GraphTrek).

Ablation benches flip individual flags (cache only, merge only, FIFO
scheduling) to attribute the win to its mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.base import EngineKind


@dataclass(frozen=True)
class EngineOptions:
    """Per-server engine behaviour and cost constants."""

    kind: EngineKind = EngineKind.GRAPHTREK
    #: traversal-affiliate caching: drop already-served (travel, step, vertex)
    #: requests before they reach the disk.
    cache_enabled: bool = True
    #: execution merging: serve queued same-vertex other-step requests with
    #: the disk access already being made.
    merge_enabled: bool = True
    #: execution scheduling: workers take the smallest step id first
    #: (FIFO when off).
    priority_schedule: bool = True
    #: preallocated traversal-affiliate cache capacity, in triples.
    cache_capacity: int = 1 << 20
    #: worker threads per server pulling from the local request queue.
    workers: int = 4
    #: fixed CPU time to unpack/handle one queued request (RPC + dispatch).
    cpu_per_request: float = 120e-6
    #: extra per-request CPU the asynchronous engines pay over the barrier
    #: engine: worker-pool handoff, execution-status composition, and
    #: traversal-affiliate cache maintenance. This is why short traversals
    #: favour Sync-GT (paper §VII-B: "the short traversal does not provide
    #: enough optimization opportunities for asynchronous executions").
    cpu_async_overhead: float = 100e-6
    #: incremental CPU time per vertex in a request.
    cpu_per_vertex: float = 4e-6
    #: seek discount for the 2nd..Nth vertex of one sorted batch: a worker
    #: serving a key-ordered batch approximates an elevator pass over the
    #: SSTables, so later seeks are cheaper. 1.0 disables the effect.
    batch_seek_factor: float = 0.45
    #: batch-vectorized frontier expansion (DESIGN.md §16): expand a work
    #: unit's surviving vertices in one set-operation pass instead of one
    #: ``expand_vertex`` call each. Per-vertex I/O accounting is unchanged;
    #: plans with intermediate ``rtn()`` marks keep the per-vertex path
    #: (see :func:`repro.engine.batch.batch_eligible`). Off by default.
    batch_frontier: bool = False
    #: when batching, coalesce this many per-vertex reads into one simulated
    #: disk access (the elevator pass over whole adjacency blocks). Small
    #: enough that virtual time keeps advancing mid-unit — later vertices
    #: can still merge same-vertex requests arriving while earlier chunks
    #: are on the disk; large chunks trade merge opportunities for fewer
    #: events. 1 restores one event per vertex.
    batch_io_chunk: int = 8
    #: plan-time optimizer mode: "off" executes chains as written (the
    #: paper's behaviour), "rules" applies statistics-free rewrites (filter
    #: fusion, predicate pushdown, final-step short-circuit), "cost" adds
    #: statistics-driven chain reversal with per-level cost estimates.
    planner: str = "off"
    #: multi-traversal launch policy of the admission scheduler: "fifo"
    #: (submission order — the legacy behaviour), "priority" (short
    #: traversals first), or "wfq" (weighted-fair queueing across tenants).
    #: Resource limits live in ``ClusterConfig.scheduler_config``.
    scheduler: str = "fifo"

    @property
    def is_async(self) -> bool:
        return self.kind is not EngineKind.SYNC


def graphtrek_options(**overrides) -> EngineOptions:
    """The full GraphTrek engine (paper §V)."""
    return replace(
        EngineOptions(
            kind=EngineKind.GRAPHTREK,
            cache_enabled=True,
            merge_enabled=True,
            priority_schedule=True,
        ),
        **overrides,
    )


def plain_async_options(**overrides) -> EngineOptions:
    """Async-GT: the unoptimized asynchronous engine (paper §VII-A)."""
    return replace(
        EngineOptions(
            kind=EngineKind.ASYNC,
            cache_enabled=False,
            merge_enabled=False,
            priority_schedule=False,
        ),
        **overrides,
    )


def sync_options(**overrides) -> EngineOptions:
    """Sync-GT: the level-synchronous baseline (paper §VI).

    The optimization flags are meaningless under barrier execution and are
    forced off.
    """
    return replace(
        EngineOptions(
            kind=EngineKind.SYNC,
            cache_enabled=False,
            merge_enabled=False,
            priority_schedule=False,
        ),
        **overrides,
    )


def options_for(kind: EngineKind, **overrides) -> EngineOptions:
    """Preset lookup by engine kind."""
    if kind is EngineKind.SYNC:
        return sync_options(**overrides)
    if kind is EngineKind.ASYNC:
        return plain_async_options(**overrides)
    if kind is EngineKind.GRAPHTREK:
        return graphtrek_options(**overrides)
    raise ValueError(f"no server engine for {kind}")
