"""Frontier entries and rtn-anchor bookkeeping.

A frontier entry is ``(vertex id, anchors)``. ``anchors`` is a tuple with one
vertex-id set per *intermediate* rtn level the traversal has passed so far:
``anchors[i]`` holds the rtn-level-``i`` vertices lying on some path that
reached this entry. Plans without intermediate ``rtn()`` carry empty tuples
throughout, which makes all the set algebra here degenerate to plain
(step, vertex) deduplication — the common fast path.
"""

from __future__ import annotations

from repro.ids import VertexId
from repro.lang.plan import TraversalPlan
from repro.net.message import Anchors, Entries

EMPTY_ANCHORS: Anchors = ()


def intermediate_rtn_levels(plan: TraversalPlan) -> tuple[int, ...]:
    """The rtn levels that need anchor tracking, ascending."""
    return tuple(sorted(l for l in plan.return_levels if l < plan.final_level))


def anchors_covered(candidate: Anchors, stored: Anchors) -> bool:
    """True if ``candidate`` adds nothing beyond ``stored``.

    Entries whose anchors are covered are redundant: every return they could
    produce has already been propagated.
    """
    if len(candidate) != len(stored):
        # Can only happen across different levels; treat as not covered.
        return False
    return all(c <= s for c, s in zip(candidate, stored))


def anchors_union(a: Anchors, b: Anchors) -> Anchors:
    """Element-wise union (same length required by construction)."""
    if not a:
        return b
    if not b:
        return a
    return tuple(x | y for x, y in zip(a, b))


def extend_anchors(anchors: Anchors, vid: VertexId) -> Anchors:
    """Append a new rtn level anchored at ``vid`` itself."""
    return anchors + (frozenset((vid,)),)


def merge_entry(entries: Entries, vid: VertexId, anchors: Anchors) -> None:
    """Insert/merge one entry into a batch (anchor union on collision)."""
    current = entries.get(vid)
    if current is None:
        entries[vid] = anchors
    else:
        entries[vid] = anchors_union(current, anchors)


def merge_entries(dst: Entries, src: Entries) -> None:
    """Union ``src`` into ``dst`` (coalescing two requests)."""
    for vid, anchors in src.items():
        merge_entry(dst, vid, anchors)
