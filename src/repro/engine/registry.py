"""Shared traversal registry.

Maps a travel id to its compiled plan, current restart attempt, and
precomputed source-selection info. The paper ships the GTravel instance
inside every dispatch message (and we charge wire bytes for it); carrying
the actual plan object through a shared registry is the in-process
equivalent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TraversalError
from repro.ids import TravelId
from repro.lang.filters import FilterOp, FilterSet
from repro.lang.plan import TraversalPlan


@dataclass
class SourceInfo:
    """How servers should enumerate level-0 candidates for an all-vertices
    ``v()``: optionally via the vertex-type index, with the type filters
    already satisfied stripped from the remaining filter set."""

    index_type: Optional[str]
    reduced_filters: FilterSet


def analyze_sources(plan: TraversalPlan) -> SourceInfo:
    """Use a ``type EQ X`` source filter as an index lookup when possible."""
    index_type: Optional[str] = None
    remaining = []
    for flt in plan.source_filters.filters:
        if index_type is None and flt.key == "type" and flt.op is FilterOp.EQ:
            index_type = flt.value
        else:
            remaining.append(flt)
    return SourceInfo(index_type=index_type, reduced_filters=FilterSet(tuple(remaining)))


@dataclass
class TravelEntry:
    plan: TraversalPlan
    attempt: int = 0
    #: coordinator epoch that dispatched the current attempt — servers stamp
    #: it on everything they send so a recovered coordinator (next epoch)
    #: can fence reports that belong to its dead predecessor
    epoch: int = 0
    source_info: SourceInfo = field(default_factory=lambda: SourceInfo(None, FilterSet()))


class TravelRegistry:
    """Cluster-shared registry of active traversals."""

    def __init__(self):
        self._entries: dict[TravelId, TravelEntry] = {}

    def register(self, travel_id: TravelId, plan: TraversalPlan) -> TravelEntry:
        if travel_id in self._entries:
            raise TraversalError(f"travel id {travel_id} already registered")
        entry = TravelEntry(plan=plan, source_info=analyze_sources(plan))
        self._entries[travel_id] = entry
        return entry

    def get(self, travel_id: TravelId) -> Optional[TravelEntry]:
        return self._entries.get(travel_id)

    def bump_attempt(self, travel_id: TravelId) -> int:
        entry = self._entries[travel_id]
        entry.attempt += 1
        return entry.attempt

    def unregister(self, travel_id: TravelId) -> None:
        self._entries.pop(travel_id, None)
