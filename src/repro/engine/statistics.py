"""Cluster-wide statistics board.

Engines record visit outcomes and message counts here, keyed by travel id.
This is out-of-band instrumentation — the paper likewise "placed instruments
inside the GraphTrek engine to collect the statistics during the execution"
(§VII-A) — so recording costs no simulated time.

The board also carries the cluster's :class:`~repro.obs.Observability`
(metrics registry + span tracer), so every component that already holds the
board can record structured metrics without new constructor plumbing.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import EngineKind, TraversalStats
from repro.ids import ServerId, TravelId
from repro.obs import Observability


class StatsBoard:
    """Per-traversal :class:`TraversalStats`, shared by all servers."""

    def __init__(self, engine_kind: EngineKind, obs: Optional[Observability] = None):
        self.engine_kind = engine_kind
        self.obs = obs if obs is not None else Observability()
        self._stats: dict[TravelId, TraversalStats] = {}

    def stats(self, travel_id: TravelId) -> TraversalStats:
        st = self._stats.get(travel_id)
        if st is None:
            st = TraversalStats(engine=self.engine_kind)
            self._stats[travel_id] = st
        return st

    def visit(self, travel_id: TravelId, server: ServerId, kind: str, n: int = 1) -> None:
        if n:
            self.stats(travel_id).record_visit(server, kind, n)

    def message(self, travel_id: TravelId, nbytes: int) -> None:
        st = self.stats(travel_id)
        st.messages += 1
        st.bytes_sent += nbytes

    def execution(self, travel_id: TravelId, n: int = 1) -> None:
        self.stats(travel_id).executions += n

    def reset(self, travel_id: TravelId) -> None:
        """Clear counters on traversal restart (elapsed is coordinator-owned)."""
        st = self.stats(travel_id)
        restarts = st.restarts
        self._stats[travel_id] = TraversalStats(engine=self.engine_kind, restarts=restarts)

    def pop(self, travel_id: TravelId) -> TraversalStats:
        return self._stats.pop(travel_id, TraversalStats(engine=self.engine_kind))
