"""Engine-facing result and statistics types, shared by all engines.

Every engine — the single-node reference oracle, Sync-GT, Async-GT, and
GraphTrek — produces a :class:`TraversalResult` (which vertices came back,
per return level) plus a :class:`TraversalStats` (what it cost). Differential
tests compare the former across engines; benchmarks report the latter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ids import TravelId, VertexId
from repro.lang.plan import AggregateResult, TraversalPlan


class EngineKind(enum.Enum):
    """The three engines the paper evaluates (§VII), plus the oracle."""

    REFERENCE = "Reference"
    SYNC = "Sync-GT"
    ASYNC = "Async-GT"
    GRAPHTREK = "GraphTrek"


@dataclass(frozen=True)
class TraversalResult:
    """Vertices returned by one traversal, grouped by return level."""

    travel_id: TravelId
    returned: dict[int, frozenset[VertexId]]
    #: reduced value of the plan's ``count()``/``group_count()`` (when any)
    aggregate: Optional[AggregateResult] = None

    @property
    def vertices(self) -> frozenset[VertexId]:
        """Union of all returned levels."""
        out: set[VertexId] = set()
        for vids in self.returned.values():
            out.update(vids)
        return frozenset(out)

    def at_level(self, level: int) -> frozenset[VertexId]:
        return self.returned.get(level, frozenset())

    def same_vertices(self, other: "TraversalResult") -> bool:
        """Level-by-level equality of returned vertex sets."""
        levels = set(self.returned) | set(other.returned)
        return all(self.at_level(lv) == other.at_level(lv) for lv in levels)

    def same_result(self, other: "TraversalResult") -> bool:
        """Vertex-set equality plus aggregate equality (the differential
        contract for aggregate-bearing plans)."""
        return self.same_vertices(other) and self.aggregate == other.aggregate


@dataclass
class TraversalStats:
    """Cost counters for one traversal run.

    ``elapsed`` is virtual seconds on the simulated runtime (wall seconds on
    the threaded runtime). The three visit counters mirror the paper's Fig. 7
    instrumentation: every vertex request a server receives is exactly one of
    *real I/O*, *combined* (merged into another request's disk access), or
    *redundant* (dropped by the traversal-affiliate cache).
    """

    engine: EngineKind = EngineKind.REFERENCE
    elapsed: float = 0.0
    real_io_visits: int = 0
    combined_visits: int = 0
    redundant_visits: int = 0
    messages: int = 0
    bytes_sent: int = 0
    barrier_rounds: int = 0
    executions: int = 0
    restarts: int = 0
    replays: int = 0  # fine-grained recovery re-dispatches
    result_chunks: int = 0  # buffered result pipeline chunks streamed
    per_server: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def total_visits(self) -> int:
        """All vertex requests received = real + combined + redundant."""
        return self.real_io_visits + self.combined_visits + self.redundant_visits

    def server_counts(self, metric: str) -> dict[int, int]:
        """Per-server value of one visit metric (for Fig. 7 style plots)."""
        return {s: d.get(metric, 0) for s, d in self.per_server.items()}

    def record_visit(self, server: int, kind: str, n: int = 1) -> None:
        if kind == "real":
            self.real_io_visits += n
        elif kind == "combined":
            self.combined_visits += n
        elif kind == "redundant":
            self.redundant_visits += n
        else:  # pragma: no cover - guarded by callers
            raise ValueError(f"unknown visit kind {kind!r}")
        bucket = self.per_server.setdefault(server, {})
        bucket[kind] = bucket.get(kind, 0) + n


@dataclass(frozen=True)
class TraversalOutcome:
    """Result + stats, as returned by the cluster client."""

    result: TraversalResult
    stats: TraversalStats
    plan: Optional[TraversalPlan] = None
    #: the plan as rewritten by the planner, when it differs from ``plan``
    executed_plan: Optional[TraversalPlan] = None
