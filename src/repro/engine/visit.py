"""Shared per-vertex visit logic: disk-cost assembly and expansion semantics.

Both engines funnel every vertex visit through these helpers so that the
traversal *semantics* (filters, anchors, returns) are identical by
construction; only the coordination strategy differs between Sync-GT and the
asynchronous engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.engine.frontier import extend_anchors, merge_entry
from repro.ids import ServerId, VertexId
from repro.lang.filters import FilterSet
from repro.lang.plan import TraversalPlan
from repro.net.message import Anchors, Entries
from repro.storage.costmodel import IOCost
from repro.storage.layout import GraphStore

#: edges grouped by label: label -> [(dst, props), ...]
EdgesByLabel = dict[str, list[tuple[VertexId, dict[str, Any]]]]


@dataclass
class VisitData:
    """What one disk access to a vertex yielded."""

    props: Optional[dict[str, Any]]  # None when no filter needed attributes
    edges: EdgesByLabel
    cost: IOCost


@dataclass
class ExpandSinks:
    """Accumulators one request-processing pass writes into."""

    #: (next level, owner server) -> entries to dispatch
    out: dict[tuple[int, ServerId], Entries] = field(default_factory=dict)
    #: final-level vertices to return (when the final level is returned)
    final_results: set[VertexId] = field(default_factory=set)
    #: (rtn level, owner server) -> anchors that completed a path
    anchors_by_owner: dict[tuple[int, ServerId], set[VertexId]] = field(
        default_factory=dict
    )
    #: final-level vertex -> group key (only for ``group_count`` plans)
    final_groups: dict[VertexId, Any] = field(default_factory=dict)


def labels_needed(plan: TraversalPlan, levels: list[int]) -> set[str]:
    """Edge labels a combined visit at these levels must scan."""
    labels: set[str] = set()
    for lvl in levels:
        if lvl < plan.final_level:
            labels.update(plan.steps[lvl].labels)
    return labels


def filters_at(
    plan: TraversalPlan, level: int, level0_override: Optional[FilterSet]
) -> FilterSet:
    """Vertex filters applied to a vertex arriving at ``level``."""
    if level == 0:
        return level0_override if level0_override is not None else plan.source_filters
    return plan.steps[level - 1].vertex_filters


def fs_needs_props(fs: FilterSet) -> bool:
    """True if evaluating ``fs`` needs the attribute block: the vertex type
    is known from the location index, so a type-only filter set does not."""
    return any(f.key != "type" for f in fs.filters)


def needs_props(
    plan: TraversalPlan, levels: list[int], level0_override: Optional[FilterSet]
) -> bool:
    agg = plan.aggregate
    if agg is not None and agg.needs_props and plan.final_level in levels:
        # a property-keyed group_count reads the attribute block at the
        # final level to resolve each vertex's group key
        return True
    for lvl in levels:
        fs = filters_at(plan, lvl, level0_override)
        if not fs:
            continue
        if plan.pushdown and not fs_needs_props(fs):
            # planner annotation: elide the attribute scan when only the
            # key-encoded type is filtered (expand_vertex injects it)
            continue
        return True
    return False


def read_vertex(
    store: GraphStore,
    vid: VertexId,
    want_labels: set[str],
    want_props: bool,
    edge_preds: Optional[dict[str, FilterSet]] = None,
) -> VisitData:
    """Perform the (single) storage access for a visit.

    One label → one sequential edge scan; several labels → one scan over the
    vertex's whole edge block (the layout keeps all its edges adjacent), as
    execution merging requires. Attribute scan added only when filters need
    properties. ``edge_preds`` (label → edge FilterSet) pushes predicates
    into the storage scan — safe because :func:`expand_vertex` re-applies
    every edge filter to whatever surfaces.
    """
    cost = IOCost()
    props: Optional[dict[str, Any]] = None
    if want_props:
        props, c = store.vertex_props(vid)
        cost += c
    edges: EdgesByLabel = {}
    # Reverse (~label) adjacency lives in its own grouped key region, so it
    # is always read per label; forward labels keep the merged-scan path.
    rev_labels = sorted(l for l in want_labels if l.startswith("~"))
    fwd_labels = {l for l in want_labels if not l.startswith("~")}

    def _pred(label: str):
        if edge_preds:
            fs = edge_preds.get(label)
            if fs:
                return fs.matches
        return None

    if len(fwd_labels) == 1:
        label = next(iter(fwd_labels))
        targets, c = store.edges(vid, label, _pred(label))
        cost += c
        edges[label] = targets
    elif fwd_labels:
        preds = None
        if edge_preds:
            preds = {l: fs.matches for l, fs in edge_preds.items() if fs} or None
        all_edges, c = store.all_edges(vid, preds)
        cost += c
        for label, dst, eprops in all_edges:
            if label in fwd_labels:
                edges.setdefault(label, []).append((dst, eprops))
        for label in fwd_labels:
            edges.setdefault(label, [])
    for label in rev_labels:
        targets, c = store.edges(vid, label, _pred(label))
        cost += c
        edges[label] = targets
    return VisitData(props=props, edges=edges, cost=cost)


def expand_vertex(
    plan: TraversalPlan,
    level: int,
    vid: VertexId,
    anchors: Anchors,
    data: VisitData,
    owner_fn: Callable[[VertexId], ServerId],
    sinks: ExpandSinks,
    rtn_levels: tuple[int, ...],
    vertex_type: Optional[str],
    level0_override: Optional[FilterSet] = None,
) -> str:
    """Apply filters and produce next-level entries / returns for one
    (level, vertex, anchors) item whose disk data is already in hand.

    Returns one of ``"filtered"``, ``"final"``, ``"expanded"`` for metrics.
    """
    vfilters = filters_at(plan, level, level0_override)
    if vfilters:
        props = dict(data.props) if data.props is not None else {}
        if vertex_type is not None:
            props.setdefault("type", vertex_type)
        if not vfilters.matches(props):
            return "filtered"
    if level in rtn_levels:
        anchors = extend_anchors(anchors, vid)
    if level == plan.final_level:
        if plan.final_level in plan.return_levels:
            sinks.final_results.add(vid)
            agg = plan.aggregate
            if agg is not None and agg.needs_keys:
                if agg.needs_props:
                    props = dict(data.props) if data.props is not None else {}
                    sinks.final_groups[vid] = props.get(agg.by)
                else:
                    sinks.final_groups[vid] = vertex_type
        for i, rtn_level in enumerate(rtn_levels):
            for anchor in anchors[i]:
                sinks.anchors_by_owner.setdefault(
                    (rtn_level, owner_fn(anchor)), set()
                ).add(anchor)
        return "final"
    step = plan.steps[level]
    next_level = level + 1
    # planner annotation: a filter-free final step needs no dispatch — the
    # sender records destinations directly (legal because the planner only
    # sets the flag when the final step has no vertex filters and no
    # intermediate rtn marks compete for the anchors machinery)
    short_circuit = plan.short_circuit_final and next_level == plan.final_level
    for label in step.labels:
        for dst, eprops in data.edges.get(label, ()):
            if step.edge_filters and not step.edge_filters.matches(eprops):
                continue
            if short_circuit:
                sinks.final_results.add(dst)
                continue
            bucket = sinks.out.setdefault((next_level, owner_fn(dst)), {})
            merge_entry(bucket, dst, anchors)
    return "expanded"
