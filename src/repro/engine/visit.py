"""Shared per-vertex visit logic: disk-cost assembly and expansion semantics.

Both engines funnel every vertex visit through these helpers so that the
traversal *semantics* (filters, anchors, returns) are identical by
construction; only the coordination strategy differs between Sync-GT and the
asynchronous engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.engine.frontier import extend_anchors, merge_entry
from repro.ids import ServerId, VertexId
from repro.lang.filters import FilterSet
from repro.lang.plan import TraversalPlan
from repro.net.message import Anchors, Entries
from repro.storage.costmodel import IOCost
from repro.storage.layout import GraphStore

#: edges grouped by label: label -> [(dst, props), ...]
EdgesByLabel = dict[str, list[tuple[VertexId, dict[str, Any]]]]


@dataclass
class VisitData:
    """What one disk access to a vertex yielded."""

    props: Optional[dict[str, Any]]  # None when no filter needed attributes
    edges: EdgesByLabel
    cost: IOCost


@dataclass
class ExpandSinks:
    """Accumulators one request-processing pass writes into."""

    #: (next level, owner server) -> entries to dispatch
    out: dict[tuple[int, ServerId], Entries] = field(default_factory=dict)
    #: final-level vertices to return (when the final level is returned)
    final_results: set[VertexId] = field(default_factory=set)
    #: (rtn level, owner server) -> anchors that completed a path
    anchors_by_owner: dict[tuple[int, ServerId], set[VertexId]] = field(
        default_factory=dict
    )


def labels_needed(plan: TraversalPlan, levels: list[int]) -> set[str]:
    """Edge labels a combined visit at these levels must scan."""
    labels: set[str] = set()
    for lvl in levels:
        if lvl < plan.final_level:
            labels.update(plan.steps[lvl].labels)
    return labels


def filters_at(
    plan: TraversalPlan, level: int, level0_override: Optional[FilterSet]
) -> FilterSet:
    """Vertex filters applied to a vertex arriving at ``level``."""
    if level == 0:
        return level0_override if level0_override is not None else plan.source_filters
    return plan.steps[level - 1].vertex_filters


def needs_props(
    plan: TraversalPlan, levels: list[int], level0_override: Optional[FilterSet]
) -> bool:
    return any(bool(filters_at(plan, lvl, level0_override)) for lvl in levels)


def read_vertex(
    store: GraphStore,
    vid: VertexId,
    want_labels: set[str],
    want_props: bool,
) -> VisitData:
    """Perform the (single) storage access for a visit.

    One label → one sequential edge scan; several labels → one scan over the
    vertex's whole edge block (the layout keeps all its edges adjacent), as
    execution merging requires. Attribute scan added only when filters need
    properties.
    """
    cost = IOCost()
    props: Optional[dict[str, Any]] = None
    if want_props:
        props, c = store.vertex_props(vid)
        cost += c
    edges: EdgesByLabel = {}
    if len(want_labels) == 1:
        label = next(iter(want_labels))
        targets, c = store.edges(vid, label)
        cost += c
        edges[label] = targets
    elif want_labels:
        all_edges, c = store.all_edges(vid)
        cost += c
        for label, dst, eprops in all_edges:
            if label in want_labels:
                edges.setdefault(label, []).append((dst, eprops))
        for label in want_labels:
            edges.setdefault(label, [])
    return VisitData(props=props, edges=edges, cost=cost)


def expand_vertex(
    plan: TraversalPlan,
    level: int,
    vid: VertexId,
    anchors: Anchors,
    data: VisitData,
    owner_fn: Callable[[VertexId], ServerId],
    sinks: ExpandSinks,
    rtn_levels: tuple[int, ...],
    vertex_type: Optional[str],
    level0_override: Optional[FilterSet] = None,
) -> str:
    """Apply filters and produce next-level entries / returns for one
    (level, vertex, anchors) item whose disk data is already in hand.

    Returns one of ``"filtered"``, ``"final"``, ``"expanded"`` for metrics.
    """
    vfilters = filters_at(plan, level, level0_override)
    if vfilters:
        props = dict(data.props) if data.props is not None else {}
        if vertex_type is not None:
            props.setdefault("type", vertex_type)
        if not vfilters.matches(props):
            return "filtered"
    if level in rtn_levels:
        anchors = extend_anchors(anchors, vid)
    if level == plan.final_level:
        if plan.final_level in plan.return_levels:
            sinks.final_results.add(vid)
        for i, rtn_level in enumerate(rtn_levels):
            for anchor in anchors[i]:
                sinks.anchors_by_owner.setdefault(
                    (rtn_level, owner_fn(anchor)), set()
                ).add(anchor)
        return "final"
    step = plan.steps[level]
    next_level = level + 1
    for label in step.labels:
        for dst, eprops in data.edges.get(label, ()):
            if step.edge_filters and not step.edge_filters.matches(eprops):
                continue
            bucket = sinks.out.setdefault((next_level, owner_fn(dst)), {})
            merge_entry(bucket, dst, anchors)
    return "expanded"
