"""Asynchronous server-side traversal engine (paper §IV–§V).

One :class:`AsyncServerEngine` runs on every backend server. Message flow:

1. :class:`~repro.net.message.TraverseRequest` arrives → coalesce into the
   pending work unit for its (travel, level) if one is still queued (the
   absorbed execution terminates immediately), else enqueue a new unit.
2. A worker pops the queue — smallest step id first when execution
   scheduling is enabled (§V-B) — and processes the unit's vertices:
   traversal-affiliate cache check (§V-A), execution merging against other
   queued levels (§V-B), one disk access per surviving vertex, filter and
   expand, then dispatch batched requests to the owners of the next-level
   vertices *without any global synchronization*.
3. Each processed unit reports an :class:`~repro.net.message.ExecStatus` to
   the coordinator: its own termination plus every execution it created —
   the status-tracing protocol of §IV-C.
4. Final-level vertices produce :class:`~repro.net.message.ResultReport`
   messages; intermediate ``rtn()`` anchors are confirmed to their owning
   servers via :class:`~repro.net.message.SuccessReport`, which forward the
   matched vertices to the coordinator (the Fig. 4 redirection).

The same class implements Async-GT and GraphTrek: option flags switch the
optimizations (see :mod:`repro.engine.options`). Without the cache, duplicate
(travel, step, vertex) arrivals pay their disk I/O in full — the redundant
visits the paper measures — but are never re-dispatched (see DESIGN.md,
"Termination bookkeeping in Async-GT").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.engine.batch import BatchFrontier, batch_eligible
from repro.engine.cache import TraversalAffiliateCache
from repro.engine.frontier import (
    EMPTY_ANCHORS,
    anchors_covered,
    intermediate_rtn_levels,
    merge_entries,
)
from repro.engine.options import EngineOptions
from repro.engine.registry import TravelEntry, TravelRegistry
from repro.engine.statistics import StatsBoard
from repro.engine.visit import (
    ExpandSinks,
    VisitData,
    expand_vertex,
    labels_needed,
    needs_props,
    read_vertex,
)
from repro.ids import ExecId, IdAllocator, ServerId, TravelId, VertexId
from repro.lang.filters import FilterSet
from repro.net.message import (
    Anchors,
    Entries,
    ExecStatus,
    Message,
    ReplayExec,
    ResultReport,
    SuccessReport,
    TraverseRequest,
)
from repro.runtime.base import ServerContext
from repro.storage.costmodel import IOCost
from repro.storage.layout import GraphStore

TravelKey = tuple[TravelId, int]  # (travel id, attempt)

#: Effectively unbounded capacity for the Async-GT processed-set (it is
#: bookkeeping, not the bounded cache optimization).
_UNBOUNDED = 1 << 60


@dataclass
class PendingWork:
    """A coalesced (travel, level) work unit waiting in the local queue."""

    travel_key: TravelKey
    level: int
    entries: Entries
    exec_id: ExecId
    all_sources: bool = False
    absorbed: int = 0
    enqueued_at: float = 0.0
    #: coordinator epoch echoed from the request that opened the unit
    epoch: int = 0
    #: per-unit visit attribution (flight-recorder / PROFILE payload)
    n_real: int = 0
    n_cache_hits: int = 0
    n_combined: int = 0

    @property
    def travel_id(self) -> TravelId:
        return self.travel_key[0]

    @property
    def attempt(self) -> int:
        return self.travel_key[1]


class AsyncServerEngine:
    """Per-server asynchronous traversal engine."""

    def __init__(
        self,
        ctx: ServerContext,
        store: GraphStore,
        registry: TravelRegistry,
        owner_fn: Callable[[VertexId], ServerId],
        opts: EngineOptions,
        board: StatsBoard,
    ):
        self.ctx = ctx
        self.store = store
        self.registry = registry
        self.owner_fn = owner_fn
        self.opts = opts
        self.board = board
        self.metrics = board.obs.metrics
        self.spans = board.obs.spans
        self.trace = board.obs.trace
        self.queue = ctx.queue(priority=opts.priority_schedule, name="requests")
        self._pending: dict[tuple[TravelKey, int], PendingWork] = {}
        capacity = opts.cache_capacity if opts.cache_enabled else _UNBOUNDED
        self.seen = TraversalAffiliateCache(capacity)
        self._rtn_forwarded: dict[tuple[TravelKey, int], set[VertexId]] = {}
        #: replay buffer for fine-grained recovery: exec id -> (dst, message),
        #: kept until the traversal completes.
        self._sent: dict[TravelKey, dict[ExecId, tuple[ServerId, Message]]] = {}
        self._seq = itertools.count()
        # thread-safe: workers on the threaded runtime race into this
        self._next_exec = IdAllocator((ctx.server_id + 1) << 32)
        self._workers = [
            ctx.spawn(self._worker(), name=f"worker{i}") for i in range(opts.workers)
        ]

    # -- message entry point -------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if isinstance(msg, TraverseRequest):
            self._on_request(msg)
        elif isinstance(msg, SuccessReport):
            self._on_success(msg)
        elif isinstance(msg, ReplayExec):
            self._on_replay(msg)
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"async engine got unexpected {type(msg).__name__}")

    def _on_replay(self, msg: ReplayExec) -> None:
        """Fine-grained recovery: re-send a dispatch this server created.

        Unknown exec ids are ignored — the coordinator's watchdog escalates
        to a full restart if replays do not restore progress.
        """
        sent = self._sent.get((msg.travel_id, msg.attempt), {})
        record = sent.get(msg.exec_id)
        if record is None:
            return
        dst, original = record
        self._send(msg.travel_id, dst, original)

    def _on_request(self, msg: TraverseRequest) -> None:
        server = self.ctx.server_id
        self.metrics.count("engine.requests", server=server)
        self.trace.record(
            "exec.received",
            travel_id=msg.travel_id,
            exec_id=msg.exec_id,
            server_id=server,
            step=msg.level,
            attempt=msg.attempt,
        )
        entry = self.registry.get(msg.travel_id)
        if entry is None or entry.attempt != msg.attempt:
            # Stale attempt: terminate the execution so old accounting
            # quiesces; the coordinator ignores reports from old attempts.
            self.metrics.count("engine.stale_requests", server=server)
            self._record_terminated(msg.travel_id, msg.exec_id, msg.level, msg.attempt, "stale")
            self._report_status(
                msg.travel_id, msg.attempt, msg.exec_id, (), 0, msg.level,
                epoch=msg.epoch,
            )
            return
        tkey = (msg.travel_id, msg.attempt)
        key = (tkey, msg.level)
        work = self._pending.get(key)
        if work is not None:
            # Queue coalescing: union into the waiting unit; the absorbed
            # execution terminates immediately, having created nothing.
            merge_entries(work.entries, msg.entries)
            work.all_sources = work.all_sources or msg.all_sources
            work.absorbed += 1
            self.metrics.count("engine.coalesced", server=server)
            self._record_terminated(
                msg.travel_id, msg.exec_id, msg.level, msg.attempt, "coalesced"
            )
            self._report_status(
                msg.travel_id, msg.attempt, msg.exec_id, (), 0, msg.level,
                epoch=msg.epoch,
            )
            return
        work = PendingWork(
            travel_key=tkey,
            level=msg.level,
            entries=dict(msg.entries),
            exec_id=msg.exec_id,
            all_sources=msg.all_sources,
            enqueued_at=self.ctx.now(),
            epoch=msg.epoch,
        )
        self._pending[key] = work
        self.metrics.count("engine.units_enqueued", server=server)
        priority = msg.level if self.opts.priority_schedule else 0
        self.ctx.queue_put(self.queue, (priority, next(self._seq), key))

    def _on_success(self, msg: SuccessReport) -> None:
        """An rtn server learning which of its anchors completed a path."""
        self.metrics.count("engine.rtn_confirms", server=self.ctx.server_id)
        self.trace.record(
            "exec.received",
            travel_id=msg.travel_id,
            exec_id=msg.exec_id,
            server_id=self.ctx.server_id,
            attempt=msg.attempt,
        )
        entry = self.registry.get(msg.travel_id)
        if entry is None or entry.attempt != msg.attempt:
            self._record_terminated(msg.travel_id, msg.exec_id, None, msg.attempt, "stale")
            self._report_status(
                msg.travel_id, msg.attempt, msg.exec_id, (), 0, None, epoch=msg.epoch
            )
            return
        tkey = (msg.travel_id, msg.attempt)
        fwd_key = (tkey, msg.rtn_level)
        already = self._rtn_forwarded.setdefault(fwd_key, set())
        fresh = msg.anchors - already
        results_sent = 0
        if fresh:
            already.update(fresh)
            self._send_coord(
                msg.travel_id,
                ResultReport(
                    msg.travel_id,
                    epoch=entry.epoch,
                    level=msg.rtn_level,
                    vertices=frozenset(fresh),
                    attempt=msg.attempt,
                ),
            )
            results_sent = 1
        self._record_terminated(
            msg.travel_id, msg.exec_id, None, msg.attempt, "rtn",
            anchors=len(msg.anchors), results_sent=results_sent,
        )
        self._report_status(
            msg.travel_id, msg.attempt, msg.exec_id, (), results_sent, None,
            epoch=entry.epoch,
        )

    # -- worker loop ---------------------------------------------------------------

    def _worker(self):
        while True:
            item = yield self.ctx.queue_get(self.queue)
            _, _, key = item
            work = self._pending.pop(key, None)
            if work is None:  # pragma: no cover - defensive
                continue
            yield from self._process(work)

    def _process(self, work: PendingWork):
        travel_id, attempt = work.travel_key
        server = self.ctx.server_id
        entry = self.registry.get(travel_id)
        if entry is None or entry.attempt != attempt:
            self._record_terminated(travel_id, work.exec_id, work.level, attempt, "stale")
            self._report_status(
                travel_id, attempt, work.exec_id, (), 0, work.level, epoch=work.epoch
            )
            return
        plan = entry.plan
        level = work.level
        rtn_levels = intermediate_rtn_levels(plan)
        level0_override = self._level0_override(work, entry)

        items: list[tuple[VertexId, Anchors]] = list(work.entries.items())
        if work.all_sources:
            items.extend(
                (vid, EMPTY_ANCHORS) for vid in self._source_candidates(entry)
            )
        items.sort(key=lambda iv: iv[0])  # key-ordered batch (elevator pass)
        self.metrics.observe(
            "engine.queue_wait_seconds", self.ctx.now() - work.enqueued_at, server=server
        )
        self.metrics.observe("engine.unit_vertices", len(items), server=server)
        unit_span = self.spans.begin(
            "unit",
            f"s{server}:L{level}",
            parent=self.spans.level_span(travel_id, level),
            server=server,
            level=level,
            exec_id=work.exec_id,
            absorbed=work.absorbed,
        )
        yield self.ctx.cpu(
            self.opts.cpu_per_request
            + self.opts.cpu_async_overhead
            + self.opts.cpu_per_vertex * len(items)
        )

        sinks = ExpandSinks()
        decoded0 = self.store.decoded_blocks
        batch_width = 0
        if batch_eligible(self.opts, plan):
            batch_width = yield from self._process_batched(
                work, plan, level, items, sinks, level0_override, unit_span
            )
        else:
            first_in_batch = True
            for vid, anchors in items:
                did_io = yield from self._visit(
                    work, plan, level, vid, anchors, sinks, rtn_levels,
                    level0_override, first_in_batch, unit_span,
                )
                if did_io:
                    first_in_batch = False

        created, results_sent = self._flush(work, plan, sinks, entry.epoch)
        self.spans.end(unit_span, vertices=len(items), created=len(created))
        self._record_terminated(
            travel_id, work.exec_id, level, attempt, "ok",
            vertices=len(items),
            created=len(created),
            results_sent=results_sent,
            absorbed=work.absorbed,
            real=work.n_real,
            cache_hits=work.n_cache_hits,
            combined=work.n_combined,
            decoded_blocks=self.store.decoded_blocks - decoded0,
            batch_width=batch_width,
        )
        self._report_status(
            travel_id, attempt, work.exec_id, tuple(created), results_sent, level,
            epoch=entry.epoch,
        )

    def _level0_override(
        self, work: PendingWork, entry: TravelEntry
    ) -> Optional[FilterSet]:
        """When enumerating sources via the type index, the type filter is
        already satisfied and must not force an attribute read."""
        if work.level == 0 and work.all_sources and entry.source_info.index_type:
            return entry.source_info.reduced_filters
        return None

    def _source_candidates(self, entry: TravelEntry) -> list[VertexId]:
        info = entry.source_info
        if info.index_type is not None:
            return sorted(self.store.local_vertices_of_type(info.index_type))
        return sorted(self.store.local_vertices())

    # -- batched unit body (DESIGN.md §16) ---------------------------------------------

    def _process_batched(
        self,
        work: PendingWork,
        plan,
        level: int,
        items: list[tuple[VertexId, Anchors]],
        sinks: ExpandSinks,
        level0_override: Optional[FilterSet],
        unit_span: int,
    ):
        """Batch-vectorized unit body: per-vertex I/O, cache, visit, and
        execution-merging accounting identical to :meth:`_visit`, with
        current-level expansion deferred to one
        :class:`~repro.engine.batch.BatchFrontier` pass at the end. Merged
        same-vertex requests at *other* levels (§V-B) share this vertex's
        disk access and expand immediately per-vertex — they belong to
        different frontiers than the batch.

        The unit's reads are coalesced into chunks of
        ``opts.batch_io_chunk`` vertices: per-vertex costs (seek discount
        included) are summed and slept once per chunk instead of one
        simulated event per vertex — the key-ordered elevator pass over
        whole adjacency blocks. Chunking (rather than one sleep for the
        whole unit) keeps virtual time advancing mid-unit, which is what
        lets later vertices merge same-vertex requests that arrive while
        earlier chunks are on the disk.
        Returns the batch width (vertices surviving the level's filters).
        """
        travel_id = work.travel_id
        server = self.ctx.server_id
        tkey = work.travel_key
        batch = BatchFrontier(plan, level, level0_override)
        want_labels = labels_needed(plan, [level])
        want_props = needs_props(plan, [level], level0_override)
        edge_preds: Optional[dict[str, FilterSet]] = None
        if plan.pushdown and level < plan.final_level:
            step = plan.steps[level]
            if step.edge_filters:
                edge_preds = {l: step.edge_filters for l in step.labels}
        total_cost = IOCost()
        n_accesses = 0
        first_in_batch = True
        for vid, anchors in items:
            if not self.store.has_vertex(vid):
                continue
            if self.opts.cache_enabled:
                stored = self.seen.lookup(tkey, level, vid)
                if stored is not None and anchors_covered(anchors, stored):
                    self.board.visit(travel_id, server, "redundant")
                    self.metrics.count("cache.affiliate_hits", server=server)
                    work.n_cache_hits += 1
                    continue
            merged: list[tuple[int, Anchors]] = []
            if self.opts.merge_enabled:
                merged = self._extract_merged(tkey, vid, level)
                if merged:
                    self.metrics.count(
                        "engine.merged_items", len(merged), server=server
                    )
            if merged:
                levels = [level] + [lvl for lvl, _ in merged]
                w_labels = labels_needed(plan, levels)
                w_props = needs_props(plan, levels, level0_override)
                e_preds = None  # other levels may need other edges
            else:
                w_labels, w_props, e_preds = want_labels, want_props, edge_preds
            if w_labels or w_props:
                data = read_vertex(self.store, vid, w_labels, w_props, e_preds)
                cost = data.cost
                if not first_in_batch and cost.seeks:
                    cost.seeks *= self.opts.batch_seek_factor
                cost.cache_hits += len(merged)
                total_cost += cost
                n_accesses += 1
                if cost.seeks > 0 or cost.blocks > 0:
                    first_in_batch = False
                if n_accesses >= self.opts.batch_io_chunk:
                    yield from self._flush_batch_io(
                        total_cost, n_accesses, level, unit_span
                    )
                    total_cost = IOCost()
                    n_accesses = 0
            else:
                data = VisitData(props=None, edges={}, cost=IOCost())
            self.board.visit(travel_id, server, "real")
            self.metrics.count("engine.real_visits", server=server)
            work.n_real += 1
            vertex_type = self.store.namespace_of(vid)
            stored = self.seen.lookup(tkey, level, vid)
            if stored is None or not anchors_covered(anchors, stored):
                self.seen.insert(tkey, level, vid, anchors)
                batch.add(vid, data, vertex_type)
            if merged:
                self.board.visit(travel_id, server, "combined", len(merged))
                work.n_combined += len(merged)
                for lvl, anc in merged:
                    stored = self.seen.lookup(tkey, lvl, vid)
                    if stored is not None and anchors_covered(anc, stored):
                        continue
                    self.seen.insert(tkey, lvl, vid, anc)
                    expand_vertex(
                        plan, lvl, vid, anc, data, self.owner_fn, sinks, (),
                        vertex_type, level0_override if lvl == 0 else None,
                    )
        if n_accesses:
            yield from self._flush_batch_io(total_cost, n_accesses, level, unit_span)
        batch.expand(self.owner_fn, sinks)
        return batch.width

    def _flush_batch_io(self, cost: IOCost, accesses: int, level: int, unit_span: int):
        """Sleep one coalesced disk access covering ``accesses`` vertex reads."""
        server = self.ctx.server_id
        disk_span = self.spans.begin(
            "disk", f"batch[{accesses}]", parent=unit_span,
            server=server, level=level,
        )
        io_start = self.ctx.now()
        yield self.ctx.disk(cost, level=level, accesses=accesses)
        self.metrics.observe(
            "disk.access_seconds", self.ctx.now() - io_start, server=server
        )
        self.spans.end(disk_span)

    # -- per-vertex visit ------------------------------------------------------------

    def _visit(
        self,
        work: PendingWork,
        plan,
        level: int,
        vid: VertexId,
        anchors: Anchors,
        sinks: ExpandSinks,
        rtn_levels: tuple[int, ...],
        level0_override: Optional[FilterSet],
        first_in_batch: bool,
        unit_span: int = 0,
    ):
        """Serve one vertex request; returns True if it reached the disk."""
        travel_id = work.travel_id
        server = self.ctx.server_id
        tkey = work.travel_key
        if not self.store.has_vertex(vid):
            return False  # dangling dispatch; nothing stored here
        if self.opts.cache_enabled:
            stored = self.seen.lookup(tkey, level, vid)
            if stored is not None and anchors_covered(anchors, stored):
                # Traversal-affiliate cache hit: safely abandon the request.
                self.board.visit(travel_id, server, "redundant")
                self.metrics.count("cache.affiliate_hits", server=server)
                work.n_cache_hits += 1
                return False

        todo: list[tuple[int, Anchors]] = [(level, anchors)]
        if self.opts.merge_enabled:
            todo.extend(self._extract_merged(tkey, vid, level))
            if len(todo) > 1:
                self.metrics.count("engine.merged_items", len(todo) - 1, server=server)

        levels = [lvl for lvl, _ in todo]
        want_labels = labels_needed(plan, levels)
        want_props = needs_props(plan, levels, level0_override)
        edge_preds: Optional[dict[str, FilterSet]] = None
        if plan.pushdown and len(todo) == 1 and level < plan.final_level:
            # predicate pushdown: single-level visits hand the step's edge
            # filters to the storage scan (merged multi-level visits keep
            # the unfiltered block — other levels may need other edges)
            step = plan.steps[level]
            if step.edge_filters:
                edge_preds = {l: step.edge_filters for l in step.labels}
        if not want_labels and not want_props:
            # Nothing to read (e.g. unfiltered final level): served from the
            # request itself, still one real visit for accounting.
            data = None
        else:
            data = read_vertex(
                self.store, vid, want_labels, want_props, edge_preds
            )
            cost = data.cost
            if not first_in_batch and cost.seeks:
                cost.seeks *= self.opts.batch_seek_factor
            # Execution merging shares the seek/scan, but each merged item
            # still decodes the block it needs (one re-read from cache).
            cost.cache_hits += len(todo) - 1
            disk_span = self.spans.begin(
                "disk", f"v{vid}", parent=unit_span, server=server, level=level
            )
            io_start = self.ctx.now()
            yield self.ctx.disk(cost, level=level, accesses=1)
            self.metrics.observe(
                "disk.access_seconds", self.ctx.now() - io_start, server=server
            )
            self.spans.end(disk_span)

        self.board.visit(travel_id, server, "real")
        self.board.visit(travel_id, server, "combined", len(todo) - 1)
        self.metrics.count("engine.real_visits", server=server)
        work.n_real += 1
        work.n_combined += len(todo) - 1

        vertex_type = self.store.namespace_of(vid)
        if data is None:
            data = VisitData(props=None, edges={}, cost=IOCost())
        for lvl, anc in todo:
            stored = self.seen.lookup(tkey, lvl, vid)
            if stored is not None and anchors_covered(anc, stored):
                # Already expanded with these anchors (post-I/O duplicate in
                # Async-GT, or a merged item another path served first):
                # skip the downstream dispatch to preserve termination.
                continue
            self.seen.insert(tkey, lvl, vid, anc)
            expand_vertex(
                plan, lvl, vid, anc, data, self.owner_fn, sinks, rtn_levels,
                vertex_type, level0_override if lvl == 0 else None,
            )
        return data.cost.seeks > 0 or data.cost.blocks > 0

    def _extract_merged(
        self, tkey: TravelKey, vid: VertexId, level: int
    ) -> list[tuple[int, Anchors]]:
        """Execution merging (§V-B): pull same-vertex requests at other
        levels out of the local queue so this disk access serves them too."""
        merged: list[tuple[int, Anchors]] = []
        for (pkey, plevel), other in self._pending.items():
            if pkey != tkey or plevel == level:
                continue
            anc = other.entries.pop(vid, None)
            if anc is not None:
                merged.append((plevel, anc))
        return merged

    # -- dispatch --------------------------------------------------------------------

    def _flush(
        self, work: PendingWork, plan, sinks: ExpandSinks, epoch: int = 0
    ) -> tuple[list[tuple[ExecId, ServerId, int]], int]:
        travel_id, attempt = work.travel_key
        sent = self._sent.setdefault(work.travel_key, {})
        created: list[tuple[ExecId, ServerId, int]] = []
        for (nlvl, target), entries in sorted(sinks.out.items()):
            eid = self._next_exec.next()
            created.append((eid, target, nlvl))
            self.trace.record(
                "exec.created",
                travel_id=travel_id,
                exec_id=eid,
                parent_exec_id=work.exec_id,
                server_id=target,
                step=nlvl,
                attempt=attempt,
                edge="forward",
            )
            request = TraverseRequest(
                travel_id,
                epoch=epoch,
                level=nlvl,
                entries=entries,
                exec_id=eid,
                from_server=self.ctx.server_id,
                attempt=attempt,
            )
            sent[eid] = (target, request)
            self._send(travel_id, target, request)
        for (rtn_level, owner), anchors in sorted(sinks.anchors_by_owner.items()):
            eid = self._next_exec.next()
            created.append((eid, owner, plan.final_level))
            self.trace.record(
                "exec.created",
                travel_id=travel_id,
                exec_id=eid,
                parent_exec_id=work.exec_id,
                server_id=owner,
                step=plan.final_level,
                attempt=attempt,
                edge="rtn",
            )
            success = SuccessReport(
                travel_id,
                epoch=epoch,
                rtn_level=rtn_level,
                anchors=frozenset(anchors),
                exec_id=eid,
                attempt=attempt,
            )
            sent[eid] = (owner, success)
            self._send(travel_id, owner, success)
            self.metrics.count("engine.rtn_redirects", server=self.ctx.server_id)
        if sinks.out:
            self.metrics.count(
                "engine.dispatches", len(sinks.out), server=self.ctx.server_id
            )
        results_sent = 0
        if sinks.final_results and plan.final_level in plan.return_levels:
            self._send_coord(
                travel_id,
                ResultReport(
                    travel_id,
                    epoch=epoch,
                    level=plan.final_level,
                    vertices=frozenset(sinks.final_results),
                    groups=tuple(sorted(sinks.final_groups.items())),
                    attempt=attempt,
                ),
            )
            results_sent = 1
        return created, results_sent

    # -- plumbing ---------------------------------------------------------------------

    def _record_terminated(
        self,
        travel_id: TravelId,
        exec_id: ExecId,
        level: Optional[int],
        attempt: int,
        reason: str,
        **attrs,
    ) -> None:
        self.trace.record(
            "exec.terminated",
            travel_id=travel_id,
            exec_id=exec_id,
            server_id=self.ctx.server_id,
            step=level,
            attempt=attempt,
            reason=reason,
            **attrs,
        )

    def _send(self, travel_id: TravelId, dst: ServerId, msg: Message) -> None:
        self.board.message(travel_id, msg.nbytes)
        self.ctx.send(dst, msg)

    def _send_coord(self, travel_id: TravelId, msg: Message) -> None:
        self.board.message(travel_id, msg.nbytes)
        self.ctx.send_coordinator(msg)

    def _report_status(
        self,
        travel_id: TravelId,
        attempt: int,
        exec_id: ExecId,
        created: tuple[tuple[ExecId, ServerId, int], ...],
        results_sent: int,
        level: Optional[int],
        *,
        epoch: int = 0,
    ) -> None:
        # The per-traversal ``executions`` statistic is counted by the
        # coordinator on *fresh* terminations only — counting here would
        # double-count replayed executions and stale-attempt reports.
        self.metrics.count("engine.status_reports", server=self.ctx.server_id)
        self._send_coord(
            travel_id,
            ExecStatus(
                travel_id,
                epoch=epoch,
                exec_id=exec_id,
                server=self.ctx.server_id,
                created=created,
                results_sent=results_sent,
                level=level,
                attempt=attempt,
            ),
        )

    # -- lifecycle -----------------------------------------------------------------------

    def forget_travel(self, travel_id: TravelId) -> None:
        """Release per-traversal state after the coordinator reports
        completion (in-process cleanup; costs no simulated time)."""
        self.seen.forget_travel_prefix(travel_id)
        for key in [k for k in self._pending if k[0][0] == travel_id]:
            del self._pending[key]
        for key in [k for k in self._rtn_forwarded if k[0][0] == travel_id]:
            del self._rtn_forwarded[key]
        for key in [k for k in self._sent if k[0] == travel_id]:
            del self._sent[key]

    def crash(self) -> None:
        """Crash-model hook: lose every piece of in-memory traversal state
        (pending work, affiliate cache, RTN dedup, replay buffers). LSM
        storage survives by design. Queued keys whose pending entry vanished
        are no-ops in the worker, so workers survive the crash."""
        self._pending.clear()
        self._rtn_forwarded.clear()
        self._sent.clear()
        capacity = self.opts.cache_capacity if self.opts.cache_enabled else _UNBOUNDED
        self.seen = TraversalAffiliateCache(capacity)
        self.metrics.count("engine.crashes", server=self.ctx.server_id)

    @property
    def queue_length(self) -> int:
        return self.ctx.queue_len(self.queue)
