"""Level-synchronous server-side traversal engine — the Sync-GT baseline.

Follows the paper's fair-comparison design (§VI): server-side traversal with
a controller (the coordinator) that globally synchronizes every step. Data
flows directly between backend servers; the coordinator only exchanges
control messages:

1. the coordinator announces step k with the number of frontier batches each
   server must expect (:class:`~repro.net.message.SyncStartStep`);
2. each server waits for exactly that many :class:`~repro.net.message.SyncBatch`
   deliveries, unions them (per-step deduplication is free under a barrier),
   processes every vertex, ships next-level batches to their owners, and
   reports :class:`~repro.net.message.SyncStepDone` with its per-destination
   send counts;
3. when all servers report, the coordinator aggregates the counts and
   releases step k+1.

Final-level vertices (and completed rtn anchors) go straight to the
coordinator as :class:`~repro.net.message.ResultReport` messages.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.engine.batch import BatchFrontier, batch_eligible
from repro.engine.frontier import EMPTY_ANCHORS, intermediate_rtn_levels, merge_entries
from repro.engine.options import EngineOptions
from repro.engine.registry import TravelEntry, TravelRegistry
from repro.engine.statistics import StatsBoard
from repro.engine.visit import (
    ExpandSinks,
    VisitData,
    expand_vertex,
    labels_needed,
    needs_props,
    read_vertex,
)
from repro.ids import ServerId, TravelId, VertexId
from repro.lang.filters import FilterSet
from repro.net.message import (
    Anchors,
    Entries,
    Message,
    ResultReport,
    SyncBatch,
    SyncStartStep,
    SyncStepDone,
)
from repro.obs.trace import sync_exec_id
from repro.runtime.base import ServerContext
from repro.storage.costmodel import IOCost
from repro.storage.layout import GraphStore

TravelKey = tuple[TravelId, int]


class SyncServerEngine:
    """Per-server synchronous engine."""

    def __init__(
        self,
        ctx: ServerContext,
        store: GraphStore,
        registry: TravelRegistry,
        owner_fn: Callable[[VertexId], ServerId],
        opts: EngineOptions,
        board: StatsBoard,
    ):
        self.ctx = ctx
        self.store = store
        self.registry = registry
        self.owner_fn = owner_fn
        self.opts = opts
        self.board = board
        self.metrics = board.obs.metrics
        self.spans = board.obs.spans
        self.trace = board.obs.trace
        self.queue = ctx.queue(priority=False, name="sync-steps")
        self._buffers: dict[tuple[TravelKey, int], Entries] = {}
        self._batch_counts: dict[tuple[TravelKey, int], int] = {}
        #: (expect_batches, all_sources) once the start order arrived
        self._expected: dict[tuple[TravelKey, int], tuple[int, bool]] = {}
        self._seq = itertools.count()
        #: bumped on crash so queued step keys from before the crash are
        #: skipped instead of processed against emptied buffers (which would
        #: report an understated SyncStepDone and silently shrink results)
        self._epoch = 0
        self._worker_proc = ctx.spawn(self._worker(), name="sync-worker")

    # -- message entry point ---------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if isinstance(msg, SyncBatch):
            self._on_batch(msg)
        elif isinstance(msg, SyncStartStep):
            self._on_start(msg)
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"sync engine got unexpected {type(msg).__name__}")

    def _stale(self, travel_id: TravelId, attempt: int) -> bool:
        entry = self.registry.get(travel_id)
        return entry is None or entry.attempt != attempt

    def _on_batch(self, msg: SyncBatch) -> None:
        self.metrics.count("engine.sync_batches", server=self.ctx.server_id)
        if self._stale(msg.travel_id, msg.attempt):
            return
        key = ((msg.travel_id, msg.attempt), msg.level)
        buf = self._buffers.setdefault(key, {})
        merge_entries(buf, msg.entries)
        self._batch_counts[key] = self._batch_counts.get(key, 0) + 1
        self._try_start(key)

    def _on_start(self, msg: SyncStartStep) -> None:
        if self._stale(msg.travel_id, msg.attempt):
            return
        key = ((msg.travel_id, msg.attempt), msg.level)
        self._expected[key] = (msg.expect_batches, msg.all_sources)
        self._try_start(key)

    def _try_start(self, key: tuple[TravelKey, int]) -> None:
        expected = self._expected.get(key)
        if expected is None:
            return
        if self._batch_counts.get(key, 0) >= expected[0]:
            del self._expected[key]
            self.ctx.queue_put(self.queue, (0, next(self._seq), key, self._epoch))

    # -- step processing ------------------------------------------------------------

    def _worker(self):
        while True:
            item = yield self.ctx.queue_get(self.queue)
            _, _, key, epoch = item
            if epoch != self._epoch:
                continue  # queued before a crash; its buffers are gone
            yield from self._process_step(key)

    def _process_step(self, key: tuple[TravelKey, int]):
        (travel_id, attempt), level = key
        entries = self._buffers.pop(key, {})
        self._batch_counts.pop(key, None)
        # The synthetic id of this barrier-released (attempt, level, server)
        # work unit — created by the coordinator when it released the step.
        eid = sync_exec_id(attempt, level, self.ctx.server_id)
        self.trace.record(
            "exec.received",
            travel_id=travel_id,
            exec_id=eid,
            server_id=self.ctx.server_id,
            step=level,
            attempt=attempt,
        )
        entry = self.registry.get(travel_id)
        if entry is None or entry.attempt != attempt:
            self.trace.record(
                "exec.terminated",
                travel_id=travel_id,
                exec_id=eid,
                server_id=self.ctx.server_id,
                step=level,
                attempt=attempt,
                reason="stale",
            )
            return
        plan = entry.plan
        coord_epoch = entry.epoch
        rtn_levels = intermediate_rtn_levels(plan)
        all_sources = level == 0 and plan.source_ids is None
        level0_override: Optional[FilterSet] = None
        if all_sources:
            for vid in self._source_candidates(entry):
                entries.setdefault(vid, EMPTY_ANCHORS)
            if entry.source_info.index_type:
                level0_override = entry.source_info.reduced_filters

        items = sorted(entries.items(), key=lambda iv: iv[0])
        server = self.ctx.server_id
        self.metrics.observe("engine.unit_vertices", len(items), server=server)
        unit_span = self.spans.begin(
            "unit",
            f"s{server}:L{level}",
            parent=self.spans.level_span(travel_id, level),
            server=server,
            level=level,
        )
        yield self.ctx.cpu(
            self.opts.cpu_per_request + self.opts.cpu_per_vertex * len(items)
        )

        sinks = ExpandSinks()
        want_labels = labels_needed(plan, [level])
        want_props = needs_props(plan, [level], level0_override)
        edge_preds: Optional[dict[str, FilterSet]] = None
        if plan.pushdown and level < plan.final_level:
            # predicate pushdown: hand the step's edge filters to the scan
            step_ = plan.steps[level]
            if step_.edge_filters:
                edge_preds = {l: step_.edge_filters for l in step_.labels}
        batch: Optional[BatchFrontier] = (
            BatchFrontier(plan, level, level0_override)
            if batch_eligible(self.opts, plan)
            else None
        )
        decoded0 = self.store.decoded_blocks
        first_in_batch = True
        n_real = 0
        for vid, anchors in items:
            if not self.store.has_vertex(vid):
                continue
            if want_labels or want_props:
                data = read_vertex(
                    self.store, vid, want_labels, want_props, edge_preds
                )
                cost = data.cost
                if not first_in_batch and cost.seeks:
                    cost.seeks *= self.opts.batch_seek_factor
                disk_span = self.spans.begin(
                    "disk", f"v{vid}", parent=unit_span, server=server, level=level
                )
                io_start = self.ctx.now()
                yield self.ctx.disk(cost, level=level, accesses=1)
                self.metrics.observe(
                    "disk.access_seconds", self.ctx.now() - io_start, server=server
                )
                self.spans.end(disk_span)
                first_in_batch = False
            else:
                data = VisitData(props=None, edges={}, cost=IOCost())
            self.board.visit(travel_id, self.ctx.server_id, "real")
            self.metrics.count("engine.real_visits", server=server)
            n_real += 1
            if batch is not None:
                batch.add(vid, data, self.store.namespace_of(vid))
            else:
                expand_vertex(
                    plan, level, vid, anchors, data, self.owner_fn, sinks, rtn_levels,
                    self.store.namespace_of(vid),
                    level0_override,
                )
        if batch is not None:
            batch.expand(self.owner_fn, sinks)

        results_sent = self._emit_results(travel_id, attempt, coord_epoch, plan, sinks)
        sent_counts: dict[ServerId, int] = {}
        for (nlvl, target), out_entries in sorted(sinks.out.items()):
            # Data-flow edge from this work unit into the next level's unit
            # on the target server (its root "barrier" creation comes from
            # the coordinator when it releases that step).
            self.trace.record(
                "exec.created",
                travel_id=travel_id,
                exec_id=sync_exec_id(attempt, nlvl, target),
                parent_exec_id=eid,
                server_id=target,
                step=nlvl,
                attempt=attempt,
                edge="forward",
            )
            self._send(
                travel_id,
                target,
                SyncBatch(
                    travel_id,
                    epoch=coord_epoch,
                    level=nlvl,
                    entries=out_entries,
                    from_server=self.ctx.server_id,
                    attempt=attempt,
                ),
            )
            sent_counts[target] = sent_counts.get(target, 0) + 1
        if sent_counts:
            self.metrics.count("engine.dispatches", len(sent_counts), server=server)
        self.board.execution(travel_id)
        self.spans.end(unit_span, vertices=len(items))
        self.trace.record(
            "exec.terminated",
            travel_id=travel_id,
            exec_id=eid,
            server_id=server,
            step=level,
            attempt=attempt,
            reason="ok",
            vertices=len(items),
            created=len(sinks.out),
            results_sent=results_sent,
            real=n_real,
            decoded_blocks=self.store.decoded_blocks - decoded0,
            batch_width=batch.width if batch is not None else 0,
        )
        self.metrics.count("engine.status_reports", server=server)
        self._send_coord(
            travel_id,
            SyncStepDone(
                travel_id,
                epoch=coord_epoch,
                level=level,
                server=self.ctx.server_id,
                sent_counts=sent_counts,
                results_sent=results_sent,
                attempt=attempt,
            ),
        )

    def _emit_results(self, travel_id, attempt, coord_epoch, plan, sinks: ExpandSinks) -> int:
        """Ship final vertices and completed rtn anchors to the coordinator.

        The synchronous baseline returns everything through its controller;
        the async engines' report-destination redirection (Fig. 4) has no
        synchronous counterpart.
        """
        results_sent = 0
        if sinks.final_results and plan.final_level in plan.return_levels:
            self._send_coord(
                travel_id,
                ResultReport(
                    travel_id,
                    epoch=coord_epoch,
                    level=plan.final_level,
                    vertices=frozenset(sinks.final_results),
                    groups=tuple(sorted(sinks.final_groups.items())),
                    attempt=attempt,
                ),
            )
            results_sent += 1
        by_level: dict[int, set[VertexId]] = {}
        for (rtn_level, _owner), anchors in sinks.anchors_by_owner.items():
            by_level.setdefault(rtn_level, set()).update(anchors)
        for rtn_level, anchors in sorted(by_level.items()):
            self._send_coord(
                travel_id,
                ResultReport(
                    travel_id,
                    epoch=coord_epoch,
                    level=rtn_level,
                    vertices=frozenset(anchors),
                    attempt=attempt,
                ),
            )
            results_sent += 1
        return results_sent

    def _source_candidates(self, entry: TravelEntry) -> list[VertexId]:
        info = entry.source_info
        if info.index_type is not None:
            return sorted(self.store.local_vertices_of_type(info.index_type))
        return sorted(self.store.local_vertices())

    # -- plumbing -----------------------------------------------------------------------

    def _send(self, travel_id: TravelId, dst: ServerId, msg: Message) -> None:
        self.board.message(travel_id, msg.nbytes)
        self.ctx.send(dst, msg)

    def _send_coord(self, travel_id: TravelId, msg: Message) -> None:
        self.board.message(travel_id, msg.nbytes)
        self.ctx.send_coordinator(msg)

    def forget_travel(self, travel_id: TravelId) -> None:
        for store in (self._buffers, self._batch_counts, self._expected):
            for key in [k for k in store if k[0][0] == travel_id]:
                del store[key]

    def crash(self) -> None:
        """Crash-model hook: lose buffered batches and barrier bookkeeping.
        The epoch bump invalidates step keys already sitting in the queue;
        the stalled barrier is resolved by the coordinator's watchdog
        restarting the traversal (sync mode has no fine-grained replay)."""
        self._buffers.clear()
        self._batch_counts.clear()
        self._expected.clear()
        self._epoch += 1
        self.metrics.count("engine.crashes", server=self.ctx.server_id)
