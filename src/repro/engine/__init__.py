"""Traversal engines: the oracle, Sync-GT, Async-GT, and GraphTrek."""

from repro.engine.async_engine import AsyncServerEngine
from repro.engine.base import EngineKind, TraversalOutcome, TraversalResult, TraversalStats
from repro.engine.cache import TraversalAffiliateCache
from repro.engine.options import (
    EngineOptions,
    graphtrek_options,
    options_for,
    plain_async_options,
    sync_options,
)
from repro.engine.reference import ReferenceEngine
from repro.engine.registry import TravelRegistry, analyze_sources
from repro.engine.statistics import StatsBoard
from repro.engine.sync_engine import SyncServerEngine
from repro.engine.tracing import ExecTracker, SyncBarrierState

__all__ = [
    "AsyncServerEngine",
    "EngineKind",
    "TraversalOutcome",
    "TraversalResult",
    "TraversalStats",
    "TraversalAffiliateCache",
    "EngineOptions",
    "graphtrek_options",
    "options_for",
    "plain_async_options",
    "sync_options",
    "ReferenceEngine",
    "TravelRegistry",
    "analyze_sources",
    "StatsBoard",
    "SyncServerEngine",
    "ExecTracker",
    "SyncBarrierState",
]
