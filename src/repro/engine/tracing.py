"""Coordinator-side execution tracing (paper §IV-C).

Every traversal execution is logged at the coordinator: creation events come
inside the parent's :class:`~repro.net.message.ExecStatus` (which also
terminates the parent), so

* a traversal is complete when every created execution has terminated **and**
  every declared result message has arrived;
* an execution created but not terminated within a timeout indicates a
  failure (silent loss), which triggers a restart of the whole traversal —
  the paper's stated recovery policy, with fine-grained recovery left as
  future work.

Message reordering is handled: a child's termination may arrive before the
parent's status registers its creation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from repro.ids import COORDINATOR, ExecId, ServerId
from repro.net.message import ExecStatus


@dataclass
class ExecTracker:
    """Quiescence and progress accounting for one traversal attempt."""

    attempt: int = 0
    #: exec id -> (target server, level, origin server); origin COORDINATOR
    #: means the coordinator itself dispatched it (and can replay it).
    pending: dict[ExecId, tuple[ServerId, int, ServerId]] = field(default_factory=dict)
    early_terminated: set[ExecId] = field(default_factory=set)
    #: already-terminated ids, so duplicate reports from replayed executions
    #: are recognized instead of being mistaken for unknown executions.
    terminated_ids: set[ExecId] = field(default_factory=set)
    created_total: int = 0
    terminated_total: int = 0
    results_expected: int = 0
    results_received: int = 0
    last_activity: float = 0.0
    started: bool = False

    def register_initial(
        self, execs: list[tuple[ExecId, ServerId, int]], now: float
    ) -> None:
        """Record the executions the coordinator itself dispatched."""
        self.started = True
        self.last_activity = now
        for eid, server, level in execs:
            self._register(eid, server, level, origin=COORDINATOR)

    def _register(
        self, eid: ExecId, server: ServerId, level: int, origin: ServerId
    ) -> None:
        if eid in self.terminated_ids:
            return  # duplicate creation report from a replayed parent
        self.created_total += 1
        if eid in self.early_terminated:
            self.early_terminated.discard(eid)
            self.terminated_total += 1
            self.terminated_ids.add(eid)
            return
        self.pending[eid] = (server, level, origin)

    def on_status(self, msg: ExecStatus, now: float) -> bool:
        """Apply one status report; True when it terminated a new execution.

        Duplicate reports (from replayed executions) and stale attempts
        return False so callers do not double-count work — the per-traversal
        ``executions`` statistic is incremented only on fresh terminations.
        """
        if msg.attempt != self.attempt:
            return False  # stale report from a failed attempt
        self.last_activity = now
        if msg.exec_id in self.terminated_ids or msg.exec_id in self.early_terminated:
            return False  # duplicate report from a replayed execution
        for eid, server, level in msg.created:
            self._register(eid, server, level, origin=msg.server)
        self.results_expected += msg.results_sent
        if msg.exec_id in self.pending:
            del self.pending[msg.exec_id]
            self.terminated_total += 1
            self.terminated_ids.add(msg.exec_id)
        else:
            # Termination outracing the parent's creation report; _register
            # reconciles when the creation arrives.
            self.early_terminated.add(msg.exec_id)
        return True

    def on_result(self, now: float) -> None:
        self.results_received += 1
        self.last_activity = now

    @property
    def complete(self) -> bool:
        return (
            self.started
            and not self.pending
            and not self.early_terminated
            and self.results_received >= self.results_expected
        )

    def progress(self) -> dict[int, int]:
        """Outstanding execution count per traversal level (paper §IV-C:
        "the count of current unfinished traversal executions in each step
        can still help users estimate the remaining work and time")."""
        counts: Counter = Counter()
        for _, level, _ in self.pending.values():
            counts[level] += 1
        return dict(counts)

    def idle_for(self, now: float) -> float:
        return now - self.last_activity

    def snapshot(self) -> dict[str, int]:
        return {
            "created": self.created_total,
            "terminated": self.terminated_total,
            "pending": len(self.pending),
            "results_expected": self.results_expected,
            "results_received": self.results_received,
        }


@dataclass
class SyncBarrierState:
    """Barrier bookkeeping for the synchronous engine's coordinator."""

    attempt: int = 0
    level: int = 0
    done_servers: set[ServerId] = field(default_factory=set)
    #: batches each server should expect for the *next* level
    next_expected: Counter = field(default_factory=Counter)
    results_expected: int = 0
    results_received: int = 0
    finished_steps: bool = False
    last_activity: float = 0.0

    def reset_for_level(self, level: int) -> "SyncBarrierState":
        self.level = level
        self.done_servers.clear()
        self.next_expected = Counter()
        return self

    @property
    def complete(self) -> bool:
        return self.finished_steps and self.results_received >= self.results_expected
