"""The traversal-affiliate cache (paper §V-A).

Per-server cache of served requests keyed by the
``{travel-id, current-step, vertex-id}`` triple. A hit means the identical
request was already served on this server, so the new one can be safely
abandoned — no disk I/O, no downstream dispatch.

Two extensions over the paper's description, both correctness-driven:

* entries remember the rtn *anchor sets* already propagated, so a duplicate
  carrying anchors not seen before is treated as new work instead of being
  dropped (dropping it would lose returns — see DESIGN.md);
* ``travel`` keys include the restart attempt, so a restarted traversal does
  not see its failed predecessor's entries.

Eviction follows the paper's time-based policy: when full, the triples with
the smallest step id of the inserting traversal go first, because a larger
in-flight step id implies the oldest steps are already finished.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.engine.frontier import anchors_union
from repro.ids import VertexId
from repro.net.message import Anchors

TravelKey = Hashable  # (travel_id, attempt)


class TraversalAffiliateCache:
    """Bounded map ``(travel, level, vid) -> anchors already propagated``."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        # travel -> level -> {vid: anchors}
        self._data: dict[TravelKey, dict[int, dict[VertexId, Anchors]]] = {}
        self._size = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return self._size

    def lookup(self, travel: TravelKey, level: int, vid: VertexId) -> Optional[Anchors]:
        """Anchors already propagated for the triple, or None on miss."""
        levels = self._data.get(travel)
        if levels is None:
            self.misses += 1
            return None
        bucket = levels.get(level)
        if bucket is None or vid not in bucket:
            self.misses += 1
            return None
        self.hits += 1
        return bucket[vid]

    def insert(
        self, travel: TravelKey, level: int, vid: VertexId, anchors: Anchors
    ) -> None:
        """Record that (travel, level, vid) was served with ``anchors``.

        Merges anchors on re-insertion (anchor replay). Evicts when full.
        """
        existing = self._data.get(travel, {}).get(level, {})
        if vid in existing:
            existing[vid] = anchors_union(existing[vid], anchors)
            return
        if self._size >= self.capacity:
            self._evict(travel)
        self._data.setdefault(travel, {}).setdefault(level, {})[vid] = anchors
        self._size += 1

    def _evict(self, inserting_travel: TravelKey) -> None:
        """Drop one triple: smallest step of the inserting traversal, else
        the smallest step of any traversal (arbitrary but deterministic)."""
        victim_travel = None
        levels = self._data.get(inserting_travel)
        if levels:
            victim_travel = inserting_travel
        else:
            for t, lv in self._data.items():
                if lv:
                    victim_travel = t
                    break
        if victim_travel is None:  # pragma: no cover - cache empty yet full
            return
        levels = self._data[victim_travel]
        smallest = min(levels)
        bucket = levels[smallest]
        bucket.pop(next(iter(bucket)))
        if not bucket:
            del levels[smallest]
        if not levels:
            del self._data[victim_travel]
        self._size -= 1
        self.evictions += 1

    def forget_travel(self, travel: TravelKey) -> None:
        """Release everything a finished traversal cached."""
        levels = self._data.pop(travel, None)
        if levels is not None:
            self._size -= sum(len(b) for b in levels.values())

    def forget_travel_prefix(self, travel_id) -> None:
        """Release all attempts of one travel id (keys are (id, attempt))."""
        for key in [k for k in self._data if isinstance(k, tuple) and k[0] == travel_id]:
            self.forget_travel(key)

    def level_span(self, travel: TravelKey) -> tuple[int, int]:
        """(min, max) step currently cached for a traversal; (-1, -1) if none.

        The scheduling optimization exists to keep this span small (§V-B).
        """
        levels = self._data.get(travel)
        if not levels:
            return (-1, -1)
        return (min(levels), max(levels))
