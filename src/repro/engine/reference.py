"""Single-node reference evaluator — the correctness oracle.

Evaluates a :class:`~repro.lang.plan.TraversalPlan` directly on an in-memory
:class:`~repro.graph.builder.PropertyGraph`, with the exact semantics the
distributed engines must reproduce:

* level sets are per-step deduplicated (revisits across steps are allowed,
  revisits within a step are redundant — paper §II-C);
* ``rtn()``-marked vertices are returned only when a path through them
  reaches the end of the chain, computed here by an explicit
  backward-pruning pass.

The distributed engines are differential-tested against this oracle.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import EngineKind, TraversalResult, TraversalStats
from repro.graph.builder import PropertyGraph
from repro.ids import TravelId, VertexId
from repro.lang.composite import CompositePlan, composite_program
from repro.lang.plan import AggregateSpec, TraversalPlan, reduce_aggregate


class ReferenceEngine:
    """Sequential oracle over the whole (unpartitioned) graph.

    ``batch_frontier`` mirrors the distributed engines' option of the same
    name (DESIGN.md §16): forward levels advance by whole-frontier set
    union — collect every step destination, dedup once, filter each
    distinct vertex once — instead of the per-vertex loop. Semantically
    identical (filters are deterministic, so first-encounter filtering and
    filter-after-dedup agree); the equivalence suite runs the oracle both
    ways to prove it.
    """

    def __init__(self, graph: PropertyGraph, batch_frontier: bool = False):
        self.graph = graph
        self.batch_frontier = batch_frontier

    def _source_level(self, plan: TraversalPlan) -> set[VertexId]:
        if plan.source_ids is None:
            candidates = list(self.graph.vertex_ids())
        else:
            candidates = [v for v in plan.source_ids if v in self.graph]
        if not plan.source_filters:
            return set(candidates)
        out = set()
        for vid in candidates:
            if plan.source_filters.matches(self.graph.vertex(vid).effective_props()):
                out.add(vid)
        return out

    def _forward_levels(self, plan: TraversalPlan) -> list[set[VertexId]]:
        """Level sets L0..Ln under forward evaluation."""
        if self.batch_frontier:
            return self._forward_levels_batched(plan)
        levels = [self._source_level(plan)]
        for step in plan.steps:
            frontier = levels[-1]
            nxt: set[VertexId] = set()
            for vid in frontier:
                for dst, eprops in self._step_edges(vid, step):
                    if dst in nxt:
                        continue
                    if step.vertex_filters and not step.vertex_filters.matches(
                        self.graph.vertex(dst).effective_props()
                    ):
                        continue
                    nxt.add(dst)
            levels.append(nxt)
        return levels

    def _forward_levels_batched(self, plan: TraversalPlan) -> list[set[VertexId]]:
        """Whole-frontier set-union stepping; each distinct destination is
        filtered exactly once, after dedup."""
        levels = [self._source_level(plan)]
        for step in plan.steps:
            dsts: set[VertexId] = set()
            for vid in levels[-1]:
                dsts.update(dst for dst, _ in self._step_edges(vid, step))
            if step.vertex_filters:
                vf = step.vertex_filters
                dsts = {
                    dst
                    for dst in dsts
                    if vf.matches(self.graph.vertex(dst).effective_props())
                }
            levels.append(dsts)
        return levels

    def _step_edges(self, vid: VertexId, step) -> list[tuple[VertexId, dict]]:
        out = []
        for label in step.labels:
            for _, dst, eprops in self.graph.out_edges(vid, label):
                if step.edge_filters and not step.edge_filters.matches(eprops):
                    continue
                out.append((dst, eprops))
        return out

    def _backward_prune(
        self, plan: TraversalPlan, levels: list[set[VertexId]]
    ) -> list[set[VertexId]]:
        """B_k = vertices of L_k lying on some L0→Ln path (B_n = L_n)."""
        pruned: list[Optional[set[VertexId]]] = [None] * len(levels)
        pruned[-1] = set(levels[-1])
        for k in range(len(levels) - 2, -1, -1):
            step = plan.steps[k]
            downstream = pruned[k + 1]
            keep: set[VertexId] = set()
            for vid in levels[k]:
                for dst, _ in self._step_edges(vid, step):
                    if dst in downstream:
                        keep.add(vid)
                        break
            pruned[k] = keep
        return pruned  # type: ignore[return-value]

    def _group_keys(self, spec: AggregateSpec, vids) -> dict[VertexId, object]:
        """Per-vertex group keys for a ``group_count`` over ``vids``."""
        keys: dict[VertexId, object] = {}
        for vid in vids:
            vertex = self.graph.vertex(vid)
            if spec.needs_props:
                keys[vid] = vertex.effective_props().get(spec.by)
            else:
                keys[vid] = vertex.vtype
        return keys

    def run(self, plan, travel_id: TravelId = 0) -> TraversalResult:
        if isinstance(plan, CompositePlan):
            return self._run_composite(plan, travel_id)
        levels = self._forward_levels(plan)
        if plan.has_intermediate_returns:
            usable = self._backward_prune(plan, levels)
        else:
            usable = levels
        returned = {
            level: frozenset(usable[level]) for level in plan.return_levels
        }
        aggregate = None
        if plan.aggregate is not None:
            final = frozenset(usable[plan.final_level])
            keys = (
                self._group_keys(plan.aggregate, final)
                if plan.aggregate.needs_keys
                else {}
            )
            aggregate = reduce_aggregate(plan.aggregate, final, keys)
        return TraversalResult(
            travel_id=travel_id, returned=returned, aggregate=aggregate
        )

    def _run_composite(
        self, cplan: CompositePlan, travel_id: TravelId
    ) -> TraversalResult:
        """Drive the shared composite program synchronously: every child plan
        the program yields runs through :meth:`run`, making this the oracle
        the distributed drivers are differentially tested against."""
        prog = composite_program(cplan, reverse_available=False, travel_id=travel_id)
        try:
            child = next(prog)
            while True:
                child = prog.send(self.run(child, travel_id))
        except StopIteration as stop:
            frontier, aggregate = stop.value
        return TraversalResult(
            travel_id=travel_id,
            returned={cplan.final_level: frozenset(frontier)},
            aggregate=aggregate,
        )

    def run_with_stats(
        self, plan: TraversalPlan, travel_id: TravelId = 0
    ) -> tuple[TraversalResult, TraversalStats]:
        result = self.run(plan, travel_id)
        stats = TraversalStats(engine=EngineKind.REFERENCE)
        return result, stats
