"""Declarative, seeded fault plans.

A :class:`FaultPlan` states *what the network and the servers may do wrong*:
per-message-type probabilities for dropping, duplicating, and delaying
messages on the wire, plus scheduled server crash/recovery events. The plan
itself is pure data; :meth:`FaultPlan.injector` compiles it into a
:class:`~repro.faults.inject.FaultInjector` that turns the plan into
deterministic per-message decisions (same seed + same message stream →
identical decisions, the same contract the simulation kernel keeps).

Message-type keys are class names from :mod:`repro.net.message`
(``"TraverseRequest"``, ``"ExecStatus"``, ...) plus ``"Ack"`` for the
reliable channel's acknowledgement frames. When the reliable transport is
installed, faults apply to the *frames* on the wire — the payload's type
name is used — so a dropped dispatch is something the channel can recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence

from repro.errors import SimulationError
from repro.ids import ServerId
from repro.sim.rng import derive_seed

import numpy as np


@dataclass(frozen=True)
class FaultSpec:
    """Wire-fault probabilities for one message type.

    ``reorder`` adds a uniformly drawn extra delay in ``[0, reorder_window]``
    seconds, which lets later messages overtake earlier ones — the reordering
    fault the engines must tolerate.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.005
    reorder: float = 0.0
    reorder_window: float = 0.002

    def validate(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise SimulationError(f"fault probability {name}={p} not in [0, 1]")
        if self.delay_seconds < 0 or self.reorder_window < 0:
            raise SimulationError("fault delays must be non-negative")


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled server crash: at virtual time ``at`` the server loses
    its in-memory state (frontier, queues, caches, transport bookkeeping —
    LSM storage survives); at ``recover_at`` it rejoins with empty memory.
    ``recover_at = inf`` means the server never comes back."""

    server: ServerId
    at: float
    recover_at: float = float("inf")

    def validate(self, nservers: int, coordinator_server: ServerId) -> None:
        if not 0 <= self.server < nservers:
            raise SimulationError(f"crash server {self.server} out of range")
        if self.server == coordinator_server and self.recover_at == float("inf"):
            raise SimulationError(
                "a coordinator-hosting server crash must schedule recover_at: "
                "a coordinator that never comes back cannot complete any "
                "travel, so the plan is a config error, not a hang"
            )
        if self.at < 0 or self.recover_at <= self.at:
            raise SimulationError(
                f"crash window [{self.at}, {self.recover_at}) is not ordered"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded fault scenario: wire faults plus scheduled crashes."""

    seed: int = 0
    default: FaultSpec = field(default_factory=FaultSpec)
    #: overrides keyed by message-type name (see module docstring)
    per_type: Mapping[str, FaultSpec] = field(default_factory=dict)
    crashes: tuple[CrashEvent, ...] = ()

    def spec_for(self, type_name: str) -> FaultSpec:
        return self.per_type.get(type_name, self.default)

    def validate(self, nservers: int, coordinator_server: ServerId = 0) -> None:
        self.default.validate()
        for spec in self.per_type.values():
            spec.validate()
        for ev in self.crashes:
            ev.validate(nservers, coordinator_server)

    def injector(self) -> "FaultInjector":
        from repro.faults.inject import FaultInjector

        return FaultInjector(self)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


def sample_fault_plan(
    seed: int,
    *,
    nservers: int = 3,
    coordinator_server: ServerId = 0,
    max_drop: float = 0.12,
    max_duplicate: float = 0.10,
    max_delay: float = 0.20,
    crash_window: Optional[tuple[float, float]] = None,
    crash_servers: Optional[Sequence[ServerId]] = None,
    crash_coordinator: bool = False,
) -> FaultPlan:
    """Draw a random-but-reproducible fault plan for the chaos harness.

    Probabilities are sampled uniformly below the given caps; when
    ``crash_window=(lo, hi)`` is given, one mid-traversal crash is scheduled
    on a non-coordinator server with a recovery inside the window. With
    ``crash_coordinator=True`` an *additional* crash/recover of the
    coordinator-hosting server is scheduled inside the same window — drawn
    after the existing draws, so plans sampled without the flag are
    byte-for-byte what they were before the coordinator became crashable.
    Passing an empty ``crash_servers`` sequence together with the flag makes
    the coordinator the *only* crash victim.
    """
    rng = np.random.default_rng(derive_seed(seed, "faults.sample"))
    default = FaultSpec(
        drop=float(rng.uniform(0.0, max_drop)),
        duplicate=float(rng.uniform(0.0, max_duplicate)),
        delay=float(rng.uniform(0.0, max_delay)),
        delay_seconds=float(rng.uniform(0.001, 0.01)),
        reorder=float(rng.uniform(0.0, max_delay)),
        reorder_window=float(rng.uniform(0.0005, 0.005)),
    )
    crashes: tuple[CrashEvent, ...] = ()
    if crash_window is not None:
        lo, hi = crash_window
        candidates = [
            s
            for s in (crash_servers if crash_servers is not None else range(nservers))
            if s != coordinator_server
        ]
        if not candidates and not crash_coordinator:
            raise SimulationError("no crashable server outside the coordinator")
        if candidates:
            victim = candidates[int(rng.integers(0, len(candidates)))]
            at = float(rng.uniform(lo, lo + 0.5 * (hi - lo)))
            recover_at = float(rng.uniform(at + 0.25 * (hi - lo), hi))
            crashes = (CrashEvent(server=victim, at=at, recover_at=recover_at),)
        if crash_coordinator:
            c_at = float(rng.uniform(lo, lo + 0.5 * (hi - lo)))
            c_recover = float(rng.uniform(c_at + 0.25 * (hi - lo), hi))
            crashes += (
                CrashEvent(server=coordinator_server, at=c_at, recover_at=c_recover),
            )
    elif crash_coordinator:
        raise SimulationError("crash_coordinator requires a crash_window")
    plan = FaultPlan(seed=seed, default=default, crashes=crashes)
    plan.validate(nservers, coordinator_server)
    return plan
