"""Compiling a fault plan into deterministic per-message decisions.

The injector is the single injection point the runtimes consult for every
wire delivery. Determinism contract: exactly four uniform draws per decided
message, in a fixed order, from one seeded stream — so the decision sequence
is a pure function of (plan seed, message stream), and on the simulated
runtime the message stream itself is a pure function of the experiment seed.
Adding a new fault dimension must keep the draw count fixed or derive a new
named stream (:func:`repro.sim.rng.derive_seed`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.rng import derive_seed

#: Decision for one wire delivery. ``extra_delay`` is added to the network
#: latency; ``duplicates`` extra copies are delivered ``dup_spacing`` apart.


@dataclass(frozen=True)
class FaultDecision:
    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0
    dup_spacing: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.drop and self.duplicates == 0 and self.extra_delay == 0.0


CLEAN = FaultDecision()


def payload_type_name(msg) -> str:
    """The fault-plan key for a message: the payload's class name for
    reliable-channel data frames, ``"Ack"`` for ack frames, else the
    message's own class name."""
    payload = getattr(msg, "payload", None)
    if payload is not None:
        return type(payload).__name__
    name = type(msg).__name__
    return "Ack" if name == "AckFrame" else name


class FaultInjector:
    """Deterministic per-message fault decisions for one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = np.random.default_rng(derive_seed(plan.seed, "faults.wire"))
        self.decisions = 0

    def decide(self, src, dst, msg) -> FaultDecision:
        spec: FaultSpec = self.plan.spec_for(payload_type_name(msg))
        self.decisions += 1
        # Fixed draw order keeps the stream aligned across message types.
        u_drop, u_dup, u_delay, u_reorder = self._rng.uniform(0.0, 1.0, size=4)
        if u_drop < spec.drop:
            return FaultDecision(drop=True)
        duplicates = 1 if u_dup < spec.duplicate else 0
        extra = 0.0
        if u_delay < spec.delay:
            extra += spec.delay_seconds
        if u_reorder < spec.reorder:
            # Reuse the reorder draw to place the message inside the window:
            # deterministic, and no extra draw that would shift the stream.
            extra += spec.reorder_window * (u_reorder / max(spec.reorder, 1e-12))
        return FaultDecision(
            duplicates=duplicates,
            extra_delay=extra,
            dup_spacing=spec.reorder_window if duplicates else 0.0,
        )
