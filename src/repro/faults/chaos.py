"""Chaos harness: differential runs under sampled fault plans.

The correctness contract for the whole fault stack is *differential*: a
traversal under drops, duplicates, delays, and a mid-flight server crash must
either return a result set identical to the fault-free run at the same seed,
or fail cleanly with :class:`~repro.errors.TraversalFailed` after
``max_restarts`` — never silently return a wrong set. On the simulated
runtime the faulty run is additionally *deterministic*: the same fault plan
and seed reproduce the same ``net.*``/``faults.*`` counters, so a chaos
failure is replayable from its seed alone.

Used by ``tests/test_chaos.py`` and the ``chaos`` bench experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.coordinator import CoordinatorConfig
from repro.engine.base import EngineKind
from repro.engine.options import EngineOptions, options_for
from repro.errors import TraversalCancelled, TraversalError
from repro.faults.plan import FaultPlan, sample_fault_plan
from repro.graph.builder import PropertyGraph
from repro.lang.gtravel import GTravel
from repro.lang.plan import TraversalPlan
from repro.sched.scheduler import SchedulerConfig


def _net_counters(snapshot: dict) -> dict:
    return {
        k: v
        for k, v in snapshot.get("counters", {}).items()
        if k.startswith(("net.", "faults."))
    }


def _result_payload(result) -> dict:
    """Comparable payload for a differential verdict: the per-level vertex
    sets plus, when the plan carries an aggregate, its reduced value — faults
    must corrupt neither. Levels are int keys, so the string key never
    collides."""
    payload: dict = dict(result.returned)
    if result.aggregate is not None:
        agg = result.aggregate
        payload["aggregate"] = (agg.kind, agg.total, agg.groups)
    return payload


@dataclass
class ChaosOutcome:
    """One differential chaos run: fault-free baseline vs. faulty rerun."""

    seed: int
    plan: FaultPlan
    baseline: dict
    #: vertex sets of the faulty run, or None if it failed
    faulty: Optional[dict]
    matched: bool
    failed_cleanly: bool
    error: Optional[str]
    baseline_duration: float
    net_counters: dict = field(default_factory=dict)
    #: travel_id → reconstructed :class:`~repro.obs.trace.TraversalDag` of the
    #: faulty run, when the check ran with ``trace=True`` (None otherwise)
    traces: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """The contract: identical results, or a clean declared failure."""
        return self.matched or self.failed_cleanly


def run_fault_free(
    graph: PropertyGraph,
    query: Union[GTravel, TraversalPlan],
    *,
    engine: Union[EngineKind, EngineOptions] = EngineKind.GRAPHTREK,
    nservers: int = 3,
    edge_layout: str = "grouped",
) -> tuple[dict, float]:
    """Baseline run; returns (result sets, virtual duration)."""
    cluster = Cluster.build(
        graph,
        ClusterConfig(nservers=nservers, engine=engine, edge_layout=edge_layout),
    )
    start = cluster.now
    outcome = cluster.traverse(query)
    duration = cluster.now - start
    cluster.shutdown()
    return _result_payload(outcome.result), duration


def run_under_faults(
    graph: PropertyGraph,
    query: Union[GTravel, TraversalPlan],
    plan: FaultPlan,
    *,
    engine: Union[EngineKind, EngineOptions] = EngineKind.GRAPHTREK,
    nservers: int = 3,
    coordinator_config: Optional[CoordinatorConfig] = None,
    reliable: bool = True,
    trace: bool = False,
    journal: bool = False,
    edge_layout: str = "grouped",
) -> tuple[Optional[dict], Optional[str], dict, Optional[dict]]:
    """One traversal under ``plan``.

    Returns ``(results-or-None, error, counters, traces)``; ``traces`` maps
    travel_id → reconstructed execution DAG when ``trace=True``, else None.
    Because the recorder survives the traversal (it lives on the cluster, not
    the exception path), a run that exhausts its restart budget still yields
    a DAG — one whose event stream ends in ``travel.failed``.
    """
    config = ClusterConfig(
        nservers=nservers,
        engine=engine,
        fault_plan=plan,
        reliable=reliable,
        coordinator_config=coordinator_config or CoordinatorConfig(),
        trace_enabled=trace,
        journal=journal,
        edge_layout=edge_layout,
    )
    cluster = Cluster.build(graph, config)
    returned: Optional[dict] = None
    error: Optional[str] = None
    try:
        outcome = cluster.traverse(query)
        returned = _result_payload(outcome.result)
    except TraversalError as exc:
        error = f"{type(exc).__name__}: {exc}"
    counters = _net_counters(cluster.metrics_snapshot())
    traces: Optional[dict] = None
    if trace:
        from repro.obs.trace import assemble_all

        traces = {d.travel_id: d for d in assemble_all(cluster.board.obs.trace)}
    cluster.shutdown()
    return returned, error, counters, traces


def chaos_coordinator_config(baseline_duration: float) -> CoordinatorConfig:
    """Watchdog policy scaled to the traversal under test: tight enough that
    lost work is detected within a few traversal-lengths, loose enough that
    retry backoff does not trip it."""
    timeout = max(4.0 * baseline_duration, 0.05)
    return CoordinatorConfig(
        exec_timeout=timeout,
        watch_interval=timeout / 4.0,
        max_restarts=3,
        fine_grained_recovery=True,
    )


def chaos_check(
    graph: PropertyGraph,
    query: Union[GTravel, TraversalPlan],
    *,
    seed: int,
    engine: Union[EngineKind, EngineOptions] = EngineKind.GRAPHTREK,
    nservers: int = 3,
    crash: bool = False,
    crash_coordinator: bool = False,
    coordinator_config: Optional[CoordinatorConfig] = None,
    reliable: bool = True,
    max_drop: float = 0.12,
    max_duplicate: float = 0.10,
    trace: bool = False,
    edge_layout: str = "grouped",
) -> ChaosOutcome:
    """Run the differential check for one sampled fault plan.

    ``crash=True`` additionally schedules one mid-traversal server crash,
    with the crash window placed inside the fault-free run's duration so the
    crash lands while work is in flight. ``crash_coordinator=True`` also
    crashes the *coordinator-hosting* server mid-traversal (with a scheduled
    recovery) and runs the faulty leg with the traversal journal enabled, so
    the differential verdict covers journal replay and epoch fencing.
    ``trace=True`` runs the faulty leg with the flight recorder on and
    attaches the reconstructed execution DAG(s) to ``ChaosOutcome.traces``.
    ``edge_layout`` runs both legs under the named storage layout (the
    columnar chaos leg of the batch-equivalence suite uses it).
    """
    baseline, duration = run_fault_free(
        graph, query, engine=engine, nservers=nservers, edge_layout=edge_layout
    )
    crash_window = (
        (0.2 * duration, 3.0 * duration) if (crash or crash_coordinator) else None
    )
    plan = sample_fault_plan(
        seed,
        nservers=nservers,
        max_drop=max_drop,
        max_duplicate=max_duplicate,
        crash_window=crash_window,
        crash_servers=None if crash else (),
        crash_coordinator=crash_coordinator,
    )
    cc = coordinator_config or chaos_coordinator_config(duration)
    faulty, error, counters, traces = run_under_faults(
        graph,
        query,
        plan,
        engine=engine,
        nservers=nservers,
        coordinator_config=cc,
        reliable=reliable,
        trace=trace,
        journal=crash_coordinator,
        edge_layout=edge_layout,
    )
    return ChaosOutcome(
        seed=seed,
        plan=plan,
        baseline=baseline,
        faulty=faulty,
        matched=faulty is not None and faulty == baseline,
        failed_cleanly=faulty is None and error is not None,
        error=error,
        baseline_duration=duration,
        net_counters=counters,
        traces=traces,
    )


# -- concurrent chaos: mixed cancel + crash schedules ------------------------


@dataclass
class QueryVerdict:
    """Differential verdict for one query of a concurrent chaos run."""

    index: int
    baseline: dict
    faulty: Optional[dict]
    error: Optional[str]
    had_deadline: bool
    cancelled: bool
    matched: bool
    failed_cleanly: bool

    @property
    def ok(self) -> bool:
        """Per-query contract: identical to its serial fault-free oracle, a
        clean declared failure, or — only if this query carried a deadline —
        a :class:`~repro.errors.TraversalCancelled`."""
        if self.cancelled:
            return self.had_deadline
        return self.matched or self.failed_cleanly


@dataclass
class ChaosManyOutcome:
    """One concurrent differential chaos run: N queries submitted together
    through the scheduler under a sampled fault plan, each judged against
    its own serial fault-free oracle."""

    seed: int
    plan: FaultPlan
    policy: str
    verdicts: list[QueryVerdict]
    #: coordinator/scheduler state left behind after every event resolved —
    #: must be empty (no leaked registry entries, active travels, or queue)
    leaked: list[str]
    baseline_horizon: float
    net_counters: dict = field(default_factory=dict)
    #: terminal MigrationState of the concurrent migration (``migrate=True``
    #: runs only); its phase is ``done`` or ``aborted`` — both are clean
    migration_state: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.leaked and all(v.ok for v in self.verdicts)


def chaos_check_many(
    graph: PropertyGraph,
    queries: list[Union[GTravel, TraversalPlan]],
    *,
    seed: int,
    engine: Union[EngineKind, EngineOptions] = EngineKind.GRAPHTREK,
    nservers: int = 3,
    scheduler: str = "fifo",
    scheduler_config: Optional[SchedulerConfig] = None,
    deadlines: Optional[list[Optional[float]]] = None,
    tenants: Optional[list[str]] = None,
    crash: bool = False,
    crash_coordinator: bool = False,
    reliable: bool = True,
    max_drop: float = 0.12,
    max_duplicate: float = 0.10,
    migrate: bool = False,
    migration=None,
) -> ChaosManyOutcome:
    """The concurrent variant of :func:`chaos_check`: submit every query at
    once through the admission scheduler, under one sampled fault plan.

    ``deadlines[i]`` (virtual seconds from admission, or None) arms
    scheduler-driven cancellation for query *i*, so the run exercises mixed
    cancel + crash schedules. ``crash_coordinator=True`` crashes (and
    recovers) the coordinator-hosting server mid-workload with the journal
    enabled, so queued, running, and composite travels all cross a
    coordinator epoch. The contract, per query: match its serial
    fault-free oracle, fail cleanly, or — deadline queries only — cancel
    cleanly. Co-running queries must be unaffected by a neighbour's
    cancellation, and the cluster must hold zero scheduler/coordinator/
    registry state once every completion event has resolved
    (``ChaosManyOutcome.leaked``).

    ``migrate=True`` additionally races an online shard migration
    (half of server 1's vertices → server 2, knobs from ``migration``)
    against the workload: the same per-query contract must hold while
    ownership moves, the migration must reach a clean terminal phase
    (``done``, or ``aborted`` under fatal faults — never wedged), every
    migrated vertex must end up owned by exactly one server that actually
    holds it, and the migrator must leak no per-migration state.
    """
    deadlines = deadlines if deadlines is not None else [None] * len(queries)
    tenants = tenants if tenants is not None else ["default"] * len(queries)
    if len(deadlines) != len(queries) or len(tenants) != len(queries):
        raise ValueError("deadlines/tenants must align with queries")

    baselines: list[dict] = []
    durations: list[float] = []
    for query in queries:
        base, duration = run_fault_free(
            graph, query, engine=engine, nservers=nservers
        )
        baselines.append(base)
        durations.append(duration)
    horizon = max(durations) if durations else 0.05

    crash_window = (
        (0.2 * horizon, 3.0 * horizon) if (crash or crash_coordinator) else None
    )
    plan = sample_fault_plan(
        seed,
        nservers=nservers,
        max_drop=max_drop,
        max_duplicate=max_duplicate,
        crash_window=crash_window,
        crash_servers=None if crash else (),
        crash_coordinator=crash_coordinator,
    )
    opts = engine if isinstance(engine, EngineOptions) else options_for(engine)
    opts = replace(opts, scheduler=scheduler)
    cluster = Cluster.build(
        graph,
        ClusterConfig(
            nservers=nservers,
            engine=opts,
            fault_plan=plan,
            reliable=reliable,
            coordinator_config=chaos_coordinator_config(horizon),
            scheduler_config=scheduler_config,
            journal=crash_coordinator or migrate,
            migration=migration,
        ),
    )
    cluster.cold_start()
    submissions = [
        cluster.submit(query, tenant=tenant, deadline=deadline)
        for query, tenant, deadline in zip(queries, tenants, deadlines)
    ]

    mig_event = None
    mig_vids: tuple = ()
    if migrate:
        local = sorted(cluster.servers[1].store.local_vertices())
        mig_vids = tuple(local[: max(1, len(local) // 2)])
        _, mig_event = cluster.rebalance(1, 2, vids=mig_vids, wait=False)

    verdicts: list[QueryVerdict] = []
    for i, (travel_id, event) in enumerate(submissions):
        faulty: Optional[dict] = None
        error: Optional[str] = None
        cancelled = False
        try:
            outcome = cluster.runtime.run_until_complete(event)
            faulty = _result_payload(outcome.result)
        except TraversalCancelled as exc:
            cancelled = True
            error = f"{type(exc).__name__}: {exc}"
        except TraversalError as exc:
            error = f"{type(exc).__name__}: {exc}"
        verdicts.append(
            QueryVerdict(
                index=i,
                baseline=baselines[i],
                faulty=faulty,
                error=error,
                had_deadline=deadlines[i] is not None,
                cancelled=cancelled,
                matched=faulty is not None and faulty == baselines[i],
                failed_cleanly=not cancelled and faulty is None and error is not None,
            )
        )

    migration_state = None
    if mig_event is not None:
        migration_state = cluster.runtime.run_until_complete(mig_event)

    leaked: list[str] = []
    if cluster.scheduler.queue_depth:
        leaked.append(f"scheduler queue depth {cluster.scheduler.queue_depth}")
    if cluster.scheduler.inflight_count:
        leaked.append(f"scheduler inflight {cluster.scheduler.inflight_count}")
    for travel_id, _ in submissions:
        if cluster.registry.get(travel_id) is not None:
            leaked.append(f"registry entry for travel {travel_id}")
        if travel_id in cluster.coordinator._active:
            leaked.append(f"active coordinator state for travel {travel_id}")
        if travel_id in cluster.coordinator._composites:
            leaked.append(f"composite coordinator state for travel {travel_id}")
    if cluster.supervisor is not None and cluster.supervisor.live_bindings:
        leaked.append(
            f"recovery supervisor bindings {cluster.supervisor.live_bindings}"
        )
    if migrate:
        if migration_state is None or migration_state.phase not in (
            "done",
            "aborted",
        ):
            leaked.append(
                "migration never reached a terminal phase: "
                f"{getattr(migration_state, 'phase', None)}"
            )
        leaked.extend(cluster.migrator.leaked_state())
        # ownership consistency: every migrated vertex is owned by exactly
        # one server, and that server actually holds its data
        for vid in mig_vids:
            owner = cluster.routing.owner(vid)
            if not cluster.servers[owner].store.has_vertex(vid):
                leaked.append(f"vertex {vid} lost: owner {owner} lacks it")
            holders = [
                s
                for s in range(nservers)
                if s != owner and cluster.servers[s].store.has_vertex(vid)
            ]
            if holders:
                leaked.append(
                    f"vertex {vid} duplicated: owner {owner}, extra {holders}"
                )
    counters = _net_counters(cluster.metrics_snapshot())
    cluster.shutdown()
    return ChaosManyOutcome(
        seed=seed,
        plan=plan,
        policy=scheduler,
        verdicts=verdicts,
        leaked=leaked,
        baseline_horizon=horizon,
        net_counters=counters,
        migration_state=migration_state,
    )
