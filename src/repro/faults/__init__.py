"""Deterministic fault injection: seeded fault plans, per-message decisions,
and the chaos harness that checks traversals survive them.

The chaos harness lives in :mod:`repro.faults.chaos` and is imported
explicitly (``from repro.faults.chaos import chaos_check``): it sits *above*
the cluster layer, so pulling it into this package ``__init__`` would cycle
the import graph (chaos → cluster → faults)."""

from repro.faults.inject import CLEAN, FaultDecision, FaultInjector, payload_type_name
from repro.faults.plan import CrashEvent, FaultPlan, FaultSpec, sample_fault_plan

__all__ = [
    "CLEAN",
    "CrashEvent",
    "FaultDecision",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "payload_type_name",
    "sample_fault_plan",
]
