"""Common exception types for the GraphTrek reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StorageError(ReproError):
    """Raised by the key-value / graph storage layer."""


class KeyNotFound(StorageError):
    """A requested key (or vertex) does not exist in the store."""


class CorruptCheckpoint(StorageError):
    """A checkpoint failed its integrity check on restore.

    Raised when an SSTable file or the manifest is truncated, fails its
    CRC32, or disagrees with the manifest's recorded shape. A damaged
    checkpoint is surfaced as a typed error instead of silently restoring
    a truncated store.
    """


class CorruptAdjacencyBlock(StorageError):
    """A columnar adjacency block failed its integrity check on decode.

    Raised when a block's magic byte is wrong, a varint runs past the end
    of the buffer, the entry count disagrees with the payload, trailing
    bytes follow the checksum, or the CRC32 does not match. Decoding fails
    loudly rather than surfacing a silently-garbled neighbor list.
    """


class UnknownEdgeLayout(StorageError):
    """An ``edge_layout`` name is not one of the registered layouts.

    Raised at configuration time (GraphStore construction, cluster build,
    checkpoint restore) so a typo fails with the list of valid names
    instead of silently running — or restoring — under the default layout.
    Carries the offending ``name`` and the valid ``choices``.
    """

    def __init__(self, name: object, choices: tuple[str, ...]):
        super().__init__(
            f"unknown edge layout {name!r}; valid layouts: {', '.join(choices)}"
        )
        self.name = name
        self.choices = choices


class CorruptJournal(StorageError):
    """A traversal-journal record failed its integrity check on replay.

    Raised when a record's length prefix runs past the end of the journal
    or its CRC32 does not match. Replay fails loudly rather than silently
    rebuilding coordinator state from a damaged log.
    """


class GraphError(ReproError):
    """Raised for invalid property-graph construction or lookups."""


class PartitionError(ReproError):
    """Raised by graph partitioners for invalid configurations."""


class QueryError(ReproError):
    """Raised when a GTravel query is malformed or cannot be compiled."""


class UnsupportedProfileTarget(QueryError):
    """``profile()`` was asked to run a plan kind it cannot attribute.

    Composite plans (repeat/union/back) fan out into per-child linear
    traversals; the parent has no single step timeline to profile. Carries
    the offending plan ``kind`` and a ``hint`` naming the supported
    alternative (``explain()`` for the operator tree, or profiling the
    child plans individually).
    """

    def __init__(self, kind: str, hint: str):
        super().__init__(f"profile() does not support {kind} plans: {hint}")
        self.kind = kind
        self.hint = hint


class TraversalError(ReproError):
    """Raised when a distributed traversal fails at execution time."""


class TraversalFailed(TraversalError):
    """A traversal was detected as failed (lost execution / timeout).

    Carries ``travel_id`` and a human-readable ``reason`` so that callers
    (and the coordinator's restart logic) can act on it.
    """

    def __init__(self, travel_id: int, reason: str):
        super().__init__(f"traversal {travel_id} failed: {reason}")
        self.travel_id = travel_id
        self.reason = reason


class AdmissionRejected(TraversalError):
    """The scheduler's bounded pending queue is full; the submission was
    refused before a travel id was assigned.

    Carries the ``tenant`` that submitted and a ``reason`` naming the limit
    that tripped, so multi-tenant clients can back off per tenant.
    """

    def __init__(self, tenant: str, reason: str):
        super().__init__(f"submission rejected for tenant {tenant!r}: {reason}")
        self.tenant = tenant
        self.reason = reason


class RepeatDepthExceeded(TraversalError):
    """A ``repeat(...).until(...)`` loop hit its depth cap with vertices
    still failing the exit predicate.

    The cap (``max_depth``, default 32) is the documented guarantee that an
    unsatisfiable predicate terminates with a typed error instead of walking
    the graph forever. Carries ``travel_id`` and the offending ``max_depth``.
    """

    def __init__(self, travel_id: int, max_depth: int):
        super().__init__(
            f"traversal {travel_id}: repeat().until() exceeded max_depth="
            f"{max_depth} with unsatisfied vertices still in the frontier"
        )
        self.travel_id = travel_id
        self.max_depth = max_depth


class TraversalCancelled(TraversalError):
    """A traversal was cancelled (deadline exceeded or explicit cancel)
    before it produced a result.

    Mirrors :class:`TraversalFailed`: carries ``travel_id`` and a
    human-readable ``reason``. Cancellation is clean — outstanding
    executions quiesce through the stale-attempt machinery and no partial
    result is ever surfaced.
    """

    def __init__(self, travel_id: int, reason: str):
        super().__init__(f"traversal {travel_id} cancelled: {reason}")
        self.travel_id = travel_id
        self.reason = reason


class TelemetryDisabled(ReproError):
    """An operation needs the live telemetry plane, but the cluster was
    built with ``telemetry_enabled=False``.

    Carries the ``operation`` that was attempted so automation (the
    rebalancer policy loop subscribes to ``hot_shard_report()``) can
    distinguish "misconfigured cluster" from a transient failure.
    """

    def __init__(self, operation: str):
        super().__init__(
            f"{operation} requires the telemetry plane; build the cluster "
            "with telemetry_enabled=True"
        )
        self.operation = operation


class RebalanceError(ReproError):
    """Raised by the shard-migration subsystem (:mod:`repro.rebalance`) for
    invalid migration requests or unrecoverable migration failures.

    Carries the migration id (``mid``, None for pre-admission validation
    failures) and a human-readable ``reason``.
    """

    def __init__(self, reason: str, mid=None):
        super().__init__(
            f"migration {mid} failed: {reason}" if mid is not None else reason
        )
        self.mid = mid
        self.reason = reason


class StaleRoutingVersion(RebalanceError):
    """A migration-protocol action carried a routing-table version that is
    no longer current — the dispatch is fenced, never applied.

    Carries the ``expected`` (current) and ``got`` (stale) versions.
    """

    def __init__(self, expected: int, got: int, what: str = "dispatch"):
        super().__init__(
            f"stale routing version for {what}: got v{got}, table is at "
            f"v{expected}"
        )
        self.expected = expected
        self.got = got
        self.what = what


class RuntimeUnavailable(ReproError):
    """Raised when an operation requires a runtime feature that is absent."""


class TraceError(ReproError):
    """Raised when a recorded traversal trace cannot be reconstructed into a
    well-formed execution DAG (orphan executions, cycles)."""
