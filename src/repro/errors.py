"""Common exception types for the GraphTrek reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class StorageError(ReproError):
    """Raised by the key-value / graph storage layer."""


class KeyNotFound(StorageError):
    """A requested key (or vertex) does not exist in the store."""


class GraphError(ReproError):
    """Raised for invalid property-graph construction or lookups."""


class PartitionError(ReproError):
    """Raised by graph partitioners for invalid configurations."""


class QueryError(ReproError):
    """Raised when a GTravel query is malformed or cannot be compiled."""


class TraversalError(ReproError):
    """Raised when a distributed traversal fails at execution time."""


class TraversalFailed(TraversalError):
    """A traversal was detected as failed (lost execution / timeout).

    Carries ``travel_id`` and a human-readable ``reason`` so that callers
    (and the coordinator's restart logic) can act on it.
    """

    def __init__(self, travel_id: int, reason: str):
        super().__init__(f"traversal {travel_id} failed: {reason}")
        self.travel_id = travel_id
        self.reason = reason


class RuntimeUnavailable(ReproError):
    """Raised when an operation requires a runtime feature that is absent."""


class TraceError(ReproError):
    """Raised when a recorded traversal trace cannot be reconstructed into a
    well-formed execution DAG (orphan executions, cycles)."""
