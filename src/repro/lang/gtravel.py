"""The GTravel query-building language (paper §III).

GTravel is an iterative, chainable builder. Every method returns the caller
instance so queries read exactly like the paper's listings::

    from repro.lang import GTravel, EQ, RANGE

    q = (
        GTravel.v(user_a)
        .e("run").ea("start_ts", RANGE, (t_s, t_e))
        .e("read").va("type", EQ, "text")
        .rtn()
    )
    plan = q.compile()

Semantics:

* ``v(*ids)`` — the entry point: explicit vertex ids, or no arguments to
  start from every vertex (the underlying store's index resolves them).
* ``va(key, op, value)`` — filter the *current* working set of vertices.
  Before any ``e()`` it filters the sources; after an ``e()`` it filters that
  step's destination vertices.
* ``e(label)`` — traverse edges with ``label`` from the working set.
* ``ea(key, op, value)`` — filter the edges of the most recent ``e()``.
* ``rtn()`` — mark the current working set for return; marked vertices are
  returned only if a path through them reaches the end of the chain.

``OR`` across filters is not supported (by design, as in the paper); run
separate traversals and combine them with :func:`union_results`.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.errors import QueryError
from repro.ids import VertexId
from repro.lang.filters import FilterOp, FilterSet, PropertyFilter
from repro.lang.plan import Step, TraversalPlan


class GTravel:
    """Chainable traversal builder; see module docstring for semantics."""

    def __init__(self) -> None:
        self._source_ids: Optional[tuple[VertexId, ...]] = None
        self._source_set = False
        self._source_filters = FilterSet()
        self._steps: list[dict[str, Any]] = []  # label, edge_filters, vertex_filters
        self._rtn_levels: set[int] = set()

    # -- entry points -------------------------------------------------------

    @classmethod
    def v(cls, *vids: VertexId) -> "GTravel":
        """Start a traversal from explicit vertex ids (or all vertices)."""
        return cls().v_(*vids)

    def v_(self, *vids: VertexId) -> "GTravel":
        """Instance form of :meth:`v`, for completeness."""
        if self._source_set:
            raise QueryError("v() may only be called once per traversal")
        if self._steps:
            raise QueryError("v() must come before any e() step")
        self._source_set = True
        if vids:
            for vid in vids:
                if not isinstance(vid, int) or isinstance(vid, bool):
                    raise QueryError(f"vertex ids must be ints, got {vid!r}")
            self._source_ids = tuple(dict.fromkeys(vids))  # dedupe, keep order
        else:
            self._source_ids = None  # all vertices
        return self

    # -- steps ----------------------------------------------------------------

    def e(self, *labels: str) -> "GTravel":
        """Traverse edges from the current working set.

        The paper's ``e()`` takes one label; we also accept several —
        ``e("read", "write")`` follows edges with *any* of the labels (an OR
        over labels, which the layout serves with a single scan of the
        vertex's edge block).
        """
        self._require_source("e()")
        if not labels:
            raise QueryError("e() requires at least one edge label")
        for label in labels:
            if not isinstance(label, str) or not label:
                raise QueryError(f"edge label must be a non-empty str, got {label!r}")
            if label.startswith("~"):
                # "~" prefixes the planner's internal reverse-edge labels
                raise QueryError(
                    f"edge label {label!r} is reserved: '~'-prefixed labels "
                    "denote reverse edges and are planner-internal"
                )
        self._steps.append(
            {
                "labels": tuple(dict.fromkeys(labels)),
                "edge_filters": FilterSet(),
                "vertex_filters": FilterSet(),
            }
        )
        return self

    def ea(self, key: str, op: FilterOp, value: Any) -> "GTravel":
        """Filter the edges selected by the most recent ``e()``."""
        if not self._steps:
            raise QueryError("ea() requires a preceding e() step")
        flt = PropertyFilter(key, op, value)
        step = self._steps[-1]
        step["edge_filters"] = step["edge_filters"].add(flt)
        return self

    def va(self, key: str, op: FilterOp, value: Any) -> "GTravel":
        """Filter the current working set of vertices."""
        self._require_source("va()")
        flt = PropertyFilter(key, op, value)
        if not self._steps:
            self._source_filters = self._source_filters.add(flt)
        else:
            step = self._steps[-1]
            step["vertex_filters"] = step["vertex_filters"].add(flt)
        return self

    def rtn(self) -> "GTravel":
        """Mark the current working set for return (paper §IV-D)."""
        self._require_source("rtn()")
        self._rtn_levels.add(len(self._steps))
        return self

    # -- compilation -----------------------------------------------------------

    def compile(self) -> TraversalPlan:
        """Validate and freeze the chain into a :class:`TraversalPlan`."""
        self._require_source("compile()")
        steps = tuple(
            Step(s["labels"], s["edge_filters"], s["vertex_filters"])
            for s in self._steps
        )
        return TraversalPlan(
            source_ids=self._source_ids,
            source_filters=self._source_filters,
            steps=steps,
            rtn_levels=frozenset(self._rtn_levels),
        )

    def _require_source(self, what: str) -> None:
        if not self._source_set:
            raise QueryError(f"{what} requires a preceding v() entry point")

    def describe(self) -> str:
        return self.compile().describe()

    def explain(self, planner: Optional[Any] = None) -> dict:
        """Compile and explain: the step plan with selectors, filters, and
        rtn marks as a structured dict (no traversal runs). An empty chain
        (no ``v()`` yet) explains to a well-formed empty plan document
        rather than raising. With a ``planner``, the document shows
        original vs. optimized plans with cost estimates."""
        if not self._source_set:
            from repro.obs.explain import empty_plan_document

            return empty_plan_document()
        return self.compile().explain(planner=planner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            return f"<GTravel {self.describe()}>"
        except QueryError:
            return "<GTravel (incomplete)>"


def union_results(*results: Iterable[VertexId]) -> set[VertexId]:
    """Combine the returned vertex sets of several traversals.

    The paper's substitute for an ``OR`` filter: issue one traversal per
    disjunct and union the results.
    """
    out: set[VertexId] = set()
    for result in results:
        out.update(result)
    return out
