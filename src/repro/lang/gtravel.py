"""The GTravel query-building language (paper §III).

GTravel is an iterative, chainable builder. Every method returns the caller
instance so queries read exactly like the paper's listings::

    from repro.lang import GTravel, EQ, RANGE

    q = (
        GTravel.v(user_a)
        .e("run").ea("start_ts", RANGE, (t_s, t_e))
        .e("read").va("type", EQ, "text")
        .rtn()
    )
    plan = q.compile()

Semantics:

* ``v(*ids)`` — the entry point: explicit vertex ids, or no arguments to
  start from every vertex (the underlying store's index resolves them).
* ``va(key, op, value)`` — filter the *current* working set of vertices.
  Before any ``e()`` it filters the sources; after an ``e()`` it filters that
  step's destination vertices.
* ``e(label)`` — traverse edges with ``label`` from the working set.
* ``ea(key, op, value)`` — filter the edges of the most recent ``e()``.
* ``rtn()`` — mark the current working set for return; marked vertices are
  returned only if a path through them reaches the end of the chain.

Composite operators (see :mod:`repro.lang.composite` for semantics):

* ``s()`` — entry point for a *sub-chain* (no sources), used as the body of
  ``repeat()`` / branches of ``union()``;
* ``repeat(sub).times(k)`` / ``repeat(sub).until(key, op, value)`` — bounded
  recursion with a hard depth cap on the ``until`` form;
* ``union(sub1, sub2, ...)`` — evaluate every branch from the current
  working set, merge the outputs deduplicated (the in-language form of the
  paper's "separate traversals + union" OR workaround);
* ``as_(name)`` / ``back(name)`` — bind the working set, later rewind to the
  bound vertices that reach the current frontier;
* ``count()`` / ``group_count(by=...)`` — reduce the final working set at
  the coordinator instead of returning the vertex set alone.

``OR`` across filters is not supported (by design, as in the paper); use
``union()`` — or run separate traversals and combine them with
:func:`union_results`.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Union

from repro.errors import QueryError
from repro.ids import VertexId
from repro.lang.composite import (
    DEFAULT_MAX_DEPTH,
    AsOp,
    BackOp,
    CompositeOp,
    CompositePlan,
    FilterNode,
    RepeatOp,
    UnionOp,
)
from repro.lang.filters import FilterOp, FilterSet, PropertyFilter
from repro.lang.plan import AggregateSpec, Step, TraversalPlan

CompiledPlan = Union[TraversalPlan, CompositePlan]


class GTravel:
    """Chainable traversal builder; see module docstring for semantics."""

    def __init__(self) -> None:
        self._source_ids: Optional[tuple[VertexId, ...]] = None
        self._source_set = False
        self._sub = False
        self._source_filters = FilterSet()
        # plain steps are kept as mutable dicts until compile; composite ops
        # are appended as their frozen node types
        self._ops: list[Any] = []
        self._rtn_levels: set[int] = set()
        self._pending_repeat: Optional[tuple[CompositeOp, ...]] = None
        self._aggregate: Optional[AggregateSpec] = None

    # -- entry points -------------------------------------------------------

    @classmethod
    def v(cls, *vids: VertexId) -> "GTravel":
        """Start a traversal from explicit vertex ids (or all vertices)."""
        return cls().v_(*vids)

    @classmethod
    def s(cls) -> "GTravel":
        """Start a *sub-chain*: the body of a ``repeat()`` or a branch of a
        ``union()``. Sub-chains have no sources and cannot be compiled or
        run on their own."""
        sub = cls()
        sub._sub = True
        return sub

    def v_(self, *vids: VertexId) -> "GTravel":
        """Instance form of :meth:`v`, for completeness."""
        if self._sub:
            raise QueryError("sub-chains from s() take their sources from the outer chain")
        if self._source_set:
            raise QueryError("v() may only be called once per traversal")
        if self._ops:
            raise QueryError("v() must come before any e() step")
        self._source_set = True
        if vids:
            for vid in vids:
                if not isinstance(vid, int) or isinstance(vid, bool):
                    raise QueryError(f"vertex ids must be ints, got {vid!r}")
            self._source_ids = tuple(dict.fromkeys(vids))  # dedupe, keep order
        else:
            self._source_ids = None  # all vertices
        return self

    # -- steps ----------------------------------------------------------------

    def e(self, *labels: str) -> "GTravel":
        """Traverse edges from the current working set.

        The paper's ``e()`` takes one label; we also accept several —
        ``e("read", "write")`` follows edges with *any* of the labels (an OR
        over labels, which the layout serves with a single scan of the
        vertex's edge block).
        """
        self._require_source("e()")
        self._require_open("e()")
        if not labels:
            raise QueryError("e() requires at least one edge label")
        for label in labels:
            if not isinstance(label, str) or not label:
                raise QueryError(f"edge label must be a non-empty str, got {label!r}")
            if label.startswith("~"):
                # "~" prefixes the planner's internal reverse-edge labels
                raise QueryError(
                    f"edge label {label!r} is reserved: '~'-prefixed labels "
                    "denote reverse edges and are planner-internal"
                )
        self._ops.append(
            {
                "labels": tuple(dict.fromkeys(labels)),
                "edge_filters": FilterSet(),
                "vertex_filters": FilterSet(),
            }
        )
        return self

    def ea(self, key: str, op: FilterOp, value: Any) -> "GTravel":
        """Filter the edges selected by the most recent ``e()``."""
        self._require_open("ea()")
        if not self._ops or not isinstance(self._ops[-1], dict):
            raise QueryError("ea() requires a preceding e() step")
        flt = PropertyFilter(key, op, value)
        step = self._ops[-1]
        step["edge_filters"] = step["edge_filters"].add(flt)
        return self

    def va(self, key: str, op: FilterOp, value: Any) -> "GTravel":
        """Filter the current working set of vertices."""
        self._require_source("va()")
        self._require_open("va()")
        flt = PropertyFilter(key, op, value)
        if not self._ops:
            if self._sub:
                self._ops.append(FilterNode(FilterSet((flt,))))
            else:
                self._source_filters = self._source_filters.add(flt)
        elif isinstance(self._ops[-1], dict):
            step = self._ops[-1]
            step["vertex_filters"] = step["vertex_filters"].add(flt)
        elif isinstance(self._ops[-1], FilterNode):
            self._ops[-1] = FilterNode(self._ops[-1].filters.add(flt))
        else:
            self._ops.append(FilterNode(FilterSet((flt,))))
        return self

    def rtn(self) -> "GTravel":
        """Mark the current working set for return (paper §IV-D)."""
        self._require_source("rtn()")
        self._require_open("rtn()")
        if self._sub:
            raise QueryError("rtn() is not allowed inside repeat()/union() sub-chains")
        if self._has_composite():
            raise QueryError(
                "rtn() marks cannot be combined with repeat()/union()/back(); "
                "composite chains always return the final working set"
            )
        self._rtn_levels.add(len(self._ops))
        return self

    # -- composite operators ---------------------------------------------------

    def repeat(self, sub: "GTravel") -> "GTravel":
        """Apply ``sub`` repeatedly; must be followed by ``times()`` or
        ``until()``."""
        self._require_source("repeat()")
        self._require_open("repeat()", allow_pending=False)
        self._require_no_rtn("repeat()")
        self._pending_repeat = _sub_ops(sub, "repeat()")
        return self

    def times(self, k: int) -> "GTravel":
        """Bound the preceding ``repeat()`` to exactly ``k`` applications of
        the body (``times(0)`` is the identity)."""
        if self._pending_repeat is None:
            raise QueryError("times() requires a preceding repeat()")
        body = self._pending_repeat
        self._pending_repeat = None
        self._ops.append(RepeatOp(body=body, times=k))
        return self

    def until(
        self,
        key: str,
        op: FilterOp,
        value: Any,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ) -> "GTravel":
        """Loop the preceding ``repeat()`` until a vertex satisfies the
        predicate; vertices exit the loop as they match. Hitting
        ``max_depth`` with unsatisfied vertices raises
        :class:`~repro.errors.RepeatDepthExceeded` at run time."""
        if self._pending_repeat is None:
            raise QueryError("until() requires a preceding repeat()")
        body = self._pending_repeat
        self._pending_repeat = None
        self._ops.append(
            RepeatOp(
                body=body,
                until=PropertyFilter(key, op, value),
                max_depth=max_depth,
            )
        )
        return self

    def union(self, *subs: "GTravel") -> "GTravel":
        """Evaluate every sub-chain from the current working set and merge
        the outputs as a deduplicated set."""
        self._require_source("union()")
        self._require_open("union()")
        self._require_no_rtn("union()")
        if not subs:
            raise QueryError("union() needs at least one branch")
        branches = tuple(_sub_ops(sub, "union()") for sub in subs)
        self._ops.append(UnionOp(branches=branches))
        return self

    def as_(self, name: str) -> "GTravel":
        """Bind the current working set to ``name`` for a later ``back()``."""
        self._require_source("as_()")
        self._require_open("as_()")
        self._require_no_rtn("as_()")
        if self._sub:
            raise QueryError("as_() is not allowed inside repeat()/union() sub-chains")
        self._ops.append(AsOp(name))
        return self

    def back(self, name: str) -> "GTravel":
        """Rewind to the working set bound with ``as_(name)``, keeping only
        the bound vertices with a path to the current frontier."""
        self._require_source("back()")
        self._require_open("back()")
        self._require_no_rtn("back()")
        if self._sub:
            raise QueryError("back() is not allowed inside repeat()/union() sub-chains")
        self._ops.append(BackOp(name))
        return self

    # -- aggregations ----------------------------------------------------------

    def count(self) -> "GTravel":
        """Reduce the final working set to its size at the coordinator."""
        self._require_source("count()")
        self._require_open("count()")
        if self._sub:
            raise QueryError("aggregates are not allowed inside sub-chains")
        self._aggregate = AggregateSpec(kind="count")
        return self

    def group_count(self, by: Optional[str] = None) -> "GTravel":
        """Group the final working set and count per group at the
        coordinator. ``by=None`` / ``"label"`` / ``"type"`` group by vertex
        type; any other key groups by that property's value (vertices
        missing the property land in the ``None`` bucket)."""
        self._require_source("group_count()")
        self._require_open("group_count()")
        if self._sub:
            raise QueryError("aggregates are not allowed inside sub-chains")
        self._aggregate = AggregateSpec(kind="group_count", by=by)
        return self

    # -- compilation -----------------------------------------------------------

    def compile(self) -> CompiledPlan:
        """Validate and freeze the chain into a :class:`TraversalPlan` (for
        linear chains) or a :class:`CompositePlan` (once any composite
        operator appears)."""
        self._require_source("compile()")
        if self._sub:
            raise QueryError(
                "sub-chains from s() cannot be compiled directly; pass them "
                "to repeat() or union()"
            )
        if self._pending_repeat is not None:
            raise QueryError("repeat() must be followed by times() or until()")
        if not self._has_composite():
            steps = tuple(
                Step(s["labels"], s["edge_filters"], s["vertex_filters"])
                for s in self._ops
            )
            return TraversalPlan(
                source_ids=self._source_ids,
                source_filters=self._source_filters,
                steps=steps,
                rtn_levels=frozenset(self._rtn_levels),
                aggregate=self._aggregate,
            )
        if self._rtn_levels:
            raise QueryError(
                "rtn() marks cannot be combined with composite operators"
            )
        return CompositePlan(
            source_ids=self._source_ids,
            source_filters=self._source_filters,
            ops=_freeze_ops(self._ops),
            aggregate=self._aggregate,
        )

    def _has_composite(self) -> bool:
        return any(not isinstance(op, dict) for op in self._ops)

    def _require_source(self, what: str) -> None:
        if self._sub:
            return
        if not self._source_set:
            raise QueryError(f"{what} requires a preceding v() entry point")

    def _require_open(self, what: str, allow_pending: bool = False) -> None:
        if self._aggregate is not None:
            raise QueryError(
                f"{what} is not allowed after count()/group_count(): "
                "aggregates terminate the chain"
            )
        if not allow_pending and self._pending_repeat is not None and what not in (
            "times()",
            "until()",
        ):
            raise QueryError("repeat() must be followed by times() or until()")

    def _require_no_rtn(self, what: str) -> None:
        if self._rtn_levels:
            raise QueryError(
                f"{what} cannot be combined with rtn() marks; composite "
                "chains always return the final working set"
            )

    def describe(self) -> str:
        return self.compile().describe()

    def explain(self, planner: Optional[Any] = None) -> dict:
        """Compile and explain: the step plan with selectors, filters, and
        rtn marks as a structured dict (no traversal runs). An empty chain
        (no ``v()`` yet) explains to a well-formed empty plan document
        rather than raising. With a ``planner``, the document shows
        original vs. optimized plans with cost estimates."""
        if not self._source_set and not self._sub:
            from repro.obs.explain import empty_plan_document

            return empty_plan_document()
        return self.compile().explain(planner=planner)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            return f"<GTravel {self.describe()}>"
        except QueryError:
            return "<GTravel (incomplete)>"


def _sub_ops(sub: "GTravel", where: str) -> tuple[CompositeOp, ...]:
    """Freeze a sub-chain built with ``GTravel.s()`` into composite ops."""
    if not isinstance(sub, GTravel):
        raise QueryError(f"{where} takes GTravel.s() sub-chains, got {sub!r}")
    if not sub._sub:
        raise QueryError(
            f"{where} takes sub-chains built with GTravel.s(), not full "
            "traversals (the outer chain supplies the sources)"
        )
    if sub._pending_repeat is not None:
        raise QueryError("repeat() must be followed by times() or until()")
    return _freeze_ops(sub._ops)


def _freeze_ops(ops: list) -> tuple[CompositeOp, ...]:
    out: list[CompositeOp] = []
    for op in ops:
        if isinstance(op, dict):
            out.append(Step(op["labels"], op["edge_filters"], op["vertex_filters"]))
        else:
            out.append(op)
    return tuple(out)


def union_results(*results: Iterable[VertexId]) -> tuple[VertexId, ...]:
    """Combine the returned vertex sets of several traversals.

    The paper's substitute for an ``OR`` filter: issue one traversal per
    disjunct and union the results. Returns a canonically ordered
    (sorted, deduplicated) tuple so results crossing the client API are
    deterministic across reruns.
    """
    out: set[VertexId] = set()
    for result in results:
        out.update(result)
    return tuple(sorted(out))
