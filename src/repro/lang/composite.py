"""Composite traversal operators: ``repeat``, ``union``, ``back``.

A linear GTravel chain compiles to a :class:`~repro.lang.plan.TraversalPlan`.
Once a chain uses bounded recursion (``repeat(sub).times(k)`` /
``repeat(sub).until(pred)``), branching (``union(b1, b2, ...)``), or a
``back(label)`` jump to an ``as_(label)`` binding, it compiles to a
:class:`CompositePlan`: an operator tree whose leaves are plain
:class:`~repro.lang.plan.Step` runs.

The execution semantics live in exactly one place — the
:func:`composite_program` generator. It yields child ``TraversalPlan``s and
is sent each child's :class:`~repro.engine.base.TraversalResult` back. The
reference oracle drives the program synchronously with its own ``run``; the
coordinator drives the same generator asynchronously, submitting every child
through the full planner/engine/fault machinery. Because both drivers step
through identical control flow, the distributed engines are differentially
provable against the oracle for free: any divergence is a child-plan
divergence, which the existing linear-plan differential suite already pins.

Frontier control flow:

* a maximal run of consecutive ``Step``s becomes one multi-step child plan
  (so child traversals still exercise pipelined multi-level execution);
* ``repeat(sub).times(k)`` applies the body ``k`` times (``times(0)`` is the
  identity); an empty frontier short-circuits the loop;
* ``repeat(sub).until(pred)`` is a do-while: apply the body, move vertices
  satisfying ``pred`` to the output set, continue with the rest; hitting
  ``max_depth`` with unsatisfied vertices raises
  :class:`~repro.errors.RepeatDepthExceeded` (documented termination
  guarantee — never a hang);
* ``union(b1, ..., bn)`` evaluates every branch from the same incoming
  frontier and merges the branch outputs as a deduplicated set;
* ``back(label)`` rewinds to the working set bound by ``as_(label)``, keeping
  only bound vertices with a path to the current frontier. With a reverse
  adjacency region available it walks ``~label`` edges backward level by
  level, intersecting each recorded frontier; otherwise it replays the
  intervening steps forward with an ``rtn()`` mark at the binding (backward
  pruning returns exactly the bound vertices that reach the end).

Child plans are built with **sorted** source ids so the same composite query
produces byte-identical child plans (and hence traces) on every rerun.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional, Union

from repro.errors import QueryError, RepeatDepthExceeded
from repro.ids import TravelId, VertexId
from repro.lang.filters import FilterSet, PropertyFilter
from repro.lang.plan import AggregateSpec, Step, TraversalPlan

#: default depth cap for ``repeat(...).until(...)``
DEFAULT_MAX_DEPTH = 32

CompositeOp = Union[Step, "FilterNode", "RepeatOp", "UnionOp", "AsOp", "BackOp"]


@dataclass(frozen=True)
class FilterNode:
    """Filter the current working set (a ``va()`` after a composite op)."""

    filters: FilterSet

    def __post_init__(self) -> None:
        if not self.filters:
            raise QueryError("a filter node needs at least one filter")

    def describe(self) -> str:
        out = ""
        for f in self.filters.filters:
            out += f".va({f.key!r}, {f.op.value}, {f.value!r})"
        return out


@dataclass(frozen=True)
class RepeatOp:
    """Bounded recursion: apply ``body`` ``times`` times, or until ``until``
    is satisfied (with a hard ``max_depth`` cap)."""

    body: tuple[CompositeOp, ...]
    times: Optional[int] = None
    until: Optional[PropertyFilter] = None
    max_depth: int = DEFAULT_MAX_DEPTH

    def __post_init__(self) -> None:
        if (self.times is None) == (self.until is None):
            raise QueryError(
                "repeat() needs exactly one of .times(k) or .until(pred)"
            )
        if self.times is not None and (
            not isinstance(self.times, int)
            or isinstance(self.times, bool)
            or self.times < 0
        ):
            raise QueryError(f"times() needs an int >= 0, got {self.times!r}")
        if self.until is not None and not isinstance(self.until, PropertyFilter):
            raise QueryError("until() needs a property predicate")
        if not isinstance(self.max_depth, int) or self.max_depth < 1:
            raise QueryError(f"max_depth must be an int >= 1, got {self.max_depth!r}")
        if not self.body:
            raise QueryError("repeat() needs a non-empty sub-traversal body")
        _check_nested(self.body, "repeat()")

    def describe(self) -> str:
        out = f".repeat({describe_ops(self.body)})"
        if self.times is not None:
            out += f".times({self.times})"
        else:
            f = self.until
            out += f".until({f.key!r}, {f.op.value}, {f.value!r}"
            if self.max_depth != DEFAULT_MAX_DEPTH:
                out += f", max_depth={self.max_depth}"
            out += ")"
        return out


@dataclass(frozen=True)
class UnionOp:
    """Evaluate every branch from the same incoming frontier; merge the
    branch outputs as a deduplicated set (the in-language form of the
    client-side ``union_results`` workaround)."""

    branches: tuple[tuple[CompositeOp, ...], ...]

    def __post_init__(self) -> None:
        if not self.branches:
            raise QueryError("union() needs at least one branch")
        for branch in self.branches:
            _check_nested(branch, "union()")

    def describe(self) -> str:
        inner = ", ".join(describe_ops(b) for b in self.branches)
        return f".union({inner})"


@dataclass(frozen=True)
class AsOp:
    """Bind the current working set to ``name`` for a later ``back()``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QueryError("as_() needs a non-empty label")

    def describe(self) -> str:
        return f".as_({self.name!r})"


@dataclass(frozen=True)
class BackOp:
    """Rewind to the working set bound by ``as_(name)``, keeping only bound
    vertices with a path to the current frontier."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QueryError("back() needs a non-empty label")

    def describe(self) -> str:
        return f".back({self.name!r})"


def _check_nested(ops: tuple[CompositeOp, ...], where: str) -> None:
    for op in ops:
        if isinstance(op, (AsOp, BackOp)):
            raise QueryError(
                f"as_()/back() are only allowed at the top level of a "
                f"traversal, not inside {where} sub-chains"
            )
        if not isinstance(op, (Step, FilterNode, RepeatOp, UnionOp)):
            raise QueryError(f"unsupported operator inside {where}: {op!r}")


def describe_ops(ops: tuple[CompositeOp, ...]) -> str:
    """Render a sub-chain the way the builder spells it: ``s().e(...)...``."""
    return "s()" + "".join(op.describe() for op in ops)


@dataclass(frozen=True)
class CompositePlan:
    """The compiled form of a GTravel chain that uses composite operators.

    Level numbering mirrors :class:`~repro.lang.plan.TraversalPlan`: level 0
    is the filtered source set, and every frontier-advancing top-level op
    (``Step``, ``RepeatOp``, ``UnionOp``, ``BackOp``) adds one level. The
    result is always the final frontier (``rtn()`` marks are not supported on
    composite chains).
    """

    source_ids: Optional[tuple[VertexId, ...]]
    source_filters: FilterSet
    ops: tuple[CompositeOp, ...]
    aggregate: Optional[AggregateSpec] = None

    def __post_init__(self) -> None:
        if self.source_ids is not None and len(self.source_ids) == 0:
            raise QueryError("v() with explicit ids requires at least one id")
        bound_at: dict[str, int] = {}
        for i, op in enumerate(self.ops):
            if isinstance(op, AsOp):
                if op.name in bound_at:
                    raise QueryError(f"as_({op.name!r}) bound twice")
                bound_at[op.name] = i
            elif isinstance(op, BackOp):
                if op.name not in bound_at:
                    raise QueryError(
                        f"back({op.name!r}) references a label never bound "
                        "with as_()"
                    )
                between = self.ops[bound_at[op.name] + 1 : i]
                if any(not isinstance(o, Step) for o in between):
                    raise QueryError(
                        f"back({op.name!r}) requires only plain e() steps "
                        "between the as_() binding and the back()"
                    )
            elif not isinstance(op, (Step, FilterNode, RepeatOp, UnionOp)):
                raise QueryError(f"unsupported top-level operator: {op!r}")

    @property
    def final_level(self) -> int:
        """Count of top-level frontier-advancing ops (scheduler cost proxy,
        mirroring ``TraversalPlan.final_level``)."""
        return sum(
            1 for op in self.ops if isinstance(op, (Step, RepeatOp, UnionOp, BackOp))
        )

    @property
    def num_steps(self) -> int:
        return self.final_level

    @property
    def has_intermediate_returns(self) -> bool:
        return False

    def explain(self, planner: Optional[Any] = None) -> dict:
        """Structured EXPLAIN document for the operator tree, with per-op cost
        estimates when a planner (with a graph summary) is supplied. See
        :func:`repro.obs.explain.explain_composite`."""
        from repro.obs.explain import explain_composite

        return explain_composite(self, planner=planner)

    def describe(self) -> str:
        if self.source_ids is None:
            out = "GTravel.v()"
        else:
            ids = ", ".join(map(str, self.source_ids[:4]))
            if len(self.source_ids) > 4:
                ids += ", ..."
            out = f"GTravel.v({ids})"
        for f in self.source_filters.filters:
            out += f".va({f.key!r}, {f.op.value}, {f.value!r})"
        for op in self.ops:
            out += op.describe()
        if self.aggregate is not None:
            out += self.aggregate.describe()
        return out


# ---------------------------------------------------------------------------
# The shared execution program
# ---------------------------------------------------------------------------

#: what composite_program returns: the final frontier plus the reduced
#: aggregate (an AggregateResult from repro.lang.plan) when one was requested
ProgramOutput = tuple


def _ordered(frontier) -> tuple[VertexId, ...]:
    return tuple(sorted(frontier))


def composite_program(
    cplan: CompositePlan,
    reverse_available: bool = False,
    travel_id: TravelId = 0,
) -> Generator[TraversalPlan, Any, ProgramOutput]:
    """The one-and-only composite execution program.

    A generator that yields child :class:`TraversalPlan`s and must be sent
    each child's ``TraversalResult``. Returns ``(frontier, aggregate)`` where
    ``frontier`` is the final frozenset of vertices and ``aggregate`` is the
    child-reduced :class:`~repro.lang.plan.AggregateResult` (or ``None``).

    ``reverse_available`` enables the reverse-adjacency fast path for
    ``back()`` (child plans over planner-internal ``~label`` steps); drivers
    without the reverse region (the oracle, clusters without the cost
    planner) use the forward-replay fallback, which is element-identical by
    construction.

    Child plans never have empty explicit sources — an empty frontier
    short-circuits inside the program instead.
    """
    from repro.lang.plan import reduce_aggregate

    src = yield TraversalPlan(
        source_ids=cplan.source_ids,
        source_filters=cplan.source_filters,
        steps=(),
        rtn_levels=frozenset({0}),
    )
    frontier = frozenset(src.at_level(0))

    # back() needs the true per-step frontiers of the steps it rewinds over,
    # so a chain containing back() dispatches top-level steps one at a time.
    has_back = any(isinstance(op, BackOp) for op in cplan.ops)
    history: list[frozenset] = [frontier]
    steps_history: list[Optional[Step]] = [None]
    bindings: dict[str, int] = {}

    ops = list(cplan.ops)
    idx = 0
    while idx < len(ops):
        op = ops[idx]
        if isinstance(op, AsOp):
            bindings[op.name] = len(history) - 1
            idx += 1
        elif isinstance(op, Step):
            if has_back:
                frontier = yield from _run_steps(frontier, (op,))
                history.append(frontier)
                steps_history.append(op)
                idx += 1
            else:
                run: list[Step] = []
                while idx < len(ops) and isinstance(ops[idx], Step):
                    run.append(ops[idx])
                    idx += 1
                frontier = yield from _run_steps(frontier, tuple(run))
                history.append(frontier)
                steps_history.append(None)
        elif isinstance(op, FilterNode):
            frontier = yield from _filter_frontier(frontier, op.filters)
            idx += 1
        elif isinstance(op, (RepeatOp, UnionOp)):
            if isinstance(op, RepeatOp):
                frontier = yield from _run_repeat(
                    frontier, op, travel_id, reverse_available
                )
            else:
                frontier = yield from _run_union(
                    frontier, op, travel_id, reverse_available
                )
            history.append(frontier)
            steps_history.append(None)
            idx += 1
        elif isinstance(op, BackOp):
            frontier = yield from _run_back(
                frontier, op, history, steps_history, bindings, reverse_available
            )
            history.append(frontier)
            steps_history.append(None)
            idx += 1
        else:  # pragma: no cover - CompositePlan.__post_init__ rejects these
            raise QueryError(f"unsupported top-level operator: {op!r}")

    aggregate = None
    if cplan.aggregate is not None:
        spec = cplan.aggregate
        if spec.needs_keys and frontier:
            # a trailing zero-step fetch carrying the spec: the linear-plan
            # machinery attaches the reduced AggregateResult natively
            res = yield TraversalPlan(
                source_ids=_ordered(frontier),
                source_filters=FilterSet(),
                steps=(),
                rtn_levels=frozenset({0}),
                aggregate=spec,
            )
            aggregate = res.aggregate
        else:
            aggregate = reduce_aggregate(spec, frontier, {})
    return frozenset(frontier), aggregate


def _run_steps(frontier, steps: tuple[Step, ...]):
    if not frontier:
        return frozenset()
    res = yield TraversalPlan(
        source_ids=_ordered(frontier),
        source_filters=FilterSet(),
        steps=steps,
        rtn_levels=frozenset(),
    )
    return frozenset(res.at_level(len(steps)))


def _filter_frontier(frontier, filters: FilterSet):
    if not frontier or not filters:
        return frozenset(frontier)
    res = yield TraversalPlan(
        source_ids=_ordered(frontier),
        source_filters=filters,
        steps=(),
        rtn_levels=frozenset({0}),
    )
    return frozenset(res.at_level(0))


def _run_ops_seq(frontier, ops, travel_id, reverse_available):
    """Run a repeat-body / union-branch op sequence (no as_/back inside)."""
    idx = 0
    while idx < len(ops):
        op = ops[idx]
        if isinstance(op, Step):
            run: list[Step] = []
            while idx < len(ops) and isinstance(ops[idx], Step):
                run.append(ops[idx])
                idx += 1
            frontier = yield from _run_steps(frontier, tuple(run))
            continue
        if isinstance(op, FilterNode):
            frontier = yield from _filter_frontier(frontier, op.filters)
        elif isinstance(op, RepeatOp):
            frontier = yield from _run_repeat(
                frontier, op, travel_id, reverse_available
            )
        elif isinstance(op, UnionOp):
            frontier = yield from _run_union(
                frontier, op, travel_id, reverse_available
            )
        else:  # pragma: no cover - _check_nested rejects these at build time
            raise QueryError(f"operator {op!r} not allowed in a sub-chain")
        idx += 1
    return frozenset(frontier)


def _run_repeat(frontier, op: RepeatOp, travel_id, reverse_available):
    if op.times is not None:
        for _ in range(op.times):
            if not frontier:
                break
            frontier = yield from _run_ops_seq(
                frontier, op.body, travel_id, reverse_available
            )
        return frozenset(frontier)
    pred = FilterSet((op.until,))
    exited: set[VertexId] = set()
    for _ in range(op.max_depth):
        if not frontier:
            return frozenset(exited)
        frontier = yield from _run_ops_seq(
            frontier, op.body, travel_id, reverse_available
        )
        if not frontier:
            return frozenset(exited)
        matched = yield from _filter_frontier(frontier, pred)
        exited |= matched
        frontier = frozenset(frontier) - matched
        if not frontier:
            return frozenset(exited)
    raise RepeatDepthExceeded(travel_id, op.max_depth)


def _run_union(frontier, op: UnionOp, travel_id, reverse_available):
    if not frontier:
        return frozenset()
    out: set[VertexId] = set()
    for branch in op.branches:
        out |= yield from _run_ops_seq(frontier, branch, travel_id, reverse_available)
    return frozenset(out)


def _run_back(frontier, op: BackOp, history, steps_history, bindings, reverse_available):
    bind_idx = bindings[op.name]
    cur_idx = len(history) - 1
    if bind_idx == cur_idx:
        return frozenset(frontier)  # back() straight after as_(): identity
    bound = history[bind_idx]
    if not frontier or not bound:
        return frozenset()
    steps = [steps_history[i] for i in range(bind_idx + 1, cur_idx + 1)]
    # plan validation guarantees these are plain Steps, dispatched singly
    assert all(isinstance(s, Step) for s in steps)
    # Edge filters apply to the forward edge's properties; the reverse region
    # mirrors them, but we only take the reverse walk when no step between the
    # binding and the back() filters edges — the forward fallback is exact
    # regardless.
    filtered = any(s.edge_filters for s in steps)
    if reverse_available and not filtered:
        cur = frozenset(frontier)
        for j in range(cur_idx, bind_idx, -1):
            step = steps_history[j]
            rev = Step(tuple("~" + lbl for lbl in step.labels))
            res = yield TraversalPlan(
                source_ids=_ordered(cur),
                source_filters=FilterSet(),
                steps=(rev,),
                rtn_levels=frozenset(),
            )
            cur = frozenset(res.at_level(1)) & history[j - 1]
            if not cur:
                return frozenset()
        return cur
    res = yield TraversalPlan(
        source_ids=_ordered(bound),
        source_filters=FilterSet(),
        steps=tuple(steps),
        rtn_levels=frozenset({0}),
    )
    return frozenset(res.at_level(0))
