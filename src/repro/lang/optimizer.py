"""Cost-based adaptive traversal planner.

GraphTrek's engines (paper §IV) execute GTravel chains exactly as written;
every optimization there is execution-time (caching, merging, priority
scheduling). This module adds the *plan-time* half: a deterministic
cost-based planner in the spirit of GRAPHITE's operator selection and the
Gremlin graph-algebra rewrites — it estimates per-step cardinalities from
:class:`~repro.graph.stats.GraphSummary` statistics and rewrites the
compiled :class:`~repro.lang.plan.TraversalPlan` while provably preserving
semantics.

Rewrite rules (each records a :class:`Rewrite` for ``explain()``):

``fuse_filters``
    Adjacent ``va()``/``ea()`` filters on one step are an AND chain, so
    duplicates are dropped (first occurrence kept) and two RANGE filters on
    the same key intersect into one. A would-be-empty intersection
    (``lo > hi``, which :class:`PropertyFilter` rejects) keeps both filters:
    they simply match nothing, exactly like the intersection would.

``reverse_chain``  (``cost`` mode only)
    A chain whose cheap end is the far end is evaluated backwards over
    reverse edges (``~label``), with each step's vertex filters re-anchored
    to the level they constrain. Only legal when the chain has no explicit
    source ids and no intermediate ``rtn()`` marks; ``rtn_levels`` becomes
    ``{0}`` so backward pruning returns exactly the original final level,
    and ``level_map`` lets the coordinator map results back to original
    levels. Chosen only when the estimate is < ``REVERSE_MARGIN`` × forward.

``pushdown_filters`` / ``elide_props`` / ``short_circuit_final``
    Plan *annotations*: edge predicates ship into the storage scan, property
    reads are skipped when only the (key-encoded) type is filtered, and a
    filter-free final step emits results directly instead of dispatching a
    last wave of executions. None of these can change results — the engine
    re-applies every filter on whatever the annotated path surfaces.

``rtn()`` marks pin rewrite boundaries: a plan with intermediate returns is
never reversed or short-circuited, because both rewrites renumber or skip
the levels those marks name.

The planner itself is pure and deterministic: same plan + same summary →
byte-identical :class:`PlannedQuery` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import QueryError
from repro.lang.filters import FilterOp, FilterSet, PropertyFilter
from repro.lang.plan import Step, TraversalPlan

if TYPE_CHECKING:  # summary is duck-typed at runtime; avoids a lang<->graph cycle
    from repro.graph.stats import GraphSummary

PLANNER_MODES = ("off", "rules", "cost")

#: a reversed plan must beat the forward estimate by this factor — hysteresis
#: against estimator noise flipping the direction of a near-tied chain
REVERSE_MARGIN = 0.9


@dataclass(frozen=True)
class CostParams:
    """Cost-model weights, in (virtual) seconds, mirroring the simulated
    runtime's dominant terms: a seek per visited vertex, a props-block scan
    when properties are needed, and per-record / per-dispatch overheads."""

    seek: float = 2e-3
    props_scan: float = 2e-3
    record: float = 3e-5
    dispatch: float = 3e-4
    visit: float = 1.5e-4


@dataclass(frozen=True)
class Rewrite:
    """One applied rewrite, for ``explain()`` rendering."""

    name: str
    detail: str

    def payload(self) -> dict:
        return {"name": self.name, "detail": self.detail}


@dataclass(frozen=True)
class LevelEstimate:
    """Estimated cardinalities and cost for one plan level. ``rows_in`` is
    the number of vertices *processed* at the level (comparable to the
    profile's per-step ``vertices`` stat); ``rows_out`` is the estimated
    working-set size after the level's filters."""

    level: int
    rows_in: float
    rows_out: float
    cost: float

    def payload(self) -> dict:
        return {
            "level": self.level,
            "rows_in": round(self.rows_in, 3),
            "rows_out": round(self.rows_out, 3),
            "cost": round(self.cost, 6),
        }


@dataclass(frozen=True)
class PlanCost:
    levels: tuple[LevelEstimate, ...]
    total: float

    def payload(self) -> dict:
        return {
            "total": round(self.total, 6),
            "levels": [lv.payload() for lv in self.levels],
        }


@dataclass(frozen=True)
class PlannedQuery:
    """The planner's output: the plan as compiled, the plan to execute, and
    the audit trail connecting them."""

    original: TraversalPlan
    executed: TraversalPlan
    mode: str
    rewrites: tuple[Rewrite, ...] = ()
    cost_original: Optional[PlanCost] = None
    cost_executed: Optional[PlanCost] = None
    #: executed level → original level (identity when absent); only a
    #: reversed plan populates a non-trivial map
    level_map: dict[int, int] = field(default_factory=dict)

    @property
    def rewritten(self) -> bool:
        return self.executed is not self.original or bool(self.rewrites)

    def map_level(self, level: int) -> int:
        return self.level_map.get(level, level)


# -- rewrite: filter fusion ----------------------------------------------------


def _fuse_filterset(fs: FilterSet) -> tuple[FilterSet, list[str]]:
    """Dedupe repeated filters and intersect same-key RANGE pairs; order of
    first occurrence is preserved. Returns (fused set, human-readable notes)."""
    notes: list[str] = []
    out: list[PropertyFilter] = []
    for flt in fs.filters:
        if flt in out:
            notes.append(f"dropped duplicate {flt.key} {flt.op.value}")
            continue
        if flt.op is FilterOp.RANGE:
            prior = next(
                (
                    i
                    for i, p in enumerate(out)
                    if p.op is FilterOp.RANGE and p.key == flt.key
                ),
                None,
            )
            if prior is not None:
                plo, phi = out[prior].value
                lo, hi = flt.value
                try:
                    nlo, nhi = max(plo, lo), min(phi, hi)
                    merged = PropertyFilter(flt.key, FilterOp.RANGE, (nlo, nhi))
                except (TypeError, QueryError):
                    # incomparable bounds, or an empty intersection
                    # (lo > hi, which PropertyFilter rejects): keep both —
                    # the AND of the pair matches nothing / stays as written
                    out.append(flt)
                    continue
                out[prior] = merged
                notes.append(f"intersected RANGE on {flt.key}")
                continue
        out.append(flt)
    return FilterSet(tuple(out)), notes


def fuse_filters(plan: TraversalPlan) -> tuple[TraversalPlan, list[Rewrite]]:
    """Fuse each level's filter chain. Pure simplification — the AND of the
    fused set is extensionally identical to the original chain."""
    rewrites: list[Rewrite] = []
    src, notes = _fuse_filterset(plan.source_filters)
    all_notes = [f"L0: {n}" for n in notes]
    steps: list[Step] = []
    changed = src is not plan.source_filters and notes
    for level, step in enumerate(plan.steps, start=1):
        ef, ef_notes = _fuse_filterset(step.edge_filters)
        vf, vf_notes = _fuse_filterset(step.vertex_filters)
        if ef_notes or vf_notes:
            changed = True
            all_notes += [f"L{level}: {n}" for n in ef_notes + vf_notes]
            steps.append(replace(step, edge_filters=ef, vertex_filters=vf))
        else:
            steps.append(step)
    if not changed:
        return plan, rewrites
    fused = replace(
        plan,
        source_filters=src if notes else plan.source_filters,
        steps=tuple(steps),
    )
    rewrites.append(Rewrite("fuse_filters", "; ".join(all_notes)))
    return fused, rewrites


# -- rewrite: annotations (pushdown, short-circuit) ----------------------------


def _annotate(plan: TraversalPlan) -> tuple[TraversalPlan, list[Rewrite]]:
    rewrites: list[Rewrite] = []
    updates: dict[str, object] = {}
    if any(step.edge_filters for step in plan.steps):
        updates["pushdown"] = True
        pushed = sum(len(s.edge_filters) for s in plan.steps)
        rewrites.append(
            Rewrite(
                "pushdown_filters",
                f"{pushed} edge predicate(s) evaluated inside the storage scan",
            )
        )
    if (
        plan.num_steps >= 1
        and not plan.has_intermediate_returns
        and not plan.steps[-1].vertex_filters
        # a group_count needs every final vertex *visited* so its group key
        # (type or property) can be captured; short-circuit records
        # destinations sender-side without a visit, so it is pinned off
        and not (plan.aggregate is not None and plan.aggregate.needs_keys)
    ):
        updates["short_circuit_final"] = True
        rewrites.append(
            Rewrite(
                "short_circuit_final",
                f"level {plan.final_level} destinations emitted directly; "
                "final dispatch wave skipped",
            )
        )
    if not updates:
        return plan, rewrites
    return replace(plan, **updates), rewrites


# -- rewrite: chain reversal ---------------------------------------------------


def _reversal_candidate(
    plan: TraversalPlan, summary: GraphSummary
) -> Optional[tuple[TraversalPlan, dict[int, int]]]:
    """Build the reversed form of ``plan``, or None when reversal is illegal.

    Original:  F0 -step1(l1,ef1,vf1)-> F1 ... -stepn-> Fn
    Reversed:  Fn -~stepn-> Fn-1 ... -~step1-> F0, with rtn at level 0 only:
    backward pruning then returns exactly the original final set.
    """
    n = plan.num_steps
    if (
        n < 1
        or plan.source_ids is not None
        or plan.has_intermediate_returns
        # aggregates reduce the final level at the coordinator; a reversed
        # plan returns its results through the rtn-redirection machinery,
        # which does not carry group keys — reversal is pinned off
        or plan.aggregate is not None
        or any(l.startswith("~") for s in plan.steps for l in s.labels)
    ):
        return None
    # source filters of the reversed plan: the original final step's vertex
    # filters, plus an inferred `type EQ T` (for the level-0 index) when the
    # statistics pin the final destinations to exactly one type
    final_filters = plan.steps[-1].vertex_filters
    if not any(f.key == "type" and f.op is FilterOp.EQ for f in final_filters.filters):
        dst_types: set[str] = set()
        for label in plan.steps[-1].labels:
            dst_types.update(summary.label_stats(label).dst_type_counts)
        if len(dst_types) == 1:
            inferred = PropertyFilter("type", FilterOp.EQ, next(iter(dst_types)))
            final_filters = FilterSet((inferred,) + final_filters.filters)
    steps: list[Step] = []
    for j in range(1, n + 1):
        orig = plan.steps[n - j]  # original step i = n - j + 1
        if n - j >= 1:
            vfilters = plan.steps[n - j - 1].vertex_filters
        else:
            vfilters = plan.source_filters
        steps.append(
            Step(
                labels=tuple("~" + l for l in orig.labels),
                edge_filters=orig.edge_filters,
                vertex_filters=vfilters,
            )
        )
    reversed_plan = TraversalPlan(
        source_ids=None,
        source_filters=final_filters,
        steps=tuple(steps),
        rtn_levels=frozenset({0}),
    )
    level_map = {j: n - j for j in range(0, n + 1)}
    return reversed_plan, level_map


# -- cost model ----------------------------------------------------------------


def _fs_needs_props(fs: FilterSet) -> bool:
    """True if evaluating ``fs`` requires the properties block (the vertex
    type is encoded in the key, so a type-only filter set does not)."""
    return any(f.key != "type" for f in fs.filters)


def _source_frontier(plan: TraversalPlan, summary: GraphSummary) -> dict[str, float]:
    """Estimated level-0 working set, per vertex type."""
    if plan.source_ids is not None:
        total = float(len(set(plan.source_ids)))
        all_vertices = max(summary.total_vertices, 1)
        frontier = {
            t: total * c / all_vertices for t, c in sorted(summary.type_counts.items())
        }
    else:
        type_eq = next(
            (
                f
                for f in plan.source_filters.filters
                if f.key == "type" and f.op is FilterOp.EQ
            ),
            None,
        )
        if type_eq is not None:
            frontier = {
                str(type_eq.value): float(
                    summary.type_counts.get(type_eq.value, 0)
                )
            }
        else:
            frontier = {
                t: float(c) for t, c in sorted(summary.type_counts.items())
            }
    return {
        t: w * summary.vertex_selectivity(t, plan.source_filters)
        for t, w in frontier.items()
    }


def estimate_plan(
    plan: TraversalPlan, summary: GraphSummary, params: CostParams
) -> PlanCost:
    """Walk the plan over the summary, tracking a per-type frontier.

    ``rows_in`` at level k is the number of vertices processed (read +
    expanded) there; the final level's vertices are only *recorded* unless
    a later filter forces a visit — and cost 0 when short-circuited.
    """
    levels: list[LevelEstimate] = []
    # level 0: enumerate + filter candidate sources
    if plan.source_ids is not None:
        candidates = float(len(set(plan.source_ids)))
    else:
        type_eq = next(
            (
                f
                for f in plan.source_filters.filters
                if f.key == "type" and f.op is FilterOp.EQ
            ),
            None,
        )
        if type_eq is not None:
            candidates = float(summary.type_counts.get(type_eq.value, 0))
        else:
            candidates = float(summary.total_vertices)
    frontier = _source_frontier(plan, summary)
    rows_out = sum(frontier.values())
    cost0 = candidates * (
        params.seek
        + (params.props_scan if _fs_needs_props(plan.source_filters) else 0.0)
        + params.visit
    )
    levels.append(LevelEstimate(0, candidates, rows_out, cost0))
    for k, step in enumerate(plan.steps, start=1):
        next_frontier: dict[str, float] = {}
        edges_total = 0.0
        for vtype in sorted(frontier):
            weight = frontier[vtype]
            if weight <= 0.0:
                continue
            for label in step.labels:
                stats = summary.label_stats(label)
                src_count = stats.src_type_counts.get(vtype, 0)
                type_total = summary.type_counts.get(vtype, 0)
                if src_count <= 0 or type_total <= 0:
                    continue
                edges = weight * src_count / type_total
                edges *= stats.edge_selectivity(step.edge_filters)
                dst_total = sum(stats.dst_type_counts.values())
                if dst_total <= 0:
                    continue
                edges_total += edges
                for dtype in sorted(stats.dst_type_counts):
                    share = edges * stats.dst_type_counts[dtype] / dst_total
                    next_frontier[dtype] = next_frontier.get(dtype, 0.0) + share
        # dedupe against the type population, then apply vertex filters
        frontier = {}
        for dtype in sorted(next_frontier):
            unique = min(
                next_frontier[dtype], float(summary.type_counts.get(dtype, 0))
            )
            sel = summary.vertex_selectivity(dtype, step.vertex_filters)
            frontier[dtype] = unique * sel
        arriving = sum(
            min(next_frontier[t], float(summary.type_counts.get(t, 0)))
            for t in next_frontier
        )
        rows_out = sum(frontier.values())
        needs_props = _fs_needs_props(step.vertex_filters)
        is_final = k == plan.final_level
        if is_final and plan.short_circuit_final:
            # destinations are recorded by the sender; no dispatch, no visit
            cost = edges_total * params.record
            rows_in = 0.0
        elif is_final and not needs_props and not step.vertex_filters:
            # final level vertices are recorded, not expanded
            cost = arriving * (params.dispatch * 0.25) + edges_total * params.record
            rows_in = arriving
        else:
            cost = arriving * (
                params.dispatch
                + params.seek
                + (params.props_scan if needs_props else 0.0)
                + params.visit
            ) + edges_total * params.record
            rows_in = arriving
        levels.append(LevelEstimate(k, rows_in, rows_out, cost))
    return PlanCost(tuple(levels), sum(lv.cost for lv in levels))


# -- the planner ---------------------------------------------------------------


@dataclass
class QueryPlanner:
    """Deterministic plan-time optimizer.

    ``mode``:
      * ``off``   — identity: the compiled plan executes as written;
      * ``rules`` — statistics-free rewrites (fusion, pushdown,
        short-circuit);
      * ``cost``  — ``rules`` plus cost-estimated chain reversal, with
        per-level estimates attached for ``explain()``/``profile()``.

    ``summary`` is the merged per-server :class:`GraphSummary` (required for
    costing; without it, ``cost`` degrades to ``rules``). ``reverse_available``
    says the storage layer ingested ``~label`` reverse edges, which gates the
    reversal rewrite.
    """

    mode: str = "off"
    summary: Optional[GraphSummary] = None
    reverse_available: bool = False
    params: CostParams = field(default_factory=CostParams)

    def __post_init__(self) -> None:
        if self.mode not in PLANNER_MODES:
            raise QueryError(
                f"unknown planner mode {self.mode!r}; expected one of "
                f"{', '.join(PLANNER_MODES)}"
            )

    def plan(self, plan: TraversalPlan) -> PlannedQuery:
        if self.mode == "off":
            return PlannedQuery(original=plan, executed=plan, mode=self.mode)
        rewrites: list[Rewrite] = []
        fused, fr = fuse_filters(plan)
        rewrites += fr
        executed = fused
        level_map: dict[int, int] = {}
        cost_original: Optional[PlanCost] = None
        cost_executed: Optional[PlanCost] = None
        if self.mode == "cost" and self.summary is not None:
            annotated_fwd, _ = _annotate(fused)
            cost_original = estimate_plan(annotated_fwd, self.summary, self.params)
            if self.reverse_available:
                candidate = _reversal_candidate(fused, self.summary)
                if candidate is not None:
                    rev_plan, rev_map = candidate
                    annotated_rev, _ = _annotate(rev_plan)
                    rev_cost = estimate_plan(
                        annotated_rev, self.summary, self.params
                    )
                    if rev_cost.total < REVERSE_MARGIN * cost_original.total:
                        executed = rev_plan
                        level_map = rev_map
                        rewrites.append(
                            Rewrite(
                                "reverse_chain",
                                "evaluated via reverse edges "
                                f"(est {rev_cost.total:.4f}s vs forward "
                                f"{cost_original.total:.4f}s)",
                            )
                        )
        executed, ar = _annotate(executed)
        rewrites += ar
        if self.mode == "cost" and self.summary is not None:
            cost_executed = estimate_plan(executed, self.summary, self.params)
        return PlannedQuery(
            original=plan,
            executed=executed,
            mode=self.mode,
            rewrites=tuple(rewrites),
            cost_original=cost_original,
            cost_executed=cost_executed,
            level_map=level_map,
        )


# -- composite cost estimation -------------------------------------------------
#
# Composite plans (repeat / union / back) execute as a sequence of linear
# child plans driven by the coordinator's orchestrator; each child is planned
# individually at dispatch time, so rewrite boundaries are pinned at
# repeat/union scopes by construction (a rewrite can never cross an operator
# boundary — it only ever sees one child). The estimator below exists for
# EXPLAIN: a coarse, deterministic per-operator cost walk over the summary.

#: assumed iterations for ``repeat().until()`` loops, whose true depth is
#: data-dependent (bounded by the op's ``max_depth``)
UNTIL_ASSUMED_ITERS = 4

#: assumed selectivity for a standalone filter node in a sub-chain
FILTER_ASSUMED_SELECTIVITY = 0.5


@dataclass(frozen=True)
class CompositeOpEstimate:
    """Per-top-level-operator estimate for a composite plan's EXPLAIN."""

    op: str
    detail: str
    rows_out: float
    cost: float

    def payload(self) -> dict:
        return {
            "op": self.op,
            "detail": self.detail,
            "rows_out": round(self.rows_out, 3),
            "cost": round(self.cost, 6),
        }


@dataclass(frozen=True)
class CompositePlanCost:
    ops: tuple[CompositeOpEstimate, ...]
    total: float

    def payload(self) -> dict:
        return {
            "total": round(self.total, 6),
            "ops": [op.payload() for op in self.ops],
        }


def _label_fanout(summary: GraphSummary, labels) -> float:
    """Expected out-edges per frontier vertex across ``labels``."""
    total_v = float(max(summary.total_vertices, 1))
    edges = 0.0
    for label in labels:
        stats = summary.label_stats(label)
        edges += float(sum(stats.src_type_counts.values()))
    return edges / total_v


def _estimate_step_run(
    summary: GraphSummary, params: CostParams, rows: float, steps
) -> tuple[float, float]:
    """(rows_out, cost) of running ``steps`` from a ``rows``-vertex frontier."""
    total_v = float(max(summary.total_vertices, 1))
    cost = 0.0
    for step in steps:
        edges = rows * _label_fanout(summary, step.labels)
        nxt = min(edges, total_v)
        cost += (
            rows * (params.seek + params.visit)
            + edges * params.record
            + nxt * params.dispatch
        )
        if step.vertex_filters:
            nxt *= FILTER_ASSUMED_SELECTIVITY
        rows = nxt
    return rows, cost


def _estimate_sub_ops(
    summary: GraphSummary, params: CostParams, rows: float, ops
) -> tuple[float, float]:
    """(rows_out, cost) of a repeat-body / union-branch sub-chain."""
    from repro.lang.composite import FilterNode, RepeatOp, Step, UnionOp

    cost = 0.0
    for op in ops:
        if isinstance(op, Step):
            rows, c = _estimate_step_run(summary, params, rows, (op,))
            cost += c
        elif isinstance(op, FilterNode):
            cost += rows * (params.seek + params.props_scan + params.visit)
            rows *= FILTER_ASSUMED_SELECTIVITY
        elif isinstance(op, RepeatOp):
            iters = op.times if op.times is not None else min(
                op.max_depth, UNTIL_ASSUMED_ITERS
            )
            for _ in range(iters):
                rows, c = _estimate_sub_ops(summary, params, rows, op.body)
                cost += c
        elif isinstance(op, UnionOp):
            total_v = float(max(summary.total_vertices, 1))
            merged = 0.0
            for branch in op.branches:
                out, c = _estimate_sub_ops(summary, params, rows, branch)
                merged += out
                cost += c
            rows = min(merged, total_v)
    return rows, cost


def estimate_composite_plan(cplan, summary: GraphSummary, params: CostParams):
    """Coarse per-operator estimate of a composite plan, for EXPLAIN."""
    from repro.lang.composite import (
        AsOp,
        BackOp,
        FilterNode,
        RepeatOp,
        Step,
        UnionOp,
        describe_ops,
    )

    rows = float(len(cplan.source_ids))
    ops: list[CompositeOpEstimate] = []
    bindings: dict[str, float] = {}
    source_cost = rows * (
        params.seek
        + (params.props_scan if _fs_needs_props(cplan.source_filters) else 0.0)
        + params.visit
    )
    ops.append(CompositeOpEstimate("source", "v(...)", rows, source_cost))
    steps_since: dict[str, list] = {}
    for op in cplan.ops:
        if isinstance(op, AsOp):
            bindings[op.name] = rows
            steps_since[op.name] = []
            ops.append(CompositeOpEstimate("as", f"as_({op.name!r})", rows, 0.0))
            continue
        if isinstance(op, Step):
            for trail in steps_since.values():
                trail.append(op)
            rows, cost = _estimate_step_run(summary, params, rows, (op,))
            ops.append(
                CompositeOpEstimate("step", op.describe().lstrip("."), rows, cost)
            )
        elif isinstance(op, FilterNode):
            cost = rows * (params.seek + params.props_scan + params.visit)
            rows *= FILTER_ASSUMED_SELECTIVITY
            ops.append(CompositeOpEstimate("filter", "va(...)", rows, cost))
        elif isinstance(op, RepeatOp):
            iters = op.times if op.times is not None else min(
                op.max_depth, UNTIL_ASSUMED_ITERS
            )
            cost = 0.0
            for _ in range(iters):
                rows, c = _estimate_sub_ops(summary, params, rows, op.body)
                cost += c
            kind = (
                f"times({op.times})"
                if op.times is not None
                else f"until(..., max_depth={op.max_depth}) ~{iters} iter(s)"
            )
            ops.append(
                CompositeOpEstimate(
                    "repeat", f"repeat({describe_ops(op.body)}).{kind}", rows, cost
                )
            )
        elif isinstance(op, UnionOp):
            total_v = float(max(summary.total_vertices, 1))
            merged, cost = 0.0, 0.0
            for branch in op.branches:
                out, c = _estimate_sub_ops(summary, params, rows, branch)
                merged += out
                cost += c
            rows = min(merged, total_v)
            ops.append(
                CompositeOpEstimate(
                    "union", f"union of {len(op.branches)} branch(es)", rows, cost
                )
            )
        elif isinstance(op, BackOp):
            bound = bindings.get(op.name, rows)
            # one reverse pass over the intervening steps (or a forward
            # replay from the binding — same step count either way)
            _, cost = _estimate_step_run(
                summary, params, rows, steps_since.get(op.name, ())
            )
            rows = bound
            ops.append(
                CompositeOpEstimate("back", f"back({op.name!r})", rows, cost)
            )
    if cplan.aggregate is not None:
        ops.append(
            CompositeOpEstimate(
                "aggregate", cplan.aggregate.describe().lstrip("."), rows, 0.0
            )
        )
    return CompositePlanCost(tuple(ops), sum(op.cost for op in ops))
