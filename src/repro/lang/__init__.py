"""GTravel: the traversal-aware query language of the paper (§III)."""

from repro.lang.filters import EQ, IN, RANGE, FilterOp, FilterSet, PropertyFilter
from repro.lang.gtravel import GTravel, union_results
from repro.lang.optimizer import (
    CostParams,
    PlanCost,
    PlannedQuery,
    QueryPlanner,
    Rewrite,
)
from repro.lang.plan import Step, TraversalPlan

__all__ = [
    "EQ",
    "IN",
    "RANGE",
    "FilterOp",
    "FilterSet",
    "PropertyFilter",
    "GTravel",
    "union_results",
    "Step",
    "TraversalPlan",
    "CostParams",
    "PlanCost",
    "PlannedQuery",
    "QueryPlanner",
    "Rewrite",
]
