"""GTravel: the traversal-aware query language of the paper (§III)."""

from repro.lang.composite import (
    DEFAULT_MAX_DEPTH,
    AsOp,
    BackOp,
    CompositeOp,
    CompositePlan,
    FilterNode,
    RepeatOp,
    UnionOp,
    composite_program,
)
from repro.lang.filters import EQ, IN, RANGE, FilterOp, FilterSet, PropertyFilter
from repro.lang.gtravel import CompiledPlan, GTravel, union_results
from repro.lang.optimizer import (
    CostParams,
    PlanCost,
    PlannedQuery,
    QueryPlanner,
    Rewrite,
)
from repro.lang.plan import (
    AggregateResult,
    AggregateSpec,
    Step,
    TraversalPlan,
    canonical_groups,
    reduce_aggregate,
)

__all__ = [
    "EQ",
    "IN",
    "RANGE",
    "FilterOp",
    "FilterSet",
    "PropertyFilter",
    "GTravel",
    "union_results",
    "Step",
    "TraversalPlan",
    "CompiledPlan",
    "AggregateSpec",
    "AggregateResult",
    "canonical_groups",
    "reduce_aggregate",
    "CompositeOp",
    "CompositePlan",
    "FilterNode",
    "RepeatOp",
    "UnionOp",
    "AsOp",
    "BackOp",
    "DEFAULT_MAX_DEPTH",
    "composite_program",
    "CostParams",
    "PlanCost",
    "PlannedQuery",
    "QueryPlanner",
    "Rewrite",
]
