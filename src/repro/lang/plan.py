"""Compiled traversal plans.

A :class:`TraversalPlan` is the validated, immutable form of a GTravel chain
that engines execute. Level numbering:

* level 0 — the source working set (after ``v()``/``va()``);
* level k — the working set after traversing step k's edges (1-based).

``rtn_levels`` holds the levels marked with ``rtn()``. When empty, the plan
returns the final level (the BFS default the paper describes); when
non-empty, exactly the marked levels are returned, and a marked vertex is
returned only if some path through it reaches the end of the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.errors import QueryError
from repro.ids import VertexId
from repro.lang.filters import FilterSet


@dataclass(frozen=True)
class Step:
    """One traversal step: follow edges with any of ``labels`` (an OR over
    labels — our extension; the paper's ``e()`` takes one label), filtered by
    ``edge_filters``, into destination vertices filtered by
    ``vertex_filters``."""

    labels: tuple[str, ...]
    edge_filters: FilterSet = field(default_factory=FilterSet)
    vertex_filters: FilterSet = field(default_factory=FilterSet)

    def __post_init__(self) -> None:
        if isinstance(self.labels, str):
            # Accept the common single-label spelling Step("read", ...).
            object.__setattr__(self, "labels", (self.labels,))
        if not self.labels or any(not l for l in self.labels):
            raise QueryError("a step needs at least one non-empty edge label")

    @property
    def label(self) -> str:
        """The first (usually only) label; display/back-compat helper."""
        return self.labels[0]

    def describe(self) -> str:
        inner = ", ".join(repr(l) for l in self.labels)
        out = f".e({inner})"
        for f in self.edge_filters.filters:
            out += f".ea({f.key!r}, {f.op.value}, {f.value!r})"
        for f in self.vertex_filters.filters:
            out += f".va({f.key!r}, {f.op.value}, {f.value!r})"
        return out


#: ``group_count`` keys the servers can resolve without a property read:
#: the vertex type is encoded in the location-index key.
_KEY_ENCODED_BYS = (None, "label", "type")


@dataclass(frozen=True)
class AggregateSpec:
    """A coordinator-side aggregation attached to a linear plan.

    ``kind`` is ``"count"`` or ``"group_count"``; ``by`` names the grouping
    key for group_count — ``"label"``/``"type"`` group by vertex type (key-
    encoded, no property read), any other string groups by that property's
    value (vertices missing the property land in the ``None`` bucket).
    """

    kind: str
    by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("count", "group_count"):
            raise QueryError(f"unknown aggregate kind {self.kind!r}")
        if self.kind == "count" and self.by is not None:
            raise QueryError("count() takes no grouping key")
        if self.kind == "group_count" and not isinstance(self.by, (str, type(None))):
            raise QueryError("group_count(by=...) requires a string key or None")

    @property
    def needs_keys(self) -> bool:
        """True when servers must attach a per-vertex group key to the final
        result report (any group_count)."""
        return self.kind == "group_count"

    @property
    def needs_props(self) -> bool:
        """True when the group key requires the vertex's attribute block
        (a property grouping; type grouping is key-encoded)."""
        return self.kind == "group_count" and self.by not in _KEY_ENCODED_BYS

    def describe(self) -> str:
        if self.kind == "count":
            return ".count()"
        if self.by is None:
            return ".group_count()"
        return f".group_count(by={self.by!r})"


@dataclass(frozen=True)
class AggregateResult:
    """The reduced value of an :class:`AggregateSpec` over a final frontier.

    ``groups`` is canonically ordered — ``None`` bucket last, then by the
    string form of the key — so identical traversals produce byte-identical
    renderings on every rerun.
    """

    kind: str
    total: int
    groups: tuple[tuple[Any, int], ...] = ()

    def as_dict(self) -> dict:
        return dict(self.groups)


def canonical_groups(items) -> tuple[tuple[Any, int], ...]:
    """Deterministic ordering for group-count buckets."""
    return tuple(sorted(items, key=lambda kv: (kv[0] is None, str(kv[0]))))


def reduce_aggregate(
    spec: AggregateSpec, final_vertices, keys: Mapping[VertexId, Any]
) -> AggregateResult:
    """The one aggregation reduce, shared by the oracle and the coordinator.

    ``final_vertices`` is the deduplicated final frontier; ``keys`` maps each
    vertex to its group key (vertices absent from ``keys`` land in the
    ``None`` bucket — e.g. ``group_count`` on a property some vertices lack).
    The reduce is idempotent under at-least-once delivery because it runs
    over the deduplicated vertex set, not over per-message counts.
    """
    if spec.kind == "count":
        return AggregateResult(kind="count", total=len(final_vertices))
    counter: dict[Any, int] = {}
    for vid in final_vertices:
        key = keys.get(vid)
        counter[key] = counter.get(key, 0) + 1
    return AggregateResult(
        kind="group_count",
        total=len(final_vertices),
        groups=canonical_groups(counter.items()),
    )


@dataclass(frozen=True)
class TraversalPlan:
    """The engine-facing query representation."""

    source_ids: Optional[tuple[VertexId, ...]]  # None = all vertices
    source_filters: FilterSet
    steps: tuple[Step, ...]
    rtn_levels: frozenset[int]
    #: planner annotation — engines may push edge filters into the storage
    #: scan (results are unchanged: the engine re-applies every filter)
    pushdown: bool = False
    #: planner annotation — the final step's destinations go straight to the
    #: result set without being dispatched as executions (valid only when the
    #: final step has no vertex filters and no intermediate rtn marks)
    short_circuit_final: bool = False
    #: coordinator-side reduction over the final level (``count()`` /
    #: ``group_count(by=...)``); None = plain vertex-set return
    aggregate: Optional[AggregateSpec] = None

    def __post_init__(self) -> None:
        for level in self.rtn_levels:
            if not (0 <= level <= len(self.steps)):
                raise QueryError(
                    f"rtn level {level} out of range 0..{len(self.steps)}"
                )
        if self.source_ids is not None and len(self.source_ids) == 0:
            raise QueryError("v() with explicit ids requires at least one id")
        if self.aggregate is not None and self.has_intermediate_returns:
            raise QueryError(
                "aggregates reduce the final level; rtn() marks at other "
                "levels cannot be combined with count()/group_count()"
            )

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def final_level(self) -> int:
        return len(self.steps)

    @property
    def return_levels(self) -> frozenset[int]:
        """Levels whose vertices the traversal returns."""
        if self.rtn_levels:
            return self.rtn_levels
        return frozenset({self.final_level})

    @property
    def effective_final_level(self) -> int:
        """The last level that actually dispatches executions: one short of
        ``final_level`` when the final step is short-circuited."""
        if self.short_circuit_final and self.num_steps >= 1:
            return self.final_level - 1
        return self.final_level

    @property
    def has_intermediate_returns(self) -> bool:
        """True if some returned level is not the final one (needs the
        report-destination redirection machinery of paper §IV-D)."""
        return any(level < self.final_level for level in self.return_levels)

    def explain(self, planner: Optional["object"] = None) -> dict:
        """The compiled step plan as a structured dict (Gremlin-style
        ``explain()``): source selector, per-step labels and filters, rtn
        marks. With a :class:`~repro.lang.optimizer.QueryPlanner`, returns
        the original-vs-optimized document with cost estimates instead.
        See :mod:`repro.obs.explain`."""
        from repro.obs.explain import explain_plan, explain_planned

        if planner is not None:
            return explain_planned(planner.plan(self))
        return explain_plan(self)

    def describe(self) -> str:
        """A printable, paper-style rendering of the plan."""
        if self.source_ids is None:
            out = "GTravel.v()"
        else:
            ids = ", ".join(map(str, self.source_ids[:4]))
            if len(self.source_ids) > 4:
                ids += ", ..."
            out = f"GTravel.v({ids})"
        for f in self.source_filters.filters:
            out += f".va({f.key!r}, {f.op.value}, {f.value!r})"
        if 0 in self.rtn_levels:
            out += ".rtn()"
        for level, step in enumerate(self.steps, start=1):
            out += step.describe()
            if level in self.rtn_levels:
                out += ".rtn()"
        if self.aggregate is not None:
            out += self.aggregate.describe()
        return out
