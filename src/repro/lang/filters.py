"""Property filters for GTravel queries.

The paper defines three filter types — ``EQ``, ``IN``, ``RANGE`` — applied to
vertex (``va``) or edge (``ea``) properties, AND-composed when several appear
in one step. ``OR`` is deliberately absent (paper §III): users issue separate
traversals and union the results, which :func:`repro.lang.gtravel.union_results`
supports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.errors import QueryError


class FilterOp(enum.Enum):
    """Comparison kind for a property filter."""

    EQ = "EQ"
    IN = "IN"
    RANGE = "RANGE"


#: Re-exported aliases so queries read like the paper's listings.
EQ = FilterOp.EQ
IN = FilterOp.IN
RANGE = FilterOp.RANGE


@dataclass(frozen=True)
class PropertyFilter:
    """One predicate over a property map.

    * ``EQ``: the property equals ``value``;
    * ``IN``: the property is a member of ``value`` (any container);
    * ``RANGE``: ``value`` is a ``(lo, hi)`` pair, inclusive on both ends.

    A missing property never matches.
    """

    key: str
    op: FilterOp
    value: Any

    def __post_init__(self) -> None:
        if not self.key:
            raise QueryError("filter property key must be non-empty")
        if not isinstance(self.op, FilterOp):
            raise QueryError(f"filter op must be a FilterOp, got {self.op!r}")
        if self.op is FilterOp.RANGE:
            try:
                lo, hi = self.value
            except (TypeError, ValueError):
                raise QueryError(
                    f"RANGE filter on {self.key!r} needs a (lo, hi) pair"
                ) from None
            if lo > hi:
                raise QueryError(f"RANGE filter on {self.key!r}: lo > hi ({lo} > {hi})")
            # Normalize to a tuple so the filter is hashable/deterministic.
            object.__setattr__(self, "value", (lo, hi))
        elif self.op is FilterOp.IN:
            try:
                object.__setattr__(self, "value", frozenset(self.value))
            except TypeError:
                raise QueryError(
                    f"IN filter on {self.key!r} needs an iterable of values"
                ) from None

    def matches(self, props: Mapping[str, Any]) -> bool:
        if self.key not in props:
            return False
        actual = props[self.key]
        if self.op is FilterOp.EQ:
            return actual == self.value
        if self.op is FilterOp.IN:
            try:
                return actual in self.value
            except TypeError:
                return False
        lo, hi = self.value
        try:
            return lo <= actual <= hi
        except TypeError:
            return False


@dataclass(frozen=True)
class FilterSet:
    """An AND-composed, ordered set of property filters."""

    filters: tuple[PropertyFilter, ...] = ()

    @staticmethod
    def of(filters: Iterable[PropertyFilter]) -> "FilterSet":
        return FilterSet(tuple(filters))

    def __bool__(self) -> bool:
        return bool(self.filters)

    def __len__(self) -> int:
        return len(self.filters)

    def add(self, flt: PropertyFilter) -> "FilterSet":
        return FilterSet(self.filters + (flt,))

    def matches(self, props: Mapping[str, Any]) -> bool:
        return all(f.matches(props) for f in self.filters)

    def describe(self) -> str:
        if not self.filters:
            return "*"
        return " AND ".join(
            f"{f.key} {f.op.value} {f.value!r}" for f in self.filters
        )
