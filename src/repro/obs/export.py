"""JSON export and validation for observability snapshots.

One exported document bundles the metrics snapshot, the span timeline, and
(when tracing ran) the flight-recorder event log::

    {"metrics": {...}, "spans": [...], "trace": [...]}

Serialization is canonical (sorted keys, fixed separators) so identical runs
produce identical bytes — the property the determinism tests assert.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.obs.trace import FlightRecorder


def canonical_json(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def observability_payload(
    metrics: MetricsRegistry,
    spans: Optional[SpanTracer] = None,
    trace: Optional[FlightRecorder] = None,
) -> dict[str, Any]:
    return {
        "metrics": metrics.snapshot(),
        "spans": spans.timeline() if spans is not None else [],
        "trace": trace.timeline() if trace is not None else [],
    }


def write_observability(
    path: Union[str, Path],
    metrics: MetricsRegistry,
    spans: Optional[SpanTracer] = None,
    trace: Optional[FlightRecorder] = None,
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(observability_payload(metrics, spans, trace)))
    return path


def _is_bad(value: Any) -> bool:
    return isinstance(value, float) and (math.isnan(value) or math.isinf(value))


def validate_snapshot(
    snapshot: dict[str, Any], *, require_histograms: bool = False
) -> list[str]:
    """Sanity problems in a metrics snapshot; empty list means healthy.

    Flags NaN/inf anywhere and zero-count histograms. With
    ``require_histograms`` the snapshot must contain at least one histogram —
    the smoke target uses that to fail when instrumentation silently
    disappears from the hot paths.
    """
    problems: list[str] = []
    for section in ("counters", "gauges"):
        for key, value in snapshot.get(section, {}).items():
            if _is_bad(value):
                problems.append(f"{section}[{key}] is {value}")
    histograms = snapshot.get("histograms", {})
    if require_histograms and not histograms:
        problems.append("snapshot contains no histograms")
    for key, summary in histograms.items():
        if summary.get("count", 0) == 0:
            problems.append(f"histograms[{key}] is empty")
            continue
        for stat, value in summary.items():
            if _is_bad(value):
                problems.append(f"histograms[{key}].{stat} is {value}")
    return problems
