"""GTravel ``explain()`` and ``Client.profile()`` (Gremlin-style, paper §III).

``explain_plan`` renders a compiled :class:`~repro.lang.plan.TraversalPlan`
as a structured, JSON-safe description of what the engines will execute:
source selector, per-step edge labels and property filters, and rtn()
redirection marks. No traversal runs.

``profile_traversal`` is the post-hoc half: given the flight-recorder DAG of
a completed traversal (plus the PR-1 span timeline for wall-clock), it
produces a per-step :class:`ProfileReport` — fan-out, visited/filtered
counts, per-server execution counts and skew, wall-clock per step on the
virtual clock, and cache-hit attribution. On the simulated runtime the
report is a pure function of (seed, configuration).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lang.filters import FilterSet
from repro.lang.optimizer import PlannedQuery
from repro.lang.plan import TraversalPlan
from repro.obs.spans import SpanTracer
from repro.obs.trace import TraversalDag

#: node stat keys aggregated into per-step profiles, in display order
_STEP_STATS = (
    "vertices",
    "created",
    "results_sent",
    "real",
    "cache_hits",
    "combined",
    "filtered",
    "absorbed",
    "decoded_blocks",
    "batch_width",
)


def _filters_payload(filters: FilterSet) -> list[dict[str, Any]]:
    out = []
    for f in filters.filters:
        value = f.value
        if isinstance(value, frozenset):
            value = sorted(value, key=repr)
        elif isinstance(value, tuple):
            value = list(value)
        out.append({"key": f.key, "op": f.op.value, "value": value})
    return out


def _aggregate_payload(spec) -> Optional[dict[str, Any]]:
    if spec is None:
        return None
    return {"kind": spec.kind, "by": spec.by}


def explain_plan(plan: TraversalPlan) -> dict[str, Any]:
    """The compiled step plan as a structured, canonical-JSON-safe dict."""
    steps = []
    for level, step in enumerate(plan.steps, start=1):
        steps.append(
            {
                "level": level,
                "labels": list(step.labels),
                "edge_filters": _filters_payload(step.edge_filters),
                "vertex_filters": _filters_payload(step.vertex_filters),
                "rtn": level in plan.rtn_levels,
            }
        )
    return {
        "query": plan.describe(),
        "source": {
            "ids": list(plan.source_ids) if plan.source_ids is not None else "all",
            "filters": _filters_payload(plan.source_filters),
            "rtn": 0 in plan.rtn_levels,
        },
        "steps": steps,
        "final_level": plan.final_level,
        "rtn_levels": sorted(plan.rtn_levels),
        "return_levels": sorted(plan.return_levels),
        "has_intermediate_returns": plan.has_intermediate_returns,
        "aggregate": _aggregate_payload(plan.aggregate),
        "annotations": {
            "pushdown": plan.pushdown,
            "short_circuit_final": plan.short_circuit_final,
        },
    }


def empty_plan_document() -> dict[str, Any]:
    """A well-formed EXPLAIN document for a chain with no ``v()`` yet: the
    same shape as :func:`explain_plan`, with an empty source and no steps."""
    return {
        "query": "GTravel",
        "source": {"ids": [], "filters": [], "rtn": False},
        "steps": [],
        "final_level": 0,
        "rtn_levels": [],
        "return_levels": [0],
        "has_intermediate_returns": False,
        "aggregate": None,
        "annotations": {"pushdown": False, "short_circuit_final": False},
    }


def _composite_op_payload(op) -> dict[str, Any]:
    """One composite operator (recursively) as a JSON-safe dict."""
    from repro.lang.composite import AsOp, BackOp, FilterNode, RepeatOp, UnionOp
    from repro.lang.plan import Step

    if isinstance(op, Step):
        return {
            "op": "step",
            "labels": list(op.labels),
            "edge_filters": _filters_payload(op.edge_filters),
            "vertex_filters": _filters_payload(op.vertex_filters),
        }
    if isinstance(op, FilterNode):
        return {"op": "filter", "filters": _filters_payload(op.filters)}
    if isinstance(op, RepeatOp):
        doc: dict[str, Any] = {
            "op": "repeat",
            "body": [_composite_op_payload(o) for o in op.body],
        }
        if op.times is not None:
            doc["times"] = op.times
        else:
            doc["until"] = _filters_payload(FilterSet((op.until,)))[0]
            doc["max_depth"] = op.max_depth
        return doc
    if isinstance(op, UnionOp):
        return {
            "op": "union",
            "branches": [
                [_composite_op_payload(o) for o in branch]
                for branch in op.branches
            ],
        }
    if isinstance(op, AsOp):
        return {"op": "as", "name": op.name}
    if isinstance(op, BackOp):
        return {"op": "back", "name": op.name}
    raise TypeError(f"unknown composite op {type(op).__name__}")  # pragma: no cover


def explain_composite(cplan, planner=None) -> dict[str, Any]:
    """EXPLAIN for a composite (repeat/union/back/aggregate) plan.

    Renders the operator tree and, when a ``cost``-mode planner with a graph
    summary is supplied, the per-operator cost estimates from
    :func:`~repro.lang.optimizer.estimate_composite_plan`. Rewrite boundaries
    are structural: the orchestrator plans every child chain it dispatches
    individually, so no rewrite ever crosses a repeat/union scope.
    """
    doc: dict[str, Any] = {
        "query": cplan.describe(),
        "type": "composite",
        "source": {
            "ids": list(cplan.source_ids or ()),
            "filters": _filters_payload(cplan.source_filters),
        },
        "ops": [_composite_op_payload(op) for op in cplan.ops],
        "final_level": cplan.final_level,
        "aggregate": _aggregate_payload(cplan.aggregate),
        "planner": planner.mode if planner is not None else "off",
        "estimate": None,
    }
    if (
        planner is not None
        and planner.mode == "cost"
        and planner.summary is not None
    ):
        from repro.lang.optimizer import estimate_composite_plan

        doc["estimate"] = estimate_composite_plan(
            cplan, planner.summary, planner.params
        ).payload()
    return doc


def explain_planned(planned: PlannedQuery) -> dict[str, Any]:
    """EXPLAIN with the planner in the loop: the plan as compiled, the plan
    as it will execute, the rewrites connecting them, and (in ``cost`` mode)
    the per-level cardinality/cost estimates for both."""
    return {
        "planner": planned.mode,
        "original": explain_plan(planned.original),
        "optimized": explain_plan(planned.executed),
        "rewrites": [r.payload() for r in planned.rewrites],
        "cost_original": (
            planned.cost_original.payload()
            if planned.cost_original is not None
            else None
        ),
        "cost_optimized": (
            planned.cost_executed.payload()
            if planned.cost_executed is not None
            else None
        ),
        "level_map": {str(k): v for k, v in sorted(planned.level_map.items())},
    }


@dataclass
class StepProfile:
    """Aggregated execution profile of one traversal level."""

    level: int
    executions: int = 0
    processed_units: int = 0
    fan_out: int = 0  # executions created out of this level
    wall_clock: Optional[float] = None  # level-span duration, virtual seconds
    per_server: dict[int, int] = field(default_factory=dict)
    retries: int = 0
    replays: int = 0
    dup_drops: int = 0
    lost: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def skew(self) -> float:
        """max/mean of per-server execution counts (1.0 = perfectly even)."""
        if not self.per_server:
            return 0.0
        counts = list(self.per_server.values())
        return max(counts) / (sum(counts) / len(counts))

    def as_dict(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "executions": self.executions,
            "processed_units": self.processed_units,
            "fan_out": self.fan_out,
            "wall_clock": self.wall_clock,
            "per_server": {str(s): self.per_server[s] for s in sorted(self.per_server)},
            "skew": round(self.skew, 6),
            "retries": self.retries,
            "replays": self.replays,
            "dup_drops": self.dup_drops,
            "lost": self.lost,
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
        }


@dataclass
class ProfileReport:
    """The full PROFILE result of one traversal run."""

    travel_id: int
    status: str
    query: str
    plan: dict[str, Any]
    elapsed: Optional[float]
    attempts: int
    steps: list[StepProfile]
    per_server: dict[int, int]
    warnings: list[str]
    trace: dict[str, Any]
    result_count: Optional[int] = None
    #: admission-queue wait (sched.submit → sched.launch, virtual seconds);
    #: None when the scheduler launched synchronously or tracing missed it
    queue_wait: Optional[float] = None
    #: planner audit trail (mode, rewrites, executed query) — empty dict
    #: when the run executed the plan as written
    planner: dict[str, Any] = field(default_factory=dict)
    #: estimated-vs-actual cardinality rows, one per executed level — empty
    #: when no cost estimate was attached to the run
    estimates: list[dict[str, Any]] = field(default_factory=list)

    @property
    def skew(self) -> float:
        if not self.per_server:
            return 0.0
        counts = list(self.per_server.values())
        return max(counts) / (sum(counts) / len(counts))

    def payload(self) -> dict[str, Any]:
        return {
            "travel_id": self.travel_id,
            "status": self.status,
            "query": self.query,
            "plan": self.plan,
            "elapsed": self.elapsed,
            "attempts": self.attempts,
            "result_count": self.result_count,
            "queue_wait": self.queue_wait,
            "per_server": {str(s): self.per_server[s] for s in sorted(self.per_server)},
            "skew": round(self.skew, 6),
            "warnings": list(self.warnings),
            "steps": [s.as_dict() for s in self.steps],
            "trace": self.trace,
            "planner": self.planner,
            "estimates": self.estimates,
        }

    def to_json(self) -> str:
        return json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))

    def format(self) -> str:
        """Human-readable per-step table (the README quickstart output)."""
        lines = [
            f"PROFILE travel {self.travel_id} [{self.status}] "
            f"elapsed={self.elapsed if self.elapsed is not None else '?'}s "
            f"attempts={self.attempts + 1}"
            + (
                f" queue_wait={self.queue_wait:.6f}s"
                if self.queue_wait is not None
                else ""
            ),
            f"  query: {self.query}",
            "  level  execs  units  fan-out  visited  cache-hit  wall-clock  skew",
        ]
        for s in self.steps:
            visited = s.stats.get("vertices", 0)
            hits = s.stats.get("cache_hits", 0)
            wall = f"{s.wall_clock:.6f}" if s.wall_clock is not None else "-"
            lines.append(
                f"  L{s.level:<5} {s.executions:<6} {s.processed_units:<6} "
                f"{s.fan_out:<8} {visited:<8} {hits:<10} {wall:<11} {s.skew:.2f}"
            )
        for warning in self.warnings:
            lines.append(f"  WARNING: {warning}")
        return "\n".join(lines)


def _level_durations(spans: SpanTracer, travel_id: int) -> dict[int, float]:
    out: dict[int, float] = {}
    prefix = f"travel-{travel_id}/L"
    for span in spans.timeline_spans():
        if span.kind != "level" or not span.name.startswith(prefix):
            continue
        if span.end is None:
            continue
        level = span.attrs.get("level")
        if isinstance(level, int):
            out[level] = span.end - span.start
    return out


def profile_traversal(
    dag: TraversalDag,
    plan: TraversalPlan,
    *,
    spans: Optional[SpanTracer] = None,
    elapsed: Optional[float] = None,
    result_count: Optional[int] = None,
    queue_wait: Optional[float] = None,
    planned: Optional[PlannedQuery] = None,
) -> ProfileReport:
    """Aggregate one traversal's execution DAG into a per-step profile.

    With ``planned``, the per-level rows follow the *executed* plan (which
    may be reversed or short-circuited), the report carries the planner's
    audit trail, and — when a cost estimate is attached — estimated-vs-actual
    cardinality rows so estimator error is directly observable.
    """
    if planned is not None:
        plan = planned.executed
    durations = (
        _level_durations(spans, dag.travel_id) if spans is not None else {}
    )
    by_level: dict[int, StepProfile] = {}

    def step(level: int) -> StepProfile:
        sp = by_level.get(level)
        if sp is None:
            sp = by_level[level] = StepProfile(level=level)
            sp.wall_clock = durations.get(level)
        return sp

    # Make every plan level present even if no execution reached it
    # (e.g. a filter emptied the frontier early).
    for level in range(plan.final_level + 1):
        step(level)

    for nid in sorted(dag.nodes):
        node = dag.nodes[nid]
        level = node.step if node.step is not None else -1
        sp = step(level)
        sp.executions += 1
        sp.processed_units += node.process_count
        sp.retries += node.retries
        sp.replays += node.replays
        sp.dup_drops += node.dup_drops
        if node.status == "lost":
            sp.lost += 1
        if node.server_id is not None and node.server_id >= 0:
            sp.per_server[node.server_id] = sp.per_server.get(node.server_id, 0) + 1
        for key in _STEP_STATS:
            if key in node.stats:
                sp.stats[key] = sp.stats.get(key, 0) + int(node.stats[key])

    for edge in dag.edges.values():
        if edge.parent is None:
            continue
        parent = dag.nodes.get(edge.parent)
        if parent is not None and parent.step is not None:
            step(parent.step).fan_out += edge.count

    per_server: dict[int, int] = {}
    for sp in by_level.values():
        for server, n in sp.per_server.items():
            per_server[server] = per_server.get(server, 0) + n

    planner_doc: dict[str, Any] = {}
    estimates: list[dict[str, Any]] = []
    if planned is not None and planned.mode != "off":
        planner_doc = {
            "mode": planned.mode,
            "rewrites": [r.payload() for r in planned.rewrites],
            "executed_query": planned.executed.describe(),
            "level_map": {str(k): v for k, v in sorted(planned.level_map.items())},
        }
        if planned.cost_executed is not None:
            for est in planned.cost_executed.levels:
                actual = by_level.get(est.level)
                actual_rows = (
                    actual.stats.get("vertices", 0) if actual is not None else 0
                )
                estimates.append(
                    {
                        "level": est.level,
                        "original_level": planned.map_level(est.level),
                        "estimated_rows": round(est.rows_in, 3),
                        "actual_rows": actual_rows,
                        "estimated_cost": round(est.cost, 6),
                    }
                )

    return ProfileReport(
        travel_id=dag.travel_id,
        status=dag.status,
        query=(planned.original if planned is not None else plan).describe(),
        plan=explain_plan(planned.original if planned is not None else plan),
        elapsed=elapsed,
        attempts=dag.attempts,
        steps=[by_level[level] for level in sorted(by_level)],
        per_server=per_server,
        warnings=list(dag.warnings),
        trace=dag.to_payload(),
        result_count=result_count,
        queue_wait=queue_wait,
        planner=planner_doc,
        estimates=estimates,
    )
