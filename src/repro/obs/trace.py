"""Per-traversal flight recorder and distributed-trace reconstruction.

A traversal's execution is distributed and asynchronous: executions are
created and terminated on backend servers, forwarded peer-to-peer, and
rtn()-redirected away from the coordinator (paper §IV). Aggregate counters
and flat spans cannot answer "why was *this* query slow" — the flight
recorder can. Every causally-significant event of a traversal is logged as a
structured :class:`TraceEvent` carrying
``(travel_id, exec_id, parent_exec_id, server_id, step, clock)``:

* execution lifecycle — ``exec.created`` / ``exec.received`` /
  ``exec.terminated`` / ``exec.replayed``;
* coordinator protocol — ``travel.submit`` / ``coord.status`` /
  ``coord.result`` / ``travel.restart`` / ``travel.complete`` /
  ``travel.failed``;
* transport and faults — ``net.retry`` / ``net.dup_drop`` /
  ``net.delivery_failed`` / ``fault.drop`` / ``fault.verdict`` /
  ``fault.crash`` / ``fault.recover``;
* coordinator crash recovery — ``coord.crash`` / ``coord.recover`` /
  ``coord.replay`` / ``coord.fenced``.

Recording is out-of-band (costs no simulated time) and never reads the wall
clock, so on the simulated runtime the event stream — and every rendering of
it — is a pure function of (seed, configuration): byte-identical across runs.

:func:`assemble_trace` reconstructs the per-traversal execution DAG from the
records. Orphan executions (terminated but never created) and cycles are hard
errors (:class:`~repro.errors.TraceError`); retries, duplicate deliveries,
and coordinator replays become *annotations* on nodes and edges, never
duplicate nodes. :func:`chrome_trace` renders recorded traversals in Chrome
``trace_event`` format, loadable in ``chrome://tracing`` / Perfetto, and
:func:`validate_trace` is the schema gate CI runs over that payload.
"""

from __future__ import annotations

import itertools
import json
import math
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import TraceError

#: event kinds the assembler understands (other kinds pass through exports)
EVENT_KINDS = (
    "travel.submit",
    "travel.restart",
    "travel.complete",
    "travel.failed",
    "travel.cancelled",
    "exec.created",
    "exec.received",
    "exec.terminated",
    "exec.replayed",
    "coord.status",
    "coord.result",
    "net.retry",
    "net.dup_drop",
    "net.delivery_failed",
    "fault.drop",
    "fault.verdict",
    "fault.crash",
    "fault.recover",
    # coordinator crash recovery (PR 7): the control plane's own crash,
    # the new-epoch recovery, per-travel journal replay decisions, and
    # fenced pre-crash messages — instants on the coordinator row
    "coord.crash",
    "coord.recover",
    "coord.replay",
    "coord.fenced",
    # scheduler lifecycle (repro.sched): admission, launch, rejection,
    # cancellation — annotations on the travel row, not DAG nodes
    "sched.submit",
    "sched.launch",
    "sched.reject",
    "sched.cancel",
    # telemetry plane (repro.obs.slo): a burn-rate alert transition
    # (firing/resolved) — an instant on the coordinator row
    "slo.alert",
)

#: default ring-buffer capacity — generous: a fig-scale traversal records
#: tens of thousands of events, chaos soaks a few hundred thousand
DEFAULT_MAX_EVENTS = 500_000


#: configure(...) sentinel: "leave the sampling policy unchanged"
_UNSET = object()


@dataclass(frozen=True)
class SamplingPolicy:
    """Tail-based sampling: which *completed-ok* traversals keep their full
    trace (failed / cancelled / slow / alert-matching traversals are always
    kept — those rules live in the telemetry plane's keep decision; this
    policy only contributes the seeded deterministic 1-in-N complement).

    With a policy installed the recorder buffers each traversal's events
    per travel id and commits or discards the whole buffer at the
    traversal's terminal decision — so tracing can be left **on** at bench
    scale without retaining every healthy traversal's events.
    """

    #: keep one in N completed-ok traversals (0 = none beyond the always-keep
    #: rules, 1 = all)
    sample_every_n: int = 16
    #: decision seed — a pure function of (travel_id, seed, N)
    seed: int = 0

    def sampled(self, travel_id: int) -> bool:
        if self.sample_every_n <= 0:
            return False
        if self.sample_every_n == 1:
            return True
        return (
            travel_id * 2654435761 + self.seed * 40503
        ) % self.sample_every_n == 0


def sync_exec_id(attempt: int, level: int, server: int) -> int:
    """Synthetic execution id for the synchronous engine's (level, server)
    work units, unique within one traversal. Small by construction, so it
    can never collide with async exec ids (those start at ``1 << 32``)."""
    return ((attempt * 4096 + level) * 4096 + server) + 1


@dataclass
class TraceEvent:
    """One causally-significant record in the flight recorder."""

    seq: int
    clock: float
    kind: str
    travel_id: Optional[int] = None
    exec_id: Optional[int] = None
    parent_exec_id: Optional[int] = None
    server_id: Optional[int] = None
    step: Optional[int] = None
    attempt: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "clock": self.clock,
            "kind": self.kind,
            "travel_id": self.travel_id,
            "exec_id": self.exec_id,
            "parent_exec_id": self.parent_exec_id,
            "server_id": self.server_id,
            "step": self.step,
            "attempt": self.attempt,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class FlightRecorder:
    """Bounded, clock-bound event log shared by every instrumented layer.

    Disabled by default: ``record`` is a cheap no-op until
    :meth:`configure` (or ``ClusterConfig.trace_enabled``) turns it on. The
    ring buffer caps memory on long chaos runs; evicted events bump
    ``dropped`` and the ``trace.dropped_events`` counter so downstream
    consumers (DAG assembly, profiles) can surface the truncation instead of
    mis-reading a partial trace as complete.
    """

    def __init__(
        self, enabled: bool = False, max_events: int = DEFAULT_MAX_EVENTS
    ):
        self.enabled = enabled
        self.max_events = max_events
        self.dropped = 0
        #: tail sampling policy; None = retain everything (legacy behavior)
        self.sampling: Optional[SamplingPolicy] = None
        #: events discarded by a sample-out decision (not ring evictions)
        self.sampled_out = 0
        self._clock: Callable[[], float] = lambda: 0.0
        self._events: deque[TraceEvent] = deque()
        #: per-travel buffers awaiting their terminal keep/drop decision
        self._pending: dict[int, list[TraceEvent]] = {}
        #: travel id → (keep, reason) once decided
        self._decisions: dict[int, tuple[bool, Optional[str]]] = {}
        self._dropped_by_travel: dict[Optional[int], int] = {}
        self._seq = itertools.count(1)
        self._metrics = None
        self._lock = threading.Lock()

    # -- wiring --------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def bind_metrics(self, metrics) -> None:
        self._metrics = metrics

    def configure(
        self,
        enabled: Optional[bool] = None,
        max_events: Optional[int] = None,
        sampling: Any = _UNSET,
    ) -> None:
        if enabled is not None:
            self.enabled = enabled
        if sampling is not _UNSET:
            self.sampling = sampling
        if max_events is not None:
            self.max_events = max_events
            with self._lock:
                while len(self._events) > self.max_events:
                    evicted = self._events.popleft()
                    self._note_drop(evicted.travel_id)

    @property
    def sampling_active(self) -> bool:
        return self.enabled and self.sampling is not None

    # -- recording -----------------------------------------------------------

    def record(
        self,
        kind: str,
        travel_id: Optional[int] = None,
        exec_id: Optional[int] = None,
        parent_exec_id: Optional[int] = None,
        server_id: Optional[int] = None,
        step: Optional[int] = None,
        attempt: int = 0,
        **attrs: Any,
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            event = TraceEvent(
                seq=next(self._seq),
                clock=self._clock(),
                kind=kind,
                travel_id=travel_id,
                exec_id=exec_id,
                parent_exec_id=parent_exec_id,
                server_id=server_id,
                step=step,
                attempt=attempt,
                attrs=attrs,
            )
            if self.sampling is not None and travel_id is not None:
                decision = self._decisions.get(travel_id)
                if decision is None:
                    # undecided: buffer until the traversal's terminal
                    self._pending.setdefault(travel_id, []).append(event)
                    return
                if not decision[0]:
                    self.sampled_out += 1
                    return
            self._events.append(event)
            if len(self._events) > self.max_events:
                evicted = self._events.popleft()
                self._note_drop(evicted.travel_id)

    def finalize_travel(
        self, travel_id: int, keep: bool, reason: Optional[str] = None
    ) -> None:
        """Commit (``keep=True``) or discard one traversal's buffered events.

        The tail-sampling decision point: called at the traversal's terminal
        by the telemetry plane, once the outcome (failed / slow / sampled /
        healthy) is known. Late events for a decided traversal follow the
        decision directly.
        """
        with self._lock:
            buffered = self._pending.pop(travel_id, [])
            self._decisions[travel_id] = (keep, reason)
            if keep:
                self._events.extend(buffered)
                while len(self._events) > self.max_events:
                    evicted = self._events.popleft()
                    self._note_drop(evicted.travel_id)
            else:
                self.sampled_out += len(buffered)
        if self._metrics is not None:
            if keep:
                self._metrics.count(
                    "trace.kept_traces", reason=reason or "unspecified"
                )
            else:
                self._metrics.count("trace.sampled_out_traces")
                self._metrics.count("trace.sampled_out_events", len(buffered))

    def keep_all_pending(self, reason: str) -> None:
        """Commit every undecided traversal's buffer (coordinator crash: the
        outcome of in-flight traversals is about to be decided by recovery —
        retain their history)."""
        for tid in sorted(self._pending):
            self.finalize_travel(tid, keep=True, reason=reason)

    def _note_drop(self, travel_id: Optional[int] = None) -> None:
        # callers hold self._lock; trace.dropped_events never routes back
        # into the recorder, so the metrics call is re-entrancy safe
        self.dropped += 1
        self._dropped_by_travel[travel_id] = (
            self._dropped_by_travel.get(travel_id, 0) + 1
        )
        if self._metrics is not None:
            # label value must always be a str: mixed int/str label values
            # would break the snapshot's sorted-key rendering
            label = str(travel_id) if travel_id is not None else "untracked"
            self._metrics.count("trace.dropped_events", travel_id=label)

    def dropped_for(self, travel_id: Optional[int]) -> int:
        """Ring evictions attributable to one traversal (plus the untracked
        evictions, which could have belonged to any traversal)."""
        return self._dropped_by_travel.get(travel_id, 0) + (
            self._dropped_by_travel.get(None, 0) if travel_id is not None else 0
        )

    @property
    def truncated(self) -> bool:
        return self.dropped > 0

    # -- reading -------------------------------------------------------------

    def _view(self) -> list[TraceEvent]:
        """Committed ring plus still-pending buffers, in record order."""
        if not self._pending:
            return list(self._events)
        merged = list(self._events)
        for buffered in self._pending.values():
            merged.extend(buffered)
        merged.sort(key=lambda e: e.seq)
        return merged

    def __len__(self) -> int:
        return len(self._events) + sum(len(b) for b in self._pending.values())

    def events(self) -> list[TraceEvent]:
        return self._view()

    def events_for(self, travel_id: int) -> list[TraceEvent]:
        return [e for e in self._view() if e.travel_id == travel_id]

    def travel_ids(self) -> list[int]:
        """Travel ids with at least one recorded event, in first-seen order."""
        seen: dict[int, None] = {}
        for e in self._view():
            if e.travel_id is not None:
                seen.setdefault(e.travel_id, None)
        return list(seen)

    def timeline(self) -> list[dict[str, Any]]:
        return [e.as_dict() for e in self._view()]

    def to_json(self) -> str:
        return json.dumps(self.timeline(), sort_keys=True, separators=(",", ":"))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._pending.clear()
            self._decisions.clear()
            self._dropped_by_travel.clear()
            self.dropped = 0
            self.sampled_out = 0


# -- DAG reconstruction ------------------------------------------------------


@dataclass
class DagNode:
    """One traversal execution, merged across all records that mention it."""

    exec_id: int
    server_id: Optional[int] = None
    step: Optional[int] = None
    attempt: int = 0
    created_at: Optional[float] = None
    first_received: Optional[float] = None
    last_terminated: Optional[float] = None
    receive_count: int = 0
    terminate_count: int = 0
    #: actual work-unit processings (terminations with reason "ok")
    process_count: int = 0
    reasons: list[str] = field(default_factory=list)
    replays: int = 0
    retries: int = 0
    dup_drops: int = 0
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def status(self) -> str:
        if self.terminate_count:
            return "terminated"
        if self.receive_count:
            return "received"
        return "lost"

    def as_dict(self) -> dict[str, Any]:
        return {
            "exec_id": self.exec_id,
            "server_id": self.server_id,
            "step": self.step,
            "attempt": self.attempt,
            "created_at": self.created_at,
            "first_received": self.first_received,
            "last_terminated": self.last_terminated,
            "status": self.status,
            "receive_count": self.receive_count,
            "terminate_count": self.terminate_count,
            "process_count": self.process_count,
            "reasons": sorted(set(self.reasons)),
            "replays": self.replays,
            "retries": self.retries,
            "dup_drops": self.dup_drops,
            "stats": {k: self.stats[k] for k in sorted(self.stats)},
        }


@dataclass
class DagEdge:
    """A creation edge; ``parent is None`` marks a root dispatch."""

    parent: Optional[int]
    child: int
    kind: str = "dispatch"
    count: int = 1
    retries: int = 0
    replays: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "parent": self.parent,
            "child": self.child,
            "kind": self.kind,
            "count": self.count,
            "retries": self.retries,
            "replays": self.replays,
        }


@dataclass
class TraversalDag:
    """The reconstructed execution DAG of one traversal."""

    travel_id: int
    status: str  # "ok" | "failed" | "running"
    attempts: int
    nodes: dict[int, DagNode]
    edges: dict[tuple[Optional[int], int], DagEdge]
    events: int
    truncated: bool = False
    dropped_events: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def roots(self) -> list[int]:
        return sorted(e.child for e in self.edges.values() if e.parent is None)

    @property
    def processed_units(self) -> int:
        """Work units actually processed — the span-tracer's unit count."""
        return sum(n.process_count for n in self.nodes.values())

    def children_of(self, exec_id: Optional[int]) -> list[int]:
        return sorted(e.child for e in self.edges.values() if e.parent == exec_id)

    def reachable(self) -> set[int]:
        """Nodes reachable from the (synthetic) root via creation edges."""
        out: dict[Optional[int], list[int]] = {}
        for edge in self.edges.values():
            out.setdefault(edge.parent, []).append(edge.child)
        seen: set[int] = set()
        stack = list(out.get(None, []))
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            stack.extend(out.get(nid, ()))
        return seen

    def verify(self) -> None:
        """Hard structural checks: rooted, acyclic, no orphans.

        Raises :class:`TraceError` unless the recorder truncated (then the
        missing records are reported as warnings instead — a partial ring
        buffer cannot prove anything about evicted history).
        """
        problems: list[str] = []
        orphans = sorted(
            n.exec_id
            for n in self.nodes.values()
            if n.created_at is None and (n.receive_count or n.terminate_count)
        )
        if orphans:
            problems.append(f"orphan executions (no creation record): {orphans[:8]}")
        unreachable = sorted(set(self.nodes) - self.reachable())
        if unreachable:
            problems.append(f"executions unreachable from the root: {unreachable[:8]}")
        cycle = self._find_cycle()
        if cycle:
            problems.append(f"cycle through executions {cycle}")
        if not problems:
            return
        if self.truncated:
            self.warnings.extend(problems)
            return
        raise TraceError(
            f"travel {self.travel_id}: malformed execution DAG: "
            + "; ".join(problems)
        )

    def _find_cycle(self) -> Optional[list[int]]:
        out: dict[int, list[int]] = {}
        indeg: dict[int, int] = {n: 0 for n in self.nodes}
        for edge in self.edges.values():
            if edge.parent is None or edge.parent not in self.nodes:
                continue
            out.setdefault(edge.parent, []).append(edge.child)
            if edge.child in indeg:
                indeg[edge.child] += 1
        ready = [n for n, d in sorted(indeg.items()) if d == 0]
        visited = 0
        while ready:
            nid = ready.pop()
            visited += 1
            for child in out.get(nid, ()):
                indeg[child] -= 1
                if indeg[child] == 0:
                    ready.append(child)
        if visited == len(self.nodes):
            return None
        return sorted(n for n, d in indeg.items() if d > 0)[:8]

    def to_payload(self) -> dict[str, Any]:
        """Canonical plain-dict form (deterministic, sorted)."""
        return {
            "travel_id": self.travel_id,
            "status": self.status,
            "attempts": self.attempts,
            "events": self.events,
            "truncated": self.truncated,
            "dropped_events": self.dropped_events,
            "warnings": list(self.warnings),
            "roots": self.roots,
            "nodes": [
                self.nodes[nid].as_dict() for nid in sorted(self.nodes)
            ],
            "edges": [
                self.edges[key].as_dict()
                for key in sorted(
                    self.edges, key=lambda pc: (pc[0] if pc[0] is not None else -1, pc[1])
                )
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))


def assemble_trace(
    events: Iterable[TraceEvent],
    travel_id: int,
    *,
    dropped: int = 0,
    verify: bool = True,
) -> TraversalDag:
    """Reconstruct one traversal's execution DAG from recorded events.

    ``dropped`` is the recorder's eviction count: when non-zero the DAG is
    marked truncated and structural violations degrade to warnings.
    """
    nodes: dict[int, DagNode] = {}
    edges: dict[tuple[Optional[int], int], DagEdge] = {}
    status = "running"
    attempts = 0
    nevents = 0

    def node(eid: int) -> DagNode:
        n = nodes.get(eid)
        if n is None:
            n = nodes[eid] = DagNode(exec_id=eid)
        return n

    for ev in events:
        if ev.travel_id != travel_id:
            continue
        nevents += 1
        attempts = max(attempts, ev.attempt)
        if ev.kind == "exec.created":
            n = node(ev.exec_id)
            if n.created_at is None:
                n.created_at = ev.clock
            if ev.server_id is not None:
                n.server_id = ev.server_id
            if ev.step is not None:
                n.step = ev.step
            n.attempt = max(n.attempt, ev.attempt)
            key = (ev.parent_exec_id, ev.exec_id)
            edge = edges.get(key)
            if edge is None:
                edges[key] = DagEdge(
                    parent=ev.parent_exec_id,
                    child=ev.exec_id,
                    kind=str(ev.attrs.get("edge", "dispatch")),
                )
            else:
                edge.count += 1
        elif ev.kind == "exec.received":
            n = node(ev.exec_id)
            n.receive_count += 1
            if n.first_received is None:
                n.first_received = ev.clock
            if n.server_id is None and ev.server_id is not None:
                n.server_id = ev.server_id
            if n.step is None and ev.step is not None:
                n.step = ev.step
        elif ev.kind == "exec.terminated":
            n = node(ev.exec_id)
            n.terminate_count += 1
            n.last_terminated = ev.clock
            reason = str(ev.attrs.get("reason", "ok"))
            n.reasons.append(reason)
            if reason == "ok":
                n.process_count += 1
                for k, v in ev.attrs.items():
                    if isinstance(v, (int, float)) and not isinstance(v, bool):
                        n.stats[k] = n.stats.get(k, 0) + v
        elif ev.kind == "exec.replayed":
            n = node(ev.exec_id)
            n.replays += 1
            for key, edge in edges.items():
                if key[1] == ev.exec_id:
                    edge.replays += 1
        elif ev.kind == "net.retry":
            # Annotate only known executions: tracing enabled mid-run can see
            # retries of executions whose creation predates the recorder.
            if ev.exec_id is not None and ev.exec_id in nodes:
                n = nodes[ev.exec_id]
                n.retries += 1
                inbound = [e for (p, c), e in edges.items() if c == ev.exec_id]
                if inbound:
                    inbound[0].retries += 1
        elif ev.kind == "net.dup_drop":
            if ev.exec_id is not None and ev.exec_id in nodes:
                nodes[ev.exec_id].dup_drops += 1
        elif ev.kind == "travel.complete":
            status = "ok"
        elif ev.kind == "travel.failed":
            status = "failed"
        elif ev.kind == "travel.cancelled":
            status = "cancelled"

    dag = TraversalDag(
        travel_id=travel_id,
        status=status,
        attempts=attempts,
        nodes=nodes,
        edges=edges,
        events=nevents,
        truncated=dropped > 0,
        dropped_events=dropped,
    )
    if dropped > 0:
        dag.warnings.append(
            f"flight recorder dropped {dropped} events (ring buffer full); "
            "the reconstructed DAG may be incomplete"
        )
    if verify:
        dag.verify()
    return dag


def assemble_all(recorder: FlightRecorder, *, verify: bool = True) -> list[TraversalDag]:
    """One DAG per traversal that left records in ``recorder``."""
    events = recorder.events()
    return [
        assemble_trace(events, tid, dropped=recorder.dropped_for(tid), verify=verify)
        for tid in recorder.travel_ids()
    ]


# -- span/trace consistency ---------------------------------------------------


def unit_span_count(spans, travel_id: int) -> int:
    """Number of PR-1 ``unit`` spans recorded under one traversal's span tree.

    The differential invariant: this equals the DAG's ``processed_units``
    (executions carry one unit span per actual processing; coalesced, stale,
    and rtn-confirm terminations have neither).
    """
    all_spans = spans.timeline_spans()
    travel_sid = None
    for s in all_spans:
        if s.kind == "travel" and s.name == f"travel-{travel_id}":
            travel_sid = s.span_id
            break
    if travel_sid is None:
        return 0
    level_ids = {
        s.span_id for s in all_spans if s.kind == "level" and s.parent_id == travel_sid
    }
    return sum(1 for s in all_spans if s.kind == "unit" and s.parent_id in level_ids)


# -- Chrome trace_event export ------------------------------------------------

_TRAVEL_EVENT_NAMES = {
    "travel.submit": "submit",
    "travel.restart": "restart",
    "travel.complete": "complete",
    "travel.failed": "FAILED",
    "travel.cancelled": "CANCELLED",
}


def _us(t: float) -> int:
    return int(round(t * 1e6))


def chrome_trace(
    recorder: FlightRecorder,
    *,
    pid_base: int = 0,
    label: Optional[str] = None,
) -> dict[str, Any]:
    """Render every recorded traversal as a Chrome ``trace_event`` payload.

    Open the written file in ``chrome://tracing`` or https://ui.perfetto.dev:
    each backend server is a process row (the coordinator is ``pid_base``),
    executions are complete ("X") slices on their server, creation edges are
    flow arrows ("s"/"f"), and faults/retries/travel milestones are instants.
    """
    events = recorder.events()
    dags = {
        d.travel_id: d
        for d in (
            assemble_trace(events, tid, dropped=recorder.dropped_for(tid), verify=False)
            for tid in recorder.travel_ids()
        )
    }
    out: list[dict[str, Any]] = []
    prefix = f"{label} " if label else ""

    def pid_of(server_id: Optional[int]) -> int:
        # COORDINATOR (-1) and unknown servers land on the base process row.
        if server_id is None or server_id < 0:
            return pid_base
        return pid_base + 1 + server_id

    pids_seen: dict[int, str] = {pid_base: f"{prefix}coordinator"}
    flow_ids = itertools.count(1)

    for dag in dags.values():
        for nid in sorted(dag.nodes):
            n = dag.nodes[nid]
            if n.first_received is None:
                continue
            pid = pid_of(n.server_id)
            if n.server_id is not None and n.server_id >= 0:
                pids_seen.setdefault(pid, f"{prefix}server {n.server_id}")
            end = n.last_terminated if n.last_terminated is not None else n.first_received
            out.append(
                {
                    "name": f"L{n.step if n.step is not None else '?'} exec {nid}",
                    "cat": "exec",
                    "ph": "X",
                    "ts": _us(n.first_received),
                    "dur": max(_us(end) - _us(n.first_received), 1),
                    "pid": pid,
                    "tid": dag.travel_id,
                    "args": n.as_dict(),
                }
            )
        for key in sorted(
            dag.edges, key=lambda pc: (pc[0] if pc[0] is not None else -1, pc[1])
        ):
            edge = dag.edges[key]
            child = dag.nodes.get(edge.child)
            if child is None or child.first_received is None:
                continue
            parent = dag.nodes.get(edge.parent) if edge.parent is not None else None
            if parent is not None and parent.last_terminated is None:
                continue
            fid = next(flow_ids)
            src_ts = (
                parent.last_terminated
                if parent is not None
                else child.created_at if child.created_at is not None else 0.0
            )
            src_pid = pid_of(parent.server_id) if parent is not None else pid_base
            out.append(
                {
                    "name": edge.kind,
                    "cat": "edge",
                    "ph": "s",
                    "id": fid,
                    "ts": _us(src_ts),
                    "pid": src_pid,
                    "tid": dag.travel_id,
                }
            )
            out.append(
                {
                    "name": edge.kind,
                    "cat": "edge",
                    "ph": "f",
                    "bp": "e",
                    "id": fid,
                    "ts": max(_us(child.first_received), _us(src_ts)),
                    "pid": pid_of(child.server_id),
                    "tid": dag.travel_id,
                }
            )

    for ev in events:
        if ev.kind in _TRAVEL_EVENT_NAMES:
            out.append(
                {
                    "name": _TRAVEL_EVENT_NAMES[ev.kind],
                    "cat": "travel",
                    "ph": "i",
                    "s": "p",
                    "ts": _us(ev.clock),
                    "pid": pid_base,
                    "tid": ev.travel_id if ev.travel_id is not None else 0,
                    "args": {k: ev.attrs[k] for k in sorted(ev.attrs)},
                }
            )
        elif ev.kind in ("fault.crash", "fault.recover"):
            pid = pid_of(ev.server_id)
            out.append(
                {
                    "name": ev.kind,
                    "cat": "fault",
                    "ph": "i",
                    "s": "g",
                    "ts": _us(ev.clock),
                    "pid": pid,
                    "tid": 0,
                }
            )
        elif ev.kind in ("coord.crash", "coord.recover", "coord.replay", "coord.fenced"):
            out.append(
                {
                    "name": ev.kind,
                    "cat": "coord",
                    "ph": "i",
                    "s": "g" if ev.kind in ("coord.crash", "coord.recover") else "t",
                    "ts": _us(ev.clock),
                    "pid": pid_base,
                    "tid": ev.travel_id if ev.travel_id is not None else 0,
                    "args": {k: ev.attrs[k] for k in sorted(ev.attrs)},
                }
            )

    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "tid": 0,
            "args": {"name": pids_seen[pid]},
        }
        for pid in sorted(pids_seen)
    ]
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


_VALID_PH = {"X", "B", "E", "i", "I", "s", "t", "f", "M", "C"}


def _bad_number(value: Any) -> bool:
    return isinstance(value, float) and (math.isnan(value) or math.isinf(value))


def validate_trace(payload: Any) -> list[str]:
    """Schema problems in a Chrome ``trace_event`` payload; empty = healthy.

    The ``validate_snapshot``-style gate the bench CLI and CI run over every
    exported trace: structural keys, known phases, finite non-negative
    timestamps, durations on complete events, and flow-id presence.
    """
    problems: list[str] = []
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return ["payload is not a dict with a 'traceEvents' list"]
    events = payload["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' is not a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PH:
            problems.append(f"{where}.ph={ph!r} is not a known phase")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}.name missing or empty")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}.{key} missing or not an int")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or _bad_number(ts) or ts < 0:
            problems.append(f"{where}.ts={ts!r} is not a finite non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or _bad_number(dur) or dur < 0:
                problems.append(f"{where}.dur={dur!r} invalid for a complete event")
        if ph in ("s", "t", "f") and "id" not in ev:
            problems.append(f"{where} flow event has no id")
    return problems
