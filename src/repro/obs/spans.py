"""Causally-linked traversal spans on the runtime clock.

A traversal unfolds as a tree of timed intervals::

    travel                      (coordinator: submit → complete/fail)
    └── level                   (first activity at step k → travel end)
        └── unit                (one server-side work unit / barrier step)
            └── disk            (one storage access, queueing included)

Span ids come from a plain counter and times from the bound runtime clock
(virtual seconds on the simulated runtime), so the exported timeline of a
seeded run is byte-identical across executions — the same no-wall-clock
contract the metrics registry keeps.

Schema of one exported span (see DESIGN.md "Observability"):

``{"span_id": int, "parent_id": int|None, "kind": str, "name": str,
"start": float, "end": float|None, "attrs": {...}}``
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: the four span kinds, outermost first
SPAN_KINDS = ("travel", "level", "unit", "disk")


@dataclass
class Span:
    """One timed interval; ``end is None`` while still open."""

    span_id: int
    parent_id: Optional[int]
    kind: str
    name: str
    start: float
    end: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
        }


class SpanTracer:
    """Collects spans cluster-wide (out-of-band; costs no simulated time)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._clock: Callable[[], float] = lambda: 0.0
        self._spans: dict[int, Span] = {}
        self._ids = itertools.count(1)
        self._travel_spans: dict[Any, int] = {}
        self._level_spans: dict[tuple[Any, int], int] = {}
        self._lock = threading.Lock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    # -- raw span API ------------------------------------------------------

    def begin(
        self, kind: str, name: str, parent: Optional[int] = None, **attrs: Any
    ) -> int:
        """Open a span; returns its id (0 when tracing is disabled)."""
        if not self.enabled:
            return 0
        with self._lock:
            sid = next(self._ids)
            self._spans[sid] = Span(
                span_id=sid, parent_id=parent, kind=kind, name=name,
                start=self._clock(), attrs=attrs,
            )
            return sid

    def end(self, span_id: int, **attrs: Any) -> None:
        if not self.enabled or span_id == 0:
            return
        with self._lock:
            span = self._spans.get(span_id)
            if span is None or span.end is not None:
                return
            span.end = self._clock()
            span.attrs.update(attrs)

    def annotate(self, span_id: int, **attrs: Any) -> None:
        if not self.enabled or span_id == 0:
            return
        span = self._spans.get(span_id)
        if span is not None:
            span.attrs.update(attrs)

    # -- traversal helpers (lazy creation keeps causality without plumbing) --

    def travel_span(self, travel_id: Any, **attrs: Any) -> int:
        """The root span for one traversal, created on first use."""
        if not self.enabled:
            return 0
        sid = self._travel_spans.get(travel_id)
        if sid is None:
            sid = self.begin("travel", f"travel-{travel_id}", **attrs)
            self._travel_spans[travel_id] = sid
        return sid

    def level_span(self, travel_id: Any, level: int) -> int:
        """The step-k span of a traversal, parented to its travel span."""
        if not self.enabled:
            return 0
        key = (travel_id, level)
        sid = self._level_spans.get(key)
        if sid is None:
            sid = self.begin(
                "level", f"travel-{travel_id}/L{level}",
                parent=self.travel_span(travel_id), level=level,
            )
            self._level_spans[key] = sid
        return sid

    def finish_travel(self, travel_id: Any, **attrs: Any) -> None:
        """Close the travel span and any still-open level spans under it."""
        if not self.enabled:
            return
        for key in sorted(k for k in self._level_spans if k[0] == travel_id):
            self.end(self._level_spans.pop(key))
        sid = self._travel_spans.pop(travel_id, None)
        if sid is not None:
            self.end(sid, **attrs)

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._spans)

    def spans_of_kind(self, kind: str) -> list[Span]:
        return [s for s in self.timeline_spans() if s.kind == kind]

    def children_of(self, span_id: int) -> list[Span]:
        return [s for s in self.timeline_spans() if s.parent_id == span_id]

    def timeline_spans(self) -> list[Span]:
        return [self._spans[sid] for sid in sorted(self._spans)]

    def timeline(self) -> list[dict[str, Any]]:
        """Spans ordered by (start, span_id) — the export form."""
        ordered = sorted(self._spans.values(), key=lambda s: (s.start, s.span_id))
        return [s.as_dict() for s in ordered]

    def to_json(self) -> str:
        return json.dumps(self.timeline(), sort_keys=True, separators=(",", ":"))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._travel_spans.clear()
            self._level_spans.clear()
