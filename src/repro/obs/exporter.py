"""OpenMetrics text export, health snapshots, and the export linter.

The wire formats of the telemetry plane (DESIGN.md §14):

* :func:`render_openmetrics` — the registry snapshot (plus, optionally, the
  latest-window rollups and health gauges) as OpenMetrics text: counters as
  ``<name>_total`` samples, gauges verbatim, histograms as summaries with
  ``quantile`` labels, terminated by ``# EOF``. Label values are escaped
  here (backslash, double quote, newline) — the registry's own
  :func:`~repro.obs.metrics.render_key` snapshot form is a stable internal
  contract and stays byte-identical, unescaped.
* :func:`validate_openmetrics` — the schema/linter gate CI runs over every
  exported dump: metric-name grammar, escaped label values, float-parseable
  sample values, TYPE-before-sample ordering, exactly one trailing
  ``# EOF``.
* :func:`health_payload` — the JSON health/readiness document
  (``Cluster.health()``): per-server liveness, coordinator epoch, scheduler
  queue depths, firing alerts.

Everything renders from already-deterministic inputs with sorted iteration,
so on the simulated runtime the dump and the health document are
byte-identical across reruns per (seed, configuration).
"""

from __future__ import annotations

import math
import re
from typing import Any, Optional

from repro.obs.metrics import MetricKey

#: OpenMetrics metric-name grammar (no dots — see :func:`metric_name`)
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: one exposition line: name{labels} value
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? "
    r"(?P<value>\S+)$"
)

_SUMMARY_QUANTILES = (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99"))


def metric_name(name: str) -> str:
    """The registry's dotted metric name in OpenMetrics grammar
    (``coord.submitted`` → ``coord_submitted``)."""
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not out or not (out[0].isalpha() or out[0] in "_:"):
        out = "_" + out
    return out


def escape_label_value(value: Any) -> str:
    """OpenMetrics label-value escaping: backslash, double quote, newline.

    The fix for the PR-1 exporter gap: ``render_key`` never escaped label
    values, so a value holding ``"`` or a newline produced an unparseable
    exposition line. Escaping lives here, on the export boundary — the
    snapshot's ``name{k=v}`` rendering is unchanged.
    """
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _fmt(value: float) -> str:
    """Sample-value formatting: canonical, float-parseable, no locale."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _labels_text(labels: tuple[tuple[str, Any], ...], extra: tuple = ()) -> str:
    pairs = [
        f'{metric_name(str(k))}="{escape_label_value(v)}"'
        for k, v in (*labels, *extra)
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _parse_rendered_key(rendered: str) -> MetricKey:
    """Invert ``render_key``: ``name{k=v,...}`` → (name, ((k, v), ...)).

    Snapshot label *values* are unescaped and may themselves contain ``,``
    or ``=`` — the split is best-effort greedy on the first ``=`` per pair,
    which round-trips every key the registry itself produced.
    """
    if "{" not in rendered:
        return rendered, ()
    name, _, inner = rendered.partition("{")
    inner = inner.rstrip("}")
    labels = []
    for pair in inner.split(","):
        k, _, v = pair.partition("=")
        labels.append((k, v))
    return name, tuple(labels)


def render_openmetrics(
    snapshot: dict[str, Any],
    *,
    rollups: Optional[dict[str, Any]] = None,
    health: Optional[dict[str, Any]] = None,
) -> str:
    """One OpenMetrics exposition of a metrics snapshot.

    ``rollups`` (a :meth:`TelemetryPlane.rollups` payload) contributes the
    *latest window* of every counter series as a ``rollup_<name>_rate``
    gauge — the live view an operator scrapes. ``health`` (a
    :func:`health_payload` document) contributes liveness/epoch/queue-depth
    gauges so one scrape answers "is it up" too.
    """
    lines: list[str] = []
    families: set[str] = set()

    def family(name: str, kind: str) -> None:
        if name not in families:
            families.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for rendered in sorted(snapshot.get("counters", {})):
        raw_name, labels = _parse_rendered_key(rendered)
        name = metric_name(raw_name)
        family(name, "counter")
        lines.append(
            f"{name}_total{_labels_text(labels)} "
            f"{_fmt(snapshot['counters'][rendered])}"
        )
    for rendered in sorted(snapshot.get("gauges", {})):
        raw_name, labels = _parse_rendered_key(rendered)
        name = metric_name(raw_name)
        family(name, "gauge")
        lines.append(
            f"{name}{_labels_text(labels)} {_fmt(snapshot['gauges'][rendered])}"
        )
    for rendered in sorted(snapshot.get("histograms", {})):
        raw_name, labels = _parse_rendered_key(rendered)
        name = metric_name(raw_name)
        summary = snapshot["histograms"][rendered]
        family(name, "summary")
        for q, stat in _SUMMARY_QUANTILES:
            lines.append(
                f"{name}{_labels_text(labels, (('quantile', q),))} "
                f"{_fmt(summary[stat])}"
            )
        lines.append(f"{name}_count{_labels_text(labels)} {_fmt(summary['count'])}")
        lines.append(f"{name}_sum{_labels_text(labels)} {_fmt(summary['sum'])}")

    if rollups is not None:
        for rendered in sorted(rollups.get("counters", {})):
            windows = rollups["counters"][rendered]
            if not windows:
                continue
            raw_name, labels = _parse_rendered_key(rendered)
            name = f"rollup_{metric_name(raw_name)}_rate"
            family(name, "gauge")
            latest = windows[-1]
            lines.append(
                f"{name}{_labels_text(labels, (('window', latest['window']),))} "
                f"{_fmt(latest['rate'])}"
            )

    if health is not None:
        family("health_server_up", "gauge")
        for row in health.get("servers", []):
            lines.append(
                f'health_server_up{{server="{row["server"]}"}} '
                f"{1 if row['up'] else 0}"
            )
        family("health_coordinator_epoch", "gauge")
        lines.append(f"health_coordinator_epoch {_fmt(health.get('epoch', 0))}")
        sched = health.get("scheduler", {})
        family("health_sched_queue_depth", "gauge")
        lines.append(
            f"health_sched_queue_depth {_fmt(sched.get('queue_depth', 0))}"
        )
        family("health_sched_inflight", "gauge")
        lines.append(f"health_sched_inflight {_fmt(sched.get('inflight', 0))}")
        family("health_alerts_firing", "gauge")
        lines.append(f"health_alerts_firing {len(health.get('alerts', []))}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# -- the linter ---------------------------------------------------------------


def _valid_label_block(block: str) -> bool:
    """Parse a ``k="v",...`` label block honouring escape sequences."""
    i, n = 0, len(block)
    first = True
    while i < n:
        if not first:
            if block[i] != ",":
                return False
            i += 1
        first = False
        j = i
        while j < n and block[j] != "=":
            j += 1
        if j == n or not _LABEL_NAME_RE.match(block[i:j]):
            return False
        i = j + 1
        if i >= n or block[i] != '"':
            return False
        i += 1
        while i < n:
            c = block[i]
            if c == "\\":
                if i + 1 >= n or block[i + 1] not in ('\\', '"', 'n'):
                    return False
                i += 2
                continue
            if c == '"':
                break
            if c == "\n":
                return False
            i += 1
        if i >= n or block[i] != '"':
            return False
        i += 1
    return True


def validate_openmetrics(text: str) -> list[str]:
    """Schema problems in an OpenMetrics exposition; empty list = healthy."""
    problems: list[str] = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines = lines[:-1]
    if not lines:
        return ["document is empty"]
    if lines[-1] != "# EOF":
        problems.append("document does not end with '# EOF'")
    typed: dict[str, str] = {}
    seen_samples: set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        if line == "# EOF":
            if lineno != len(lines):
                problems.append(f"line {lineno}: '# EOF' before end of document")
            continue
        if line.startswith("#"):
            parts = line.split(" ")
            if len(parts) >= 4 and parts[1] == "TYPE":
                fam, kind = parts[2], parts[3]
                if not _NAME_RE.match(fam):
                    problems.append(f"line {lineno}: bad family name {fam!r}")
                if kind not in ("counter", "gauge", "summary", "histogram",
                                "info", "unknown"):
                    problems.append(f"line {lineno}: unknown type {kind!r}")
                if fam in typed:
                    problems.append(
                        f"line {lineno}: duplicate TYPE for family {fam!r}"
                    )
                typed[fam] = kind
            elif len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                pass
            else:
                problems.append(f"line {lineno}: malformed comment {line!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        labels = m.group("labels")
        value = m.group("value")
        if labels is not None and not _valid_label_block(labels):
            problems.append(
                f"line {lineno}: malformed/unescaped label block {labels!r}"
            )
        if value not in ("NaN", "+Inf", "-Inf"):
            try:
                float(value)
            except ValueError:
                problems.append(f"line {lineno}: non-numeric value {value!r}")
        base = name
        for suffix in ("_total", "_count", "_sum", "_bucket", "_created"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        kind = typed.get(base)
        if kind == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter sample {name!r} lacks _total suffix"
            )
        seen_samples.add(line)
    return problems


# -- health / readiness --------------------------------------------------------


def health_payload(
    *,
    epoch: int,
    servers_up: list[bool],
    coordinator_server: int,
    queue_depth: int,
    inflight: int,
    policy: str,
    active_alerts: list[dict[str, Any]],
    journal: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The JSON health/readiness document (``Cluster.health()``).

    ``status`` is ``"ok"`` when every server is up and no alert fires,
    otherwise ``"degraded"`` — the load balancer's readiness bit.
    """
    servers = [
        {
            "server": i,
            "up": up,
            "coordinator_host": i == coordinator_server,
        }
        for i, up in enumerate(servers_up)
    ]
    degraded = (not all(servers_up)) or bool(active_alerts)
    doc: dict[str, Any] = {
        "status": "degraded" if degraded else "ok",
        "epoch": epoch,
        "servers": servers,
        "scheduler": {
            "queue_depth": queue_depth,
            "inflight": inflight,
            "policy": policy,
        },
        "alerts": active_alerts,
    }
    if journal is not None:
        doc["journal"] = journal
    return doc
