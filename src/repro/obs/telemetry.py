"""The live telemetry plane: windowed rollups and hot-shard detection.

PR-1 observability is post-hoc — :meth:`MetricsRegistry.snapshot` renders
cumulative totals after a run. This module adds the *operational* view a
production metadata service needs while traversals are still in flight
(ROADMAP: elastic scale-out is blocked on a live hot-shard signal):

* **Windowed rollups** — every counter increment, gauge sample, and
  histogram observation is also binned into a fixed-width window on the
  runtime clock (``window = floor(clock / width)``), held in a bounded ring
  of recent windows per series. Counters roll up to per-window rates, gauges
  to their last sample, histograms to exact nearest-rank percentiles over
  the window's samples. Ingestion rides the registry's watcher hook
  (:meth:`MetricsRegistry.bind_watcher`), so the byte-identical snapshot
  contract of the registry itself is untouched.
* **Hot-shard detection** — a ranked :class:`HotShardReport` over per-server
  execution rates (windowed ``engine.real_visits``) and in-flight skew
  (:meth:`Coordinator.inflight_by_server`), the signal a future rebalancer
  subscribes to.
* **SLO feeding** — traversal terminals and scheduler rejections are
  forwarded to the per-tenant :class:`~repro.obs.slo.SLOTracker`, and the
  combined verdict drives the flight recorder's tail-sampling keep decision
  (failed / cancelled / slow / alert-matching / seeded 1-in-N).

Determinism: the plane never reads the wall clock — windows are derived from
the bound runtime clock — and holds no iteration-order-dependent state, so
on the simulated runtime every rollup payload, report, and keep decision is
a pure function of (seed, configuration).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.obs.metrics import Histogram, MetricKey, render_key

#: metric whose per-server rate drives the hot-shard score (both engines
#: count one ``engine.real_visits`` per actually-processed work unit)
EXEC_RATE_METRIC = "engine.real_visits"


@dataclass(frozen=True)
class TelemetryConfig:
    """Windowing and hot-shard knobs (clock units are virtual seconds)."""

    #: fixed window width on the runtime clock
    window_width: float = 0.25
    #: bounded ring: windows retained per series
    max_windows: int = 64
    #: histogram samples kept per window (first-N, deterministic); overflow
    #: is counted, never silently lost
    max_samples_per_window: int = 512
    #: hot-shard score weights: rate skew vs in-flight skew
    hot_rate_weight: float = 1.0
    hot_inflight_weight: float = 1.0
    #: a server is *hot* at or above this score (uniform load scores
    #: ``hot_rate_weight + hot_inflight_weight``; 3.0 with the default
    #: weights means ~1.5x the cluster mean)
    hot_score_threshold: float = 3.0


@dataclass
class HotShardReport:
    """Ranked per-server load skew at one instant."""

    clock: float
    window_width: float
    #: per-server rows sorted hottest-first: server, exec_rate (windowed
    #: ``engine.real_visits``/s), inflight, score
    servers: list[dict] = field(default_factory=list)
    #: server ids, hottest first (deterministic tie-break: lower id first)
    ranked: list[int] = field(default_factory=list)
    #: servers at or above the hot threshold, hottest first
    hot: list[int] = field(default_factory=list)

    @property
    def hottest(self) -> Optional[int]:
        return self.ranked[0] if self.ranked else None

    def to_payload(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "window_width": self.window_width,
            "servers": self.servers,
            "ranked": self.ranked,
            "hot": self.hot,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))


class _CounterSeries:
    __slots__ = ("windows",)

    def __init__(self) -> None:
        self.windows: deque[list] = deque()  # [window_index, total]


class _GaugeSeries:
    __slots__ = ("windows",)

    def __init__(self) -> None:
        self.windows: deque[list] = deque()  # [window_index, last_value]


class _HistSeries:
    __slots__ = ("windows",)

    def __init__(self) -> None:
        self.windows: deque[list] = deque()  # [window_index, samples, overflow]


class _NullLock:
    """No-op lock for the single-threaded simulated runtime — ingestion
    rides the engines' hot paths, and an uncontended-but-real lock is still
    measurable there."""

    __slots__ = ()

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc) -> None:
        pass


class TelemetryPlane:
    """Clock-driven rollups + SLO/sampling glue for one cluster.

    ``Cluster.build`` creates one per cluster, binds the runtime clock and
    the flight recorder, and installs :meth:`ingest` as the metrics
    registry's watcher and :meth:`on_terminal` at the head of the
    coordinator's terminal chain (so the scheduler's QoS entry is still
    alive when the plane reads it).
    """

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        *,
        slo=None,
        thread_safe: bool = True,
    ):
        self.config = config or TelemetryConfig()
        self.slo = slo
        self._clock: Callable[[], float] = lambda: 0.0
        self._recorder = None
        self._width = self.config.window_width
        self._inv_width = 1.0 / self.config.window_width
        self._max_windows = self.config.max_windows
        self._max_samples = self.config.max_samples_per_window
        self._counters: dict[MetricKey, _CounterSeries] = {}
        self._gauges: dict[MetricKey, _GaugeSeries] = {}
        self._hists: dict[MetricKey, _HistSeries] = {}
        self._lock = threading.Lock() if thread_safe else _NullLock()
        # pull mode (simulated runtime): window contents come from diffing
        # the registry at clock-boundary crossings instead of per-record
        # ingestion — zero cost on the engines' hot paths
        self._pull = False
        self._registry = None
        self._cur_widx = 0
        self._counter_marks: dict[MetricKey, float] = {}
        self._gauge_marks: dict[MetricKey, float] = {}
        self._hist_marks: dict[MetricKey, int] = {}

    # -- wiring --------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def bind_recorder(self, recorder) -> None:
        self._recorder = recorder

    def install_pull(self, sim, registry) -> None:
        """Switch to pull-based windowing on the simulated runtime: the
        kernel's boundary watcher closes each window by diffing ``registry``
        totals against the previous close (:meth:`ingest` then only forwards
        the SLO feed). Exact — every record between two crossings belongs to
        the window being closed — and free on the record path."""
        self._pull = True
        self._registry = registry
        self._cur_widx = int(sim.now * self._inv_width)
        sim.set_boundary_watcher(
            self._on_boundary, (self._cur_widx + 1) * self._width
        )

    def _on_boundary(self, now: float) -> float:
        """Kernel callback: the clock reached the next window boundary."""
        with self._lock:
            self._flush_window()
            self._cur_widx = int(now * self._inv_width)
        return (self._cur_widx + 1) * self._width

    def _flush_window(self) -> None:
        """Close (or top up) the current window from registry deltas.

        Callers hold ``self._lock``. Safe to run repeatedly mid-window:
        slots merge on window index, so read-time refreshes never double
        count."""
        reg = self._registry
        widx = self._cur_widx
        max_windows = self._max_windows
        marks = self._counter_marks
        for key, total in reg._counters.items():
            delta = total - marks.get(key, 0)
            if not delta:
                continue
            marks[key] = total
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = _CounterSeries()
            ring = series.windows
            if ring and ring[-1][0] == widx:
                ring[-1][1] += delta
            else:
                ring.append([widx, delta])
                if len(ring) > max_windows:
                    ring.popleft()
        gmarks = self._gauge_marks
        for key, value in reg._gauges.items():
            if gmarks.get(key) == value and key in gmarks:
                continue
            gmarks[key] = value
            gseries = self._gauges.get(key)
            if gseries is None:
                gseries = self._gauges[key] = _GaugeSeries()
            ring = gseries.windows
            if ring and ring[-1][0] == widx:
                ring[-1][1] = value
            else:
                ring.append([widx, value])
                if len(ring) > max_windows:
                    ring.popleft()
        hmarks = self._hist_marks
        max_samples = self._max_samples
        for key, hist in reg._histograms.items():
            start = hmarks.get(key, 0)
            samples = hist.samples
            if len(samples) <= start:
                continue
            hmarks[key] = len(samples)
            fresh = samples[start:]
            hseries = self._hists.get(key)
            if hseries is None:
                hseries = self._hists[key] = _HistSeries()
            ring = hseries.windows
            if ring and ring[-1][0] == widx:
                slot = ring[-1]
                room = max_samples - len(slot[1])
                slot[1].extend(fresh[:room])
                slot[2] += max(0, len(fresh) - room)
            else:
                ring.append(
                    [widx, fresh[:max_samples],
                     max(0, len(fresh) - max_samples)]
                )
                if len(ring) > max_windows:
                    ring.popleft()

    def _refresh(self) -> None:
        """Fold the in-progress window in before a read (pull mode only)."""
        if self._pull:
            with self._lock:
                self._flush_window()

    # -- ingestion (the MetricsRegistry watcher) ------------------------------

    def ingest(self, kind: str, key: MetricKey, value: float) -> None:
        """One registry recording: bin it into the current window.

        Called by :class:`MetricsRegistry` after every ``count`` /
        ``set_gauge`` / ``observe`` (outside the registry's lock). Must stay
        cheap — this rides the engines' hot paths.
        """
        if self._pull:
            # windows come from boundary flushes; only the SLO rejection
            # feed below needs the per-event hook (the registry watcher is
            # name-filtered to it on the simulated runtime)
            if (
                kind == "counter"
                and key[0] == "sched.rejected"
                and self.slo is not None
            ):
                tenant = dict(key[1]).get("tenant")
                if tenant is not None:
                    self.slo.record_rejection(str(tenant), self._clock())
            return
        widx = int(self._clock() * self._inv_width)
        lock = self._lock
        lock.acquire()
        try:
            if kind == "counter":
                series = self._counters.get(key)
                if series is None:
                    series = self._counters[key] = _CounterSeries()
                ring = series.windows
                if ring and ring[-1][0] == widx:
                    ring[-1][1] += value
                else:
                    ring.append([widx, value])
                    if len(ring) > self._max_windows:
                        ring.popleft()
            elif kind == "gauge":
                gseries = self._gauges.get(key)
                if gseries is None:
                    gseries = self._gauges[key] = _GaugeSeries()
                ring = gseries.windows
                if ring and ring[-1][0] == widx:
                    ring[-1][1] = value
                else:
                    ring.append([widx, value])
                    if len(ring) > self._max_windows:
                        ring.popleft()
            else:  # histogram
                hseries = self._hists.get(key)
                if hseries is None:
                    hseries = self._hists[key] = _HistSeries()
                ring = hseries.windows
                if ring and ring[-1][0] == widx:
                    slot = ring[-1]
                    if len(slot[1]) < self._max_samples:
                        slot[1].append(value)
                    else:
                        slot[2] += 1
                else:
                    ring.append([widx, [value], 0])
                    if len(ring) > self._max_windows:
                        ring.popleft()
        finally:
            lock.release()
        # SLO forwarding happens after the lock is released: the tracker may
        # record alert metrics, which re-enter ingest()
        if (
            kind == "counter"
            and key[0] == "sched.rejected"
            and self.slo is not None
        ):
            tenant = dict(key[1]).get("tenant")
            if tenant is not None:
                self.slo.record_rejection(str(tenant), self._clock())

    # -- terminal hook (head of the coordinator's on_terminal chain) ----------

    def on_terminal(self, travel_id: int, status: str, entry=None) -> None:
        """A traversal reached a terminal state; ``entry`` is the
        scheduler's still-live :class:`QueuedTravel` (None for composite
        children and queued-side cancellations)."""
        now = self._clock()
        tenant = entry.tenant if entry is not None else None
        latency = (now - entry.admit_time) if entry is not None else None
        if self.slo is not None and tenant is not None:
            self.slo.record_terminal(tenant, status, latency, now)
        recorder = self._recorder
        if recorder is not None and recorder.sampling_active:
            reason = self._keep_reason(travel_id, status, tenant, latency)
            recorder.finalize_travel(
                travel_id, keep=reason is not None, reason=reason
            )

    def _keep_reason(
        self,
        travel_id: int,
        status: str,
        tenant: Optional[str],
        latency: Optional[float],
    ) -> Optional[str]:
        """Why this traversal's full trace is kept, or None to sample out."""
        if status != "ok":
            return f"terminal:{status}"
        if self.slo is not None:
            if self.slo.violates_latency(latency):
                return "slow"
            if tenant is not None and self.slo.alert_active(tenant):
                return "alert"
        recorder = self._recorder
        if (
            recorder is not None
            and recorder.sampling is not None
            and recorder.sampling.sampled(travel_id)
        ):
            return "sampled"
        return None

    def on_coordinator_crash(self) -> None:
        """The coordinator's host crashed: every pending (undecided) trace
        buffer is kept — travels in flight across a control-plane crash are
        exactly the ones an operator will want to read back."""
        recorder = self._recorder
        if recorder is not None and recorder.sampling_active:
            recorder.keep_all_pending(reason="coord.crash")

    # -- reading: rollups ------------------------------------------------------

    def window_start(self, widx: int) -> float:
        return widx * self._width

    def rollups(self) -> dict[str, Any]:
        """The full windowed rollup state as a canonical, sorted payload."""
        self._refresh()
        with self._lock:
            counters = {
                render_key(k): [
                    {
                        "window": w,
                        "start": self.window_start(w),
                        "count": total,
                        "rate": total / self._width,
                    }
                    for w, total in self._counters[k].windows
                ]
                for k in sorted(self._counters)
            }
            gauges = {
                render_key(k): [
                    {"window": w, "start": self.window_start(w), "last": v}
                    for w, v in self._gauges[k].windows
                ]
                for k in sorted(self._gauges)
            }
            histograms = {}
            for k in sorted(self._hists):
                rows = []
                for w, samples, overflow in self._hists[k].windows:
                    hist = Histogram()
                    hist.samples = samples
                    summary = hist.summary()
                    rows.append(
                        {
                            "window": w,
                            "start": self.window_start(w),
                            "count": summary["count"],
                            "sum": summary["sum"],
                            "p50": summary["p50"],
                            "p95": summary["p95"],
                            "p99": summary["p99"],
                            "overflow": overflow,
                        }
                    )
                histograms[render_key(k)] = rows
        return {
            "window_width": self._width,
            "max_windows": self.config.max_windows,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def rollups_json(self) -> str:
        return json.dumps(self.rollups(), sort_keys=True, separators=(",", ":"))

    def recent_rate(self, name: str, **labels: Any) -> float:
        """Mean per-second rate of one counter over its retained windows
        (0.0 for a series that never recorded)."""
        key: MetricKey = (name, tuple(sorted(labels.items())))
        self._refresh()
        with self._lock:
            series = self._counters.get(key)
            if series is None or not series.windows:
                return 0.0
            total = sum(t for _w, t in series.windows)
            span = (series.windows[-1][0] - series.windows[0][0] + 1) * self._width
        return total / span

    # -- hot-shard detection ---------------------------------------------------

    def hot_shards(
        self, inflight_by_server: dict[int, int], nservers: int
    ) -> HotShardReport:
        """Rank servers by combined execution-rate and in-flight skew.

        ``score = w_rate * rate/mean_rate + w_inflight * inflight/mean_inflight``
        (a term drops out while its cluster-wide mean is zero), so uniform
        load scores ``w_rate + w_inflight`` everywhere and a hot shard
        scores its skew multiple.
        """
        cfg = self.config
        rates = [
            self.recent_rate(EXEC_RATE_METRIC, server=s) for s in range(nservers)
        ]
        inflight = [inflight_by_server.get(s, 0) for s in range(nservers)]
        mean_rate = sum(rates) / nservers if nservers else 0.0
        mean_inflight = sum(inflight) / nservers if nservers else 0.0
        rows = []
        for s in range(nservers):
            score = 0.0
            if mean_rate > 0:
                score += cfg.hot_rate_weight * rates[s] / mean_rate
            if mean_inflight > 0:
                score += cfg.hot_inflight_weight * inflight[s] / mean_inflight
            rows.append(
                {
                    "server": s,
                    "exec_rate": round(rates[s], 9),
                    "inflight": inflight[s],
                    "score": round(score, 9),
                }
            )
        rows.sort(key=lambda r: (-r["score"], r["server"]))
        ranked = [r["server"] for r in rows]
        hot = [r["server"] for r in rows if r["score"] >= cfg.hot_score_threshold]
        return HotShardReport(
            clock=self._clock(),
            window_width=self._width,
            servers=rows,
            ranked=ranked,
            hot=hot,
        )

    # -- maintenance -----------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._counter_marks.clear()
            self._gauge_marks.clear()
            self._hist_marks.clear()
