"""Deterministic metrics: counters, gauges, and histograms.

The paper's whole evaluation rests on *measured* engine behaviour ("we placed
instruments inside the GraphTrek engine to collect the statistics during the
execution", §VII-A). :class:`MetricsRegistry` is the cluster-wide instrument
panel: engines, the coordinator, storage, and the interference injector all
record into one registry, and :meth:`MetricsRegistry.snapshot` renders it as
a plain, fully sorted dictionary.

Determinism contract: recording never reads the wall clock, never consults
``id()``/``hash`` ordering, and the snapshot serializes with sorted keys —
so two runs of the same seeded workload on the simulated runtime produce
byte-identical JSON. Histogram quantiles use the nearest-rank method over
the raw sample list (no interpolation, no numpy state).
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterable, Optional

#: a metric identity: (name, ((label, value), ...)) with labels sorted
MetricKey = tuple[str, tuple[tuple[str, Any], ...]]


def metric_key(name: str, labels: dict[str, Any]) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


def render_key(key: MetricKey) -> str:
    """``name{k=v,...}`` — the stable string form used in snapshots."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Histogram:
    """All observed samples plus a deterministic summary.

    Samples are kept verbatim (the simulation scales this repo runs at make
    that affordable) so that p50/p95/p99 are exact nearest-rank quantiles,
    not bucket approximations.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile; NaN on an empty histogram."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def summary(self) -> dict[str, float]:
        if not self.samples:
            nan = float("nan")
            return {"count": 0, "sum": 0.0, "min": nan, "max": nan,
                    "mean": nan, "p50": nan, "p95": nan, "p99": nan}
        total = sum(self.samples)
        return {
            "count": len(self.samples),
            "sum": total,
            "min": min(self.samples),
            "max": max(self.samples),
            "mean": total / len(self.samples),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by (name, labels).

    ``enabled=False`` turns every record method into a no-op so benchmark
    sweeps can opt out without touching call sites. Collectors are pull-side
    hooks (storage stats, runtime totals) run at snapshot time; they must
    *set* gauges — never increment — so repeated snapshots agree.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, Histogram] = {}
        self._collectors: list[Callable[[MetricsRegistry], None]] = []
        self._watcher: Optional[Callable[[str, MetricKey, float], None]] = None
        self._watched: Optional[frozenset[str]] = None
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def count(self, name: str, n: float = 1, **labels: Any) -> None:
        if not self.enabled or n == 0:
            return
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n
        if self._watcher is not None and (
            self._watched is None or name in self._watched
        ):
            self._watcher("counter", key, n)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = value
        if self._watcher is not None and (
            self._watched is None or name in self._watched
        ):
            self._watcher("gauge", key, value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)
        if self._watcher is not None and (
            self._watched is None or name in self._watched
        ):
            self._watcher("hist", key, value)

    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        self._collectors.append(fn)

    def bind_watcher(
        self,
        fn: Optional[Callable[[str, MetricKey, float], None]],
        names: Optional[Iterable[str]] = None,
    ) -> None:
        """Install a push-side observer: ``fn(kind, key, value)`` runs after
        every recording (outside the registry lock), with the *increment*
        for counters and the raw sample for gauges/histograms. The watcher
        reads nothing back and the snapshot contract is untouched — this is
        the telemetry plane's rollup/SLO feed. ``names`` restricts the hook
        to those metric names, keeping the remaining record paths at a
        single ``is not None`` check."""
        self._watcher = fn
        self._watched = None if names is None else frozenset(names)

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        return self._counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of one counter across all label sets."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(metric_key(name, labels))

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(metric_key(name, labels))

    def snapshot(self) -> dict[str, Any]:
        """Fully sorted plain-dict view; runs collectors first."""
        if self.enabled:
            for fn in self._collectors:
                fn(self)
        with self._lock:
            return {
                "counters": {
                    render_key(k): self._counters[k] for k in sorted(self._counters)
                },
                "gauges": {
                    render_key(k): self._gauges[k] for k in sorted(self._gauges)
                },
                "histograms": {
                    render_key(k): self._histograms[k].summary()
                    for k in sorted(self._histograms)
                },
            }

    def to_json(self) -> str:
        """Canonical byte-stable JSON (same run → same bytes)."""
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
