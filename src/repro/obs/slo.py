"""Per-tenant SLO tracking with multi-window burn-rate alerting.

The telemetry plane's judgement layer: raw latency/error observations from
traversal terminals (and scheduler rejections) are reduced into *service
level objective* compliance per tenant, and sustained budget burn raises a
deterministic, typed alert.

Two objectives per tenant (DESIGN.md §14):

* **latency** — a completed traversal is *good* when its coordinator-observed
  latency (terminal clock minus admission clock, so the PR-5 ``queue_wait``
  is included) is at or under ``SLOConfig.latency_objective``;
* **errors** — a traversal is *good* unless it terminated with
  :class:`~repro.errors.TraversalFailed` or its submission was refused with
  :class:`~repro.errors.AdmissionRejected`. Client-initiated cancellations
  are neither good nor bad: they spend no error budget.

Burn rate is the classic SRE ratio: ``(bad / total) / error_budget`` over a
trailing window — 1.0 means the tenant burns budget exactly as fast as the
objective allows. An alert *fires* when the burn rate exceeds
``burn_threshold`` over **both** the fast and the slow window (the
multi-window rule: the fast window gives reaction time, the slow window
vetoes blips), and *resolves* when either drops back to the threshold or
below. Every transition appends one :class:`SLOAlert` to the typed alert
log, emits one ``slo.alert`` flight-recorder event, and bumps the
``slo.alerts`` counter.

Determinism: the tracker never reads the wall clock — every observation
carries the runtime clock — and evaluation happens synchronously inside the
observation call, so on the simulated runtime the alert log and the
``slo.*`` metrics are a pure function of (seed, configuration).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Optional

#: the two per-tenant objectives, in evaluation (and alert-log) order
OBJECTIVES = ("latency", "errors")


@dataclass(frozen=True)
class SLOConfig:
    """Objectives and burn-rate alerting knobs (virtual seconds)."""

    #: a completed traversal is latency-good at or under this many seconds,
    #: measured admission → terminal (queue wait included)
    latency_objective: float = 1.0
    #: fraction of requests allowed to be bad (the error budget); applies
    #: to both objectives
    error_budget: float = 0.05
    #: trailing windows (seconds) for the multi-window burn evaluation
    fast_window: float = 5.0
    slow_window: float = 30.0
    #: fire when burn rate over BOTH windows exceeds this multiple
    burn_threshold: float = 2.0
    #: do not evaluate a window holding fewer observations than this — a
    #: single bad request in an otherwise idle window is not a page
    min_events: int = 4


@dataclass
class SLOAlert:
    """One burn-rate alert transition (``firing`` or ``resolved``)."""

    seq: int
    clock: float
    tenant: str
    objective: str  # "latency" | "errors"
    state: str  # "firing" | "resolved"
    burn_fast: float
    burn_slow: float
    window_events: int  # slow-window observation count at transition

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "clock": self.clock,
            "tenant": self.tenant,
            "objective": self.objective,
            "state": self.state,
            "burn_fast": round(self.burn_fast, 6),
            "burn_slow": round(self.burn_slow, 6),
            "window_events": self.window_events,
        }


@dataclass
class _ObjectiveState:
    """Trailing observations and alert latch for one (tenant, objective)."""

    #: (clock, bad) observations inside the slow window
    events: deque = field(default_factory=deque)
    firing: bool = False

    def prune(self, now: float, horizon: float) -> None:
        cutoff = now - horizon
        while self.events and self.events[0][0] < cutoff:
            self.events.popleft()

    def burn(self, now: float, window: float, budget: float) -> tuple[float, int]:
        """(burn rate, observation count) over the trailing ``window``."""
        cutoff = now - window
        total = bad = 0
        for clock, is_bad in reversed(self.events):
            if clock < cutoff:
                break
            total += 1
            bad += 1 if is_bad else 0
        if total == 0:
            return 0.0, 0
        return (bad / total) / budget, total


class SLOTracker:
    """Per-tenant burn-rate evaluation over the two traversal objectives.

    Observations arrive through :meth:`record_terminal` (the cluster's
    terminal hook) and :meth:`record_rejection` (forwarded by the telemetry
    plane from ``sched.rejected`` counter increments), each carrying the
    runtime clock. Alert transitions are appended to :attr:`alert_log` and
    mirrored as ``slo.alert`` flight-recorder events so a trace reader sees
    them interleaved with the traversal lifecycle.
    """

    def __init__(self, config: Optional[SLOConfig] = None, *,
                 metrics=None, trace=None):
        self.config = config or SLOConfig()
        self.metrics = metrics
        self.trace = trace
        self.alert_log: list[SLOAlert] = []
        self._states: dict[tuple[str, str], _ObjectiveState] = {}
        self._seq = 0

    # -- feeding -------------------------------------------------------------

    def record_terminal(
        self,
        tenant: str,
        status: str,
        latency: Optional[float],
        now: float,
    ) -> None:
        """One traversal reached a terminal state (``ok``/``failed``/
        ``cancelled``) at runtime clock ``now``."""
        if status == "ok":
            if latency is not None:
                self._observe(
                    tenant, "latency",
                    bad=latency > self.config.latency_objective, now=now,
                )
            self._observe(tenant, "errors", bad=False, now=now)
        elif status == "failed":
            self._observe(tenant, "errors", bad=True, now=now)
        # cancellations spend no budget: the client asked for them

    def record_rejection(self, tenant: str, now: float) -> None:
        """The scheduler refused a submission (``AdmissionRejected``)."""
        self._observe(tenant, "errors", bad=True, now=now)

    def violates_latency(self, latency: Optional[float]) -> bool:
        """Whether one traversal individually breached the latency objective
        (the tail-sampler's "slow" keep rule)."""
        return latency is not None and latency > self.config.latency_objective

    # -- evaluation ----------------------------------------------------------

    def _observe(self, tenant: str, objective: str, *, bad: bool, now: float) -> None:
        cfg = self.config
        state = self._states.get((tenant, objective))
        if state is None:
            state = self._states[(tenant, objective)] = _ObjectiveState()
        state.events.append((now, bad))
        state.prune(now, cfg.slow_window)
        burn_fast, n_fast = state.burn(now, cfg.fast_window, cfg.error_budget)
        burn_slow, n_slow = state.burn(now, cfg.slow_window, cfg.error_budget)
        should_fire = (
            n_fast >= cfg.min_events
            and n_slow >= cfg.min_events
            and burn_fast > cfg.burn_threshold
            and burn_slow > cfg.burn_threshold
        )
        if should_fire == state.firing:
            return
        state.firing = should_fire
        self._seq += 1
        alert = SLOAlert(
            seq=self._seq,
            clock=now,
            tenant=tenant,
            objective=objective,
            state="firing" if should_fire else "resolved",
            burn_fast=burn_fast,
            burn_slow=burn_slow,
            window_events=n_slow,
        )
        self.alert_log.append(alert)
        if self.metrics is not None:
            self.metrics.count(
                "slo.alerts", tenant=tenant, objective=objective,
                state=alert.state,
            )
        if self.trace is not None:
            self.trace.record(
                "slo.alert",
                tenant=tenant,
                objective=objective,
                state=alert.state,
                burn_fast=round(burn_fast, 6),
                burn_slow=round(burn_slow, 6),
            )

    # -- reading -------------------------------------------------------------

    def alert_active(self, tenant: str) -> bool:
        """True while any objective of ``tenant`` is firing."""
        return any(
            st.firing
            for (t, _o), st in self._states.items()
            if t == tenant
        )

    def active_alerts(self) -> list[dict[str, Any]]:
        """Currently-firing objectives, sorted (tenant, objective)."""
        out = []
        for (tenant, objective) in sorted(self._states):
            if self._states[(tenant, objective)].firing:
                out.append({"tenant": tenant, "objective": objective})
        return out

    def alert_log_payload(self) -> list[dict[str, Any]]:
        return [a.as_dict() for a in self.alert_log]

    def to_json(self) -> str:
        """Canonical byte-stable alert-log JSON."""
        return json.dumps(
            self.alert_log_payload(), sort_keys=True, separators=(",", ":")
        )
