"""Deterministic observability: metrics registry + traversal span tracer.

:class:`Observability` bundles the two instruments every layer records into.
It travels on the :class:`~repro.engine.statistics.StatsBoard` so engines,
the coordinator, storage collectors, and the interference injector all share
one registry and one tracer without new plumbing. ``Cluster.build`` binds the
runtime clock; on the simulated runtime that makes every snapshot and
timeline a pure function of (seed, configuration).
"""

from __future__ import annotations

from typing import Callable

from repro.obs.export import (
    canonical_json,
    observability_payload,
    validate_snapshot,
    write_observability,
)
from repro.obs.metrics import Histogram, MetricsRegistry, metric_key, render_key
from repro.obs.spans import SPAN_KINDS, Span, SpanTracer


class Observability:
    """One cluster's metrics registry and span tracer, clock-bound together."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.spans = SpanTracer(enabled=enabled)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.spans.bind_clock(clock)

    def payload(self) -> dict:
        return observability_payload(self.metrics, self.spans)

    def to_json(self) -> str:
        return canonical_json(self.payload())


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Histogram",
    "SpanTracer",
    "Span",
    "SPAN_KINDS",
    "metric_key",
    "render_key",
    "canonical_json",
    "observability_payload",
    "validate_snapshot",
    "write_observability",
]
