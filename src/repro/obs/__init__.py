"""Deterministic observability: metrics registry + traversal span tracer.

:class:`Observability` bundles the two instruments every layer records into.
It travels on the :class:`~repro.engine.statistics.StatsBoard` so engines,
the coordinator, storage collectors, and the interference injector all share
one registry and one tracer without new plumbing. ``Cluster.build`` binds the
runtime clock; on the simulated runtime that makes every snapshot and
timeline a pure function of (seed, configuration).
"""

from __future__ import annotations

from typing import Callable

from repro.obs.export import (
    canonical_json,
    observability_payload,
    validate_snapshot,
    write_observability,
)
from repro.obs.explain import (
    ProfileReport,
    StepProfile,
    explain_plan,
    profile_traversal,
)
from repro.obs.exporter import (
    escape_label_value,
    health_payload,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.metrics import Histogram, MetricsRegistry, metric_key, render_key
from repro.obs.slo import SLOAlert, SLOConfig, SLOTracker
from repro.obs.spans import SPAN_KINDS, Span, SpanTracer
from repro.obs.telemetry import HotShardReport, TelemetryConfig, TelemetryPlane
from repro.obs.trace import (
    EVENT_KINDS,
    FlightRecorder,
    SamplingPolicy,
    TraceEvent,
    TraversalDag,
    assemble_all,
    assemble_trace,
    chrome_trace,
    sync_exec_id,
    unit_span_count,
    validate_trace,
)


class Observability:
    """One cluster's metrics registry, span tracer, and flight recorder,
    clock-bound together. The flight recorder starts disabled — it is the
    opt-in third instrument (``ClusterConfig.trace_enabled`` or
    ``Cluster.enable_tracing``)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.metrics = MetricsRegistry(enabled=enabled)
        self.spans = SpanTracer(enabled=enabled)
        self.trace = FlightRecorder(enabled=False)
        self.trace.bind_metrics(self.metrics)
        #: the live telemetry plane + SLO tracker, installed by
        #: ``Cluster.build`` when ``ClusterConfig.telemetry_enabled``
        self.telemetry = None
        self.slo = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.spans.bind_clock(clock)
        self.trace.bind_clock(clock)

    def payload(self) -> dict:
        return observability_payload(self.metrics, self.spans, self.trace)

    def to_json(self) -> str:
        return canonical_json(self.payload())


__all__ = [
    "Observability",
    "MetricsRegistry",
    "Histogram",
    "SpanTracer",
    "Span",
    "SPAN_KINDS",
    "FlightRecorder",
    "SamplingPolicy",
    "TelemetryPlane",
    "TelemetryConfig",
    "HotShardReport",
    "SLOTracker",
    "SLOConfig",
    "SLOAlert",
    "render_openmetrics",
    "validate_openmetrics",
    "escape_label_value",
    "health_payload",
    "TraceEvent",
    "TraversalDag",
    "EVENT_KINDS",
    "assemble_trace",
    "assemble_all",
    "chrome_trace",
    "validate_trace",
    "sync_exec_id",
    "unit_span_count",
    "explain_plan",
    "profile_traversal",
    "ProfileReport",
    "StepProfile",
    "metric_key",
    "render_key",
    "canonical_json",
    "observability_payload",
    "validate_snapshot",
    "write_observability",
]
