"""Partition quality metrics.

Quantifies the per-server load skew that drives stragglers: vertex counts,
edge counts, and byte sizes per server, plus imbalance summaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.builder import PropertyGraph
from repro.graph.property import props_size_bytes
from repro.graph.stats import gini, imbalance_factor
from repro.ids import VertexId
from repro.partition.edge_cut import Partitioner


@dataclass(frozen=True)
class PartitionReport:
    """Per-server loads and their skew summaries."""

    nservers: int
    vertex_loads: np.ndarray
    edge_loads: np.ndarray
    byte_loads: np.ndarray

    @property
    def vertex_imbalance(self) -> float:
        return imbalance_factor(self.vertex_loads)

    @property
    def edge_imbalance(self) -> float:
        return imbalance_factor(self.edge_loads)

    @property
    def byte_imbalance(self) -> float:
        return imbalance_factor(self.byte_loads)

    @property
    def edge_gini(self) -> float:
        return gini(self.edge_loads.astype(np.float64))

    def as_dict(self) -> dict[str, float]:
        return {
            "nservers": self.nservers,
            "vertex_imbalance": self.vertex_imbalance,
            "edge_imbalance": self.edge_imbalance,
            "byte_imbalance": self.byte_imbalance,
            "edge_gini": self.edge_gini,
        }


def evaluate_partition(graph: PropertyGraph, partitioner: Partitioner) -> PartitionReport:
    """Measure the load each server would carry under ``partitioner``."""
    n = partitioner.nservers
    vloads = np.zeros(n, dtype=np.int64)
    eloads = np.zeros(n, dtype=np.int64)
    bloads = np.zeros(n, dtype=np.int64)
    for vid in graph.vertex_ids():
        server = partitioner.owner(vid)
        vertex = graph.vertex(vid)
        vloads[server] += 1
        deg = graph.out_degree(vid)
        eloads[server] += deg
        size = props_size_bytes(vertex.props)
        for _, _, eprops in graph.out_edges(vid):
            size += 16 + props_size_bytes(eprops)
        bloads[server] += size
    return PartitionReport(n, vloads, eloads, bloads)


def per_server_vertices(
    graph: PropertyGraph, partitioner: Partitioner
) -> list[list[VertexId]]:
    """Convenience: the assignment as vertex lists (same as Partitioner.assign)."""
    return partitioner.assign(graph)
