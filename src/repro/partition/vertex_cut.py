"""Greedy vertex-cut partitioning (PowerGraph-style) — analysis companion.

The paper discusses vertex-cut strategies (§VI) but evaluates on edge-cut;
its point is that *no* static strategy eliminates stragglers. This module
implements the classic greedy edge-placement heuristic so the partitioning
ablation can quantify the replication-factor / balance trade-off on the same
graphs, without changing the traversal engines (which assume edge-cut
ownership).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.builder import PropertyGraph
from repro.ids import ServerId, VertexId


@dataclass
class VertexCutResult:
    """Outcome of a vertex-cut assignment."""

    nservers: int
    edge_loads: np.ndarray  # edges per server
    replicas: dict[VertexId, set[ServerId]]

    @property
    def replication_factor(self) -> float:
        """Average number of servers holding a replica of each vertex."""
        if not self.replicas:
            return 0.0
        return sum(len(s) for s in self.replicas.values()) / len(self.replicas)

    @property
    def edge_imbalance(self) -> float:
        mean = self.edge_loads.mean() if self.edge_loads.size else 0.0
        return float(self.edge_loads.max() / mean) if mean > 0 else 1.0


def greedy_vertex_cut(graph: PropertyGraph, nservers: int) -> VertexCutResult:
    """Place each edge on a server using the PowerGraph greedy rule.

    Rules, in order, for edge (u, v):

    1. if the replica sets of u and v intersect → lightest common server;
    2. elif both have replicas → lightest server among their union;
    3. elif one has replicas → lightest of that vertex's servers;
    4. else → globally lightest server.
    """
    if nservers < 1:
        raise PartitionError(f"nservers must be >= 1, got {nservers}")
    loads = np.zeros(nservers, dtype=np.int64)
    replicas: dict[VertexId, set[ServerId]] = {}

    def lightest(candidates: set[ServerId]) -> ServerId:
        cand = sorted(candidates)
        return cand[int(np.argmin(loads[cand]))]

    def balanced(target: ServerId) -> ServerId:
        """Balance escape: if the greedy choice is far heavier than the
        lightest server, replicate onto the lightest instead. This is what
        lets the vertex-cut split a hub's edges across servers."""
        lightest_global = int(np.argmin(loads))
        if loads[target] > 2 * (loads[lightest_global] + 1):
            return lightest_global
        return target

    for src in graph.vertex_ids():
        for _, dst, _ in graph.out_edges(src):
            a = replicas.get(src, set())
            b = replicas.get(dst, set())
            common = a & b
            if common:
                target = lightest(common)
            elif a and b:
                target = balanced(lightest(a | b))
            elif a or b:
                target = balanced(lightest(a or b))
            else:
                target = int(np.argmin(loads))
            loads[target] += 1
            replicas.setdefault(src, set()).add(target)
            replicas.setdefault(dst, set()).add(target)
    # Isolated vertices still need a home.
    for vid in graph.vertex_ids():
        if vid not in replicas:
            replicas[vid] = {int(np.argmin(loads))}
    return VertexCutResult(nservers, loads, replicas)
