"""Graph partitioning: edge-cut (engine default) and vertex-cut (analysis)."""

from repro.partition.balance import PartitionReport, evaluate_partition, per_server_vertices
from repro.partition.edge_cut import (
    GreedyBalancedEdgeCut,
    HashEdgeCut,
    Partitioner,
    make_partitioner,
    splitmix64,
)
from repro.partition.vertex_cut import VertexCutResult, greedy_vertex_cut

__all__ = [
    "PartitionReport",
    "evaluate_partition",
    "per_server_vertices",
    "GreedyBalancedEdgeCut",
    "HashEdgeCut",
    "Partitioner",
    "make_partitioner",
    "splitmix64",
    "VertexCutResult",
    "greedy_vertex_cut",
]
