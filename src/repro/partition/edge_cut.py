"""Edge-cut partitioners: every vertex (and its out-edges) lives on exactly
one server.

The paper's evaluation uses the common hash-based edge-cut ("as most graph
databases do", §VI); :class:`HashEdgeCut` reproduces it. A degree-aware
greedy variant is provided for the load-balancing ablation the paper's
future-work section gestures at.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import PartitionError
from repro.graph.builder import PropertyGraph
from repro.ids import ServerId, VertexId


def splitmix64(x: int) -> int:
    """Deterministic 64-bit mixer (SplitMix64 finalizer).

    Python's built-in ``hash`` of ints is the identity, which would turn a
    modulo partitioner into round-robin and hide the skew real hash
    partitioning produces; this mixer avoids that.
    """
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class Partitioner(ABC):
    """Maps vertex ids to server ids for an ``nservers``-way deployment."""

    def __init__(self, nservers: int):
        if nservers < 1:
            raise PartitionError(f"nservers must be >= 1, got {nservers}")
        self.nservers = nservers

    @abstractmethod
    def owner(self, vid: VertexId) -> ServerId:
        """Server that stores ``vid`` and its out-edges."""

    def assign(self, graph: PropertyGraph) -> list[list[VertexId]]:
        """Vertex lists per server, in deterministic order."""
        parts: list[list[VertexId]] = [[] for _ in range(self.nservers)]
        for vid in graph.vertex_ids():
            parts[self.owner(vid)].append(vid)
        return parts


class HashEdgeCut(Partitioner):
    """Hash vertices across servers (the paper's default strategy)."""

    def __init__(self, nservers: int, salt: int = 0):
        super().__init__(nservers)
        self.salt = salt

    def owner(self, vid: VertexId) -> ServerId:
        return splitmix64(vid ^ self.salt) % self.nservers


class GreedyBalancedEdgeCut(Partitioner):
    """Degree-aware greedy placement: heaviest vertices first, each to the
    currently lightest server (by out-edge count).

    Still an edge-cut (engine-compatible), but flattens the per-server edge
    load that hash placement leaves skewed on power-law graphs. Requires
    :meth:`fit` before :meth:`owner` can answer.
    """

    def __init__(self, nservers: int):
        super().__init__(nservers)
        self._owner: dict[VertexId, ServerId] = {}

    def fit(self, graph: PropertyGraph) -> "GreedyBalancedEdgeCut":
        vids = list(graph.vertex_ids())
        degrees = np.array([graph.out_degree(v) for v in vids], dtype=np.int64)
        order = np.argsort(-degrees, kind="stable")
        loads = np.zeros(self.nservers, dtype=np.int64)
        counts = np.zeros(self.nservers, dtype=np.int64)
        for idx in order:
            vid = vids[int(idx)]
            deg = int(degrees[int(idx)])
            # Lightest by edges; break ties by vertex count for even spread.
            target = int(np.lexsort((counts, loads))[0])
            self._owner[vid] = target
            loads[target] += deg
            counts[target] += 1
        return self

    def owner(self, vid: VertexId) -> ServerId:
        try:
            return self._owner[vid]
        except KeyError:
            raise PartitionError(
                f"vertex {vid} not fitted; call fit(graph) first"
            ) from None


def make_partitioner(
    kind: str, nservers: int, graph: Optional[PropertyGraph] = None, salt: int = 0
) -> Partitioner:
    """Factory used by experiment configs: ``"hash"`` or ``"greedy"``."""
    if kind == "hash":
        return HashEdgeCut(nservers, salt=salt)
    if kind == "greedy":
        if graph is None:
            raise PartitionError("greedy partitioner requires the graph to fit")
        return GreedyBalancedEdgeCut(nservers).fit(graph)
    raise PartitionError(f"unknown partitioner kind {kind!r}")
