"""Elastic scale-out: online shard rebalancing under live traffic.

The partition layer assigns vertices to servers once, at build time; this
package makes ownership *mutable* while traversals run:

* :class:`~repro.rebalance.routing.RoutingTable` — the coordinator's
  versioned ownership map. Every routing decision in the cluster (engine
  forwards, coordinator dispatch, live ingest) goes through it; migrations
  mutate it in atomic, monotonically versioned steps.
* :class:`~repro.rebalance.migrate.ShardMigrator` — moves a vertex set (or
  key range) from one server to another in phases: snapshot-copy over the
  wire (paced through the admission scheduler as a low-priority tenant),
  a double-routing window where the coordinator dispatches to both owners,
  an atomic journaled cutover, and a drained source drop.
* :class:`~repro.rebalance.policy.Rebalancer` — the closed loop: subscribes
  to ``Cluster.hot_shard_report()`` and picks range + target automatically
  via a pure, deterministic selection function.

See DESIGN.md §15 for the migration protocol and its crash matrix.
"""

from repro.rebalance.migrate import MigrationConfig, MigrationState, ShardMigrator
from repro.rebalance.policy import (
    MigrationChoice,
    Rebalancer,
    RebalancerConfig,
    select_migration,
)
from repro.rebalance.routing import RoutingTable

__all__ = [
    "MigrationChoice",
    "MigrationConfig",
    "MigrationState",
    "Rebalancer",
    "RebalancerConfig",
    "RoutingTable",
    "ShardMigrator",
    "select_migration",
]
