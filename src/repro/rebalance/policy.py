"""The rebalancer policy loop: hot-shard telemetry → migration choices.

Selection is a pure function (:func:`select_migration`) over a
:class:`~repro.obs.telemetry.HotShardReport` and the per-server vertex
loads, so a pinned report fixture yields a deterministic, testable choice.
:class:`Rebalancer` is the thin closed loop around it: sample the report,
pick a move, run it through the :class:`~repro.rebalance.migrate.ShardMigrator`,
cool down, repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.ids import ServerId, VertexId


@dataclass(frozen=True)
class RebalancerConfig:
    """Knobs for the policy loop."""

    #: seconds between hot-shard samples
    interval: float = 0.25
    #: fraction of the hot server's vertices to move per migration
    fraction: float = 0.5
    #: hard cap on vertices moved in one migration
    max_vertices: int = 64
    #: pause after a migration completes before sampling again
    cooldown: float = 0.5
    #: stop after this many migrations (None = run until stopped)
    max_migrations: Optional[int] = None
    #: only act when the report flags a server as *hot* (score above the
    #: telemetry plane's skew threshold); False migrates off the hottest
    #: server regardless, useful in benchmarks
    require_hot: bool = True


@dataclass(frozen=True)
class MigrationChoice:
    """A selected move: ``vids`` from ``src`` to ``dst``."""

    src: ServerId
    dst: ServerId
    vids: tuple[VertexId, ...]
    #: equivalent ``[lo, hi)`` key range (informational; vids are exact)
    key_range: tuple[VertexId, VertexId]


def select_migration(
    report,
    loads: dict[ServerId, list[VertexId]],
    *,
    fraction: float = 0.5,
    max_vertices: int = 64,
    require_hot: bool = True,
) -> Optional[MigrationChoice]:
    """Pick a migration from a hot-shard report, deterministically.

    Source is the hottest flagged server (or the top-ranked one when
    ``require_hot=False``); target is the *coolest* server — the lowest
    score, ties broken by server id. The move is the lowest-keyed
    ``fraction`` of the source's vertices (bounded by ``max_vertices``):
    sorted prefixes keep the choice stable across runs and make the
    equivalent key range contiguous.

    Returns ``None`` when there is nothing actionable: no hot server, a
    single-server report, or an empty source.
    """
    if require_hot:
        candidates = list(report.hot)
    else:
        candidates = list(report.ranked)
    src = next((s for s in candidates if loads.get(s)), None)
    if src is None or len(report.servers) < 2:
        return None
    coolest = min(
        (row for row in report.servers if row["server"] != src),
        key=lambda row: (row["score"], row["server"]),
        default=None,
    )
    if coolest is None:
        return None
    dst = coolest["server"]
    source_vids = sorted(loads[src])
    k = max(1, min(max_vertices, int(len(source_vids) * fraction)))
    vids = tuple(source_vids[:k])
    return MigrationChoice(
        src=src,
        dst=dst,
        vids=vids,
        key_range=(vids[0], vids[-1] + 1),
    )


class Rebalancer:
    """The closed loop: watch hot-shard telemetry, migrate ranges off hot
    servers onto cool ones. Runs as a coordinator-hosted process; at most
    one migration is in flight at a time (serial moves keep each decision
    based on post-move telemetry rather than a stale snapshot)."""

    def __init__(
        self,
        migrator,
        report_fn: Callable[[], object],
        loads_fn: Callable[[], dict[ServerId, list[VertexId]]],
        config: Optional[RebalancerConfig] = None,
    ):
        self.migrator = migrator
        self.report_fn = report_fn
        self.loads_fn = loads_fn
        self.config = config or RebalancerConfig()
        #: terminal MigrationState of every migration this loop started
        self.migrations: list = []
        self._stopped = False
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._stopped = False
        self.migrator.ctx.spawn(self._loop(), name="rebalancer")

    def stop(self) -> None:
        self._stopped = True
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def _loop(self):
        cfg = self.config
        while not self._stopped:
            yield self.migrator.ctx.sleep(cfg.interval)
            if self._stopped:
                break
            if self.migrator.active:
                continue  # a manual migration is in flight; stay out
            if (
                cfg.max_migrations is not None
                and len(self.migrations) >= cfg.max_migrations
            ):
                break
            choice = select_migration(
                self.report_fn(),
                self.loads_fn(),
                fraction=cfg.fraction,
                max_vertices=cfg.max_vertices,
                require_hot=cfg.require_hot,
            )
            if choice is None:
                continue
            _, event = self.migrator.migrate(
                choice.src, choice.dst, vids=choice.vids
            )
            state = yield self.migrator.ctx.wait(event)
            self.migrations.append(state)
            yield self.migrator.ctx.sleep(cfg.cooldown)
        self._running = False
