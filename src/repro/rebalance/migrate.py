"""The shard migrator: move a vertex set between servers under live traffic.

One migration runs as a coordinator-hosted process through four phases,
each journaled *before* its side effects (the same WAL discipline as the
traversal journal, so a coordinator crash recovers to a consistent
ownership epoch):

``copy``     the vertex set's LSM entries (attributes, edges, the
             ``~label`` reverse-adjacency region) are exported in chunks
             and shipped source → target as :class:`MigrateChunk`
             messages. Each chunk transfer is submitted through the
             admission scheduler as a low-priority tenant job, so copy
             traffic queues behind interactive traversals under every
             policy and quota. Imports are idempotent (deduped by
             ``(mid, seq)``), acks are resent-safe, and unacked chunks
             are re-sent a bounded number of times before the migration
             aborts.

``dual``     the double-routing window: the routing table maps the set to
             *both* owners. The source stays primary (mid-traversal
             forwards keep landing where the data has always been) while
             the coordinator dispatches level-0 work to both sides; the
             coordinator's set-union result merge dedupes for free.

``cutover``  one atomic, versioned routing-table flip to the target. The
             journal record lands first, so a crash after the append but
             before the flip still recovers as committed.

``drop``     the source copy is dropped only after every traversal that
             was active at cutover has drained (those are the only ones
             that can still hold source-routed dispatches or replays),
             then the per-partition GraphSummary stats move with the
             range and the migration journals ``done``.

Any failure before cutover aborts: the dual window (if open) closes, the
target's partial copy is dropped, and routing is exactly what it was —
no vertex lost, none owned twice.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import RebalanceError
from repro.graph.stats import GraphSummary
from repro.ids import ServerId, TravelId, VertexId
from repro.net.message import MigrateAck, MigrateChunk
from repro.rebalance.routing import RoutingTable

#: migration ids live in their own space, far above travel and exec ids,
#: so the reliable channel / fault injector can key per-travel state on them
#: without ever colliding with a traversal
MIGRATION_ID_BASE = 1 << 48


@dataclass(frozen=True)
class MigrationConfig:
    """Knobs for one cluster's migrations."""

    #: vertices per MigrateChunk (each chunk is one scheduler job)
    chunk_vertices: int = 8
    #: how long the double-routing window stays open before cutover
    dual_window: float = 0.02
    #: per-chunk ack timeout before a resend
    ack_timeout: float = 0.25
    #: poll interval while a chunk job waits for its ack
    ack_poll: float = 0.002
    #: resends per chunk before the migration aborts
    max_resends: int = 8
    #: poll interval while draining travels that were active at cutover
    drain_poll: float = 0.005
    #: safety valve: drop the source copy after this long even if a
    #: traversal from before cutover is still running
    drain_timeout: float = 60.0
    #: tenant the chunk-copy jobs are attributed to; give it a small WFQ
    #: weight (or rely on FIFO arrival order) so migration traffic cannot
    #: starve interactive QoS classes
    tenant: str = "rebalance"
    #: priority class for the chunk jobs under the priority policy
    #: (large = launches after every interactive class)
    priority: int = 1 << 20


@dataclass
class MigrationState:
    """One migration's live state (and, once terminal, its record)."""

    mid: int
    src: ServerId
    dst: ServerId
    vids: tuple[VertexId, ...]
    phase: str = "copy"  # copy | dual | cutover | done | aborted
    #: routing-table version when the migration was admitted; chunk
    #: messages carry it and the import path fences mismatches
    routing_version: int = 0
    started: float = 0.0
    finished: Optional[float] = None
    bytes_moved: int = 0
    chunks_applied: int = 0
    resends: int = 0
    #: False when the drain safety valve fired before the source drop
    drained: bool = True
    abort_reason: Optional[str] = None
    #: set when the coordinator host crashed mid-migration; the journal
    #: decides the outcome during recovery
    crashed: bool = False
    event: Optional[object] = field(default=None, repr=False)

    def payload(self) -> dict:
        return {
            "mid": self.mid,
            "src": self.src,
            "dst": self.dst,
            "vertices": len(self.vids),
            "phase": self.phase,
            "routing_version": self.routing_version,
            "bytes_moved": self.bytes_moved,
            "chunks_applied": self.chunks_applied,
            "resends": self.resends,
            "drained": self.drained,
            "abort_reason": self.abort_reason,
        }


class ShardMigrator:
    """Executes migrations on a cluster; one instance per cluster.

    All migration wire traffic (:class:`MigrateChunk` / :class:`MigrateAck`)
    is routed here by the per-server handler wrapper that
    ``Cluster.build`` installs, so the engines never see a message type
    they would reject.
    """

    def __init__(
        self,
        runtime,
        routing: RoutingTable,
        servers: list,
        scheduler,
        coordinator,
        board,
        config: Optional[MigrationConfig] = None,
        *,
        graph=None,
        partition_vids: Optional[list[set]] = None,
        journal=None,
        forget: Optional[Callable[[TravelId], None]] = None,
        host: ServerId = 0,
    ):
        self.runtime = runtime
        self.routing = routing
        self.servers = servers
        self.scheduler = scheduler
        self.coordinator = coordinator
        self.board = board
        self.metrics = board.obs.metrics
        self.trace = board.obs.trace
        self.config = config or MigrationConfig()
        self.graph = graph
        #: graph-loaded vertex ids per server, kept current across
        #: migrations so per-partition GraphSummary stats move with ranges
        self.partition_vids = partition_vids
        self.journal = journal
        self.forget = forget
        self.host = host
        self.ctx = coordinator.ctx
        self.active: dict[int, MigrationState] = {}
        self.history: list[MigrationState] = []
        self._mid_seq = itertools.count(1)
        #: target-side idempotent-apply set: (mid, seq) chunks applied
        self._applied: set[tuple[int, int]] = set()
        #: vertices each in-flight migration has landed on its target so
        #: far (what an abort must clean up)
        self._applied_vids: dict[int, set[VertexId]] = {}
        #: source-side ack set the chunk jobs poll
        self._acked: set[tuple[int, int]] = set()

    # -- wire entry point (called by the server handler wrappers) -----------

    def on_message(self, server_id: ServerId, msg) -> None:
        if isinstance(msg, MigrateChunk):
            self._on_chunk(server_id, msg)
        elif isinstance(msg, MigrateAck):
            # fence late acks: a duplicated/delayed ack for a migration that
            # already finished (or died with the coordinator) must not park
            # state in the ack set forever
            state = self.active.get(msg.mid)
            if state is not None and not state.crashed:
                self._acked.add((msg.mid, msg.seq))
        else:  # pragma: no cover - protocol misuse guard
            raise TypeError(f"migrator got unexpected {type(msg).__name__}")

    def _on_chunk(self, server_id: ServerId, msg: MigrateChunk) -> None:
        key = (msg.mid, msg.seq)
        if key in self._applied:
            # duplicate of an applied chunk (resend / at-least-once
            # delivery): re-ack without touching the store
            self._ack(server_id, msg)
            return
        state = self.active.get(msg.mid)
        if (
            state is None
            or state.crashed
            or state.phase != "copy"
            or msg.routing_version != state.routing_version
            or server_id != state.dst
        ):
            # stale-version / superseded-migration fencing: never applied,
            # never acked — the sender's resend loop times out instead
            self.metrics.count("rebalance.fenced", server=server_id)
            return
        self.servers[server_id].store.import_vertices(msg.pairs, msg.meta)
        self._applied.add(key)
        self._applied_vids.setdefault(msg.mid, set()).update(
            vid for vid, _ in msg.meta
        )
        state.bytes_moved += msg.nbytes
        state.chunks_applied += 1
        self.metrics.count("rebalance.chunks_applied", server=server_id)
        self.metrics.count("rebalance.bytes_moved", n=msg.nbytes)
        self.metrics.count("rebalance.vertices_moved", n=len(msg.meta))
        self.trace.record(
            "rebalance.chunk",
            travel_id=msg.mid,
            server_id=server_id,
            seq=msg.seq,
            nbytes=msg.nbytes,
            vertices=len(msg.meta),
        )
        self._ack(server_id, msg)

    def _ack(self, server_id: ServerId, msg: MigrateChunk) -> None:
        self.servers[server_id].ctx.send(
            self.host,
            MigrateAck(msg.mid, mid=msg.mid, seq=msg.seq, server=server_id),
        )

    # -- admission ----------------------------------------------------------

    def migrate(
        self,
        src: ServerId,
        dst: ServerId,
        *,
        vids=None,
        key_range: Optional[tuple[VertexId, VertexId]] = None,
    ):
        """Start migrating ``vids`` (or the ``[lo, hi)`` ``key_range`` of
        the source's vertices) from ``src`` to ``dst``. Returns
        ``(mid, completion event)``; the event resolves with the terminal
        :class:`MigrationState` (phase ``done`` or ``aborted`` — aborts are
        a clean outcome, not an exception). Raises
        :class:`~repro.errors.RebalanceError` on an invalid request."""
        nservers = len(self.servers)
        if not 0 <= src < nservers or not 0 <= dst < nservers:
            raise RebalanceError(f"server out of range: src={src} dst={dst}")
        if src == dst:
            raise RebalanceError(f"source and target are both server {src}")
        if vids is None:
            if key_range is None:
                raise RebalanceError("migrate() needs vids or key_range")
            lo, hi = key_range
            vids = [
                v
                for v in self.servers[src].store.local_vertices()
                if lo <= v < hi
            ]
        vids = tuple(sorted(set(vids)))
        if not vids:
            raise RebalanceError(f"nothing to migrate from server {src}")
        migrating = {
            v for state in self.active.values() for v in state.vids
        }
        for vid in vids:
            if vid in migrating:
                raise RebalanceError(f"vertex {vid} is already migrating")
            if self.routing.owner(vid) != src:
                raise RebalanceError(
                    f"vertex {vid} is owned by server "
                    f"{self.routing.owner(vid)}, not source {src}"
                )
        mid = MIGRATION_ID_BASE + next(self._mid_seq)
        state = MigrationState(
            mid=mid,
            src=src,
            dst=dst,
            vids=vids,
            routing_version=self.routing.version,
            started=self.ctx.now(),
            event=self.runtime.completion_event(),
        )
        self.active[mid] = state
        self._journal(state, "copy", version=self.routing.version)
        self.metrics.count("rebalance.started")
        self.trace.record(
            "rebalance.start",
            travel_id=mid,
            server_id=self.host,
            src=src,
            dst=dst,
            vertices=len(vids),
            routing_version=state.routing_version,
        )
        self.ctx.spawn(self._run(state), name=f"migration-{mid}")
        return mid, state.event

    # -- the migration process ----------------------------------------------

    def _run(self, state: MigrationState):
        try:
            yield from self._copy(state)
            if state.crashed:
                return
            # -- double-routing window ---------------------------------
            self._journal(state, "dual", version=self.routing.version + 1)
            state.phase = "dual"
            self.routing.begin_dual(state.vids, state.src, state.dst)
            self._phase_trace(state, "dual")
            yield self.ctx.sleep(self.config.dual_window)
            if state.crashed:
                return
            # travels active *now* are the only ones that may still hold
            # source-routed dispatches or replay buffers after cutover
            watched = self._active_travel_ids()
            # -- atomic cutover ------------------------------------------
            self._journal(state, "cutover", version=self.routing.version + 1)
            state.phase = "cutover"
            self.routing.cutover(state.vids, state.dst)
            self._phase_trace(state, "cutover")
            # -- drained source drop -------------------------------------
            yield from self._drain(state, watched)
            if state.crashed:
                return
            self.servers[state.src].store.drop_vertices(state.vids)
            self._move_stats(state)
            state.phase = "done"
            self._journal(state, "done", version=self.routing.version)
            self._finish(state, "done")
        except RebalanceError as exc:
            if not state.crashed:
                self._abort(state, str(exc))

    def _copy(self, state: MigrationState):
        cfg = self.config
        chunks = [
            state.vids[i : i + cfg.chunk_vertices]
            for i in range(0, len(state.vids), cfg.chunk_vertices)
        ]
        for seq, chunk in enumerate(chunks):
            if state.crashed:
                return
            _, event = self.scheduler.submit_job(
                self._chunk_job(state, seq, chunk),
                tenant=cfg.tenant,
                priority=cfg.priority,
            )
            yield self.ctx.wait(event)  # throws RebalanceError on job failure

    def _chunk_job(self, state: MigrationState, seq: int, chunk):
        """One scheduler job: ship one chunk and wait for its ack, with
        bounded resends. Runs paced by the admission scheduler, so copy
        bandwidth is subject to policy order, quotas, and backpressure."""
        cfg = self.config

        def job():
            if state.crashed or state.phase != "copy":
                return
            pairs, meta = self.servers[state.src].store.export_vertices(chunk)
            msg = MigrateChunk(
                state.mid,
                mid=state.mid,
                seq=seq,
                pairs=pairs,
                meta=meta,
                routing_version=state.routing_version,
                from_server=state.src,
            )
            key = (state.mid, seq)
            for attempt in range(cfg.max_resends + 1):
                if state.crashed:
                    return
                if self.runtime.is_down(state.src) or self.runtime.is_down(
                    state.dst
                ):
                    raise RebalanceError(
                        f"server crashed mid-copy (chunk {seq})", mid=state.mid
                    )
                if attempt:
                    state.resends += 1
                    self.metrics.count("rebalance.resends")
                self.servers[state.src].ctx.send(state.dst, msg)
                deadline = self.ctx.now() + cfg.ack_timeout
                while self.ctx.now() < deadline:
                    if key in self._acked:
                        return
                    yield self.ctx.sleep(cfg.ack_poll)
            raise RebalanceError(
                f"chunk {seq} unacked after {cfg.max_resends} resends",
                mid=state.mid,
            )

        return job

    def _drain(self, state: MigrationState, watched):
        cfg = self.config
        deadline = self.ctx.now() + cfg.drain_timeout
        while self.ctx.now() < deadline:
            if state.crashed:
                return
            live = [
                tid
                for tid in watched
                if tid in self.coordinator._active
                or tid in self.coordinator._composites
            ]
            if not live:
                return
            yield self.ctx.sleep(cfg.drain_poll)
        state.drained = False  # safety valve tripped; drop proceeds

    def _active_travel_ids(self):
        return sorted(
            set(self.coordinator._active) | set(self.coordinator._composites)
        )

    # -- terminal paths -------------------------------------------------------

    def _abort(self, state: MigrationState, reason: str) -> None:
        state.abort_reason = reason
        if state.phase == "dual":
            self.routing.abort_dual(state.vids)
        # drop whatever landed on the target (cleanup BEFORE the abort
        # record: a crash mid-abort replays as another abort, idempotently)
        partial = sorted(self._applied_vids.get(state.mid, ()))
        self.servers[state.dst].store.drop_vertices(
            [v for v in partial if self.routing.owner(v) != state.dst]
        )
        state.phase = "aborted"
        self._journal(state, "aborted", version=self.routing.version)
        self._finish(state, "aborted")

    def _finish(self, state: MigrationState, status: str) -> None:
        state.finished = self.ctx.now()
        self.active.pop(state.mid, None)
        self.history.append(state)
        # zero-leak: every per-migration tracking structure is emptied
        self._applied_vids.pop(state.mid, None)
        self._applied = {k for k in self._applied if k[0] != state.mid}
        self._acked = {k for k in self._acked if k[0] != state.mid}
        if self.forget is not None:
            self.forget(state.mid)
        self.metrics.count("rebalance.migrations", status=status)
        self.trace.record(
            "rebalance.terminal",
            travel_id=state.mid,
            server_id=self.host,
            status=status,
            bytes_moved=state.bytes_moved,
            routing_version=self.routing.version,
        )
        if state.event is not None and not state.event.triggered:
            state.event.succeed(state)

    def _phase_trace(self, state: MigrationState, phase: str) -> None:
        self.metrics.count(f"rebalance.{phase}")
        self.trace.record(
            "rebalance.phase",
            travel_id=state.mid,
            server_id=self.host,
            phase=phase,
            routing_version=self.routing.version,
        )

    def _journal(
        self, state: MigrationState, phase: str, *, version: int
    ) -> None:
        if self.journal is not None:
            self.journal.append(
                "migration",
                mid=state.mid,
                phase=phase,
                src=state.src,
                dst=state.dst,
                vids=state.vids,
                version=version,
            )

    # -- partition statistics -------------------------------------------------

    def _move_stats(self, state: MigrationState) -> None:
        if self.partition_vids is None:
            return
        moved = set(state.vids) & self.partition_vids[state.src]
        self.partition_vids[state.src] -= moved
        self.partition_vids[state.dst] |= moved

    def partition_summary(self, server: ServerId) -> Optional[GraphSummary]:
        """The per-partition :class:`GraphSummary` for ``server``'s *current*
        slice of the build-time graph — recomputed deterministically, so
        statistics follow migrated ranges."""
        if self.graph is None or self.partition_vids is None:
            return None
        return GraphSummary.from_graph(
            self.graph, sorted(self.partition_vids[server])
        )

    # -- coordinator crash / recovery ----------------------------------------

    def on_coordinator_crash(self) -> None:
        """The routing table and all in-flight migration processes are
        coordinator state: freeze them; recovery decides each migration's
        outcome from the journal."""
        for state in self.active.values():
            state.crashed = True
        self.routing.on_coordinator_crash()
        self._applied.clear()
        self._applied_vids.clear()
        self._acked.clear()

    def recover(self, migrations: dict) -> None:
        """Replay journaled migration records into a consistent ownership
        epoch (called by the recovery supervisor after ``begin_epoch``,
        before any traversal is resumed).

        A migration journaled at ``cutover`` or later is *committed*: its
        ownership override is re-applied and the source drop idempotently
        completed. Anything earlier is *aborted*: the target's partial copy
        is dropped and routing reverts — no vertex lost, none owned twice.
        The table version is restored past the journaled high-water mark,
        so stale protocol steps stay fenced across the crash.
        """
        records = {mid: dict(rec) for mid, rec in migrations.items()}
        version_floor = 0
        committed: list[tuple[int, dict]] = []
        doomed: list[tuple[int, dict]] = []
        for mid in sorted(records):
            rec = records[mid]
            version_floor = max(version_floor, rec.get("version", 0))
            if rec["phase"] in ("cutover", "done"):
                committed.append((mid, rec))
            else:
                doomed.append((mid, rec))
        for mid, rec in committed:
            self.routing.apply_override(rec["vids"], rec["dst"])
            self.servers[rec["src"]].store.drop_vertices(rec["vids"])
            if rec["phase"] == "cutover" and self.journal is not None:
                self.journal.append(
                    "migration",
                    mid=mid,
                    phase="done",
                    src=rec["src"],
                    dst=rec["dst"],
                    vids=rec["vids"],
                    version=rec.get("version", 0),
                )
            self.metrics.count("rebalance.recovered", outcome="committed")
        # aborts run after every committed override is back, so ownership
        # checks during cleanup see the final map
        for mid, rec in doomed:
            dst = rec["dst"]
            self.servers[dst].store.drop_vertices(
                [v for v in rec["vids"] if self.routing.owner(v) != dst]
            )
            if self.journal is not None:
                self.journal.append(
                    "migration",
                    mid=mid,
                    phase="aborted",
                    src=rec["src"],
                    dst=dst,
                    vids=rec["vids"],
                    version=rec.get("version", 0),
                )
            self.metrics.count("rebalance.recovered", outcome="aborted")
        self.routing.restore_version(version_floor)
        # finalize the frozen in-memory states so no caller hangs
        now = self.ctx.now()
        outcome_by_mid = {mid: "done" for mid, _ in committed}
        outcome_by_mid.update({mid: "aborted" for mid, _ in doomed})
        for mid in sorted(self.active):
            state = self.active.pop(mid)
            state.phase = outcome_by_mid.get(mid, "aborted")
            if state.phase == "aborted" and state.abort_reason is None:
                state.abort_reason = "coordinator crash"
            if state.phase == "done":
                self._move_stats(state)
            state.finished = now
            self.history.append(state)
            if self.forget is not None:
                self.forget(mid)
            self.metrics.count("rebalance.migrations", status=state.phase)
            if state.event is not None and not state.event.triggered:
                state.event.succeed(state)

    # -- introspection --------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self.active)

    @property
    def dual_vertices(self) -> int:
        return self.routing.dual_count

    def leaked_state(self) -> list[str]:
        """Migration state that should be empty once every migration is
        terminal (mirrors the chaos harness's zero-leak contract)."""
        leaks: list[str] = []
        if self.active:
            leaks.append(f"active migrations {sorted(self.active)}")
        if self._applied:
            leaks.append(f"applied chunk keys {sorted(self._applied)}")
        if self._applied_vids:
            leaks.append(f"applied vid sets {sorted(self._applied_vids)}")
        if self._acked:
            leaks.append(f"ack keys {sorted(self._acked)}")
        if self.routing.dual_count:
            leaks.append(f"dual-routed vertices {self.routing.dual_count}")
        return leaks
