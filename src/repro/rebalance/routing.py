"""The coordinator's versioned routing table: mutable vertex ownership.

The partitioner's ``owner(vid)`` is a pure hash (or greedy assignment)
fixed at build time. :class:`RoutingTable` wraps it with two mutable
layers that shard migration drives:

* **overrides** — vertices whose committed owner differs from the base
  partitioner (the result of a completed cutover);
* **dual entries** — vertices inside a migration's double-routing window:
  both the source (still the *primary*, where mid-traversal forwards go)
  and the target (which already holds a complete copy) serve them, and the
  coordinator dispatches level-0 work to both.

Every mutation bumps a monotonic ``version``. Versions never go backwards
— not even across a coordinator crash: recovery replays the journal's
migration records and restores the table *past* the highest journaled
version, so any in-flight protocol step stamped with an older version is
fenced via :meth:`require_current` instead of applied.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import RebalanceError, StaleRoutingVersion
from repro.ids import ServerId, VertexId


class RoutingTable:
    """Versioned ownership map over a base partitioner."""

    def __init__(self, base_owner: Callable[[VertexId], ServerId], nservers: int):
        self.base_owner = base_owner
        self.nservers = nservers
        #: monotonic table version; bumped by every ownership mutation
        self.version = 1
        #: committed post-cutover owners that differ from the base partitioner
        self._overrides: dict[VertexId, ServerId] = {}
        #: vertices in a double-routing window: vid -> (source, target)
        self._dual: dict[VertexId, tuple[ServerId, ServerId]] = {}

    # -- routing (the hot path: every engine forward calls owner()) --------

    def owner(self, vid: VertexId) -> ServerId:
        """The vertex's *primary* owner right now.

        During a double-routing window the source stays primary — it held
        the complete copy first, and keeping forwards on one side means a
        cutover is a single atomic flip rather than a gradual drift.
        """
        dual = self._dual.get(vid)
        if dual is not None:
            return dual[0]
        override = self._overrides.get(vid)
        if override is not None:
            return override
        return self.base_owner(vid)

    def owners(self, vid: VertexId) -> tuple[ServerId, ...]:
        """Every server that can serve the vertex: ``(source, target)``
        inside a double-routing window, else the single primary. The
        coordinator dispatches level-0 work to all of them and relies on
        set-union result merging for dedup."""
        dual = self._dual.get(vid)
        if dual is not None:
            return dual
        return (self.owner(vid),)

    # -- versioning / fencing ----------------------------------------------

    def require_current(self, version: int, what: str = "dispatch") -> None:
        """Fence a protocol step stamped with a superseded table version."""
        if version != self.version:
            raise StaleRoutingVersion(self.version, version, what)

    def _bump(self) -> int:
        self.version += 1
        return self.version

    # -- migration-driven mutations ----------------------------------------

    def begin_dual(
        self, vids: Iterable[VertexId], src: ServerId, dst: ServerId
    ) -> int:
        """Open the double-routing window for ``vids``; returns the new
        version. Every vertex must currently be owned by ``src`` and not
        already migrating."""
        vids = list(vids)
        if src == dst:
            raise RebalanceError(f"source and target are both server {src}")
        for server in (src, dst):
            if not 0 <= server < self.nservers:
                raise RebalanceError(f"server {server} is out of range")
        for vid in vids:
            if vid in self._dual:
                raise RebalanceError(f"vertex {vid} is already migrating")
            if self.owner(vid) != src:
                raise RebalanceError(
                    f"vertex {vid} is owned by server {self.owner(vid)}, "
                    f"not migration source {src}"
                )
        for vid in vids:
            self._dual[vid] = (src, dst)
        return self._bump()

    def cutover(self, vids: Iterable[VertexId], dst: ServerId) -> int:
        """Atomically commit ``vids`` to ``dst``: the dual window closes and
        the target becomes the single owner, in one version bump."""
        vids = list(vids)
        for vid in vids:
            dual = self._dual.get(vid)
            if dual is None or dual[1] != dst:
                raise RebalanceError(
                    f"vertex {vid} has no double-routing window targeting "
                    f"server {dst}"
                )
        for vid in vids:
            del self._dual[vid]
            if self.base_owner(vid) == dst:
                self._overrides.pop(vid, None)  # back on the hash owner
            else:
                self._overrides[vid] = dst
        return self._bump()

    def abort_dual(self, vids: Iterable[VertexId]) -> int:
        """Close a double-routing window without committing: ownership
        reverts to whatever it was before ``begin_dual``."""
        for vid in vids:
            self._dual.pop(vid, None)
        return self._bump()

    def apply_override(self, vids: Iterable[VertexId], dst: ServerId) -> None:
        """Recovery path: re-apply a journaled cutover's committed owners
        without a version bump (the caller restores the version high-water
        separately via :meth:`restore_version`)."""
        for vid in vids:
            self._dual.pop(vid, None)
            if self.base_owner(vid) == dst:
                self._overrides.pop(vid, None)
            else:
                self._overrides[vid] = dst

    def restore_version(self, floor: int) -> None:
        """Advance the version past a journaled high-water mark (never
        backwards — monotonicity holds across coordinator crashes)."""
        if floor + 1 > self.version:
            self.version = floor + 1

    def on_coordinator_crash(self) -> None:
        """The table is coordinator state: a host crash loses the in-memory
        overrides and dual windows. Recovery rebuilds them from the
        journal's migration records (``ShardMigrator.recover``)."""
        self._overrides.clear()
        self._dual.clear()

    # -- introspection ------------------------------------------------------

    @property
    def dual_count(self) -> int:
        return len(self._dual)

    @property
    def override_count(self) -> int:
        return len(self._overrides)

    def overrides_snapshot(self) -> dict[VertexId, ServerId]:
        return dict(self._overrides)
