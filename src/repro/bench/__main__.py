"""Standalone experiment runner: regenerate the paper's evaluation section.

Usage::

    python -m repro.bench                 # every table and figure
    python -m repro.bench table1 fig11    # a subset
    REPRO_BENCH_SCALE=14 python -m repro.bench table1

Prints the paper-style tables and writes JSON to benchmarks/results/.
Exit code 1 if any shape check fails.
"""

from __future__ import annotations

import sys

from repro.bench import experiments as exp
from repro.bench.harness import BenchEnvironment, metrics_payload, save_results
from repro.bench.report import banner

EXPERIMENTS = {
    "table1": lambda env: exp.exp_table1(env),
    "fig7": lambda env: exp.exp_fig7(env),
    "fig8": lambda env: exp.exp_step_sweep(2, env),
    "fig9": lambda env: exp.exp_step_sweep(4, env),
    "fig10": lambda env: exp.exp_step_sweep(8, env),
    "fig11": lambda env: exp.exp_fig11(env),
    "table2": lambda env: exp.exp_table2(),
    "table3": lambda env: exp.exp_table3(),
    "concurrent": lambda env: exp.exp_concurrent_traversals(env),
    "ablation_opts": lambda env: exp.exp_ablation_optimizations(env),
    "ablation_partition": lambda env: exp.exp_ablation_partitioning(env),
    "ablation_layout": lambda env: exp.exp_ablation_layout(),
}


def main(argv: list[str]) -> int:
    names = argv or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)}")
        return 2
    env = BenchEnvironment.from_env()
    print(f"environment: scale={env.scale} edge_factor={env.edge_factor} "
          f"servers={env.servers}")
    any_failed = False
    for name in names:
        print(banner(name))
        result = EXPERIMENTS[name](env)
        print(result.rendered)
        for check in result.checks:
            status = "PASS" if check.passed else "FAIL"
            print(f"  [{status}] {check.name}: {check.detail}")
            any_failed |= not check.passed
        path = save_results(result.experiment, result.payload())
        print(f"  results -> {path}")
        snapshots = metrics_payload(result.cells)
        if snapshots:
            mpath = save_results(result.experiment + "_metrics", snapshots)
            print(f"  metrics -> {mpath}")
    return 1 if any_failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
