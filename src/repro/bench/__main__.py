"""Standalone experiment runner: regenerate the paper's evaluation section.

Usage::

    python -m repro.bench                 # every table and figure
    python -m repro.bench table1 fig11    # a subset
    REPRO_BENCH_SCALE=14 python -m repro.bench table1

    # robustness: 10 seeded fault plans with a tightened watchdog
    python -m repro.bench chaos --fault-plan 7 --exec-timeout 0.2 --max-restarts 2

Prints the paper-style tables and writes JSON to benchmarks/results/.
Exit code 1 if any shape check fails.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import experiments as exp
from repro.bench.harness import (
    BenchEnvironment,
    metrics_payload,
    save_results,
    set_tracing,
    trace_payload,
)
from repro.bench.report import banner
from repro.obs.trace import validate_trace

EXPERIMENTS = {
    "table1": lambda env: exp.exp_table1(env),
    "fig7": lambda env: exp.exp_fig7(env),
    "fig8": lambda env: exp.exp_step_sweep(2, env),
    "fig9": lambda env: exp.exp_step_sweep(4, env),
    "fig10": lambda env: exp.exp_step_sweep(8, env),
    "fig11": lambda env: exp.exp_fig11(env),
    "table2": lambda env: exp.exp_table2(),
    "table3": lambda env: exp.exp_table3(),
    "concurrent": lambda env: exp.exp_concurrent_traversals(env),
    "ablation_opts": lambda env: exp.exp_ablation_optimizations(env),
    "planner": lambda env: exp.exp_ablation_planner(env),
    "ablation_partition": lambda env: exp.exp_ablation_partitioning(env),
    "ablation_layout": lambda env: exp.exp_ablation_layout(),
    "chaos": lambda env: exp.exp_chaos(env),
    "coordinator_recovery": lambda env: exp.exp_coordinator_recovery(env),
    "scheduler": lambda env: exp.exp_scheduler(env),
    "lang_ops": lambda env: exp.exp_lang_ops(env),
    "telemetry": lambda env: exp.exp_telemetry(env),
    "rebalance": lambda env: exp.exp_rebalance(env),
    "columnar": lambda env: exp.exp_columnar(env),
}


def _parse_args(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the paper's tables/figures and robustness runs.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help=f"subset to run (default: all). Choices: {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--fault-plan",
        type=int,
        default=None,
        metavar="SEED",
        help="base seed for the chaos experiment's sampled fault plans "
        "(implies running 'chaos' if no experiments were named)",
    )
    parser.add_argument(
        "--exec-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the chaos watchdog's per-execution timeout "
        "(virtual seconds)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        help="override the chaos watchdog's whole-traversal restart budget",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record a flight-recorder trace for every cell and write the "
        "merged Chrome trace_event file (open in chrome://tracing or "
        "https://ui.perfetto.dev) as <experiment>_trace.json",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the Chrome trace there instead (implies --trace; only "
        "meaningful when running a single experiment)",
    )
    return parser.parse_args(argv)


def main(argv: list[str]) -> int:
    args = _parse_args(argv)
    fault_knobs = (
        args.fault_plan is not None
        or args.exec_timeout is not None
        or args.max_restarts is not None
    )
    names = args.names or (["chaos"] if fault_knobs else list(EXPERIMENTS))
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)}")
        return 2
    runners = dict(EXPERIMENTS)
    runners["chaos"] = lambda env: exp.exp_chaos(
        env,
        fault_seed=args.fault_plan if args.fault_plan is not None else 0,
        exec_timeout=args.exec_timeout,
        max_restarts=args.max_restarts,
    )
    tracing = args.trace or args.trace_out is not None
    set_tracing(tracing)
    env = BenchEnvironment.from_env()
    print(f"environment: scale={env.scale} edge_factor={env.edge_factor} "
          f"servers={env.servers}")
    any_failed = False
    for name in names:
        print(banner(name))
        result = runners[name](env)
        print(result.rendered)
        for check in result.checks:
            status = "PASS" if check.passed else "FAIL"
            print(f"  [{status}] {check.name}: {check.detail}")
            any_failed |= not check.passed
        path = save_results(result.experiment, result.payload())
        print(f"  results -> {path}")
        snapshots = metrics_payload(result.cells)
        if snapshots:
            mpath = save_results(result.experiment + "_metrics", snapshots)
            print(f"  metrics -> {mpath}")
        if tracing:
            chrome = trace_payload(result.cells)
            problems = validate_trace(chrome)
            for problem in problems[:8]:
                print(f"  [FAIL] trace schema: {problem}")
            any_failed |= bool(problems)
            if args.trace_out is not None:
                tpath = args.trace_out
                tpath.parent.mkdir(parents=True, exist_ok=True)
                tpath.write_text(json.dumps(chrome, sort_keys=True))
            else:
                tpath = save_results(result.experiment + "_trace", chrome)
            print(f"  trace ({len(chrome['traceEvents'])} events) -> {tpath}")
    return 1 if any_failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
