"""Experiment harness: configuration, graph caching, and sweep execution.

Every table/figure benchmark goes through :func:`run_engine_comparison`, which
builds a fresh cluster per (engine, server-count) cell — cold start, same
graph, same plan — and records virtual elapsed time plus the visit/message
statistics. Wall-clock time of the *simulation* is what pytest-benchmark
measures; the paper's metric (simulated elapsed time) is attached as
``extra_info`` and printed in paper-style tables.

Environment knobs (so the full paper scale can be attempted off-laptop):

* ``REPRO_BENCH_SCALE``       — RMAT scale (default 12; paper used 20)
* ``REPRO_BENCH_EDGE_FACTOR`` — RMAT average out-degree (default 16, as paper)
* ``REPRO_BENCH_SERVERS``     — comma list of server counts (default 2,4,8,16,32)
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Optional, Sequence

from repro.cluster import Cluster, ClusterConfig
from repro.engine import EngineKind, TraversalOutcome
from repro.graph.builder import PropertyGraph
from repro.lang.plan import TraversalPlan
from repro.workloads import (
    MetadataGraph,
    MetadataGraphConfig,
    generate_metadata_graph,
    paper_rmat1,
    pick_start_vertex,
    rmat_graph,
    rmat_kstep_query,
)

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"

PAPER_SERVERS = (2, 4, 8, 16, 32)

ENGINE_ORDER = (EngineKind.SYNC, EngineKind.ASYNC, EngineKind.GRAPHTREK)

#: process-wide tracing switch the bench CLI's ``--trace`` flag flips; every
#: cell built while it is on records a flight-recorder trace (see
#: :mod:`repro.obs.trace`) and attaches the Chrome payload to ``Cell.trace``.
_TRACING = {"enabled": False}


def set_tracing(enabled: bool) -> None:
    _TRACING["enabled"] = enabled


def tracing_enabled() -> bool:
    return _TRACING["enabled"]


@dataclass(frozen=True)
class BenchEnvironment:
    """Resolved benchmark-scale knobs."""

    scale: int = 12
    edge_factor: int = 16
    servers: tuple[int, ...] = PAPER_SERVERS
    seed: int = 1

    @classmethod
    def from_env(cls) -> "BenchEnvironment":
        scale = int(os.environ.get("REPRO_BENCH_SCALE", "12"))
        edge_factor = int(os.environ.get("REPRO_BENCH_EDGE_FACTOR", "16"))
        servers_raw = os.environ.get("REPRO_BENCH_SERVERS", "")
        servers = (
            tuple(int(s) for s in servers_raw.split(",") if s)
            if servers_raw
            else PAPER_SERVERS
        )
        return cls(scale=scale, edge_factor=edge_factor, servers=servers)


@lru_cache(maxsize=4)
def rmat1_graph(scale: int, edge_factor: int, seed: int = 1) -> PropertyGraph:
    """The paper's RMAT-1 graph (cached across benchmarks in one session)."""
    return rmat_graph(paper_rmat1(scale=scale, edge_factor=edge_factor, seed=seed))


@lru_cache(maxsize=4)
def rmat1_source(scale: int, edge_factor: int, seed: int = 1, pick: int = 7) -> int:
    return pick_start_vertex(
        paper_rmat1(scale=scale, edge_factor=edge_factor, seed=seed), rng_seed=pick
    )


@lru_cache(maxsize=2)
def darshan_graph(scale_users: int = 128, seed: int = 42) -> MetadataGraph:
    """The Darshan-like rich-metadata graph used by Table II/III benches."""
    return generate_metadata_graph(
        MetadataGraphConfig(
            users=scale_users,
            mean_jobs_per_user=16.0,
            mean_execs_per_job=10.0,
            files=max(1024, scale_users * 64),
            mean_reads_per_exec=1.6,
            mean_writes_per_exec=1.0,
            seed=seed,
        )
    )


def kstep_plan(env: BenchEnvironment, steps: int, pick: int = 7) -> TraversalPlan:
    src = rmat1_source(env.scale, env.edge_factor, env.seed, pick)
    return rmat_kstep_query(src, steps).compile()


@dataclass
class Cell:
    """One measurement: (engine, nservers) on a fixed plan."""

    engine: str
    nservers: int
    elapsed: float
    real_io_visits: int
    combined_visits: int
    redundant_visits: int
    messages: int
    bytes_sent: int
    barrier_rounds: int
    executions: int
    per_server: dict = field(default_factory=dict)
    #: full observability snapshot of the cluster that produced this cell
    #: (saved separately as <experiment>_metrics.json, excluded from the
    #: paper-table payload)
    metrics: dict = field(default_factory=dict)
    #: Chrome ``trace_event`` payload when the run was traced (saved
    #: separately as <experiment>_trace.json, excluded everywhere else)
    trace: dict = field(default_factory=dict)

    @classmethod
    def from_outcome(cls, engine, nservers: int, outcome: TraversalOutcome):
        st = outcome.stats
        name = engine.value if isinstance(engine, EngineKind) else engine.kind.value
        return cls(
            engine=name,
            nservers=nservers,
            elapsed=st.elapsed,
            real_io_visits=st.real_io_visits,
            combined_visits=st.combined_visits,
            redundant_visits=st.redundant_visits,
            messages=st.messages,
            bytes_sent=st.bytes_sent,
            barrier_rounds=st.barrier_rounds,
            executions=st.executions,
            per_server=dict(st.per_server),
        )


def run_cell(
    graph: PropertyGraph,
    plan: TraversalPlan,
    engine: EngineKind,
    nservers: int,
    *,
    interference_factory=None,
    **cluster_kwargs,
) -> Cell:
    """One cold-start traversal on a freshly built cluster."""
    config = ClusterConfig(nservers=nservers, engine=engine, **cluster_kwargs)
    if interference_factory is not None:
        config.interference = interference_factory()
    if tracing_enabled():
        config.trace_enabled = True
    cluster = Cluster.build(graph, config)
    outcome = cluster.traverse(plan)
    cell = Cell.from_outcome(engine, nservers, outcome)
    cell.metrics = cluster.metrics_snapshot()
    if tracing_enabled():
        cell.trace = cluster.trace_payload(label=f"{cell.engine}x{nservers}")
    return cell


def run_engine_comparison(
    graph: PropertyGraph,
    plan: TraversalPlan,
    servers: Sequence[int],
    engines: Sequence[EngineKind] = ENGINE_ORDER,
    *,
    interference_factory=None,
    **cluster_kwargs,
) -> list[Cell]:
    """The standard sweep: every engine at every server count."""
    cells = []
    for nservers in servers:
        for engine in engines:
            cells.append(
                run_cell(
                    graph,
                    plan,
                    engine,
                    nservers,
                    interference_factory=interference_factory,
                    **cluster_kwargs,
                )
            )
    return cells


def cell_lookup(cells: Sequence[Cell]) -> dict[tuple[str, int], Cell]:
    return {(c.engine, c.nservers): c for c in cells}


def save_results(name: str, payload) -> Path:
    """Persist experiment output under benchmarks/results/<name>.json."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str))
    return path


def cells_payload(cells: Sequence[Cell]) -> list[dict]:
    return [
        {
            k: v
            for k, v in cell.__dict__.items()
            if k not in ("per_server", "metrics", "trace")
        }
        for cell in cells
    ]


def metrics_payload(cells: Sequence[Cell]) -> dict[str, dict]:
    """Per-cell observability snapshots keyed ``<engine>x<nservers>``."""
    return {
        f"{cell.engine}x{cell.nservers}": cell.metrics
        for cell in cells
        if cell.metrics
    }


def trace_payload(cells: Sequence[Cell]) -> dict:
    """Merge the per-cell Chrome traces into one loadable payload.

    Each cell's process ids are shifted into a disjoint block so Perfetto
    shows every cell's servers side by side under its own labels.
    """
    merged: list[dict] = []
    block = 0
    for cell in cells:
        events = cell.trace.get("traceEvents")
        if not events:
            continue
        for ev in events:
            ev = dict(ev)
            ev["pid"] = ev["pid"] + block
            merged.append(ev)
        block += 1000
    return {"traceEvents": merged, "displayTimeUnit": "ms"}
